// Sharded LRU prepared-query cache. Memoizes the parse-side half of the
// pipeline (tag -> conditions -> assembly -> SQL -> compiled plan) keyed on
// (snapshot version, domain, normalized question): repeated questions skip
// straight to execution — including predicate compilation and cost-aware
// plan construction, since ParsedQuestion carries the PhysicalPlan. Entries
// are shared_ptr<const ParsedQuestion> — immutable, so a hit is handed to
// any number of concurrent requests without copying the expression trees
// (ExprPtr is shared_ptr<const Expr>) or the plan (PlanPtr is
// shared_ptr<const PhysicalPlan>).
//
// Keying on the snapshot version makes swaps safe by construction: a
// question parsed against snapshot v is never replayed against snapshot
// v+1 (the domain's lexicon, table, column stats, or planner options may
// have changed — a memoized plan must never execute against a table it was
// not compiled for); stale entries age out of the LRU naturally.
#ifndef CQADS_SERVE_PREPARED_CACHE_H_
#define CQADS_SERVE_PREPARED_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ask_types.h"

namespace cqads::serve {

class PreparedQueryCache {
 public:
  using ParsedPtr = std::shared_ptr<const core::ParsedQuestion>;

  struct Options {
    std::size_t capacity = 4096;  ///< total entries across all shards
    std::size_t num_shards = 8;   ///< power of two recommended
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;  ///< currently resident
  };

  PreparedQueryCache() : PreparedQueryCache(Options()) {}
  explicit PreparedQueryCache(Options options);

  PreparedQueryCache(const PreparedQueryCache&) = delete;
  PreparedQueryCache& operator=(const PreparedQueryCache&) = delete;

  /// Canonical cache form of a question: ASCII-lowercased with whitespace
  /// runs collapsed to single spaces and ends trimmed, so "Red  HONDA " and
  /// "red honda" share an entry. (The tokenizer lowercases too, making the
  /// two forms parse identically.)
  static std::string NormalizeQuestion(const std::string& raw);

  /// Returns the entry, or nullptr on miss (absent or stale version).
  /// Touches the entry to most-recently-used.
  ParsedPtr Get(const std::string& domain, const std::string& normalized,
                std::uint64_t snapshot_version);

  /// Inserts or refreshes an entry, evicting the shard's LRU tail past
  /// capacity.
  void Put(const std::string& domain, const std::string& normalized,
           std::uint64_t snapshot_version, ParsedPtr parsed);

  /// Aggregated over shards.
  Stats stats() const;

  void Clear();

  std::size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    std::string key;
    std::uint64_t version = 0;
    ParsedPtr parsed;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  static std::string MakeKey(const std::string& domain,
                             const std::string& normalized);
  Shard& ShardOf(const std::string& key);

  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace cqads::serve

#endif  // CQADS_SERVE_PREPARED_CACHE_H_
