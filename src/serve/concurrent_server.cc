#include "serve/concurrent_server.h"

#include <chrono>

#include "core/pipeline.h"

namespace cqads::serve {

ConcurrentServer::ConcurrentServer(const core::CqadsEngine* engine,
                                   Options options)
    : engine_(engine),
      options_(options),
      cache_(std::make_unique<PreparedQueryCache>(options.cache)),
      pool_(std::make_unique<WorkerPool>(options.num_workers)) {}

Result<core::AskResult> ConcurrentServer::Ask(
    const std::string& question) const {
  return AskImpl("", question);
}

Result<core::AskResult> ConcurrentServer::AskInDomain(
    const std::string& domain, const std::string& question) const {
  return AskImpl(domain, question);
}

Result<core::AskResult> ConcurrentServer::AskImpl(
    const std::string& domain_hint, const std::string& question) const {
  // Pin the snapshot for the whole request: concurrent AddDomain/retrain
  // swaps don't affect us, and our cache entries are keyed on its version.
  core::EngineSnapshot::Ptr snap = engine_->snapshot();

  // Classification happens out-of-pipeline because the cache key needs the
  // domain; its wall-clock is folded back into the pipeline's "classify"
  // timing entry below so AskResult::timings stays honest.
  std::string domain = domain_hint;
  double classify_micros = 0.0;
  if (domain.empty()) {
    const auto start = std::chrono::steady_clock::now();
    auto classified = snap->ClassifyDomain(question);
    classify_micros = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (!classified.ok()) return classified.status();
    domain = std::move(classified).value();
  }

  core::QueryContext ctx(question, domain);
  std::string normalized;
  if (options_.enable_cache) {
    normalized = PreparedQueryCache::NormalizeQuestion(question);
    // A hit is shared, not copied: the execution stages read through the
    // immutable memoized ParsedQuestion.
    ctx.cached_parsed = cache_->Get(domain, normalized, snap->version());
  }

  Status st = core::QueryPipeline::Full().Run(*snap, &ctx);
  if (!st.ok()) return st;
  if (classify_micros > 0.0 && !ctx.result.timings.empty() &&
      ctx.result.timings.front().stage == "classify") {
    ctx.result.timings.front().micros += classify_micros;
  }

  if (options_.enable_cache && !ctx.parsed_from_cache()) {
    cache_->Put(domain, normalized, snap->version(),
                std::make_shared<const core::ParsedQuestion>(
                    std::move(ctx.parsed)));
  }
  return std::move(ctx.result);
}

std::vector<Result<core::AskResult>> ConcurrentServer::AskBatch(
    const std::vector<std::string>& questions) const {
  std::vector<Result<core::AskResult>> results(
      questions.size(), Status::Internal("not executed"));
  for (std::size_t i = 0; i < questions.size(); ++i) {
    pool_->Submit([this, &results, &questions, i] {
      results[i] = Ask(questions[i]);
    });
  }
  pool_->Wait();
  return results;
}

}  // namespace cqads::serve
