#include "serve/concurrent_server.h"

#include <chrono>
#include <utility>

#include "common/json.h"
#include "core/pipeline.h"

namespace cqads::serve {

ConcurrentServer::ConcurrentServer(const core::CqadsEngine* engine,
                                   Options options)
    : engine_(engine),
      options_(options),
      cache_(std::make_unique<PreparedQueryCache>(options.cache)),
      pool_(std::make_unique<WorkerPool>(options.num_workers)) {}

ConcurrentServer::~ConcurrentServer() = default;

Deadline ConcurrentServer::EffectiveDeadline(Deadline deadline) const {
  if (!deadline.is_infinite() || options_.default_budget.count() <= 0) {
    return deadline;
  }
  return Deadline::After(options_.default_budget);
}

bool ConcurrentServer::Admit() const {
  // Optimistic increment with rollback: two relaxed RMWs on the shed path,
  // one on the admit path. A transiently stale depth can shed one request
  // a slot early or admit one late — admission is a load-shedding valve,
  // not an exact semaphore.
  const std::size_t depth =
      queued_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.max_queue > 0 && depth > options_.max_queue) {
    queued_.fetch_sub(1, std::memory_order_relaxed);
    shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void ConcurrentServer::DequeueStarted(
    Deadline::Clock::time_point enqueued) const {
  const auto age_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          Deadline::Clock::now() - enqueued)
          .count());
  queued_.fetch_sub(1, std::memory_order_relaxed);
  dequeued_.fetch_add(1, std::memory_order_relaxed);
  total_queue_age_us_.fetch_add(age_us, std::memory_order_relaxed);
  std::uint64_t seen = max_queue_age_us_.load(std::memory_order_relaxed);
  while (age_us > seen && !max_queue_age_us_.compare_exchange_weak(
                              seen, age_us, std::memory_order_relaxed)) {
  }
}

void ConcurrentServer::RecordOutcome(
    const Result<core::AskResult>& result) const {
  if (result.ok()) {
    if (result.value().degraded) {
      degraded_.fetch_add(1, std::memory_order_relaxed);
    } else {
      answered_.fetch_add(1, std::memory_order_relaxed);
    }
    const db::ExecStats& st = result.value().stats;
    if (st.rank_blocks_visited > 0) {
      rank_blocks_visited_.fetch_add(st.rank_blocks_visited,
                                     std::memory_order_relaxed);
    }
    if (st.rank_blocks_skipped > 0) {
      rank_blocks_skipped_.fetch_add(st.rank_blocks_skipped,
                                     std::memory_order_relaxed);
    }
    if (st.rank_rows_pruned > 0) {
      rank_rows_pruned_.fetch_add(st.rank_rows_pruned,
                                  std::memory_order_relaxed);
    }
    if (st.rank_threshold_updates > 0) {
      rank_threshold_updates_.fetch_add(st.rank_threshold_updates,
                                        std::memory_order_relaxed);
    }
    return;
  }
  switch (result.status().code()) {
    case StatusCode::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kOverloaded:
      // Counted at the admission site; nothing to do here.
      break;
    default:
      errors_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

ConcurrentServer::Stats ConcurrentServer::stats() const {
  Stats s;
  s.answered = answered_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.expired_in_queue = expired_in_queue_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.max_queue_age_micros =
      static_cast<double>(max_queue_age_us_.load(std::memory_order_relaxed));
  s.total_queue_age_micros =
      static_cast<double>(total_queue_age_us_.load(std::memory_order_relaxed));
  s.dequeued = dequeued_.load(std::memory_order_relaxed);
  s.rank_blocks_visited =
      rank_blocks_visited_.load(std::memory_order_relaxed);
  s.rank_blocks_skipped =
      rank_blocks_skipped_.load(std::memory_order_relaxed);
  s.rank_rows_pruned = rank_rows_pruned_.load(std::memory_order_relaxed);
  s.rank_threshold_updates =
      rank_threshold_updates_.load(std::memory_order_relaxed);
  return s;
}

Result<core::AskResult> ConcurrentServer::Ask(
    const std::string& question) const {
  return Ask(question, Deadline::Infinite());
}

Result<core::AskResult> ConcurrentServer::Ask(const std::string& question,
                                              Deadline deadline) const {
  auto result = AskImpl("", question, EffectiveDeadline(deadline));
  RecordOutcome(result);
  return result;
}

Result<core::AskResult> ConcurrentServer::AskInDomain(
    const std::string& domain, const std::string& question) const {
  return AskInDomain(domain, question, Deadline::Infinite());
}

Result<core::AskResult> ConcurrentServer::AskInDomain(
    const std::string& domain, const std::string& question,
    Deadline deadline) const {
  auto result = AskImpl(domain, question, EffectiveDeadline(deadline));
  RecordOutcome(result);
  return result;
}

Result<core::AskResult> ConcurrentServer::AskImpl(
    const std::string& domain_hint, const std::string& question,
    Deadline deadline) const {
  if (question.empty()) {
    return Status::InvalidArgument("empty question");
  }
  // Pin the snapshot for the whole request: concurrent AddDomain/retrain
  // swaps don't affect us, and our cache entries are keyed on its version.
  core::EngineSnapshot::Ptr snap = engine_->snapshot();

  // Classification happens out-of-pipeline because the cache key needs the
  // domain; its wall-clock is folded back into the pipeline's "classify"
  // timing entry below so AskResult::timings stays honest.
  std::string domain = domain_hint;
  double classify_micros = 0.0;
  if (domain.empty()) {
    if (deadline.expired()) {
      return Status::DeadlineExceeded("budget exhausted before classify");
    }
    const auto start = std::chrono::steady_clock::now();
    auto classified = snap->ClassifyDomain(question);
    classify_micros = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (!classified.ok()) return classified.status();
    domain = std::move(classified).value();
  }

  core::QueryContext ctx(question, domain);
  ctx.deadline = deadline;
  std::string normalized;
  if (options_.enable_cache) {
    normalized = PreparedQueryCache::NormalizeQuestion(question);
    // A hit is shared, not copied: the execution stages read through the
    // immutable memoized ParsedQuestion.
    ctx.cached_parsed = cache_->Get(domain, normalized, snap->version());
  }

  Status st = core::QueryPipeline::Full().Run(*snap, &ctx);
  if (!st.ok()) return st;
  if (classify_micros > 0.0 && !ctx.result.timings.empty() &&
      ctx.result.timings.front().stage == "classify") {
    ctx.result.timings.front().micros += classify_micros;
  }

  // A degraded parse is still a complete parse — cache it. (Degradation
  // only ever truncates rank-stage work, which is never memoized.)
  if (options_.enable_cache && !ctx.parsed_from_cache()) {
    cache_->Put(domain, normalized, snap->version(),
                std::make_shared<const core::ParsedQuestion>(
                    std::move(ctx.parsed)));
  }
  return std::move(ctx.result);
}

std::vector<Result<core::AskResult>> ConcurrentServer::AskBatch(
    const std::vector<std::string>& questions) const {
  return AskBatch(questions, {});
}

std::vector<Result<core::AskResult>> ConcurrentServer::AskBatch(
    const std::vector<std::string>& questions,
    const std::vector<Deadline>& deadlines) const {
  std::vector<Result<core::AskResult>> results(
      questions.size(), Status::Internal("not executed"));
  for (std::size_t i = 0; i < questions.size(); ++i) {
    const Deadline deadline = EffectiveDeadline(
        i < deadlines.size() ? deadlines[i] : Deadline::Infinite());
    if (!Admit()) {
      results[i] = Status::Overloaded("serving queue saturated");
      continue;
    }
    const auto enqueued = Deadline::Clock::now();
    pool_->Submit([this, &results, &questions, i, deadline, enqueued] {
      DequeueStarted(enqueued);
      // A request that expired while queued never executes: dropping it
      // here costs one clock read instead of a full doomed pipeline run.
      if (deadline.expired()) {
        results[i] =
            Status::DeadlineExceeded("request expired in serving queue");
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      results[i] = AskImpl("", questions[i], deadline);
      RecordOutcome(results[i]);
    });
  }
  pool_->Wait();
  return results;
}

void ConcurrentServer::AskAsync(
    std::string question, Deadline deadline,
    std::function<void(Result<core::AskResult>)> done) const {
  AskAsyncInDomain("", std::move(question), deadline, std::move(done));
}

void ConcurrentServer::AskAsyncInDomain(
    std::string domain, std::string question, Deadline deadline,
    std::function<void(Result<core::AskResult>)> done) const {
  deadline = EffectiveDeadline(deadline);
  if (!Admit()) {
    done(Status::Overloaded("serving queue saturated"));
    return;
  }
  const auto enqueued = Deadline::Clock::now();
  pool_->Submit([this, domain = std::move(domain),
                 question = std::move(question), deadline, enqueued,
                 done = std::move(done)] {
    DequeueStarted(enqueued);
    if (deadline.expired()) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
      done(Status::DeadlineExceeded("request expired in serving queue"));
      return;
    }
    auto result = AskImpl(domain, question, deadline);
    RecordOutcome(result);
    done(std::move(result));
  });
}

std::string ConcurrentServer::StatsJson() const {
  const Stats s = stats();
  const PreparedQueryCache::Stats c = cache_->stats();
  JsonValue v = JsonValue::Object();
  auto num = [](std::uint64_t n) {
    return JsonValue::Number(static_cast<double>(n));
  };
  v.Set("answered", num(s.answered));
  v.Set("degraded", num(s.degraded));
  v.Set("deadline_exceeded", num(s.deadline_exceeded));
  v.Set("shed", num(s.shed));
  v.Set("expired_in_queue", num(s.expired_in_queue));
  v.Set("errors", num(s.errors));
  v.Set("dequeued", num(s.dequeued));
  v.Set("queue_depth", num(queue_depth()));
  v.Set("max_queue_age_micros", JsonValue::Number(s.max_queue_age_micros));
  v.Set("mean_queue_age_micros",
        JsonValue::Number(s.dequeued > 0
                              ? s.total_queue_age_micros /
                                    static_cast<double>(s.dequeued)
                              : 0.0));
  v.Set("rank_blocks_visited", num(s.rank_blocks_visited));
  v.Set("rank_blocks_skipped", num(s.rank_blocks_skipped));
  v.Set("rank_rows_pruned", num(s.rank_rows_pruned));
  v.Set("rank_threshold_updates", num(s.rank_threshold_updates));
  v.Set("cache_hits", num(c.hits));
  v.Set("cache_misses", num(c.misses));
  v.Set("cache_evictions", num(c.evictions));
  v.Set("cache_entries", num(c.entries));
  v.Set("num_workers", num(pool_->num_threads()));
  v.Set("max_queue", num(options_.max_queue));
  v.Set("default_budget_micros",
        num(static_cast<std::uint64_t>(options_.default_budget.count())));
  return v.Dump();
}

}  // namespace cqads::serve
