#include "serve/prepared_cache.h"

#include <cctype>
#include <functional>

namespace cqads::serve {

PreparedQueryCache::PreparedQueryCache(Options options) {
  if (options.num_shards == 0) options.num_shards = 1;
  if (options.capacity < options.num_shards) {
    options.capacity = options.num_shards;
  }
  per_shard_capacity_ = options.capacity / options.num_shards;
  shards_.reserve(options.num_shards);
  for (std::size_t i = 0; i < options.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string PreparedQueryCache::NormalizeQuestion(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  bool pending_space = false;
  for (unsigned char c : raw) {
    if (std::isspace(c)) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(static_cast<char>(std::tolower(c)));
  }
  return out;
}

std::string PreparedQueryCache::MakeKey(const std::string& domain,
                                        const std::string& normalized) {
  std::string key;
  key.reserve(domain.size() + 1 + normalized.size());
  key.append(domain);
  key.push_back('\n');  // cannot occur inside a normalized question
  key.append(normalized);
  return key;
}

PreparedQueryCache::Shard& PreparedQueryCache::ShardOf(
    const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

PreparedQueryCache::ParsedPtr PreparedQueryCache::Get(
    const std::string& domain, const std::string& normalized,
    std::uint64_t snapshot_version) {
  const std::string key = MakeKey(domain, normalized);
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end() || it->second->version != snapshot_version) {
    ++shard.misses;
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  return it->second->parsed;
}

void PreparedQueryCache::Put(const std::string& domain,
                             const std::string& normalized,
                             std::uint64_t snapshot_version,
                             ParsedPtr parsed) {
  const std::string key = MakeKey(domain, normalized);
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // A request pinned on an old snapshot may finish after a fresher one
    // already cached this question; keeping the newer entry avoids miss
    // churn during the swap window.
    if (it->second->version <= snapshot_version) {
      it->second->version = snapshot_version;
      it->second->parsed = std::move(parsed);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    }
    return;
  }
  shard.lru.push_front(Entry{key, snapshot_version, std::move(parsed)});
  shard.index.emplace(key, shard.lru.begin());
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

PreparedQueryCache::Stats PreparedQueryCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.evictions += shard->evictions;
    total.entries += shard->lru.size();
  }
  return total;
}

void PreparedQueryCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace cqads::serve
