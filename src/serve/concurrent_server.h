// Concurrent serving over the staged pipeline. A ConcurrentServer owns a
// worker pool and a sharded prepared-query cache and serves questions
// against whatever EngineSnapshot the engine currently publishes:
//
//   request --> snapshot = engine->snapshot()          (lock-free hot path)
//           --> classify (or use caller's domain)
//           --> prepared-query cache probe (domain, normalized question)
//                 hit:  skip tag/conditions/assembly/SQL, go to execution
//                 miss: run the parse stages, then memoize
//           --> execute + Rank_Sim rank on the snapshot
//
// AskBatch fans a batch out across the pool; results keep the input order
// and are byte-identical (CanonicalAskResultString) to what sequential
// CqadsEngine::Ask produces, because stages are deterministic and share no
// mutable state. Snapshot swaps (AddDomain / retrain) during a batch are
// safe: each request pins the snapshot it started with, and cache entries
// are keyed on the snapshot version.
#ifndef CQADS_SERVE_CONCURRENT_SERVER_H_
#define CQADS_SERVE_CONCURRENT_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cqads_engine.h"
#include "serve/prepared_cache.h"
#include "serve/worker_pool.h"

namespace cqads::serve {

class ConcurrentServer {
 public:
  struct Options {
    std::size_t num_workers = 4;
    bool enable_cache = true;
    PreparedQueryCache::Options cache;
  };

  /// The engine must outlive the server. The server never mutates it;
  /// domain additions/retrains go through the engine and are picked up by
  /// the next request via the snapshot swap.
  explicit ConcurrentServer(const core::CqadsEngine* engine)
      : ConcurrentServer(engine, Options()) {}
  ConcurrentServer(const core::CqadsEngine* engine, Options options);

  /// Classifies, then answers. Thread-safe; uses the prepared-query cache.
  Result<core::AskResult> Ask(const std::string& question) const;

  /// Answers within a known domain (skips classification).
  Result<core::AskResult> AskInDomain(const std::string& domain,
                                      const std::string& question) const;

  /// Answers a batch on the worker pool. results[i] corresponds to
  /// questions[i] and equals what Ask(questions[i]) returns.
  std::vector<Result<core::AskResult>> AskBatch(
      const std::vector<std::string>& questions) const;

  PreparedQueryCache::Stats cache_stats() const { return cache_->stats(); }
  std::size_t num_workers() const { return pool_->num_threads(); }
  const Options& options() const { return options_; }

 private:
  Result<core::AskResult> AskImpl(const std::string& domain_hint,
                                  const std::string& question) const;

  const core::CqadsEngine* engine_;
  Options options_;
  // Internally synchronized; mutable so the logically-const ask path can
  // enqueue work and update the cache.
  mutable std::unique_ptr<PreparedQueryCache> cache_;
  mutable std::unique_ptr<WorkerPool> pool_;
};

}  // namespace cqads::serve

#endif  // CQADS_SERVE_CONCURRENT_SERVER_H_
