// Concurrent serving over the staged pipeline. A ConcurrentServer owns a
// worker pool and a sharded prepared-query cache and serves questions
// against whatever EngineSnapshot the engine currently publishes:
//
//   request --> admission (bounded queue; saturated => shed kOverloaded)
//           --> snapshot = engine->snapshot()          (lock-free hot path)
//           --> expired-in-queue check at dequeue      (kDeadlineExceeded,
//               the doomed request never touches a snapshot)
//           --> classify (or use caller's domain)
//           --> prepared-query cache probe (domain, normalized question)
//                 hit:  skip tag/conditions/assembly/SQL, go to execution
//                 miss: run the parse stages, then memoize
//           --> execute + Rank_Sim rank on the snapshot, cooperatively
//               cancelled at stage/morsel boundaries when the deadline
//               passes (common/deadline.h)
//
// AskBatch fans a batch out across the pool; results keep the input order
// and are byte-identical (CanonicalAskResultString) to what sequential
// CqadsEngine::Ask produces, because stages are deterministic and share no
// mutable state. Snapshot swaps (AddDomain / retrain) during a batch are
// safe: each request pins the snapshot it started with, and cache entries
// are keyed on the snapshot version.
//
// Deadlines and overload: every request carries a Deadline (explicit, or
// Options::default_budget, or infinite). With no deadline and no queue
// bound — the defaults — behavior is byte-identical to the pre-deadline
// server: no clock reads, no admission state transitions, the parity
// benches pin it. Under pressure every request ends in exactly one of four
// outcomes, counted in stats():
//   answered           ok, full work
//   degraded           ok, exact answers complete but partial (N-1)
//                      retrieval cut short (AskResult::degraded)
//   deadline exceeded  kDeadlineExceeded — expired in queue or mid-pipeline
//   shed               kOverloaded — never admitted, O(1) rejection
#ifndef CQADS_SERVE_CONCURRENT_SERVER_H_
#define CQADS_SERVE_CONCURRENT_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/cqads_engine.h"
#include "serve/prepared_cache.h"
#include "serve/worker_pool.h"

namespace cqads::serve {

class ConcurrentServer {
 public:
  struct Options {
    std::size_t num_workers = 4;
    bool enable_cache = true;
    PreparedQueryCache::Options cache;
    /// Budget applied to requests that do not carry an explicit deadline.
    /// zero = unlimited (the pre-deadline behavior, and the default).
    std::chrono::microseconds default_budget{0};
    /// Admission control: maximum requests queued-or-executing at once.
    /// A request arriving with the queue full is shed immediately with
    /// kOverloaded — O(1), no snapshot touched, no worker burned — so
    /// overload degrades by shedding instead of collapsing into unbounded
    /// queue growth where every admitted request is late. 0 = unbounded
    /// (the default; synchronous Ask/AskInDomain are never queued and
    /// never shed).
    std::size_t max_queue = 0;
  };

  /// Outcome and queue-health counters since construction. Monotonic;
  /// cheap relaxed atomics, so concurrent snapshots may be slightly torn
  /// (fine for monitoring and benches).
  struct Stats {
    std::uint64_t answered = 0;           ///< ok, full work
    std::uint64_t degraded = 0;           ///< ok, partials cut short
    std::uint64_t deadline_exceeded = 0;  ///< in-queue or mid-pipeline
    std::uint64_t shed = 0;               ///< rejected at admission
    std::uint64_t expired_in_queue = 0;   ///< subset of deadline_exceeded
                                          ///< dropped at dequeue, unexecuted
    std::uint64_t errors = 0;             ///< any other non-OK status
    double max_queue_age_micros = 0.0;    ///< worst admission->dequeue wait
    double total_queue_age_micros = 0.0;  ///< sum over dequeued requests
    std::uint64_t dequeued = 0;           ///< divisor for the mean age
    /// Top-k rank-stage work across every OK request (db::ExecStats rank
    /// counters summed): how much the block-max pruning actually saves in
    /// production traffic, not just in the bench.
    std::uint64_t rank_blocks_visited = 0;
    std::uint64_t rank_blocks_skipped = 0;
    std::uint64_t rank_rows_pruned = 0;
    std::uint64_t rank_threshold_updates = 0;
  };

  /// The engine must outlive the server. The server never mutates it;
  /// domain additions/retrains go through the engine and are picked up by
  /// the next request via the snapshot swap.
  explicit ConcurrentServer(const core::CqadsEngine* engine)
      : ConcurrentServer(engine, Options()) {}
  ConcurrentServer(const core::CqadsEngine* engine, Options options);

  /// Destruction drains the pool: queued async requests still complete
  /// (their callbacks fire) before the workers join — deterministic
  /// teardown under load (see WorkerPool::~WorkerPool).
  ~ConcurrentServer();

  /// Classifies, then answers. Thread-safe; uses the prepared-query cache.
  /// Synchronous calls run on the caller's thread (no queue, no shedding);
  /// the deadline still bounds pipeline/execution work.
  Result<core::AskResult> Ask(const std::string& question) const;
  Result<core::AskResult> Ask(const std::string& question,
                              Deadline deadline) const;

  /// Answers within a known domain (skips classification).
  Result<core::AskResult> AskInDomain(const std::string& domain,
                                      const std::string& question) const;
  Result<core::AskResult> AskInDomain(const std::string& domain,
                                      const std::string& question,
                                      Deadline deadline) const;

  /// Answers a batch on the worker pool. results[i] corresponds to
  /// questions[i] and equals what Ask(questions[i]) returns.
  std::vector<Result<core::AskResult>> AskBatch(
      const std::vector<std::string>& questions) const;

  /// Per-request deadlines; deadlines[i] governs questions[i] (the vectors
  /// must be the same length, or every extra question runs undeadlined).
  /// Entries whose deadline passes while they wait in the queue return
  /// kDeadlineExceeded without executing; the rest are unaffected and stay
  /// byte-identical to sequential Ask.
  std::vector<Result<core::AskResult>> AskBatch(
      const std::vector<std::string>& questions,
      const std::vector<Deadline>& deadlines) const;

  /// Open-loop entry point: admission happens NOW on the caller's thread
  /// (a shed invokes `done` with kOverloaded before returning); otherwise
  /// the request is queued and `done` fires on a worker thread with the
  /// outcome. `done` must not block long — it runs on the serving pool.
  void AskAsync(std::string question, Deadline deadline,
                std::function<void(Result<core::AskResult>)> done) const;

  /// As AskAsync, within a known domain (skips classification). An empty
  /// domain classifies — this is the single async entry point the network
  /// front-end routes both "ask" and "ask_in_domain" through.
  void AskAsyncInDomain(std::string domain, std::string question,
                        Deadline deadline,
                        std::function<void(Result<core::AskResult>)> done)
      const;

  PreparedQueryCache::Stats cache_stats() const { return cache_->stats(); }
  /// Outcome counters; see Stats.
  Stats stats() const;
  /// One JSON object with every counter a fleet scraper wants: the four-
  /// outcome classification, error count, queue depth/age telemetry
  /// (max and mean admission->dequeue wait), prepared-cache hit/miss/
  /// eviction/resident numbers, and the serving configuration (workers,
  /// max_queue, default budget). Served by the network front-end as the
  /// "statsz" control method; also useful for logs. Relaxed-atomic reads —
  /// a concurrent snapshot may be slightly torn, like stats().
  std::string StatsJson() const;
  /// Requests admitted but not yet finished dequeuing (the admission
  /// controller's live queue depth).
  std::size_t queue_depth() const {
    return queued_.load(std::memory_order_relaxed);
  }
  std::size_t num_workers() const { return pool_->num_threads(); }
  const Options& options() const { return options_; }

 private:
  Result<core::AskResult> AskImpl(const std::string& domain_hint,
                                  const std::string& question,
                                  Deadline deadline) const;
  /// Applies Options::default_budget to an infinite deadline.
  Deadline EffectiveDeadline(Deadline deadline) const;
  /// Admission: true = a queue slot was taken (release via DequeueStarted).
  bool Admit() const;
  /// Records the queue age and frees the admission slot.
  void DequeueStarted(Deadline::Clock::time_point enqueued) const;
  /// Folds a finished request's outcome into the counters.
  void RecordOutcome(const Result<core::AskResult>& result) const;

  const core::CqadsEngine* engine_;
  Options options_;
  // Internally synchronized; mutable so the logically-const ask path can
  // enqueue work and update the cache.
  mutable std::unique_ptr<PreparedQueryCache> cache_;
  mutable std::unique_ptr<WorkerPool> pool_;

  // Admission + outcome state (all relaxed: monotonic counters and a queue
  // depth whose transient staleness only sheds one request early/late).
  mutable std::atomic<std::size_t> queued_{0};
  mutable std::atomic<std::uint64_t> answered_{0};
  mutable std::atomic<std::uint64_t> degraded_{0};
  mutable std::atomic<std::uint64_t> deadline_exceeded_{0};
  mutable std::atomic<std::uint64_t> shed_{0};
  mutable std::atomic<std::uint64_t> expired_in_queue_{0};
  mutable std::atomic<std::uint64_t> errors_{0};
  mutable std::atomic<std::uint64_t> max_queue_age_us_{0};   ///< integer µs
  mutable std::atomic<std::uint64_t> total_queue_age_us_{0};
  mutable std::atomic<std::uint64_t> dequeued_{0};
  mutable std::atomic<std::uint64_t> rank_blocks_visited_{0};
  mutable std::atomic<std::uint64_t> rank_blocks_skipped_{0};
  mutable std::atomic<std::uint64_t> rank_rows_pruned_{0};
  mutable std::atomic<std::uint64_t> rank_threshold_updates_{0};
};

}  // namespace cqads::serve

#endif  // CQADS_SERVE_CONCURRENT_SERVER_H_
