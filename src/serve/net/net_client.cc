#include "serve/net/net_client.h"

#include <utility>

namespace cqads::serve::net {

Result<NetClient> NetClient::ConnectTcp(const std::string& host,
                                        std::uint16_t port) {
  auto fd = cqads::net::TcpConnect(host, port);
  if (!fd.ok()) return fd.status();
  return NetClient(std::move(fd).value());
}

Result<NetClient> NetClient::ConnectUnix(const std::string& path) {
  auto fd = cqads::net::UnixConnect(path);
  if (!fd.ok()) return fd.status();
  return NetClient(std::move(fd).value());
}

Status NetClient::Send(const Request& request) {
  if (!fd_.valid()) return Status::FailedPrecondition("client closed");
  std::string frame;
  AppendFrame(EncodeRequest(request), &frame);
  return cqads::net::WriteFull(fd_.get(), frame.data(), frame.size());
}

Result<Response> NetClient::Receive() {
  if (!fd_.valid()) return Status::FailedPrecondition("client closed");
  std::string payload;
  while (true) {
    const FrameDecoder::Next next = decoder_.Pop(&payload);
    if (next == FrameDecoder::Next::kFrame) {
      auto response = DecodeResponse(payload);
      if (!response.ok()) return response.status();
      return std::move(response).value();
    }
    if (next == FrameDecoder::Next::kError) {
      return Status::DataLoss("framing error from server: " +
                              decoder_.error());
    }
    // Read frame bytes in two exact-count steps (header, then payload) so
    // the blocking read never waits for more than the wire owes us.
    char header[4];
    auto got = cqads::net::ReadFull(fd_.get(), header, sizeof(header));
    if (!got.ok()) return got.status();
    if (!got.value()) return Status::NotFound("connection closed");
    decoder_.Feed(header, sizeof(header));
    // Let the decoder validate the length; an oversized declaration fails
    // on the next Pop without ever allocating the claimed size.
    std::uint32_t len = 0;
    for (int i = 3; i >= 0; --i) {
      len = (len << 8) | static_cast<unsigned char>(header[i]);
    }
    if (len == 0 || len > kMaxFrameBytes) continue;  // Pop reports kError
    std::string body(len, '\0');
    got = cqads::net::ReadFull(fd_.get(), body.data(), body.size());
    if (!got.ok()) return got.status();
    if (!got.value()) {
      return Status::DataLoss("connection closed mid-frame");
    }
    decoder_.Feed(body.data(), body.size());
  }
}

Result<Response> NetClient::Call(const Request& request) {
  CQADS_RETURN_NOT_OK(Send(request));
  return Receive();
}

}  // namespace cqads::serve::net
