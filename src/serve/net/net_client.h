// Client side of the network serving protocol, used by the open-loop load
// generator (bench/net_serve.cc), the daemon's smoke checks, and the
// end-to-end tests. One NetClient = one persistent connection (TCP or
// Unix-domain).
//
// Two usage shapes:
//   * Sequential: Call() sends one request and blocks for its response —
//     with a single request outstanding, responses arrive in order.
//   * Pipelined: one thread Send()s while another thread Receive()s.
//     Responses may arrive out of request order (the server completes
//     concurrently); correlate by Request::id. Sends and receives travel
//     opposite directions on the socket, so one sender thread plus one
//     receiver thread need no locking; multiple senders on one client do.
#ifndef CQADS_SERVE_NET_NET_CLIENT_H_
#define CQADS_SERVE_NET_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/socket_io.h"
#include "common/status.h"
#include "serve/net/protocol.h"

namespace cqads::serve::net {

class NetClient {
 public:
  static Result<NetClient> ConnectTcp(const std::string& host,
                                      std::uint16_t port);
  static Result<NetClient> ConnectUnix(const std::string& path);

  NetClient(NetClient&&) = default;
  NetClient& operator=(NetClient&&) = default;

  /// Writes one framed request (blocking until fully written).
  Status Send(const Request& request);

  /// Blocks for the next response frame. An orderly server close at a
  /// frame boundary returns kNotFound("connection closed"); a close
  /// mid-frame, an oversized frame, or malformed JSON returns the
  /// corresponding error.
  Result<Response> Receive();

  /// Send + Receive. Only meaningful with no other request outstanding.
  Result<Response> Call(const Request& request);

  /// Shuts the connection down (further Send/Receive fail).
  void Close() { fd_.Close(); }
  bool connected() const { return fd_.valid(); }

 private:
  explicit NetClient(cqads::net::Fd fd) : fd_(std::move(fd)) {}

  cqads::net::Fd fd_;
  FrameDecoder decoder_;
};

}  // namespace cqads::serve::net

#endif  // CQADS_SERVE_NET_NET_CLIENT_H_
