#include "serve/net/net_server.h"

#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "common/json.h"
#include "core/ask_types.h"

namespace cqads::serve::net {

using ::cqads::net::Fd;
using ::cqads::net::SetNonBlocking;

/// Per-connection state. The I/O thread owns fd / decoder / writebuf;
/// outbox and closed are shared with completion callbacks under mu. A Conn
/// is held by shared_ptr so a callback completing after the peer vanished
/// still has a (closed) outbox to be dropped at, never a dangling pointer.
struct NetServer::Conn {
  explicit Conn(int fd_in, std::uint32_t max_frame)
      : fd(fd_in), decoder(max_frame) {}

  const int fd;
  FrameDecoder decoder;
  std::string writebuf;  ///< I/O-thread staging, flushed on POLLOUT

  std::mutex mu;
  std::string outbox;  ///< encoded frames queued by callbacks, under mu
  bool closed = false;  ///< under mu; set exactly once by the I/O thread
};

Result<std::unique_ptr<NetServer>> NetServer::Start(
    const core::CqadsEngine* engine, Options options) {
  if (options.unix_path.empty() && options.tcp_port < 0) {
    return Status::InvalidArgument(
        "NetServer needs a unix_path or a tcp_port");
  }
  std::unique_ptr<NetServer> server(
      new NetServer(engine, std::move(options)));
  CQADS_RETURN_NOT_OK(server->Bind());
  server->running_.store(true, std::memory_order_release);
  server->io_thread_ = std::thread([raw = server.get()] { raw->Loop(); });
  return server;
}

NetServer::NetServer(const core::CqadsEngine* engine, Options options)
    : engine_(engine),
      options_(std::move(options)),
      server_(std::make_unique<ConcurrentServer>(engine_, options_.serve)) {}

Status NetServer::Bind() {
  if (options_.tcp_port >= 0) {
    auto fd = cqads::net::TcpListen(
        options_.tcp_host, static_cast<std::uint16_t>(options_.tcp_port),
        &tcp_port_);
    if (!fd.ok()) return fd.status();
    tcp_listener_ = std::move(fd).value();
    CQADS_RETURN_NOT_OK(SetNonBlocking(tcp_listener_.get(), true));
  }
  if (!options_.unix_path.empty()) {
    auto fd = cqads::net::UnixListen(options_.unix_path);
    if (!fd.ok()) return fd.status();
    unix_listener_ = std::move(fd).value();
    CQADS_RETURN_NOT_OK(SetNonBlocking(unix_listener_.get(), true));
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_ = Fd(pipe_fds[0]);
  wake_write_ = Fd(pipe_fds[1]);
  CQADS_RETURN_NOT_OK(SetNonBlocking(wake_read_.get(), true));
  CQADS_RETURN_NOT_OK(SetNonBlocking(wake_write_.get(), true));
  return Status::OK();
}

NetServer::~NetServer() { Stop(); }

void NetServer::Stop() {
  running_.store(false, std::memory_order_release);
  if (io_thread_.joinable()) {
    Wake();
    io_thread_.join();
  }
  // Close every connection. Acquiring each mu here means any callback that
  // observed closed == false has already finished queuing (including its
  // wakeup write, done under mu); callbacks arriving later drop their
  // response at the closed flag without touching the fd or the wake pipe —
  // so the member destructors (wake pipe, listeners, then the
  // ConcurrentServer whose teardown drains in-flight requests) are safe in
  // any order after this loop.
  for (auto& [fd, conn] : conns_) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->closed = true;
    }
    ::close(fd);
    disconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  conns_.clear();
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void NetServer::Wake() {
  if (!wake_write_.valid()) return;
  const char byte = 1;
  // Non-blocking: a full pipe already guarantees a pending wakeup.
  (void)!::write(wake_write_.get(), &byte, 1);
}

void NetServer::Loop() {
  std::vector<pollfd> fds;
  std::vector<int> conn_fds;  // parallel to fds entries past the fixed ones
  while (running_.load(std::memory_order_acquire)) {
    fds.clear();
    conn_fds.clear();
    const auto poll_in = [&fds](int fd) {
      pollfd p{};
      p.fd = fd;
      p.events = POLLIN;
      fds.push_back(p);
    };
    poll_in(wake_read_.get());
    const std::size_t tcp_index = fds.size();
    if (tcp_listener_.valid()) poll_in(tcp_listener_.get());
    const std::size_t unix_index = fds.size();
    if (unix_listener_.valid()) poll_in(unix_listener_.get());
    const std::size_t first_conn = fds.size();
    for (auto& [fd, conn] : conns_) {
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->outbox.empty()) {
          conn->writebuf.append(conn->outbox);
          conn->outbox.clear();
        }
      }
      pollfd p{};
      p.fd = fd;
      p.events = POLLIN;
      if (!conn->writebuf.empty()) p.events |= POLLOUT;
      fds.push_back(p);
      conn_fds.push_back(fd);
    }

    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/-1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure; daemon exits its loop
    }
    if (!running_.load(std::memory_order_acquire)) break;

    if ((fds[0].revents & POLLIN) != 0) {
      char drain[256];
      while (::read(wake_read_.get(), drain, sizeof(drain)) > 0) {
      }
    }
    if (tcp_listener_.valid() && (fds[tcp_index].revents & POLLIN) != 0) {
      AcceptAll(tcp_listener_.get());
    }
    if (unix_listener_.valid() && (fds[unix_index].revents & POLLIN) != 0) {
      AcceptAll(unix_listener_.get());
    }
    for (std::size_t i = first_conn; i < fds.size(); ++i) {
      const int fd = conn_fds[i - first_conn];
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      const std::shared_ptr<Conn> conn = it->second;
      const short revents = fds[i].revents;
      if (revents == 0) continue;
      bool alive = true;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        alive = ReadConn(conn);
      }
      if (alive && (revents & POLLOUT) != 0) {
        alive = WriteConn(conn);
      }
      if (!alive) CloseConn(fd);
    }
  }
}

void NetServer::AcceptAll(int listener_fd) {
  while (true) {
    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or a transient accept error: try next poll round
    }
    if (options_.max_connections > 0 &&
        conns_.size() >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd, true).ok()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    // Best effort; meaningless (and harmless) on Unix-domain sockets.
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    conns_.emplace(fd,
                   std::make_shared<Conn>(fd, options_.max_frame_bytes));
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool NetServer::ReadConn(const std::shared_ptr<Conn>& conn) {
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno == EAGAIN || errno == EWOULDBLOCK;
    }
    if (n == 0) return false;  // peer closed
    conn->decoder.Feed(buf, static_cast<std::size_t>(n));
    std::string payload;
    while (true) {
      const FrameDecoder::Next next = conn->decoder.Pop(&payload);
      if (next == FrameDecoder::Next::kFrame) {
        frames_in_.fetch_add(1, std::memory_order_relaxed);
        HandleFrame(conn, payload);
        continue;
      }
      if (next == FrameDecoder::Next::kError) {
        // The byte stream cannot be resynchronized after a framing
        // violation; drop the connection.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      break;  // kNeedMore
    }
    if (static_cast<std::size_t>(n) < sizeof(buf)) {
      // Likely drained; poll will tell us about the rest.
      return true;
    }
  }
}

bool NetServer::WriteConn(const std::shared_ptr<Conn>& conn) {
  while (!conn->writebuf.empty()) {
    const ssize_t n = ::send(conn->fd, conn->writebuf.data(),
                             conn->writebuf.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno == EAGAIN || errno == EWOULDBLOCK;
    }
    conn->writebuf.erase(0, static_cast<std::size_t>(n));
  }
  return true;
}

void NetServer::QueueResponse(const std::shared_ptr<Conn>& conn,
                              const Response& response) {
  const std::string payload = EncodeResponse(response);
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->closed) {
    dropped_responses_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  AppendFrame(payload, &conn->outbox);
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  // Wakeup inside the lock: Stop()'s close loop acquires every mu, so once
  // it finishes, no late callback can touch the (soon-closed) wake pipe.
  Wake();
}

namespace {

Response MakeAskResponse(std::uint64_t id,
                         const Result<core::AskResult>& result) {
  Response response;
  response.id = id;
  if (result.ok()) {
    response.status = WireStatusName(StatusCode::kOk);
    response.degraded = result.value().degraded;
    response.domain = result.value().domain;
    response.canonical = core::CanonicalAskResultString(result.value());
  } else {
    response.status = WireStatusName(result.status().code());
    response.error = result.status().message();
  }
  return response;
}

Deadline BudgetToDeadline(double budget_ms) {
  if (budget_ms > 0.0) {
    return Deadline::After(std::chrono::microseconds(
        static_cast<std::int64_t>(budget_ms * 1000.0)));
  }
  if (budget_ms < 0.0) {
    // Already expired — the deterministic wire form of "this request's
    // budget was spent before it reached the socket" (tests use it to pin
    // the expired-in-queue path without sleeping).
    return Deadline::After(std::chrono::microseconds(-1));
  }
  return Deadline::Infinite();
}

}  // namespace

void NetServer::HandleFrame(const std::shared_ptr<Conn>& conn,
                            const std::string& payload) {
  auto decoded = DecodeRequest(payload);
  if (!decoded.ok()) {
    // The framing was sound, so the connection survives; only this
    // request fails. id 0: an unparseable request has no usable id.
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    Response response;
    response.id = 0;
    response.status = WireStatusName(decoded.status().code());
    response.error = decoded.status().message();
    QueueResponse(conn, response);
    return;
  }
  const Request& request = decoded.value();
  if (request.method == "ping") {
    Response response;
    response.id = request.id;
    QueueResponse(conn, response);
    return;
  }
  if (request.method == "statsz") {
    Response response;
    response.id = request.id;
    response.stats_json = StatsJson();
    QueueResponse(conn, response);
    return;
  }
  if (request.method == "ask" || request.method == "ask_in_domain") {
    Response bad;
    bad.id = request.id;
    bad.status = WireStatusName(StatusCode::kInvalidArgument);
    if (request.question.empty()) {
      bad.error = "empty question";
      QueueResponse(conn, bad);
      return;
    }
    if (request.method == "ask_in_domain" && request.domain.empty()) {
      bad.error = "ask_in_domain without a domain";
      QueueResponse(conn, bad);
      return;
    }
    const std::string domain =
        request.method == "ask" ? std::string() : request.domain;
    const std::uint64_t id = request.id;
    // The callback runs on a serving worker (or inline right here when the
    // request is shed). conn is a shared_ptr: a peer that disconnects
    // before completion leaves a closed outbox, not a dangling pointer.
    server_->AskAsyncInDomain(
        domain, request.question, BudgetToDeadline(request.budget_ms),
        [this, conn, id](Result<core::AskResult> result) {
          QueueResponse(conn, MakeAskResponse(id, result));
        });
    return;
  }
  Response response;
  response.id = request.id;
  response.status = WireStatusName(StatusCode::kInvalidArgument);
  response.error = "unknown method: " + request.method;
  QueueResponse(conn, response);
}

void NetServer::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  {
    std::lock_guard<std::mutex> lock(it->second->mu);
    it->second->closed = true;
  }
  conns_.erase(it);
  ::close(fd);
  disconnects_.fetch_add(1, std::memory_order_relaxed);
}

NetServer::NetStats NetServer::net_stats() const {
  NetStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.active_connections =
      s.accepted - disconnects_.load(std::memory_order_relaxed);
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.frames_out = frames_out_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  s.disconnects = disconnects_.load(std::memory_order_relaxed);
  s.dropped_responses =
      dropped_responses_.load(std::memory_order_relaxed);
  return s;
}

std::string NetServer::StatsJson() const {
  // Server-side counters first (they parse back to a JsonValue), then the
  // wire-level block nested under "net".
  auto base = JsonValue::Parse(server_->StatsJson());
  JsonValue v = base.ok() ? std::move(base).value() : JsonValue::Object();
  const NetStats s = net_stats();
  JsonValue net = JsonValue::Object();
  auto num = [](std::uint64_t n) {
    return JsonValue::Number(static_cast<double>(n));
  };
  net.Set("accepted", num(s.accepted));
  net.Set("active_connections", num(s.active_connections));
  net.Set("frames_in", num(s.frames_in));
  net.Set("frames_out", num(s.frames_out));
  net.Set("protocol_errors", num(s.protocol_errors));
  net.Set("bad_requests", num(s.bad_requests));
  net.Set("disconnects", num(s.disconnects));
  net.Set("dropped_responses", num(s.dropped_responses));
  v.Set("net", std::move(net));
  return v.Dump();
}

}  // namespace cqads::serve::net
