// Wire protocol of the network serving front-end: length-prefixed binary
// framing with a JSON request/response codec inside each frame.
//
// Framing. A frame is a 4-byte little-endian payload length followed by
// exactly that many payload bytes. Length 0 and lengths above the
// negotiated cap are protocol violations: once the byte stream disagrees
// with the framing there is no way to resynchronize, so the server closes
// the connection (a malformed JSON PAYLOAD, by contrast, leaves the framing
// intact and costs only an error response). FrameDecoder is incremental —
// feed it whatever read() returned, pop complete frames; it is the single
// implementation both server and client use, so partial reads split at any
// byte boundary reassemble identically everywhere (test_net_protocol sweeps
// every split).
//
// Requests (one JSON object per frame):
//   {"id":7,"method":"ask","question":"red honda under 9000","budget_ms":25}
//   {"id":8,"method":"ask_in_domain","domain":"cars","question":"..."}
//   {"id":9,"method":"statsz"}          server + cache + queue telemetry
//   {"id":0,"method":"ping"}            liveness / receiver unblocking
// budget_ms > 0 sets the request deadline (arrival + budget, propagated
// into the engine's Deadline/CancelToken machinery); 0/absent = no
// deadline; < 0 = an already-expired deadline (deterministic test hook for
// the expired-in-queue path).
//
// Responses:
//   {"id":7,"status":"ok","degraded":false,"domain":"cars",
//    "canonical":"<CanonicalAskResultString>"}
//   {"id":8,"status":"deadline_exceeded","error":"..."}
//   {"id":9,"status":"ok","stats":{...}}
// `status` is the lowercase StatusCode name ("ok", "deadline_exceeded",
// "overloaded", "invalid_argument", ...). `canonical` carries the full
// canonical answer serialization so clients can assert byte-identity with
// in-process Ask — the parity gate the net_serve bench enforces. Responses
// to one connection may arrive out of request order (the server executes
// concurrently); `id` is the correlator.
#ifndef CQADS_SERVE_NET_PROTOCOL_H_
#define CQADS_SERVE_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace cqads::serve::net {

/// Default frame-payload cap. Requests are questions (bytes to KB) and
/// responses are answer tables (KB); 16 MiB is far above anything legal,
/// close below anything an attacker would like the server to buffer.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Appends one frame (length prefix + payload) to `out`.
void AppendFrame(std::string_view payload, std::string* out);

/// Incremental frame reassembly over an untrusted byte stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes from the transport.
  void Feed(const char* data, std::size_t n) { buffer_.append(data, n); }

  enum class Next {
    kFrame,     ///< *payload holds one complete frame's payload
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< framing violation (zero/oversized length) — close the
                ///< connection; error() says why
  };

  /// Extracts the next complete frame, if any. Call until it stops
  /// returning kFrame. After kError the decoder stays in the error state.
  Next Pop(std::string* payload);

  const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed (tests assert tight buffering).
  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::uint32_t max_frame_bytes_;
  std::string buffer_;
  std::string error_;
  bool failed_ = false;
};

struct Request {
  std::uint64_t id = 0;
  std::string method;    ///< "ask", "ask_in_domain", "statsz", "ping"
  std::string domain;    ///< ask_in_domain only
  std::string question;  ///< ask / ask_in_domain
  double budget_ms = 0.0;
};

struct Response {
  std::uint64_t id = 0;
  std::string status = "ok";  ///< lowercase StatusCode name
  std::string error;          ///< message when status != "ok"
  bool degraded = false;
  std::string domain;
  std::string canonical;   ///< CanonicalAskResultString (ask methods, ok)
  std::string stats_json;  ///< nested "stats" object, as JSON text (statsz)

  bool ok() const { return status == "ok"; }
};

std::string EncodeRequest(const Request& request);
/// Strict decode of an untrusted request payload: must be a JSON object
/// with a string "method"; unknown members are ignored (forward compat).
Result<Request> DecodeRequest(std::string_view payload);

std::string EncodeResponse(const Response& response);
Result<Response> DecodeResponse(std::string_view payload);

/// "ok", "deadline_exceeded", ... — the lowercase wire form of a code.
const char* WireStatusName(StatusCode code);
/// Inverse of WireStatusName; kInternal for unknown names.
StatusCode WireStatusCode(std::string_view name);

}  // namespace cqads::serve::net

#endif  // CQADS_SERVE_NET_PROTOCOL_H_
