#include "serve/net/protocol.h"

#include <cstring>

#include "common/json.h"

namespace cqads::serve::net {

void AppendFrame(std::string_view payload, std::string* out) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char prefix[4];
  prefix[0] = static_cast<char>(len & 0xFF);
  prefix[1] = static_cast<char>((len >> 8) & 0xFF);
  prefix[2] = static_cast<char>((len >> 16) & 0xFF);
  prefix[3] = static_cast<char>((len >> 24) & 0xFF);
  out->append(prefix, 4);
  out->append(payload.data(), payload.size());
}

FrameDecoder::Next FrameDecoder::Pop(std::string* payload) {
  if (failed_) return Next::kError;
  if (buffer_.size() < 4) return Next::kNeedMore;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data());
  const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                            (static_cast<std::uint32_t>(p[1]) << 8) |
                            (static_cast<std::uint32_t>(p[2]) << 16) |
                            (static_cast<std::uint32_t>(p[3]) << 24);
  if (len == 0) {
    failed_ = true;
    error_ = "zero-length frame";
    return Next::kError;
  }
  if (len > max_frame_bytes_) {
    failed_ = true;
    error_ = "frame of " + std::to_string(len) + " bytes exceeds cap of " +
             std::to_string(max_frame_bytes_);
    return Next::kError;
  }
  if (buffer_.size() < 4u + len) return Next::kNeedMore;
  payload->assign(buffer_, 4, len);
  buffer_.erase(0, 4u + len);
  return Next::kFrame;
}

const char* WireStatusName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kOverloaded:
      return "overloaded";
    case StatusCode::kDataLoss:
      return "data_loss";
  }
  return "internal";
}

StatusCode WireStatusCode(std::string_view name) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,   StatusCode::kFailedPrecondition,
      StatusCode::kUnimplemented, StatusCode::kInternal,
      StatusCode::kDeadlineExceeded, StatusCode::kOverloaded,
      StatusCode::kDataLoss,
  };
  for (StatusCode code : kCodes) {
    if (name == WireStatusName(code)) return code;
  }
  return StatusCode::kInternal;
}

std::string EncodeRequest(const Request& request) {
  JsonValue v = JsonValue::Object();
  v.Set("id", JsonValue::Number(static_cast<double>(request.id)));
  v.Set("method", JsonValue::Str(request.method));
  if (!request.domain.empty()) {
    v.Set("domain", JsonValue::Str(request.domain));
  }
  if (!request.question.empty()) {
    v.Set("question", JsonValue::Str(request.question));
  }
  if (request.budget_ms != 0.0) {
    v.Set("budget_ms", JsonValue::Number(request.budget_ms));
  }
  return v.Dump();
}

Result<Request> DecodeRequest(std::string_view payload) {
  auto parsed = JsonValue::Parse(payload);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& v = parsed.value();
  if (!v.is_object()) {
    return Status::InvalidArgument("request is not a JSON object");
  }
  Request request;
  const double id = v.GetNumber("id", 0.0);
  if (id < 0.0) return Status::InvalidArgument("negative request id");
  request.id = static_cast<std::uint64_t>(id);
  request.method = v.GetString("method");
  if (request.method.empty()) {
    return Status::InvalidArgument("request has no method");
  }
  request.domain = v.GetString("domain");
  request.question = v.GetString("question");
  request.budget_ms = v.GetNumber("budget_ms", 0.0);
  return request;
}

std::string EncodeResponse(const Response& response) {
  JsonValue v = JsonValue::Object();
  v.Set("id", JsonValue::Number(static_cast<double>(response.id)));
  v.Set("status", JsonValue::Str(response.status));
  if (!response.error.empty()) {
    v.Set("error", JsonValue::Str(response.error));
  }
  if (response.degraded) v.Set("degraded", JsonValue::Bool(true));
  if (!response.domain.empty()) {
    v.Set("domain", JsonValue::Str(response.domain));
  }
  if (!response.canonical.empty()) {
    v.Set("canonical", JsonValue::Str(response.canonical));
  }
  if (!response.stats_json.empty()) {
    // The stats dump is itself JSON; nest it as a real object (not a
    // quoted blob) so scrapers address fields as response.stats.answered.
    auto stats = JsonValue::Parse(response.stats_json);
    v.Set("stats", stats.ok() ? std::move(stats).value()
                              : JsonValue::Str(response.stats_json));
  }
  return v.Dump();
}

Result<Response> DecodeResponse(std::string_view payload) {
  auto parsed = JsonValue::Parse(payload);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& v = parsed.value();
  if (!v.is_object()) {
    return Status::InvalidArgument("response is not a JSON object");
  }
  Response response;
  const double id = v.GetNumber("id", 0.0);
  if (id < 0.0) return Status::InvalidArgument("negative response id");
  response.id = static_cast<std::uint64_t>(id);
  response.status = v.GetString("status");
  if (response.status.empty()) {
    return Status::InvalidArgument("response has no status");
  }
  response.error = v.GetString("error");
  response.degraded = v.GetBool("degraded", false);
  response.domain = v.GetString("domain");
  response.canonical = v.GetString("canonical");
  if (const JsonValue* stats = v.Find("stats"); stats != nullptr) {
    response.stats_json = stats->Dump();
  }
  return response;
}

}  // namespace cqads::serve::net
