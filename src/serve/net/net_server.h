// The network serving front-end: a poll(2) event loop accepting TCP and
// Unix-domain connections and speaking the length-prefixed JSON protocol
// (serve/net/protocol.h) over them, wrapping a ConcurrentServer. This is
// the layer that turns "q/s on one thread" into the fleet metric: N client
// processes (or hosts) multiplex requests over persistent connections into
// one serving process, each request carrying its own latency budget.
//
// Threading model. ONE I/O thread owns every socket: it polls the
// listeners, the per-connection fds, and a self-wakeup pipe; reads are
// non-blocking and feed per-connection FrameDecoders; complete request
// frames dispatch into ConcurrentServer::AskAsyncInDomain, so parsing,
// planning, execution, and ranking all run on the SERVING POOL, never on
// the I/O thread — a slow query cannot stall accepts or other connections.
// Completion callbacks (worker threads) append the encoded response to the
// connection's locked outbox and tickle the wakeup pipe; the I/O thread
// drains outboxes into per-connection write buffers and flushes them as
// POLLOUT allows. Responses on one connection may therefore leave in
// completion order, not request order — the protocol's `id` correlates.
//
// Deadline propagation: a request's budget_ms becomes Deadline::After at
// dispatch time, flowing into the same Deadline/CancelToken machinery the
// in-process path uses (expired-in-queue drop, cooperative morsel
// cancellation, graceful rank degradation). Admission control is the
// ConcurrentServer's: past max_queue, AskAsyncInDomain sheds with
// kOverloaded in O(1) and the client gets status "overloaded" — overload
// degrades by shedding, never by unbounded buffering.
//
// Failure containment, per connection:
//   framing violation (zero/oversized frame)  close the connection
//   malformed JSON payload                    error response, stay open
//   peer disconnect with requests in flight   in-flight results are dropped
//                                             at the closed outbox; the
//                                             server and other connections
//                                             are unaffected
#ifndef CQADS_SERVE_NET_NET_SERVER_H_
#define CQADS_SERVE_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/socket_io.h"
#include "common/status.h"
#include "core/cqads_engine.h"
#include "serve/concurrent_server.h"
#include "serve/net/protocol.h"

namespace cqads::serve::net {

// The socket helpers live in cqads::net (common/); inside
// cqads::serve::net the unqualified name `net` means THIS namespace, so
// pull the fd type in explicitly.
using ::cqads::net::Fd;

class NetServer {
 public:
  struct Options {
    /// Unix-domain listener path; empty = none.
    std::string unix_path;
    /// TCP listener; port < 0 = none, 0 = kernel-assigned (read it back
    /// from tcp_port()). Binds loopback by default — fronting a public
    /// interface is a deployment decision, not a default.
    std::string tcp_host = "127.0.0.1";
    int tcp_port = -1;
    /// The wrapped ConcurrentServer (workers, cache, default budget,
    /// admission bound).
    ConcurrentServer::Options serve;
    /// Per-frame payload cap; a frame above it closes the connection.
    std::uint32_t max_frame_bytes = kMaxFrameBytes;
    /// Accepted connections beyond this are closed immediately (fd-table
    /// protection; 0 = unbounded).
    std::size_t max_connections = 1024;
  };

  /// Wire-level counters (relaxed; monotonic except active_connections).
  struct NetStats {
    std::uint64_t accepted = 0;
    std::uint64_t active_connections = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t protocol_errors = 0;   ///< framing violations (closed)
    std::uint64_t bad_requests = 0;      ///< malformed JSON (answered)
    std::uint64_t disconnects = 0;
    std::uint64_t dropped_responses = 0; ///< completed after peer left
  };

  /// Binds the listeners, spawns the I/O thread, and starts serving the
  /// engine's current snapshot (later snapshot swaps are picked up per
  /// request, exactly like in-process serving). The engine must outlive
  /// the returned server. At least one listener must be configured.
  static Result<std::unique_ptr<NetServer>> Start(
      const core::CqadsEngine* engine, Options options);

  /// Stops accepting, closes every connection, and drains the worker pool
  /// (in-flight requests finish; their responses are dropped).
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  void Stop();

  /// The bound TCP port (resolves port 0); 0 when no TCP listener.
  std::uint16_t tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  ConcurrentServer::Stats stats() const { return server_->stats(); }
  std::string StatsJson() const;
  NetStats net_stats() const;

 private:
  struct Conn;

  NetServer(const core::CqadsEngine* engine, Options options);

  Status Bind();
  void Loop();
  void AcceptAll(int listener_fd);
  /// Reads until EAGAIN; returns false when the connection must close.
  bool ReadConn(const std::shared_ptr<Conn>& conn);
  /// Flushes the write buffer until EAGAIN; false when the peer died.
  bool WriteConn(const std::shared_ptr<Conn>& conn);
  void HandleFrame(const std::shared_ptr<Conn>& conn,
                   const std::string& payload);
  /// Queues an encoded response on the connection (thread-safe; drops it
  /// when the connection already closed) and wakes the I/O thread.
  void QueueResponse(const std::shared_ptr<Conn>& conn,
                     const Response& response);
  void CloseConn(int fd);
  void Wake();

  const core::CqadsEngine* engine_;
  Options options_;

  Fd tcp_listener_;
  Fd unix_listener_;
  std::uint16_t tcp_port_ = 0;
  Fd wake_read_;
  Fd wake_write_;

  std::atomic<bool> running_{false};
  std::thread io_thread_;
  /// Owned by the I/O thread between Start and Stop.
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> disconnects_{0};
  std::atomic<std::uint64_t> dropped_responses_{0};

  /// Declared LAST: its destructor drains the worker pool, and the draining
  /// requests' completion callbacks touch the counters, connections, and
  /// wake pipe above — all of which must still be alive at that point.
  std::unique_ptr<ConcurrentServer> server_;
};

}  // namespace cqads::serve::net

#endif  // CQADS_SERVE_NET_NET_SERVER_H_
