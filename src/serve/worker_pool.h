// A fixed-size worker pool with a FIFO task queue. Deliberately minimal:
// the ConcurrentServer fans AskBatch out over it, tests drive it directly,
// and — as a db::exec::TaskRunner — the partition-parallel plan executor
// submits morsel helpers to it (safe to share with the serving fan-out: the
// morsel scheduler's caller participates, so queued-behind-queries helpers
// can never deadlock a batch; see db/exec/morsel.h). Tasks must not throw
// (library code is exception-free across module boundaries; see
// common/status.h).
#ifndef CQADS_SERVE_WORKER_POOL_H_
#define CQADS_SERVE_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "db/exec/morsel.h"

namespace cqads::serve {

class WorkerPool : public db::exec::TaskRunner {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit WorkerPool(std::size_t num_threads);

  /// DRAINS, then joins: every task queued before destruction — including
  /// tasks never started — still RUNS to completion before the workers
  /// exit. That is the contract async serving relies on (a queued request's
  /// completion callback always fires); owners that instead want teardown
  /// without running the backlog call CancelPending() first. Pinned by
  /// DestructorRunsQueuedTasks / CancelPendingSkipsUnstartedTasks.
  ~WorkerPool() override;

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues a task. Safe from any thread, including from inside a task.
  void Submit(std::function<void()> task) override;

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Explicit teardown helper: blocks until the queue is empty AND every
  /// started task finished. Equivalent to Wait(); named separately so
  /// server shutdown paths read as what they are.
  void Drain() { Wait(); }

  /// Drops every queued-but-unstarted task (their callables are destroyed,
  /// never invoked) and returns how many were dropped. Tasks already
  /// executing are unaffected — follow with Drain() for a deterministic
  /// "nothing running, nothing pending" state. Safe from any thread.
  std::size_t CancelPending();

  std::size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace cqads::serve

#endif  // CQADS_SERVE_WORKER_POOL_H_
