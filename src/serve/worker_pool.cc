#include "serve/worker_pool.h"

#include <utility>

#include "common/failpoint.h"

namespace cqads::serve {

WorkerPool::WorkerPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void WorkerPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t WorkerPool::CancelPending() {
  // The dropped callables are destroyed OUTSIDE the lock: a task's captures
  // may run arbitrary destructors (even re-enter Submit), which must not
  // deadlock against the pool mutex.
  std::deque<std::function<void()>> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dropped.swap(queue_);
    in_flight_ -= dropped.size();
    if (in_flight_ == 0) all_done_.notify_all();
  }
  return dropped.size();
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Chaos hook: arm "worker_pool.task" with a delay to simulate slow /
    // descheduled workers (error injection is meaningless here — a worker
    // cannot fail a task it merely runs).
    CQADS_FAILPOINT_HIT("worker_pool.task");
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace cqads::serve
