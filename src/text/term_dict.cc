#include "text/term_dict.h"

#include <cassert>

#include "text/porter_stemmer.h"
#include "text/shorthand.h"
#include "text/stopwords.h"

namespace cqads::text {

TermId TermDict::Intern(std::string_view term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  assert(!frozen_ && "Intern() after Freeze()");

  Entry entry;
  entry.text.assign(term);
  entry.stem = PorterStem(term);
  entry.shorthand_norm = NormalizeForShorthand(term);
  entry.stopword = IsStopword(term);
  entries_.push_back(std::move(entry));

  const TermId id = static_cast<TermId>(entries_.size() - 1);
  index_.emplace(std::string_view(entries_.back().text), id);
  return id;
}

void TermDict::Freeze() {
  if (frozen_) return;
  frozen_ = true;
  // Cross-term links resolve only here, so callers interning a sorted
  // vocabulary get contiguous lexicographic ids — no stem entries spliced
  // in between (the stem of a vocabulary term need not be interned at all).
  for (Entry& entry : entries_) {
    auto it = index_.find(std::string_view(entry.stem));
    entry.stem_id = it == index_.end() ? kInvalidTerm : it->second;
  }
}

TermId TermDict::Find(std::string_view term) const {
  auto it = index_.find(term);
  return it == index_.end() ? kInvalidTerm : it->second;
}

TermId TermDict::FindStemOf(std::string_view word) const {
  // Fast path: the word itself is interned and its stem link is resolved.
  auto it = index_.find(word);
  if (it != index_.end()) {
    const Entry& entry = entries_[it->second];
    if (frozen_) return entry.stem_id;
    return Find(entry.stem);
  }
  return Find(PorterStem(word));
}

std::size_t TermDict::ApproxMemoryBytes() const {
  std::size_t bytes = entries_.size() * sizeof(Entry);
  for (const Entry& e : entries_) {
    bytes += e.text.capacity() + e.stem.capacity() +
             e.shorthand_norm.capacity();
  }
  // unordered_map node + bucket overhead, approximated.
  bytes += index_.size() * (sizeof(void*) * 2 + sizeof(std::string_view) +
                            sizeof(TermId));
  bytes += index_.bucket_count() * sizeof(void*);
  return bytes;
}

}  // namespace cqads::text
