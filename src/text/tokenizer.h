// Question/ad tokenizer. Lower-cases, strips punctuation, keeps money and
// alphanumeric-mix tokens ("$5,000", "20k", "2dr", "c++") intact, and splits
// hyphenated compounds ("4-door" -> "4", "door") so the shorthand matcher and
// trie scanner see a uniform stream.
#ifndef CQADS_TEXT_TOKENIZER_H_
#define CQADS_TEXT_TOKENIZER_H_

#include <string_view>

#include "text/token.h"

namespace cqads::text {

/// Tokenizes `input` into normalized tokens.
///
/// Rules:
///  * ASCII letters/digits form token bodies; '+' and '#' are kept when they
///    terminate a letter run ("c++", "c#") since they occur in job ads.
///  * '$' prefixes mark the token as money and are stripped from the text.
///  * ',' inside digit runs is dropped ("15,000" -> "15000"); '.' inside
///    digit runs is kept ("3.5").
///  * '-' and '/' split tokens ("4-door", "automatic/manual").
///  * Everything else is a separator and is discarded.
TokenList Tokenize(std::string_view input);

/// Reassembles tokens into a canonical single-spaced string (lossy: offsets,
/// money markers and original punctuation are gone). Useful for classifiers
/// and logging.
std::string JoinTokens(const TokenList& tokens);

}  // namespace cqads::text

#endif  // CQADS_TEXT_TOKENIZER_H_
