// Interned-term substrate. A TermDict is an append-during-build,
// frozen-at-snapshot bidirectional mapping between strings and dense
// TermIds, with per-term derived forms cached once at intern time:
//   * the Porter stem (and, after Freeze(), the stem's own TermId when the
//     stem itself is interned),
//   * the stopword flag,
//   * the normalized shorthand form (§4.2.3 canonicalization).
// Consumers that used to re-derive these per call on the hot path
// (WsMatrix::Sim stemming both arguments per candidate row,
// DomainLexicon::FindShorthand normalizing every categorical value per
// probe) resolve once and work id-to-id instead.
//
// Ownership pattern mirrors the rest of the engine (PR 2/3): an EngineBuilder
// (or a matrix Build()) interns into a mutable dict, calls Freeze(), and
// publishes it behind shared_ptr<const TermDict> inside the EngineSnapshot —
// per-domain instances (categorical values and trie keywords) plus the
// shared-corpus instance owned by the WS matrix. Ingest/compaction republish
// fresh copies; readers on old snapshots keep the dict they started with.
//
// Thread-safety: Intern()/Freeze() must be externally serialized; every
// const method is safe from any number of threads once the dict is frozen
// (or, more precisely, once no further Intern() call can run concurrently).
#ifndef CQADS_TEXT_TERM_DICT_H_
#define CQADS_TEXT_TERM_DICT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace cqads::snapshot {
struct SerdeAccess;
}

namespace cqads::text {

/// Dense id of an interned term. Ids are assigned in intern order, so a
/// caller interning a sorted vocabulary gets ids in lexicographic order —
/// the property the CSR matrices rely on for deterministic tie-breaking.
using TermId = std::uint32_t;

/// "Not interned" sentinel.
inline constexpr TermId kInvalidTerm = static_cast<TermId>(-1);

class TermDict {
 public:
  TermDict() = default;

  // Movable, not copyable (owns the entry table; copies would be silent
  // per-request allocations of the exact kind this layer removes).
  TermDict(TermDict&&) = default;
  TermDict& operator=(TermDict&&) = default;
  TermDict(const TermDict&) = delete;
  TermDict& operator=(const TermDict&) = delete;

  /// Interns `term`, returning its id (existing id when already present).
  /// Derived forms are computed once here, never on lookup. Must not be
  /// called after Freeze().
  TermId Intern(std::string_view term);

  /// Resolves cross-term links (each entry's stem_id, when the stem string
  /// is itself interned) and seals the dict against further Intern() calls.
  /// Idempotent.
  void Freeze();

  bool frozen() const { return frozen_; }

  /// Id of `term`, or kInvalidTerm when absent. Never interns.
  TermId Find(std::string_view term) const;

  /// Id of the Porter stem of raw word `word` (the WS-matrix resolve path:
  /// stem the needle once, look it up once). kInvalidTerm when the stem is
  /// not interned.
  TermId FindStemOf(std::string_view word) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  // --- per-term cached forms (id must be < size()) -----------------------
  const std::string& term(TermId id) const { return entries_[id].text; }
  const std::string& stem(TermId id) const { return entries_[id].stem; }
  /// Id of stem(id) when interned (valid only after Freeze()).
  TermId stem_id(TermId id) const { return entries_[id].stem_id; }
  bool is_stopword(TermId id) const { return entries_[id].stopword; }
  /// NormalizeForShorthand(term(id)), cached.
  const std::string& shorthand_norm(TermId id) const {
    return entries_[id].shorthand_norm;
  }

  /// Approximate heap footprint, for the bench footprint claims.
  std::size_t ApproxMemoryBytes() const;

 private:
  /// Snapshot serde restores entries (with their cached derived forms)
  /// directly — no Porter re-stemming at load — then rebuilds index_.
  friend struct cqads::snapshot::SerdeAccess;

  struct Entry {
    std::string text;
    std::string stem;
    std::string shorthand_norm;
    TermId stem_id = kInvalidTerm;
    bool stopword = false;
  };

  /// Deque, not vector: growth must not relocate entries, because index_
  /// keys are views into entries_[i].text (short strings live inline via
  /// SSO, so a moved Entry would dangle its key).
  std::deque<Entry> entries_;
  std::unordered_map<std::string_view, TermId> index_;
  bool frozen_ = false;
};

}  // namespace cqads::text

#endif  // CQADS_TEXT_TERM_DICT_H_
