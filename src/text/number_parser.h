// Numeric-literal interpretation for question tokens. Users write Type III
// values many ways: "$5,000", "5000", "5k", "20K", "3.5", "two" (§4.1). The
// tokenizer already strips '$' (setting a money flag) and thousands commas;
// this parser handles magnitude suffixes and number words.
#ifndef CQADS_TEXT_NUMBER_PARSER_H_
#define CQADS_TEXT_NUMBER_PARSER_H_

#include <optional>
#include <string_view>

#include "text/token.h"

namespace cqads::text {

/// A parsed numeric literal.
struct ParsedNumber {
  double value = 0.0;
  bool is_money = false;      ///< '$' was present
  bool had_magnitude = false;  ///< 'k'/'m' suffix was applied
};

/// Parses a raw string as a number: optional digits with one '.', optional
/// trailing magnitude suffix 'k' (x1000) or 'm' (x1e6), or a small number
/// word ("four"). Returns nullopt when the string is not numeric.
std::optional<ParsedNumber> ParseNumberString(std::string_view s);

/// Parses a token, combining the token's money flag with the literal.
std::optional<ParsedNumber> ParseNumberToken(const Token& token);

}  // namespace cqads::text

#endif  // CQADS_TEXT_NUMBER_PARSER_H_
