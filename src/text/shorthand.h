// Shorthand-notation detection (§4.2.3). The paper's Perl script declares N a
// shorthand of value V when N only uses characters of V in V's order; we add
// number-word normalization ("four" -> "4") so 'four door', '4dr', '4-door',
// '4doors' all unify, and a minimum-coverage guard against degenerate
// one-letter "shorthands".
#ifndef CQADS_TEXT_SHORTHAND_H_
#define CQADS_TEXT_SHORTHAND_H_

#include <string>
#include <string_view>

namespace cqads::text {

/// Canonical form used for shorthand comparison: lower-case, number words
/// mapped to digits, spaces/hyphens/punctuation removed, trailing plural 's'
/// dropped from the final word. "4-Door s" and "four doors" both become
/// "4door".
std::string NormalizeForShorthand(std::string_view s);

/// True iff `a` and `b` denote the same data value under shorthand rules:
/// after normalization, one is an ordered subsequence of the other, they
/// agree on the first character and on every digit, and the shorter covers
/// at least 40% of the longer (rejecting accidental one-letter matches).
bool IsShorthandMatch(std::string_view a, std::string_view b);

/// Prenormalized fast path: `na`/`nb` must be NormalizeForShorthand(a)/(b).
/// The raw forms are still consulted for multi-word initial matching. The
/// column store caches each element's normalized form once, so probes pay
/// normalization only for the needle instead of per dictionary entry.
bool IsShorthandMatchNormalized(std::string_view na, std::string_view a_raw,
                                std::string_view nb, std::string_view b_raw);

/// True iff `needle` (already normalized or raw) is an ordered subsequence
/// of `haystack`. Exposed for tests and for the trie scanner.
bool IsSubsequence(std::string_view needle, std::string_view haystack);

}  // namespace cqads::text

#endif  // CQADS_TEXT_SHORTHAND_H_
