// Porter (1980) suffix-stripping stemmer. The WS-matrix (§4.3.2) stores
// similarities between "non-stop, stemmed words", and negation keywords are
// matched against "their stemmed versions" (§4.4.1 footnote), so the stemmer
// is a genuine substrate of the paper, not a convenience.
#ifndef CQADS_TEXT_PORTER_STEMMER_H_
#define CQADS_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace cqads::text {

/// Returns the Porter stem of a lower-case ASCII word. Words of length <= 2
/// are returned unchanged, per the original algorithm.
std::string PorterStem(std::string_view word);

}  // namespace cqads::text

#endif  // CQADS_TEXT_PORTER_STEMMER_H_
