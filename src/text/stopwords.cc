#include "text/stopwords.h"

#include <string>
#include <unordered_set>

namespace cqads::text {

namespace {

const std::unordered_set<std::string>& StopwordSet() {
  // Function words that never carry selection semantics in an ads question.
  // Operator words (less, more, above, under, between, than, not, no,
  // without, except, or, and, within, ...) are intentionally absent.
  static const std::unordered_set<std::string>* kSet =
      new std::unordered_set<std::string>{
          "a",        "an",       "the",     "i",       "im",      "me",
          "my",       "mine",     "we",      "our",     "us",      "you",
          "your",     "he",       "she",     "it",      "its",     "they",
          "them",     "their",    "this",    "that",    "these",   "those",
          "is",       "am",       "are",     "was",     "were",    "be",
          "been",     "being",    "do",      "does",    "did",     "doing",
          "have",     "has",      "had",     "having",  "will",    "would",
          "shall",    "should",   "can",     "could",   "may",     "might",
          "must",     "want",     "wants",   "wanted",  "need",    "needs",
          "needed",   "like",     "likes",   "liked",   "looking", "look",
          "seeking",  "seek",     "searching", "search", "find",   "finding",
          "show",     "showing",  "give",    "get",     "getting", "buy",
          "buying",   "purchase", "please",  "thanks",  "thank",   "hi",
          "hello",    "hey",      "for",     "of",      "in",      "on",
          "at",       "to",       "from",    "by",      "as",      "into",
          "onto",     "up",       "out",     "if",      "then",    "else",
          "so",       "too",      "very",    "just",    "only",    "any",
          "some",     "all",      "also",    "there",   "here",    "what",
          "which",    "who",      "whom",    "whose",   "when",    "where",
          "how",      "why",      "with",    "about",   "around",  "per",
          "something", "anything", "someone", "anyone", "one",     "ones",
          "kind",     "sort",     "type",    "good",    "nice",    "great",
          "really",   "pretty",   "quite",   "ok",      "okay",    "well",
          "available", "interested", "prefer", "preferably", "ideally",
          "maybe",    "perhaps",  "got",     "gotta",   "wanna",   "lemme",
      };
  return *kSet;
}

}  // namespace

bool IsStopword(std::string_view word) {
  return StopwordSet().count(std::string(word)) > 0;
}

std::size_t StopwordCount() { return StopwordSet().size(); }

}  // namespace cqads::text
