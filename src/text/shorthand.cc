#include "text/shorthand.h"

#include <cctype>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/string_util.h"

namespace cqads::text {

namespace {

const std::unordered_map<std::string, std::string>& NumberWords() {
  static const auto* kMap = new std::unordered_map<std::string, std::string>{
      {"zero", "0"},  {"one", "1"},   {"two", "2"},    {"three", "3"},
      {"four", "4"},  {"five", "5"},  {"six", "6"},    {"seven", "7"},
      {"eight", "8"}, {"nine", "9"},  {"ten", "10"},   {"eleven", "11"},
      {"twelve", "12"},
  };
  return *kMap;
}

}  // namespace

std::string NormalizeForShorthand(std::string_view s) {
  // Split into alpha/digit runs, map number words, drop a plural 's' from the
  // last alphabetic word, then concatenate.
  std::vector<std::string> words;
  std::string cur;
  auto flush = [&]() {
    if (cur.empty()) return;
    auto it = NumberWords().find(cur);
    words.push_back(it != NumberWords().end() ? it->second : cur);
    cur.clear();
  };
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalpha(c)) {
      cur.push_back(static_cast<char>(std::tolower(c)));
    } else if (std::isdigit(c)) {
      cur.push_back(raw);
    } else {
      flush();
    }
  }
  flush();
  if (!words.empty()) {
    std::string& last = words.back();
    if (last.size() > 2 && last.back() == 's' && IsAlpha(last)) {
      last.pop_back();
    }
  }
  std::string out;
  for (const auto& w : words) out += w;
  return out;
}

bool IsSubsequence(std::string_view needle, std::string_view haystack) {
  std::size_t j = 0;
  for (std::size_t i = 0; i < haystack.size() && j < needle.size(); ++i) {
    if (haystack[i] == needle[j]) ++j;
  }
  return j == needle.size();
}

bool IsShorthandMatch(std::string_view a, std::string_view b) {
  return IsShorthandMatchNormalized(NormalizeForShorthand(a), a,
                                    NormalizeForShorthand(b), b);
}

bool IsShorthandMatchNormalized(std::string_view na, std::string_view a_raw,
                                std::string_view nb, std::string_view b_raw) {
  if (na.empty() || nb.empty()) return false;
  if (na == nb) return true;
  const bool a_shorter = na.size() <= nb.size();
  std::string_view shorter = a_shorter ? na : nb;
  std::string_view longer = a_shorter ? nb : na;
  std::string_view longer_raw = a_shorter ? b_raw : a_raw;
  if (shorter.size() < 2) return false;
  if (shorter.front() != longer.front()) return false;
  if (!IsSubsequence(shorter, longer)) return false;
  // Every digit of the longer form must survive in the shorter one
  // ("4dr" keeps the 4 of "4door"; "dr" alone does not qualify).
  std::string digits_long, digits_short;
  for (char c : longer) {
    if (std::isdigit(static_cast<unsigned char>(c))) digits_long.push_back(c);
  }
  for (char c : shorter) {
    if (std::isdigit(static_cast<unsigned char>(c))) digits_short.push_back(c);
  }
  if (digits_long != digits_short) return false;
  // Coverage guard: the shorthand must be a substantial abbreviation.
  if (shorter.size() * 10 < longer.size() * 4) return false;
  if (!digits_long.empty()) return true;
  // Pure-alpha shorthands are held to a stricter standard: arbitrary
  // subsequences would equate "car" with "camry". Either the shorthand is a
  // plain prefix ("auto" ~ "automatic"), or it abbreviates a multi-word
  // value and keeps the first letter of every word ("ps" would need both
  // 'p' and 's' of "power steering").
  if (longer.substr(0, shorter.size()) == shorter) return true;
  std::vector<std::string> words;
  std::string word;
  for (char c : longer_raw) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      word.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!word.empty()) {
      words.push_back(std::move(word));
      word.clear();
    }
  }
  if (!word.empty()) words.push_back(std::move(word));
  if (words.size() < 2) return false;
  std::string initials;
  for (const auto& w : words) initials.push_back(w.front());
  return IsSubsequence(initials, shorter);
}

}  // namespace cqads::text
