// PHP-style similar_text: recursive longest-common-substring similarity.
// §4.2.1 corrects misspelled keywords by comparing them against trie
// alternatives "using the 'similar text' function which calculates their
// similarity based on the number of common characters and their corresponding
// positions", returning a percentage.
#ifndef CQADS_TEXT_SIMILAR_TEXT_H_
#define CQADS_TEXT_SIMILAR_TEXT_H_

#include <string_view>

namespace cqads::text {

/// Number of matching characters found by the recursive longest-common-
/// substring decomposition (the `sim` out-parameter of PHP's similar_text).
std::size_t SimilarTextChars(std::string_view a, std::string_view b);

/// Similarity percentage in [0, 100]: 2 * chars / (|a| + |b|) * 100.
/// Two empty strings are 100% similar.
double SimilarTextPercent(std::string_view a, std::string_view b);

}  // namespace cqads::text

#endif  // CQADS_TEXT_SIMILAR_TEXT_H_
