#include "text/similar_text.h"

#include <cstddef>

namespace cqads::text {

namespace {

// Finds the longest common substring of a and b. On ties, the earliest
// occurrence in a (then b) wins, matching PHP's behaviour.
void LongestCommonSubstring(std::string_view a, std::string_view b,
                            std::size_t* pos_a, std::size_t* pos_b,
                            std::size_t* length) {
  *pos_a = *pos_b = *length = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::size_t k = 0;
      while (i + k < a.size() && j + k < b.size() && a[i + k] == b[j + k]) {
        ++k;
      }
      if (k > *length) {
        *length = k;
        *pos_a = i;
        *pos_b = j;
      }
    }
  }
}

}  // namespace

std::size_t SimilarTextChars(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0;
  std::size_t pa = 0, pb = 0, len = 0;
  LongestCommonSubstring(a, b, &pa, &pb, &len);
  if (len == 0) return 0;
  std::size_t total = len;
  // Recurse on both flanks of the matched block.
  total += SimilarTextChars(a.substr(0, pa), b.substr(0, pb));
  total += SimilarTextChars(a.substr(pa + len), b.substr(pb + len));
  return total;
}

double SimilarTextPercent(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 100.0;
  if (a.empty() || b.empty()) return 0.0;
  const double chars = static_cast<double>(SimilarTextChars(a, b));
  return chars * 2.0 * 100.0 / static_cast<double>(a.size() + b.size());
}

}  // namespace cqads::text
