#include "text/number_parser.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <unordered_map>

namespace cqads::text {

namespace {

const std::unordered_map<std::string, double>& NumberWordValues() {
  static const auto* kMap = new std::unordered_map<std::string, double>{
      {"zero", 0},   {"one", 1},   {"two", 2},   {"three", 3},
      {"four", 4},   {"five", 5},  {"six", 6},   {"seven", 7},
      {"eight", 8},  {"nine", 9},  {"ten", 10},  {"eleven", 11},
      {"twelve", 12}, {"twenty", 20}, {"thirty", 30}, {"forty", 40},
      {"fifty", 50}, {"hundred", 100}, {"thousand", 1000},
  };
  return *kMap;
}

}  // namespace

std::optional<ParsedNumber> ParseNumberString(std::string_view s) {
  if (s.empty()) return std::nullopt;

  // Number words.
  auto it = NumberWordValues().find(std::string(s));
  if (it != NumberWordValues().end()) {
    ParsedNumber out;
    out.value = it->second;
    return out;
  }

  // Digits with at most one decimal point, optionally ending in k/m.
  std::size_t end = s.size();
  double magnitude = 1.0;
  bool had_magnitude = false;
  char last = static_cast<char>(
      std::tolower(static_cast<unsigned char>(s[end - 1])));
  if (last == 'k') {
    magnitude = 1e3;
    had_magnitude = true;
    --end;
  } else if (last == 'm') {
    magnitude = 1e6;
    had_magnitude = true;
    --end;
  }
  if (end == 0) return std::nullopt;

  bool seen_dot = false;
  for (std::size_t i = 0; i < end; ++i) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    if (c == '.') {
      if (seen_dot) return std::nullopt;
      seen_dot = true;
    } else if (!std::isdigit(c)) {
      return std::nullopt;
    }
  }

  ParsedNumber out;
  out.value = std::strtod(std::string(s.substr(0, end)).c_str(), nullptr) *
              magnitude;
  out.had_magnitude = had_magnitude;
  return out;
}

std::optional<ParsedNumber> ParseNumberToken(const Token& token) {
  auto parsed = ParseNumberString(token.text);
  if (!parsed) return std::nullopt;
  parsed->is_money = token.has_dollar;
  return parsed;
}

}  // namespace cqads::text
