#include "text/tokenizer.h"

#include <cctype>

namespace cqads::text {

namespace {

inline bool IsAlphaByte(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0;
}
inline bool IsDigitByte(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}
inline char LowerByte(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

TokenKind ClassifyBody(const std::string& body) {
  bool any_alpha = false;
  bool any_digit = false;
  for (char c : body) {
    if (IsAlphaByte(c)) any_alpha = true;
    if (IsDigitByte(c)) any_digit = true;
  }
  if (any_alpha && any_digit) return TokenKind::kMixed;
  if (any_digit) return TokenKind::kNumber;
  return TokenKind::kWord;
}

}  // namespace

TokenList Tokenize(std::string_view input) {
  TokenList out;
  std::size_t i = 0;
  const std::size_t n = input.size();
  while (i < n) {
    char c = input[i];
    bool money = false;
    if (c == '$') {
      // '$' starts a money token only if digits follow; otherwise skip it.
      if (i + 1 < n && IsDigitByte(input[i + 1])) {
        money = true;
        ++i;
      } else {
        ++i;
        continue;
      }
    } else if (!IsAlphaByte(c) && !IsDigitByte(c)) {
      ++i;
      continue;
    }

    const std::size_t start = i;
    std::string body;
    while (i < n) {
      char b = input[i];
      if (IsAlphaByte(b)) {
        body.push_back(LowerByte(b));
        ++i;
      } else if (IsDigitByte(b)) {
        body.push_back(b);
        ++i;
      } else if (b == ',' && i > start && IsDigitByte(input[i - 1]) &&
                 i + 1 < n && IsDigitByte(input[i + 1])) {
        ++i;  // thousands separator inside a digit run: drop
      } else if (b == '.' && i > start && IsDigitByte(input[i - 1]) &&
                 i + 1 < n && IsDigitByte(input[i + 1])) {
        body.push_back('.');
        ++i;
      } else if ((b == '+' || b == '#') && i > start &&
                 IsAlphaByte(input[i - 1])) {
        // "c++" / "c#": consume the suffix run and stop the token.
        while (i < n && (input[i] == '+' || input[i] == '#')) {
          body.push_back(input[i]);
          ++i;
        }
        break;
      } else {
        break;  // '-', '/', space, and all other bytes terminate the token
      }
    }
    if (body.empty()) continue;
    Token tok;
    tok.text = std::move(body);
    tok.kind = money ? TokenKind::kNumber : ClassifyBody(tok.text);
    if (money && tok.kind != TokenKind::kNumber) tok.kind = TokenKind::kMixed;
    tok.offset = money ? start - 1 : start;
    tok.has_dollar = money;
    out.push_back(std::move(tok));
  }
  return out;
}

std::string JoinTokens(const TokenList& tokens) {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += tokens[i].text;
  }
  return out;
}

}  // namespace cqads::text
