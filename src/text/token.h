// Token model shared by the tokenizer, the trie scanner, and the tagger.
#ifndef CQADS_TEXT_TOKEN_H_
#define CQADS_TEXT_TOKEN_H_

#include <string>
#include <vector>

namespace cqads::text {

/// Lexical category assigned by the tokenizer.
enum class TokenKind {
  kWord,    ///< alphabetic run ("honda", "cheapest")
  kNumber,  ///< numeric literal, possibly with $, commas, k-suffix ("$5,000")
  kMixed,   ///< alphanumeric mix that is neither ("2dr", "4x4", "c++")
  kPunct,   ///< punctuation that survives tokenization (currently none)
};

/// A single lexical unit of a question or an ad, with provenance.
struct Token {
  std::string text;        ///< normalized (lower-cased) surface form
  TokenKind kind = TokenKind::kWord;
  std::size_t offset = 0;  ///< byte offset of the token in the source string
  bool has_dollar = false;  ///< literal began with '$' (money cue)

  bool operator==(const Token& other) const {
    return text == other.text && kind == other.kind &&
           offset == other.offset && has_dollar == other.has_dollar;
  }
};

using TokenList = std::vector<Token>;

}  // namespace cqads::text

#endif  // CQADS_TEXT_TOKEN_H_
