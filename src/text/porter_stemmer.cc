#include "text/porter_stemmer.h"

#include <cstddef>

namespace cqads::text {

namespace {

// The implementation follows M.F. Porter, "An algorithm for suffix
// stripping", Program 14(3), 1980, with the standard step structure
// (1a, 1b, 1c, 2, 3, 4, 5a, 5b).

bool IsVowelAt(const std::string& w, std::size_t i) {
  switch (w[i]) {
    case 'a':
    case 'e':
    case 'i':
    case 'o':
    case 'u':
      return true;
    case 'y':
      // 'y' is a vowel when preceded by a consonant.
      return i > 0 && !IsVowelAt(w, i - 1);
    default:
      return false;
  }
}

// Measure m of the word prefix w[0..end): number of VC sequences.
int Measure(const std::string& w, std::size_t end) {
  int m = 0;
  bool in_vowel_run = false;
  for (std::size_t i = 0; i < end; ++i) {
    bool v = IsVowelAt(w, i);
    if (v) {
      in_vowel_run = true;
    } else if (in_vowel_run) {
      ++m;
      in_vowel_run = false;
    }
  }
  return m;
}

bool ContainsVowel(const std::string& w, std::size_t end) {
  for (std::size_t i = 0; i < end; ++i) {
    if (IsVowelAt(w, i)) return true;
  }
  return false;
}

bool EndsWithDoubleConsonant(const std::string& w) {
  std::size_t n = w.size();
  if (n < 2) return false;
  if (w[n - 1] != w[n - 2]) return false;
  return !IsVowelAt(w, n - 1);
}

// *o condition: stem ends cvc where the final c is not w, x, or y.
bool EndsCvc(const std::string& w) {
  std::size_t n = w.size();
  if (n < 3) return false;
  if (IsVowelAt(w, n - 3) || !IsVowelAt(w, n - 2) || IsVowelAt(w, n - 1)) {
    return false;
  }
  char c = w[n - 1];
  return c != 'w' && c != 'x' && c != 'y';
}

bool HasSuffix(const std::string& w, const char* suffix, std::size_t* stem_len) {
  std::size_t slen = 0;
  while (suffix[slen] != '\0') ++slen;
  if (w.size() < slen) return false;
  if (w.compare(w.size() - slen, slen, suffix) != 0) return false;
  *stem_len = w.size() - slen;
  return true;
}

// Replaces suffix when the measure of the stem meets min_m.
bool ReplaceIfMeasure(std::string* w, const char* suffix, const char* repl,
                      int min_m) {
  std::size_t stem_len = 0;
  if (!HasSuffix(*w, suffix, &stem_len)) return false;
  if (Measure(*w, stem_len) > min_m - 1) {
    w->resize(stem_len);
    w->append(repl);
  }
  return true;  // suffix matched (even if the rule did not fire)
}

void Step1a(std::string* w) {
  std::size_t stem = 0;
  if (HasSuffix(*w, "sses", &stem)) {
    w->resize(stem + 2);  // sses -> ss
  } else if (HasSuffix(*w, "ies", &stem)) {
    w->resize(stem + 1);  // ies -> i
  } else if (HasSuffix(*w, "ss", &stem)) {
    // keep
  } else if (HasSuffix(*w, "s", &stem)) {
    w->resize(stem);  // s ->
  }
}

void Step1b(std::string* w) {
  std::size_t stem = 0;
  if (HasSuffix(*w, "eed", &stem)) {
    if (Measure(*w, stem) > 0) w->resize(stem + 2);  // eed -> ee
    return;
  }
  bool fired = false;
  if (HasSuffix(*w, "ed", &stem) && ContainsVowel(*w, stem)) {
    w->resize(stem);
    fired = true;
  } else if (HasSuffix(*w, "ing", &stem) && ContainsVowel(*w, stem)) {
    w->resize(stem);
    fired = true;
  }
  if (!fired) return;
  std::size_t s2 = 0;
  if (HasSuffix(*w, "at", &s2) || HasSuffix(*w, "bl", &s2) ||
      HasSuffix(*w, "iz", &s2)) {
    w->push_back('e');
  } else if (EndsWithDoubleConsonant(*w)) {
    char last = w->back();
    if (last != 'l' && last != 's' && last != 'z') w->pop_back();
  } else if (Measure(*w, w->size()) == 1 && EndsCvc(*w)) {
    w->push_back('e');
  }
}

void Step1c(std::string* w) {
  std::size_t stem = 0;
  if (HasSuffix(*w, "y", &stem) && ContainsVowel(*w, stem)) {
    (*w)[stem] = 'i';
  }
}

void Step2(std::string* w) {
  static const struct { const char* from; const char* to; } kRules[] = {
      {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
      {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
      {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
      {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
      {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
      {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
      {"iviti", "ive"},   {"biliti", "ble"},
  };
  for (const auto& r : kRules) {
    if (ReplaceIfMeasure(w, r.from, r.to, 1)) return;
  }
}

void Step3(std::string* w) {
  static const struct { const char* from; const char* to; } kRules[] = {
      {"icate", "ic"}, {"ative", ""},  {"alize", "al"}, {"iciti", "ic"},
      {"ical", "ic"},  {"ful", ""},    {"ness", ""},
  };
  for (const auto& r : kRules) {
    if (ReplaceIfMeasure(w, r.from, r.to, 1)) return;
  }
}

void Step4(std::string* w) {
  static const char* kSuffixes[] = {
      "al",   "ance", "ence", "er",   "ic",   "able", "ible", "ant",
      "ement", "ment", "ent",  "ou",   "ism",  "ate",  "iti",  "ous",
      "ive",  "ize",
  };
  for (const char* s : kSuffixes) {
    std::size_t stem = 0;
    if (HasSuffix(*w, s, &stem)) {
      if (Measure(*w, stem) > 1) w->resize(stem);
      return;
    }
  }
  // (m>1 and (*S or *T)) ION ->
  std::size_t stem = 0;
  if (HasSuffix(*w, "ion", &stem) && stem > 0 &&
      ((*w)[stem - 1] == 's' || (*w)[stem - 1] == 't') &&
      Measure(*w, stem) > 1) {
    w->resize(stem);
  }
}

void Step5a(std::string* w) {
  std::size_t stem = 0;
  if (!HasSuffix(*w, "e", &stem)) return;
  int m = Measure(*w, stem);
  if (m > 1) {
    w->resize(stem);
  } else if (m == 1) {
    std::string candidate = w->substr(0, stem);
    if (!EndsCvc(candidate)) w->resize(stem);
  }
}

void Step5b(std::string* w) {
  if (EndsWithDoubleConsonant(*w) && w->back() == 'l' &&
      Measure(*w, w->size()) > 1) {
    w->pop_back();
  }
}

}  // namespace

std::string PorterStem(std::string_view word) {
  std::string w(word);
  if (w.size() <= 2) return w;
  Step1a(&w);
  Step1b(&w);
  Step1c(&w);
  Step2(&w);
  Step3(&w);
  Step4(&w);
  Step5a(&w);
  Step5b(&w);
  return w;
}

}  // namespace cqads::text
