// Stopword list used when simplifying questions (§4.1.4: CQAds eliminates
// non-essential keywords before tagging). The list deliberately EXCLUDES
// every word with operator meaning in Table 1 (less, more, above, under,
// between, not, no, without, except, or, and, than, ...), since those carry
// the Boolean/boundary semantics of the question.
#ifndef CQADS_TEXT_STOPWORDS_H_
#define CQADS_TEXT_STOPWORDS_H_

#include <string_view>

namespace cqads::text {

/// True if `word` (already lower-cased) is a discardable function word.
bool IsStopword(std::string_view word);

/// Number of entries in the built-in stopword list (for tests).
std::size_t StopwordCount();

}  // namespace cqads::text

#endif  // CQADS_TEXT_STOPWORDS_H_
