// Appraiser model: the stand-in for the paper's Facebook appraisers (§5.4,
// §5.5). A simulated appraiser judges a record related to a question when it
// satisfies the question's intent, or misses exactly one intent unit by a
// semantically *close* value:
//   identity  -> same latent market segment (Camry ~ Accord),
//   Type II   -> same related value group (black ~ grey),
//   Type III  -> within a fraction of the attribute's value range.
// Per-appraiser noise flips judgements occasionally; the CS-jobs domain gets
// extra noise (the paper observed appraisers there ranked by personal
// expertise rather than question similarity).
#ifndef CQADS_EVAL_APPRAISER_H_
#define CQADS_EVAL_APPRAISER_H_

#include "common/rng.h"
#include "datagen/domain_spec.h"
#include "datagen/question_gen.h"
#include "db/table.h"

namespace cqads::eval {

struct AppraiserOptions {
  double noise = 0.06;             ///< judgement flip probability
  double type3_close_frac = 0.12;   ///< |v-t| <= frac*(max-min) counts close
};

class Appraiser {
 public:
  Appraiser(const datagen::DomainSpec* spec, const db::Table* table,
            AppraiserOptions options)
      : spec_(spec), table_(table), options_(options) {}

  /// Noise-free ground-truth relatedness.
  bool IsRelatedTruth(const datagen::GeneratedQuestion& q,
                      db::RowId row) const;

  /// One simulated appraiser response (ground truth + noise flip).
  bool Judge(const datagen::GeneratedQuestion& q, db::RowId row,
             Rng* rng) const {
    bool truth = IsRelatedTruth(q, row);
    return rng->Bernoulli(options_.noise) ? !truth : truth;
  }

 private:
  bool UnitSatisfied(const datagen::IntentUnit& unit, db::RowId row) const;
  bool UnitClose(const datagen::IntentUnit& unit, db::RowId row) const;

  const datagen::DomainSpec* spec_;
  const db::Table* table_;
  AppraiserOptions options_;
};

}  // namespace cqads::eval

#endif  // CQADS_EVAL_APPRAISER_H_
