#include "eval/appraiser.h"

#include <algorithm>
#include <cmath>

namespace cqads::eval {

namespace {

bool CellHasValue(const db::Table& table, db::RowId row, std::size_t attr,
                  const std::string& value) {
  for (const auto& e : table.CellElements(row, attr)) {
    if (e == value) return true;
  }
  return false;
}

}  // namespace

bool Appraiser::UnitSatisfied(const datagen::IntentUnit& unit,
                              db::RowId row) const {
  bool inner = false;
  switch (unit.kind) {
    case datagen::IntentUnit::Kind::kIdentity: {
      inner = true;
      for (const auto& [attr, value] : unit.identity) {
        if (!CellHasValue(*table_, row, attr, value)) {
          inner = false;
          break;
        }
      }
      break;
    }
    case datagen::IntentUnit::Kind::kTypeII: {
      for (const auto& v : unit.values) {
        if (CellHasValue(*table_, row, unit.attr, v)) {
          inner = true;
          break;
        }
      }
      break;
    }
    case datagen::IntentUnit::Kind::kTypeIII: {
      const db::Value& cell = table_->cell(row, unit.attr);
      if (!cell.is_numeric()) break;
      double v = cell.AsDouble();
      switch (unit.op) {
        case db::CompareOp::kLt:
          inner = v < unit.lo;
          break;
        case db::CompareOp::kLe:
          inner = v <= unit.lo;
          break;
        case db::CompareOp::kGt:
          inner = v > unit.lo;
          break;
        case db::CompareOp::kGe:
          inner = v >= unit.lo;
          break;
        case db::CompareOp::kBetween:
          inner = v >= unit.lo && v <= unit.hi;
          break;
        case db::CompareOp::kEq:
          inner = v == unit.lo;
          break;
        default:
          inner = false;
      }
      break;
    }
  }
  return unit.negated ? !inner : inner;
}

bool Appraiser::UnitClose(const datagen::IntentUnit& unit,
                          db::RowId row) const {
  if (unit.negated) return false;  // no partial credit on exclusions
  switch (unit.kind) {
    case datagen::IntentUnit::Kind::kIdentity: {
      // Same latent market segment?
      std::vector<std::string> record_identity;
      for (std::size_t a : spec_->type_i_attrs) {
        const db::Value& v = table_->cell(row, a);
        if (v.is_text()) record_identity.push_back(v.text());
      }
      int record_cluster = spec_->ClusterOf(record_identity);
      return record_cluster >= 0 && record_cluster == unit.cluster;
    }
    case datagen::IntentUnit::Kind::kTypeII: {
      for (const auto& e : table_->CellElements(row, unit.attr)) {
        int record_group = spec_->GroupOf(unit.attr, e);
        if (record_group < 0) continue;
        for (int g : unit.groups) {
          if (g == record_group) return true;
        }
      }
      return false;
    }
    case datagen::IntentUnit::Kind::kTypeIII: {
      const db::Value& cell = table_->cell(row, unit.attr);
      if (!cell.is_numeric()) return false;
      auto it = spec_->numerics.find(unit.attr);
      if (it == spec_->numerics.end()) return false;
      double span = it->second.max - it->second.min;
      double target = unit.op == db::CompareOp::kBetween
                          ? (unit.lo + unit.hi) / 2.0
                          : unit.lo;
      return std::abs(cell.AsDouble() - target) <=
             options_.type3_close_frac * span;
    }
  }
  return false;
}

bool Appraiser::IsRelatedTruth(const datagen::GeneratedQuestion& q,
                               db::RowId row) const {
  for (const auto& segment : q.segments) {
    std::size_t unsatisfied = 0;
    bool unsat_close = true;
    for (const auto& unit : segment) {
      if (UnitSatisfied(unit, row)) continue;
      ++unsatisfied;
      if (unsatisfied > 1) break;
      unsat_close = UnitClose(unit, row);
    }
    if (unsatisfied == 0) return true;
    if (unsatisfied == 1 && unsat_close) return true;
  }
  return false;
}

}  // namespace cqads::eval
