#include "eval/experiments.h"

#include <algorithm>
#include <chrono>

#include "baselines/aimq_ranker.h"
#include "baselines/cosine_ranker.h"
#include "baselines/cqads_ranker.h"
#include "baselines/faqfinder_ranker.h"
#include "baselines/random_ranker.h"
#include "db/executor.h"
#include "eval/metrics.h"

namespace cqads::eval {

namespace {

using datagen::GeneratedQuestion;

std::string NormalizeExprNode(const db::Schema& schema, const db::Expr& expr);

/// A predicate contributes one comparison string — except BETWEEN, which
/// canonicalizes to its two bounds so "price BETWEEN a AND b" and
/// "price >= a AND price <= b" normalize identically.
void PredicateParts(const db::Schema& schema, const db::Predicate& p,
                    std::vector<std::string>* parts) {
  const std::string& name = schema.attribute(p.attr).name;
  if (p.op == db::CompareOp::kBetween) {
    parts->push_back(name + ">=" + p.value.AsText());
    parts->push_back(name + "<=" + p.value_hi.AsText());
    return;
  }
  std::string rhs = p.value.is_text() ? "'" + p.value.AsText() + "'"
                                      : p.value.AsText();
  parts->push_back(name + db::CompareOpToSql(p.op) + rhs);
}

std::string NormalizeExprNode(const db::Schema& schema, const db::Expr& expr) {
  switch (expr.kind()) {
    case db::Expr::Kind::kPredicate: {
      std::vector<std::string> parts;
      PredicateParts(schema, expr.predicate(), &parts);
      if (parts.size() == 1) return parts[0];
      std::sort(parts.begin(), parts.end());
      return "AND[" + parts[0] + "," + parts[1] + "]";
    }
    case db::Expr::Kind::kNot:
      return "NOT(" + NormalizeExprNode(schema, *expr.children()[0]) + ")";
    case db::Expr::Kind::kAnd:
    case db::Expr::Kind::kOr: {
      const bool is_and = expr.kind() == db::Expr::Kind::kAnd;
      // Flatten nested nodes of the same kind, normalize, sort. Inside an
      // AND, a BETWEEN predicate flattens into its two bounds.
      std::vector<std::string> parts;
      std::vector<const db::Expr*> stack;
      for (const auto& c : expr.children()) stack.push_back(c.get());
      while (!stack.empty()) {
        const db::Expr* node = stack.back();
        stack.pop_back();
        if (node->kind() == expr.kind()) {
          for (const auto& c : node->children()) stack.push_back(c.get());
        } else if (is_and &&
                   node->kind() == db::Expr::Kind::kPredicate &&
                   node->predicate().op == db::CompareOp::kBetween) {
          PredicateParts(schema, node->predicate(), &parts);
        } else {
          parts.push_back(NormalizeExprNode(schema, *node));
        }
      }
      std::sort(parts.begin(), parts.end());
      std::string out = is_and ? "AND[" : "OR[";
      for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += ",";
        out += parts[i];
      }
      out += "]";
      return out;
    }
  }
  return "";
}

/// Candidate pool for ranking: records satisfying at least one condition
/// unit (the paper's footnote 4 — when exact matching fails, the generated
/// SQL's ANDs are replaced by ORs), minus the exact matches. All five
/// rankers order the same pool.
std::vector<db::RowId> PartialCandidates(
    const db::Executor& executor, const core::AssembledQuery& assembled,
    std::size_t table_rows) {
  std::vector<bool> exact(table_rows, false);
  {
    db::Query q;
    q.where = assembled.where;
    q.limit = table_rows;
    auto res = executor.Execute(q);
    if (res.ok()) {
      for (db::RowId r : res.value().rows) exact[r] = true;
    }
  }

  std::vector<db::ExprPtr> alternatives;
  for (const auto& u : assembled.units) alternatives.push_back(u.expr);
  db::Query q;
  q.where = alternatives.empty() ? nullptr
                                 : db::Expr::MakeOr(std::move(alternatives));
  q.limit = table_rows;
  auto res = executor.Execute(q);

  std::vector<db::RowId> out;
  if (res.ok()) {
    for (db::RowId r : res.value().rows) {
      if (!exact[r]) out.push_back(r);
    }
  }
  return out;
}

AppraiserOptions AppraiserOptionsFor(const std::string& domain) {
  AppraiserOptions opts;
  // §5.5.3: CS-jobs appraisers judged by personal expertise, not question
  // similarity — modelled as extra judgement noise.
  if (domain == "cs_jobs") opts.noise = 0.30;
  return opts;
}

}  // namespace

std::string NormalizeInterpretation(const db::Schema& schema,
                                    const db::ExprPtr& expr) {
  if (!expr) return "";
  return NormalizeExprNode(schema, *expr);
}

std::map<std::string, std::vector<GeneratedQuestion>> GenerateSurveyQuestions(
    const datagen::World& world, std::size_t car_count,
    std::size_t per_other_domain, std::uint64_t seed) {
  std::map<std::string, std::vector<GeneratedQuestion>> out;
  Rng rng(seed);
  datagen::QuestionGenOptions opts;
  for (const auto& domain : world.domains()) {
    const datagen::DomainSpec* spec = world.spec(domain);
    const db::Table* table = world.table(domain);
    if (spec == nullptr || table == nullptr) continue;
    Rng domain_rng = rng.Fork();
    const std::size_t n = domain == "cars" ? car_count : per_other_domain;
    out[domain] =
        datagen::GenerateQuestions(*spec, *table, n, opts, &domain_rng);
  }
  return out;
}

ClassificationResult RunClassification(
    const datagen::World& world,
    const std::map<std::string, std::vector<GeneratedQuestion>>& questions,
    classify::QuestionClassifier::Model model) {
  ClassificationResult out;

  // Pin the snapshot so the classifier reference stays valid even if the
  // engine were retrained concurrently.
  core::EngineSnapshot::Ptr snap = world.engine().snapshot();
  const classify::QuestionClassifier* clf = &snap->classifier();
  classify::QuestionClassifier alt;
  if (model != classify::QuestionClassifier::Model::kJBBSM) {
    classify::QuestionClassifier::Options opts;
    opts.model = model;
    alt = classify::QuestionClassifier(opts);
    if (!alt.Train(world.engine().MakeTrainingDocs()).ok()) return out;
    clf = &alt;
  }

  MeanAccumulator overall;
  for (const auto& [domain, qs] : questions) {
    MeanAccumulator acc;
    for (const auto& q : qs) {
      const bool correct = clf->Classify(q.text) == domain;
      acc.Add(correct ? 1.0 : 0.0);
      overall.Add(correct ? 1.0 : 0.0);
    }
    out.per_domain_accuracy[domain] = acc.Mean();
    out.total_questions += qs.size();
  }
  out.average_accuracy = overall.Mean();
  return out;
}

ExactMatchResult RunExactMatch(
    const datagen::World& world,
    const std::map<std::string, std::vector<GeneratedQuestion>>& questions) {
  ExactMatchResult out;
  MeanAccumulator p_acc, r_acc, f_acc;

  for (const auto& [domain, qs] : questions) {
    const db::Table* table = world.table(domain);
    if (table == nullptr) continue;
    db::Executor executor(table);

    for (const auto& q : qs) {
      // Ground truth: the oracle query (unlimited unless superlative, whose
      // semantics are inherently top-k).
      db::Query oracle = q.oracle;
      if (!oracle.superlative) oracle.limit = table->num_rows();
      auto truth = executor.Execute(oracle);
      if (!truth.ok()) continue;
      std::vector<unsigned> relevant(truth.value().rows.begin(),
                                     truth.value().rows.end());
      std::sort(relevant.begin(), relevant.end());
      if (relevant.empty()) continue;  // unanswerable question: skip

      auto asked = world.engine().AskInDomain(domain, q.text);
      std::vector<unsigned> retrieved;
      if (asked.ok()) {
        for (const auto& a : asked.value().answers) {
          if (a.exact) retrieved.push_back(a.row);
        }
      }
      std::sort(retrieved.begin(), retrieved.end());

      PrecisionRecall prf = ComputePRF(retrieved, relevant, 30);
      p_acc.Add(prf.precision);
      r_acc.Add(prf.recall);
      f_acc.Add(prf.f1);
      ++out.questions_evaluated;
      if (prf.f1 == 0.0 || prf.f1 == 1.0) ++out.all_or_nothing;
    }
  }
  out.precision = p_acc.Mean();
  out.recall = r_acc.Mean();
  // The paper reports the F-measure of the averaged precision/recall.
  out.f_measure = (out.precision + out.recall) == 0.0
                      ? 0.0
                      : 2.0 * out.precision * out.recall /
                            (out.precision + out.recall);
  return out;
}

BooleanInterpretationResult RunBooleanInterpretation(
    const datagen::World& world, const std::string& domain,
    std::size_t num_questions, std::size_t sampled_questions,
    std::size_t responses_per_question, std::uint64_t seed) {
  BooleanInterpretationResult out;
  const datagen::DomainSpec* spec = world.spec(domain);
  const db::Table* table = world.table(domain);
  if (spec == nullptr || table == nullptr) return out;

  Rng rng(seed);
  datagen::QuestionGenOptions opts;
  opts.p_boolean = 1.0;
  opts.p_misspell = 0.0;
  opts.p_missing_space = 0.0;
  opts.p_shorthand = 0.0;
  opts.p_incomplete = 0.0;
  opts.p_superlative = 0.0;
  auto questions =
      datagen::GenerateQuestions(*spec, *table, num_questions, opts, &rng);

  struct Audited {
    const GeneratedQuestion* q;
    bool matches;
    std::string cqads_norm;
    std::string intent_norm;
    std::string cqads_interp;
  };
  std::vector<Audited> audited;
  MeanAccumulator implicit_acc, explicit_acc, overall_acc;
  for (const auto& q : questions) {
    auto parsed = world.engine().Parse(domain, q.text);
    if (!parsed.ok()) continue;
    std::string cqads_norm = NormalizeInterpretation(
        table->schema(), parsed.value().assembled.where);
    std::string intent_norm =
        NormalizeInterpretation(table->schema(), q.oracle.where);
    bool match = cqads_norm == intent_norm;
    overall_acc.Add(match ? 1.0 : 0.0);
    if (q.is_explicit_boolean) {
      explicit_acc.Add(match ? 1.0 : 0.0);
      ++out.explicit_count;
    } else {
      implicit_acc.Add(match ? 1.0 : 0.0);
      ++out.implicit_count;
    }
    audited.push_back({&q, match, cqads_norm, intent_norm,
                       parsed.value().assembled.interpretation});
  }
  out.overall_accuracy = overall_acc.Mean();
  out.implicit_accuracy = implicit_acc.Mean();
  out.explicit_accuracy = explicit_acc.Mean();

  // Boolean survey simulation: sample questions (explicit-heavy, like the
  // paper's 7/3 split) and draw appraiser votes.
  std::vector<const Audited*> pool_explicit, pool_implicit;
  for (const auto& a : audited) {
    (a.q->is_explicit_boolean ? pool_explicit : pool_implicit).push_back(&a);
  }
  const std::size_t want_explicit = sampled_questions * 7 / 10;
  std::vector<const Audited*> sampled;
  for (std::size_t i = 0;
       i < pool_explicit.size() && sampled.size() < want_explicit; ++i) {
    sampled.push_back(pool_explicit[i]);
  }
  for (std::size_t i = 0;
       i < pool_implicit.size() && sampled.size() < sampled_questions; ++i) {
    sampled.push_back(pool_implicit[i]);
  }

  for (const Audited* a : sampled) {
    // Agreement model: appraisers usually endorse a correct rule-based
    // reading; the paper's dissent modes lower agreement for
    // mutually-exclusive conjunctions (Q3/Q8: 22% read "black silver" as
    // both-colors) and for negation scope across OR (Q10: 29% distribute
    // the exclusion).
    double agree = a->matches ? 0.96 : 0.30;
    bool has_mutex = false;
    for (const auto& seg : a->q->segments) {
      for (const auto& u : seg) {
        if (u.kind == datagen::IntentUnit::Kind::kTypeII &&
            u.values.size() > 1) {
          has_mutex = true;
        }
      }
    }
    if (has_mutex) agree -= 0.18;
    if (a->q->has_negation && a->q->segments.size() > 1) agree -= 0.25;
    agree = std::clamp(agree, 0.0, 1.0);

    std::size_t votes = 0;
    for (std::size_t r = 0; r < responses_per_question; ++r) {
      if (rng.Bernoulli(agree)) ++votes;
    }
    BooleanInterpretationResult::Sampled s;
    s.text = a->q->text;
    s.implicit = !a->q->is_explicit_boolean;
    s.cqads_interpretation = a->cqads_interp;
    s.intended_interpretation = a->q->oracle_interpretation;
    s.appraiser_agreement =
        static_cast<double>(votes) /
        static_cast<double>(std::max<std::size_t>(1, responses_per_question));
    out.sampled.push_back(std::move(s));
  }
  return out;
}

RankingResult RunRanking(const datagen::World& world,
                         std::size_t questions_per_domain,
                         std::size_t responses_per_question,
                         std::uint64_t seed) {
  RankingResult out;
  Rng rng(seed);

  struct PerRanker {
    MeanAccumulator p1, p5, mrr;
  };
  std::map<std::string, PerRanker> totals;
  std::map<std::string, PerRanker> cqads_by_domain;

  for (const auto& domain : world.domains()) {
    const datagen::DomainSpec* spec = world.spec(domain);
    const db::Table* table = world.table(domain);
    const core::DomainRuntime* rt = world.engine().runtime(domain);
    if (spec == nullptr || table == nullptr || rt == nullptr) continue;

    // Simple multi-condition questions (the ranking survey used plain
    // questions from the first two surveys).
    datagen::QuestionGenOptions opts;
    opts.p_boolean = 0.0;
    opts.p_superlative = 0.0;
    opts.p_incomplete = 0.0;
    opts.p_misspell = 0.0;
    opts.p_missing_space = 0.0;
    opts.p_shorthand = 0.0;
    opts.p_partial_identity = 0.0;
    opts.max_type_ii = 2;
    Rng qrng = rng.Fork();
    auto candidates_questions = datagen::GenerateQuestions(
        *spec, *table, questions_per_domain * 8, opts, &qrng);

    core::SimilarityContext ctx;
    ctx.ti = rt->ti_matrix.get();
    ctx.ws = &world.ws_matrix();
    ctx.attr_ranges = rt->attr_ranges;

    baselines::CqadsRanker cqads_ranker(&ctx);
    baselines::AimqRanker aimq_ranker(table);
    baselines::CosineRanker cosine_ranker;
    baselines::FaqFinderRanker faq_ranker(table);
    baselines::RandomRanker random_ranker(rng.Fork().engine()());
    std::vector<baselines::Ranker*> rankers = {
        &cqads_ranker, &aimq_ranker, &cosine_ranker, &faq_ranker,
        &random_ranker};

    Appraiser appraiser(spec, table, AppraiserOptionsFor(domain));
    db::Executor executor(table);

    std::size_t used = 0;
    for (const auto& q : candidates_questions) {
      if (used >= questions_per_domain) break;
      if (q.is_incomplete) continue;  // bare-number equality questions
      auto parsed = world.engine().Parse(domain, q.text);
      if (!parsed.ok()) continue;
      const auto& assembled = parsed.value().assembled;
      if (assembled.units.size() < 2) continue;
      auto pool = PartialCandidates(executor, assembled, table->num_rows());
      if (pool.size() < 10) continue;
      // A ranking experiment needs something rankable: require at least one
      // ground-truth-related candidate in the pool (judged by the noise-free
      // appraiser truth, identically for all rankers).
      bool any_related = false;
      for (db::RowId r : pool) {
        if (appraiser.IsRelatedTruth(q, r)) {
          any_related = true;
          break;
        }
      }
      if (!any_related) continue;
      ++used;

      baselines::RankInput input;
      input.table = table;
      input.question_text = q.text;
      input.units = assembled.units;
      input.candidates = pool;

      for (baselines::Ranker* ranker : rankers) {
        auto top = ranker->Rank(input, 5);
        std::vector<double> relatedness;
        std::vector<bool> related_majority;
        for (db::RowId row : top) {
          std::size_t yes = 0;
          for (std::size_t r = 0; r < responses_per_question; ++r) {
            if (appraiser.Judge(q, row, &rng)) ++yes;
          }
          double frac = static_cast<double>(yes) /
                        static_cast<double>(responses_per_question);
          relatedness.push_back(frac);
          related_majority.push_back(frac > 0.5);
          out.appraiser_responses += responses_per_question;
        }
        PerRanker& agg = totals[ranker->name()];
        agg.p1.Add(PrecisionAtK(relatedness, 1));
        agg.p5.Add(PrecisionAtK(relatedness, 5));
        agg.mrr.Add(ReciprocalRank(related_majority));
        if (ranker->name() == "CQAds") {
          PerRanker& dom = cqads_by_domain[domain];
          dom.p1.Add(PrecisionAtK(relatedness, 1));
          dom.p5.Add(PrecisionAtK(relatedness, 5));
          dom.mrr.Add(ReciprocalRank(related_majority));
        }
      }
    }
    out.questions_used += used;
  }

  for (const auto& [name, agg] : totals) {
    out.scores[name] = RankingScores{agg.p1.Mean(), agg.p5.Mean(),
                                     agg.mrr.Mean()};
  }
  for (const auto& [domain, agg] : cqads_by_domain) {
    out.cqads_per_domain[domain] =
        RankingScores{agg.p1.Mean(), agg.p5.Mean(), agg.mrr.Mean()};
  }
  return out;
}

EfficiencyResult RunEfficiency(
    const datagen::World& world,
    const std::map<std::string, std::vector<GeneratedQuestion>>& questions,
    std::uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  EfficiencyResult out;
  Rng rng(seed);

  std::map<std::string, MeanAccumulator> times;

  for (const auto& [domain, qs] : questions) {
    const db::Table* table = world.table(domain);
    const core::DomainRuntime* rt = world.engine().runtime(domain);
    if (table == nullptr || rt == nullptr) continue;

    core::SimilarityContext ctx;
    ctx.ti = rt->ti_matrix.get();
    ctx.ws = &world.ws_matrix();
    ctx.attr_ranges = rt->attr_ranges;

    baselines::AimqRanker aimq_ranker(table);
    baselines::CosineRanker cosine_ranker;
    baselines::FaqFinderRanker faq_ranker(table);
    baselines::RandomRanker random_ranker(rng.Fork().engine()());
    db::Executor executor(table);

    for (const auto& q : qs) {
      // CQAds end-to-end (exact first, partial only when needed).
      {
        auto t0 = Clock::now();
        auto res = world.engine().AskInDomain(domain, q.text);
        auto t1 = Clock::now();
        (void)res;
        times["CQAds"].Add(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }

      // Baselines: shared parse, then retrieve-all-candidates + rank, which
      // is what each compared approach must do for every question.
      auto parsed = world.engine().Parse(domain, q.text);
      if (!parsed.ok()) continue;
      const auto& assembled = parsed.value().assembled;

      struct NamedRanker {
        const char* name;
        baselines::Ranker* ranker;
      };
      NamedRanker named[] = {{"AIMQ", &aimq_ranker},
                             {"Cosine", &cosine_ranker},
                             {"FAQFinder", &faq_ranker},
                             {"Random", &random_ranker}};
      for (const auto& nr : named) {
        auto t0 = Clock::now();
        auto pool = PartialCandidates(executor, assembled, table->num_rows());
        baselines::RankInput input;
        input.table = table;
        input.question_text = q.text;
        input.units = assembled.units;
        input.candidates = std::move(pool);
        auto top = nr.ranker->Rank(input, 30);
        auto t1 = Clock::now();
        (void)top;
        times[nr.name].Add(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
      ++out.questions;
    }
  }

  for (const auto& [name, acc] : times) out.avg_ms[name] = acc.Mean();
  return out;
}

}  // namespace cqads::eval
