// Experiment drivers: one function per paper table/figure, shared by the
// bench binaries and the integration tests. Each consumes a World plus
// generated questions and returns the numbers the paper reports.
#ifndef CQADS_EVAL_EXPERIMENTS_H_
#define CQADS_EVAL_EXPERIMENTS_H_

#include <map>
#include <string>
#include <vector>

#include "classify/question_classifier.h"
#include "common/rng.h"
#include "datagen/question_gen.h"
#include "datagen/world.h"
#include "eval/appraiser.h"

namespace cqads::eval {

/// Questions per domain, generated at the paper's survey mix: 80 for the
/// car-ads survey plus `per_other_domain` for each remaining domain
/// (defaults approximate the 650-response corpus of §5.1).
std::map<std::string, std::vector<datagen::GeneratedQuestion>>
GenerateSurveyQuestions(const datagen::World& world, std::size_t car_count,
                        std::size_t per_other_domain, std::uint64_t seed);

// ---------------------------------------------------------------- Figure 2
struct ClassificationResult {
  std::map<std::string, double> per_domain_accuracy;
  double average_accuracy = 0.0;
  std::size_t total_questions = 0;
};

/// Classifies every question with the engine's classifier (or a fresh one
/// with the given model, for the ablation) and scores Eq. 6 accuracy.
ClassificationResult RunClassification(
    const datagen::World& world,
    const std::map<std::string, std::vector<datagen::GeneratedQuestion>>&
        questions,
    classify::QuestionClassifier::Model model =
        classify::QuestionClassifier::Model::kJBBSM);

// ------------------------------------------------------------------- §5.3
struct ExactMatchResult {
  double precision = 0.0;
  double recall = 0.0;
  double f_measure = 0.0;
  std::size_t questions_evaluated = 0;
  std::size_t all_or_nothing = 0;  ///< questions scoring exactly 0% or 100%
};

ExactMatchResult RunExactMatch(
    const datagen::World& world,
    const std::map<std::string, std::vector<datagen::GeneratedQuestion>>&
        questions);

// ---------------------------------------------------------------- Figure 4
struct BooleanInterpretationResult {
  double overall_accuracy = 0.0;
  double implicit_accuracy = 0.0;
  double explicit_accuracy = 0.0;
  std::size_t implicit_count = 0;
  std::size_t explicit_count = 0;

  /// The sampled Boolean-survey questions with simulated appraiser votes.
  struct Sampled {
    std::string text;
    bool implicit = false;
    std::string cqads_interpretation;
    std::string intended_interpretation;
    double appraiser_agreement = 0.0;  ///< fraction choosing CQAds' reading
  };
  std::vector<Sampled> sampled;
};

/// Interprets Boolean questions with CQAds' rules and audits them against
/// the intended interpretation; also simulates the 10-question / 90-response
/// Boolean survey.
BooleanInterpretationResult RunBooleanInterpretation(
    const datagen::World& world, const std::string& domain,
    std::size_t num_questions, std::size_t sampled_questions,
    std::size_t responses_per_question, std::uint64_t seed);

// ---------------------------------------------------------------- Figure 5
struct RankingScores {
  double p_at_1 = 0.0;
  double p_at_5 = 0.0;
  double mrr = 0.0;
};

struct RankingResult {
  /// Keyed by approach name: CQAds, AIMQ, Cosine, FAQFinder, Random.
  std::map<std::string, RankingScores> scores;
  /// CQAds' scores per domain (§5.5.3 observes CS-jobs is its weakest).
  std::map<std::string, RankingScores> cqads_per_domain;
  std::size_t questions_used = 0;
  std::size_t appraiser_responses = 0;
};

RankingResult RunRanking(const datagen::World& world,
                         std::size_t questions_per_domain,
                         std::size_t responses_per_question,
                         std::uint64_t seed);

// ---------------------------------------------------------------- Figure 6
struct EfficiencyResult {
  /// Average per-question processing milliseconds, keyed by approach.
  std::map<std::string, double> avg_ms;
  std::size_t questions = 0;
};

EfficiencyResult RunEfficiency(
    const datagen::World& world,
    const std::map<std::string, std::vector<datagen::GeneratedQuestion>>&
        questions,
    std::uint64_t seed);

/// Canonical interpretation normalization: flattens nested AND/OR and sorts
/// operands so logically identical readings compare equal.
std::string NormalizeInterpretation(const db::Schema& schema,
                                    const db::ExprPtr& expr);

}  // namespace cqads::eval

#endif  // CQADS_EVAL_EXPERIMENTS_H_
