// Evaluation metrics (§5): accuracy (Eq. 6), precision/recall/F-measure
// (§5.3), P@K (Eq. 7), and MRR (Eq. 8).
#ifndef CQADS_EVAL_METRICS_H_
#define CQADS_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

namespace cqads::eval {

/// Running mean.
class MeanAccumulator {
 public:
  void Add(double v) {
    sum_ += v;
    ++count_;
  }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  std::size_t count() const { return count_; }

 private:
  double sum_ = 0.0;
  std::size_t count_ = 0;
};

struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// §5.3 for one question: `retrieved` and `relevant` are sorted unique row
/// sets; `recall_cap` bounds the recall denominator (the paper evaluates
/// answers "up till the 30th").
PrecisionRecall ComputePRF(const std::vector<unsigned>& retrieved,
                           const std::vector<unsigned>& relevant,
                           std::size_t recall_cap = 30);

/// Eq. 7 for one question: mean of the per-position relatedness of the
/// first K entries (missing positions count 0).
double PrecisionAtK(const std::vector<double>& relatedness, std::size_t k);

/// Eq. 8's per-question term: 1/rank of the first related answer (1-based),
/// or 0 when none of the entries is related.
double ReciprocalRank(const std::vector<bool>& related);

}  // namespace cqads::eval

#endif  // CQADS_EVAL_METRICS_H_
