#include "eval/metrics.h"

#include <algorithm>

namespace cqads::eval {

PrecisionRecall ComputePRF(const std::vector<unsigned>& retrieved,
                           const std::vector<unsigned>& relevant,
                           std::size_t recall_cap) {
  PrecisionRecall out;
  if (retrieved.empty() && relevant.empty()) {
    out.precision = out.recall = out.f1 = 1.0;
    return out;
  }
  std::vector<unsigned> inter;
  std::set_intersection(retrieved.begin(), retrieved.end(), relevant.begin(),
                        relevant.end(), std::back_inserter(inter));
  const double correct = static_cast<double>(inter.size());
  out.precision =
      retrieved.empty() ? 0.0 : correct / static_cast<double>(retrieved.size());
  const std::size_t denom = std::min(recall_cap, relevant.size());
  out.recall = denom == 0 ? 0.0 : correct / static_cast<double>(denom);
  out.f1 = (out.precision + out.recall) == 0.0
               ? 0.0
               : 2.0 * out.precision * out.recall /
                     (out.precision + out.recall);
  return out;
}

double PrecisionAtK(const std::vector<double>& relatedness, std::size_t k) {
  if (k == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < k && i < relatedness.size(); ++i) {
    sum += relatedness[i];
  }
  return sum / static_cast<double>(k);
}

double ReciprocalRank(const std::vector<bool>& related) {
  for (std::size_t i = 0; i < related.size(); ++i) {
    if (related[i]) return 1.0 / static_cast<double>(i + 1);
  }
  return 0.0;
}

}  // namespace cqads::eval
