// Trie-guided spelling correction (§4.2.1). A keyword the trie does not
// recognize is compared against alternative keywords reachable from the
// deepest matched trie node using PHP-style similar_text; the alternative
// with the highest similarity percentage replaces the misspelling.
//
// The corrector is generic over the trie representation: the mutable
// pointer KeywordTrie (build side, differential oracle) and the frozen
// FlatTrie (serve side) expose the same Cursor/Step/Completions API, so one
// template serves both and the two instantiations return byte-identical
// corrections.
#ifndef CQADS_TRIE_SPELL_CORRECTOR_H_
#define CQADS_TRIE_SPELL_CORRECTOR_H_

#include <optional>
#include <string>
#include <string_view>

#include "text/similar_text.h"
#include "trie/flat_trie.h"
#include "trie/keyword_trie.h"

namespace cqads::trie {

/// Outcome of a correction attempt.
struct Correction {
  std::string keyword;   ///< the corrected (trie-recognized) keyword
  double percent = 0.0;  ///< similar_text percentage against the input
};

/// Options shared by both instantiations.
struct SpellCorrectorOptions {
  /// Minimum similar_text percentage for a correction to be accepted.
  /// 70 accepts real typos (transpositions/omissions score 80+) while
  /// rejecting short-word coincidences ("cars" vs "camry" scores 67).
  double min_percent = 70.0;
  /// Cap on alternatives examined per anchor node (keeps worst case flat).
  std::size_t max_candidates = 512;
};

/// Corrects misspelled keywords against one domain trie.
template <typename TrieT>
class BasicSpellCorrector {
 public:
  using Options = SpellCorrectorOptions;

  explicit BasicSpellCorrector(const TrieT* trie)
      : BasicSpellCorrector(trie, Options()) {}
  BasicSpellCorrector(const TrieT* trie, Options options)
      : trie_(trie), options_(options) {}

  /// Attempts to correct `word` (lower-case). Returns nullopt when `word` is
  /// already a trie keyword or when no alternative clears min_percent.
  ///
  /// Search anchors: the deepest trie node reached by `word`'s prefix
  /// (per the paper, "starting from the current node in the trie where W is
  /// encountered"); when that subtree offers nothing acceptable, the
  /// first-letter subtree is tried as a fallback.
  std::optional<Correction> Correct(std::string_view word) const {
    if (word.empty() || trie_->Contains(word)) return std::nullopt;

    // Walk as deep as the trie agrees with the word.
    typename TrieT::Cursor cursor = trie_->Root();
    std::size_t depth = 0;
    while (depth < word.size()) {
      typename TrieT::Cursor next = trie_->Step(cursor, word[depth]);
      if (!next.valid()) break;
      cursor = next;
      ++depth;
    }

    std::optional<Correction> best =
        BestFrom(cursor, word.substr(0, depth), word);
    if (best) return best;

    // Fallback: alternatives sharing the first letter.
    if (depth == 0) return std::nullopt;
    typename TrieT::Cursor first = trie_->Step(trie_->Root(), word[0]);
    return BestFrom(first, word.substr(0, 1), word);
  }

 private:
  std::optional<Correction> BestFrom(typename TrieT::Cursor anchor,
                                     std::string_view prefix,
                                     std::string_view word) const {
    if (!anchor.valid()) return std::nullopt;
    auto candidates =
        trie_->Completions(anchor, prefix, options_.max_candidates);
    std::optional<Correction> best;
    for (const auto& [keyword, handle] : candidates) {
      (void)handle;
      if (keyword == word) continue;
      double pct = text::SimilarTextPercent(word, keyword);
      if (pct < options_.min_percent) continue;
      if (!best || pct > best->percent ||
          (pct == best->percent && keyword < best->keyword)) {
        best = Correction{keyword, pct};
      }
    }
    return best;
  }

  const TrieT* trie_;
  Options options_;
};

/// Build-side / oracle instantiation (the seed's public name).
using SpellCorrector = BasicSpellCorrector<KeywordTrie>;
/// Serve-side instantiation over the frozen flat trie.
using FlatSpellCorrector = BasicSpellCorrector<FlatTrie>;

}  // namespace cqads::trie

#endif  // CQADS_TRIE_SPELL_CORRECTOR_H_
