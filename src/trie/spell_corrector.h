// Trie-guided spelling correction (§4.2.1). A keyword the trie does not
// recognize is compared against alternative keywords reachable from the
// deepest matched trie node using PHP-style similar_text; the alternative
// with the highest similarity percentage replaces the misspelling.
#ifndef CQADS_TRIE_SPELL_CORRECTOR_H_
#define CQADS_TRIE_SPELL_CORRECTOR_H_

#include <optional>
#include <string>
#include <string_view>

#include "trie/keyword_trie.h"

namespace cqads::trie {

/// Outcome of a correction attempt.
struct Correction {
  std::string keyword;   ///< the corrected (trie-recognized) keyword
  double percent = 0.0;  ///< similar_text percentage against the input
};

/// Corrects misspelled keywords against one domain trie.
class SpellCorrector {
 public:
  struct Options {
    /// Minimum similar_text percentage for a correction to be accepted.
    /// 70 accepts real typos (transpositions/omissions score 80+) while
    /// rejecting short-word coincidences ("cars" vs "camry" scores 67).
    double min_percent = 70.0;
    /// Cap on alternatives examined per anchor node (keeps worst case flat).
    std::size_t max_candidates = 512;
  };

  explicit SpellCorrector(const KeywordTrie* trie)
      : SpellCorrector(trie, Options()) {}
  SpellCorrector(const KeywordTrie* trie, Options options)
      : trie_(trie), options_(options) {}

  /// Attempts to correct `word` (lower-case). Returns nullopt when `word` is
  /// already a trie keyword or when no alternative clears min_percent.
  ///
  /// Search anchors: the deepest trie node reached by `word`'s prefix
  /// (per the paper, "starting from the current node in the trie where W is
  /// encountered"); when that subtree offers nothing acceptable, the
  /// first-letter subtree is tried as a fallback.
  std::optional<Correction> Correct(std::string_view word) const;

 private:
  std::optional<Correction> BestFrom(KeywordTrie::Cursor anchor,
                                     std::string_view prefix,
                                     std::string_view word) const;

  const KeywordTrie* trie_;
  Options options_;
};

}  // namespace cqads::trie

#endif  // CQADS_TRIE_SPELL_CORRECTOR_H_
