// Missing-space repair (§4.2.1): "Hondaaccord" is split into trie keywords
// by inserting spaces where a keyword ends and characters remain. The
// segmenter searches for a full decomposition of the run into keywords
// (digit runs count as implicit keywords, so "2004accord" also splits),
// preferring longer keywords first, which matches the paper's greedy
// end-of-branch rule while still recovering from greedy dead ends.
#ifndef CQADS_TRIE_SEGMENTER_H_
#define CQADS_TRIE_SEGMENTER_H_

#include <string>
#include <string_view>
#include <vector>

#include "trie/flat_trie.h"
#include "trie/keyword_trie.h"

namespace cqads::trie {

/// Splits `word` into a sequence of >= 2 segments where every segment is a
/// trie keyword or a digit run. Returns an empty vector when no such
/// decomposition exists (callers then treat the word as one unit and hand it
/// to the spell corrector).
std::vector<std::string> SegmentWord(const KeywordTrie& trie,
                                     std::string_view word);

/// Identical semantics over the frozen flat trie (the serve-time path).
std::vector<std::string> SegmentWord(const FlatTrie& trie,
                                     std::string_view word);

}  // namespace cqads::trie

#endif  // CQADS_TRIE_SEGMENTER_H_
