// Flat, frozen compile of a KeywordTrie (§4.1.3). The pointer trie stays
// the mutable build-side structure (and the differential-test oracle); at
// snapshot time it is compiled into contiguous node/edge/handle arrays that
// the tagger, segmenter, and spell corrector walk at serve time:
//
//   nodes_    one record per trie node, DFS preorder (root = 0), holding the
//             node's edge span and handle span
//   edges_    all outgoing edges, grouped per node, sorted by label — a Step
//             is a binary search over the node's span instead of a std::map
//             node chase
//   handles_  payload handles of terminal nodes, flattened
//
// The API mirrors KeywordTrie exactly (Cursor/Step/Walk/IsTerminal/Handles/
// HasChildren/Completions/LongestMatchLength/AllMatchLengths), and every
// operation returns byte-identical results — the randomized differential
// suite pins this over all eight datagen domains. What changes is the
// constant factor: nodes are 16 bytes instead of a map-of-unique_ptrs each,
// a walk touches a few contiguous cache lines, and the whole structure is
// trivially shareable across threads (immutable after Compile).
#ifndef CQADS_TRIE_FLAT_TRIE_H_
#define CQADS_TRIE_FLAT_TRIE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/pod_vec.h"
#include "trie/keyword_trie.h"

namespace cqads::snapshot {
struct SerdeAccess;
}

namespace cqads::trie {

/// Contiguous handle run of one terminal node (iterable, indexable —
/// interface-compatible with the vector KeywordTrie::Handles returns).
struct HandleSpan {
  const std::int32_t* data = nullptr;
  std::size_t count = 0;

  const std::int32_t* begin() const { return data; }
  const std::int32_t* end() const { return data + count; }
  std::size_t size() const { return count; }
  bool empty() const { return count == 0; }
  std::int32_t operator[](std::size_t i) const { return data[i]; }
};

class FlatTrie {
 public:
  FlatTrie() = default;

  // Movable, not copyable (large arrays; snapshots share by pointer).
  FlatTrie(FlatTrie&&) = default;
  FlatTrie& operator=(FlatTrie&&) = default;
  FlatTrie(const FlatTrie&) = delete;
  FlatTrie& operator=(const FlatTrie&) = delete;

  /// Compiles the frozen form. The source trie is only read; the compiled
  /// trie is independent of it afterwards.
  static FlatTrie Compile(const KeywordTrie& source);

  /// Walk state: a node index. A default cursor is invalid.
  class Cursor {
   public:
    Cursor() = default;
    bool valid() const { return node_ != kInvalidNode; }

   private:
    friend class FlatTrie;
    explicit Cursor(std::uint32_t node) : node_(node) {}
    static constexpr std::uint32_t kInvalidNode =
        static_cast<std::uint32_t>(-1);
    std::uint32_t node_ = kInvalidNode;
  };

  /// Root cursor; invalid on a default-constructed (never compiled) trie,
  /// which makes every downstream operation a safe no-match instead of an
  /// out-of-bounds node access.
  Cursor Root() const {
    return nodes_.empty() ? Cursor() : Cursor(0);
  }
  Cursor Step(Cursor cursor, char c) const;
  Cursor Walk(Cursor cursor, std::string_view s) const;
  bool IsTerminal(Cursor cursor) const;
  HandleSpan Handles(Cursor cursor) const;
  bool HasChildren(Cursor cursor) const;

  bool Contains(std::string_view keyword) const;
  /// Handles of `keyword` (empty span when absent) — the Find analogue.
  HandleSpan Find(std::string_view keyword) const;

  /// Identical enumeration order to KeywordTrie::Completions (lexicographic
  /// keywords, handles in insertion order).
  std::vector<std::pair<std::string, std::int32_t>> Completions(
      Cursor cursor, std::string_view prefix, std::size_t limit) const;

  std::size_t LongestMatchLength(std::string_view s, std::size_t from) const;
  std::vector<std::size_t> AllMatchLengths(std::string_view s,
                                           std::size_t from) const;

  std::size_t size() const { return keyword_count_; }
  bool empty() const { return keyword_count_ == 0; }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  /// Exact array footprint (the §4.1.3 node-array-vs-pointer-tree claim).
  std::size_t MemoryBytes() const {
    return nodes_.size() * sizeof(Node) + edges_.size() * sizeof(Edge) +
           handles_.size() * sizeof(std::int32_t);
  }

 private:
  friend struct cqads::snapshot::SerdeAccess;

  // Node and Edge are written verbatim into persistent snapshots, so their
  // padding is explicit and zero-initialized — the file bytes must be
  // deterministic, not whatever the allocator left behind.
  struct Node {
    std::uint32_t edge_begin = 0;    ///< index into edges_
    std::uint32_t handle_begin = 0;  ///< index into handles_
    /// > 0 iff terminal: KeywordTrie::Insert always records at least one
    /// handle per keyword, so "terminal with zero handles" cannot occur in
    /// a source trie. Full width — a narrower field would silently wrap a
    /// pathological keyword with >64Ki handles into a non-terminal.
    std::uint32_t handle_count = 0;
    /// At most one edge per distinct byte value.
    std::uint16_t edge_count = 0;
    std::uint16_t pad = 0;
  };
  static_assert(sizeof(Node) == 16);
  struct Edge {
    std::uint32_t target = 0;
    char label = 0;
    char pad[3] = {0, 0, 0};
  };
  static_assert(sizeof(Edge) == 8);

  struct BuildKey {
    std::string keyword;
    std::vector<std::int32_t> handles;
  };

  std::uint32_t BuildNode(const std::vector<BuildKey>& keys, std::size_t lo,
                          std::size_t hi, std::size_t depth);

  // PodVec: heap-owned when compiled in-process, zero-copy views into a
  // mapped snapshot when loaded from disk.
  common::PodVec<Node> nodes_;
  common::PodVec<Edge> edges_;
  common::PodVec<std::int32_t> handles_;
  std::size_t keyword_count_ = 0;
};

}  // namespace cqads::trie

#endif  // CQADS_TRIE_FLAT_TRIE_H_
