#include "trie/flat_trie.h"

#include <algorithm>
#include <limits>

namespace cqads::trie {

FlatTrie FlatTrie::Compile(const KeywordTrie& source) {
  // Enumerate (keyword, handle) pairs through the public API: lexicographic
  // keyword order with handles in insertion order — exactly the layout the
  // sorted-key build below wants, and no friend access into the node tree.
  auto pairs = source.Completions(source.Root(), "",
                                  std::numeric_limits<std::size_t>::max());
  std::vector<BuildKey> keys;
  for (auto& [keyword, handle] : pairs) {
    if (keys.empty() || keys.back().keyword != keyword) {
      keys.push_back(BuildKey{keyword, {}});
    }
    keys.back().handles.push_back(handle);
  }

  FlatTrie trie;
  trie.keyword_count_ = keys.size();
  trie.nodes_.reserve(source.node_count());
  trie.handles_.reserve(pairs.size());
  trie.BuildNode(keys, 0, keys.size(), 0);
  return trie;
}

std::uint32_t FlatTrie::BuildNode(const std::vector<BuildKey>& keys,
                                  std::size_t lo, std::size_t hi,
                                  std::size_t depth) {
  auto& nodes = nodes_.vec();
  auto& edges = edges_.vec();
  auto& handles = handles_.vec();
  const std::uint32_t id = static_cast<std::uint32_t>(nodes.size());
  nodes.emplace_back();

  // The keyword equal to this node's path, if any, sorts first in the range.
  if (lo < hi && keys[lo].keyword.size() == depth) {
    nodes[id].handle_begin = static_cast<std::uint32_t>(handles.size());
    nodes[id].handle_count =
        static_cast<std::uint32_t>(keys[lo].handles.size());
    handles.insert(handles.end(), keys[lo].handles.begin(),
                   keys[lo].handles.end());
    ++lo;
  }

  // Group the remaining range by next character (ranges are contiguous:
  // keys are sorted).
  struct ChildRange {
    char label;
    std::size_t lo, hi;
  };
  std::vector<ChildRange> children;
  std::size_t i = lo;
  while (i < hi) {
    const char c = keys[i].keyword[depth];
    std::size_t j = i + 1;
    while (j < hi && keys[j].keyword[depth] == c) ++j;
    children.push_back(ChildRange{c, i, j});
    i = j;
  }

  // Reserve this node's contiguous edge span BEFORE recursing, so child
  // subtrees (which append their own edges) cannot interleave with it.
  const std::uint32_t edge_begin = static_cast<std::uint32_t>(edges.size());
  nodes[id].edge_begin = edge_begin;
  nodes[id].edge_count = static_cast<std::uint16_t>(children.size());
  for (const ChildRange& child : children) {
    edges.push_back(Edge{0, child.label});
  }
  for (std::size_t k = 0; k < children.size(); ++k) {
    // Recursion appends nodes/edges; re-take the reference afterwards in
    // case the vector reallocated.
    const std::uint32_t target =
        BuildNode(keys, children[k].lo, children[k].hi, depth + 1);
    edges_.vec()[edge_begin + k].target = target;
  }
  return id;
}

FlatTrie::Cursor FlatTrie::Step(Cursor cursor, char c) const {
  if (!cursor.valid()) return Cursor();
  const Node& node = nodes_[cursor.node_];
  const Edge* begin = edges_.data() + node.edge_begin;
  const Edge* end = begin + node.edge_count;
  // Binary-searched edge span; labels within a span are sorted (the build
  // walks keys in lexicographic order).
  const Edge* it = std::lower_bound(
      begin, end, c, [](const Edge& e, char label) { return e.label < label; });
  if (it == end || it->label != c) return Cursor();
  return Cursor(it->target);
}

FlatTrie::Cursor FlatTrie::Walk(Cursor cursor, std::string_view s) const {
  for (char c : s) {
    cursor = Step(cursor, c);
    if (!cursor.valid()) return cursor;
  }
  return cursor;
}

bool FlatTrie::IsTerminal(Cursor cursor) const {
  return cursor.valid() && nodes_[cursor.node_].handle_count > 0;
}

HandleSpan FlatTrie::Handles(Cursor cursor) const {
  if (!IsTerminal(cursor)) return HandleSpan{};
  const Node& node = nodes_[cursor.node_];
  return HandleSpan{handles_.data() + node.handle_begin, node.handle_count};
}

bool FlatTrie::HasChildren(Cursor cursor) const {
  return cursor.valid() && nodes_[cursor.node_].edge_count > 0;
}

bool FlatTrie::Contains(std::string_view keyword) const {
  return IsTerminal(Walk(Root(), keyword));
}

HandleSpan FlatTrie::Find(std::string_view keyword) const {
  return Handles(Walk(Root(), keyword));
}

std::vector<std::pair<std::string, std::int32_t>> FlatTrie::Completions(
    Cursor cursor, std::string_view prefix, std::size_t limit) const {
  std::vector<std::pair<std::string, std::int32_t>> out;
  if (!cursor.valid() || limit == 0) return out;
  std::string scratch(prefix);

  // Iterative preorder mirroring KeywordTrie::CollectFrom: emit this node's
  // handles, then descend edges in label order.
  struct Frame {
    std::uint32_t node;
    std::uint16_t next_edge;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{cursor.node_, 0});
  // Emit the anchor node's handles before any descent.
  auto emit = [&](std::uint32_t node_id) {
    const Node& node = nodes_[node_id];
    for (std::uint32_t h = 0; h < node.handle_count; ++h) {
      if (out.size() >= limit) return false;
      out.emplace_back(scratch, handles_[node.handle_begin + h]);
    }
    return out.size() < limit;
  };
  if (!emit(cursor.node_)) return out;
  while (!stack.empty()) {
    Frame& top = stack.back();
    const Node& node = nodes_[top.node];
    if (top.next_edge >= node.edge_count) {
      stack.pop_back();
      if (!stack.empty()) scratch.pop_back();
      continue;
    }
    const Edge& edge = edges_[node.edge_begin + top.next_edge];
    ++top.next_edge;
    scratch.push_back(edge.label);
    if (!emit(edge.target)) return out;
    stack.push_back(Frame{edge.target, 0});
  }
  return out;
}

std::size_t FlatTrie::LongestMatchLength(std::string_view s,
                                         std::size_t from) const {
  Cursor c = Root();
  std::size_t best = 0;
  for (std::size_t i = from; i < s.size(); ++i) {
    c = Step(c, s[i]);
    if (!c.valid()) break;
    if (IsTerminal(c)) best = i - from + 1;
  }
  return best;
}

std::vector<std::size_t> FlatTrie::AllMatchLengths(std::string_view s,
                                                   std::size_t from) const {
  std::vector<std::size_t> out;
  Cursor c = Root();
  for (std::size_t i = from; i < s.size(); ++i) {
    c = Step(c, s[i]);
    if (!c.valid()) break;
    if (IsTerminal(c)) out.push_back(i - from + 1);
  }
  return out;
}

}  // namespace cqads::trie
