#include "trie/segmenter.h"

#include <algorithm>
#include <cctype>

namespace cqads::trie {

namespace {

// Length of the digit run starting at `from` (0 if none).
std::size_t DigitRunLength(std::string_view s, std::size_t from) {
  std::size_t i = from;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  return i - from;
}

// One implementation for both trie representations: the search only needs
// AllMatchLengths, which the flat compile reproduces verbatim.
template <typename TrieT>
struct SearchState {
  const TrieT* trie;
  std::string_view word;
  std::vector<bool> dead;  // position known unsegmentable
};

template <typename TrieT>
bool SearchFrom(SearchState<TrieT>* st, std::size_t pos,
                std::vector<std::pair<std::size_t, std::size_t>>* spans) {
  if (pos == st->word.size()) return true;
  if (st->dead[pos]) return false;

  std::vector<std::size_t> lengths = st->trie->AllMatchLengths(st->word, pos);
  std::size_t digits = DigitRunLength(st->word, pos);
  if (digits > 0 &&
      std::find(lengths.begin(), lengths.end(), digits) == lengths.end()) {
    lengths.push_back(digits);
  }
  // Longest-first mirrors the paper's end-of-branch heuristic.
  std::sort(lengths.rbegin(), lengths.rend());
  for (std::size_t len : lengths) {
    spans->emplace_back(pos, len);
    if (SearchFrom(st, pos + len, spans)) return true;
    spans->pop_back();
  }
  st->dead[pos] = true;
  return false;
}

template <typename TrieT>
std::vector<std::string> SegmentWordImpl(const TrieT& trie,
                                         std::string_view word) {
  if (word.size() < 2) return {};
  SearchState<TrieT> st{&trie, word, std::vector<bool>(word.size(), false)};
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  if (!SearchFrom(&st, 0, &spans)) return {};
  if (spans.size() < 2) return {};  // already a single keyword: no repair
  std::vector<std::string> out;
  out.reserve(spans.size());
  for (auto [pos, len] : spans) out.emplace_back(word.substr(pos, len));
  return out;
}

}  // namespace

std::vector<std::string> SegmentWord(const KeywordTrie& trie,
                                     std::string_view word) {
  return SegmentWordImpl(trie, word);
}

std::vector<std::string> SegmentWord(const FlatTrie& trie,
                                     std::string_view word) {
  return SegmentWordImpl(trie, word);
}

}  // namespace cqads::trie
