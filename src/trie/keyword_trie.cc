#include "trie/keyword_trie.h"

#include <algorithm>

namespace cqads::trie {

void KeywordTrie::Insert(std::string_view keyword, std::int32_t handle) {
  if (keyword.empty()) return;
  Node* node = root_.get();
  for (char c : keyword) {
    auto it = node->children.find(c);
    if (it == node->children.end()) {
      it = node->children.emplace(c, std::make_unique<Node>()).first;
      ++node_count_;
    }
    node = it->second.get();
  }
  if (!node->terminal) {
    node->terminal = true;
    ++keyword_count_;
  }
  if (std::find(node->handles.begin(), node->handles.end(), handle) ==
      node->handles.end()) {
    node->handles.push_back(handle);
  }
}

bool KeywordTrie::Contains(std::string_view keyword) const {
  Cursor c = Walk(Root(), keyword);
  return c.valid() && IsTerminal(c);
}

const std::vector<std::int32_t>* KeywordTrie::Find(
    std::string_view keyword) const {
  Cursor c = Walk(Root(), keyword);
  if (!c.valid() || !IsTerminal(c)) return nullptr;
  return &AsNode(c)->handles;
}

KeywordTrie::Cursor KeywordTrie::Step(Cursor cursor, char c) const {
  if (!cursor.valid()) return Cursor();
  const Node* node = AsNode(cursor);
  auto it = node->children.find(c);
  if (it == node->children.end()) return Cursor();
  return Cursor(it->second.get());
}

KeywordTrie::Cursor KeywordTrie::Walk(Cursor cursor,
                                      std::string_view s) const {
  for (char c : s) {
    cursor = Step(cursor, c);
    if (!cursor.valid()) return cursor;
  }
  return cursor;
}

bool KeywordTrie::IsTerminal(Cursor cursor) const {
  return cursor.valid() && AsNode(cursor)->terminal;
}

const std::vector<std::int32_t>& KeywordTrie::Handles(Cursor cursor) const {
  static const std::vector<std::int32_t> kEmpty;
  if (!IsTerminal(cursor)) return kEmpty;
  return AsNode(cursor)->handles;
}

bool KeywordTrie::HasChildren(Cursor cursor) const {
  return cursor.valid() && !AsNode(cursor)->children.empty();
}

void KeywordTrie::CollectFrom(
    const Node* node, std::string* scratch, std::size_t limit,
    std::vector<std::pair<std::string, std::int32_t>>* out) const {
  if (out->size() >= limit) return;
  if (node->terminal) {
    for (std::int32_t h : node->handles) {
      if (out->size() >= limit) return;
      out->emplace_back(*scratch, h);
    }
  }
  for (const auto& [c, child] : node->children) {
    scratch->push_back(c);
    CollectFrom(child.get(), scratch, limit, out);
    scratch->pop_back();
    if (out->size() >= limit) return;
  }
}

std::vector<std::pair<std::string, std::int32_t>> KeywordTrie::Completions(
    Cursor cursor, std::string_view prefix, std::size_t limit) const {
  std::vector<std::pair<std::string, std::int32_t>> out;
  if (!cursor.valid() || limit == 0) return out;
  std::string scratch(prefix);
  CollectFrom(AsNode(cursor), &scratch, limit, &out);
  return out;
}

std::size_t KeywordTrie::ApproxMemoryBytes() const {
  // Walk via the public cursor API-equivalent internals: each node costs its
  // struct, each edge a std::map red-black node (payload pair + three
  // pointers + color, ~= 40 bytes of overhead on mainstream allocators),
  // each terminal its handle storage.
  struct Walker {
    static std::size_t Visit(const Node& node) {
      std::size_t bytes = sizeof(Node) + node.handles.capacity() *
                                             sizeof(std::int32_t);
      for (const auto& [c, child] : node.children) {
        (void)c;
        bytes += sizeof(std::pair<const char, std::unique_ptr<Node>>) + 40;
        bytes += Visit(*child);
      }
      return bytes;
    }
  };
  return Walker::Visit(*root_);
}

std::size_t KeywordTrie::LongestMatchLength(std::string_view s,
                                            std::size_t from) const {
  Cursor c = Root();
  std::size_t best = 0;
  for (std::size_t i = from; i < s.size(); ++i) {
    c = Step(c, s[i]);
    if (!c.valid()) break;
    if (IsTerminal(c)) best = i - from + 1;
  }
  return best;
}

std::vector<std::size_t> KeywordTrie::AllMatchLengths(std::string_view s,
                                                      std::size_t from) const {
  std::vector<std::size_t> out;
  Cursor c = Root();
  for (std::size_t i = from; i < s.size(); ++i) {
    c = Step(c, s[i]);
    if (!c.valid()) break;
    if (IsTerminal(c)) out.push_back(i - from + 1);
  }
  return out;
}

}  // namespace cqads::trie
