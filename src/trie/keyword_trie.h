// Keyword trie (§4.1.3-4.1.4). One trie is built per ads domain; every node
// holds one character, and nodes whose root path spells a known keyword are
// terminal and carry payload handles (indices into a caller-side table of
// identifiers, per Table 1). The trie is the workhorse behind keyword
// tagging, spelling correction, and missing-space repair.
#ifndef CQADS_TRIE_KEYWORD_TRIE_H_
#define CQADS_TRIE_KEYWORD_TRIE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cqads::trie {

/// Ordered-tree string dictionary with per-keyword payload handles.
///
/// Keys are expected lower-case; a key may carry several handles (e.g. "gold"
/// can be both a Color and a Material value in the Jewellery domain).
/// Lookup of a length-m key costs O(m) node steps, the property §4.1.3 cites
/// for preferring tries over binary search trees and hash tables.
class KeywordTrie {
 public:
  KeywordTrie() : root_(std::make_unique<Node>()) {}

  // Movable, not copyable (owns a node tree).
  KeywordTrie(KeywordTrie&&) = default;
  KeywordTrie& operator=(KeywordTrie&&) = default;
  KeywordTrie(const KeywordTrie&) = delete;
  KeywordTrie& operator=(const KeywordTrie&) = delete;

  /// Adds `keyword` with a payload handle. Duplicate (keyword, handle) pairs
  /// are ignored; the same keyword may accumulate distinct handles.
  void Insert(std::string_view keyword, std::int32_t handle);

  /// True if `keyword` is a complete entry.
  bool Contains(std::string_view keyword) const;

  /// Handles of `keyword`, or nullptr when absent.
  const std::vector<std::int32_t>* Find(std::string_view keyword) const;

  /// Number of distinct keywords.
  std::size_t size() const { return keyword_count_; }
  bool empty() const { return keyword_count_ == 0; }

  /// Number of trie nodes (for the §4.1.3 footprint claim and tests).
  std::size_t node_count() const { return node_count_; }

  /// Approximate heap footprint of the pointer tree (nodes, red-black map
  /// nodes per edge, handle vectors). The parse_rank bench compares this
  /// against FlatTrie::MemoryBytes for the §4.1.3 footprint claim.
  std::size_t ApproxMemoryBytes() const;

  /// Walk state for incremental scanning. A default cursor is invalid.
  class Cursor {
   public:
    Cursor() = default;
    bool valid() const { return node_ != nullptr; }

   private:
    friend class KeywordTrie;
    explicit Cursor(const void* node) : node_(node) {}
    const void* node_ = nullptr;
  };

  /// Cursor positioned at the root (empty prefix).
  Cursor Root() const { return Cursor(root_.get()); }

  /// Advances the cursor by one character. Returns an invalid cursor when no
  /// edge exists; the input cursor is unchanged.
  Cursor Step(Cursor cursor, char c) const;

  /// Advances the cursor across a whole string; invalid if any step fails.
  Cursor Walk(Cursor cursor, std::string_view s) const;

  /// True when the cursor's prefix is a complete keyword.
  bool IsTerminal(Cursor cursor) const;

  /// Handles at a terminal cursor (empty vector otherwise).
  const std::vector<std::int32_t>& Handles(Cursor cursor) const;

  /// True when the cursor has at least one outgoing edge.
  bool HasChildren(Cursor cursor) const;

  /// All (full keyword, handle) completions reachable from `cursor`, given
  /// the prefix that led to it, capped at `limit`. Keywords come out in
  /// lexicographic order, making corrections deterministic.
  std::vector<std::pair<std::string, std::int32_t>> Completions(
      Cursor cursor, std::string_view prefix, std::size_t limit) const;

  /// Length of the longest keyword that starts at `s[from]`, or 0.
  std::size_t LongestMatchLength(std::string_view s, std::size_t from) const;

  /// Lengths (ascending) of every keyword that is a prefix of `s` starting
  /// at `from`. Used by the segmenter to enumerate split points.
  std::vector<std::size_t> AllMatchLengths(std::string_view s,
                                           std::size_t from) const;

 private:
  struct Node {
    std::map<char, std::unique_ptr<Node>> children;
    std::vector<std::int32_t> handles;
    bool terminal = false;
  };

  static const Node* AsNode(Cursor c) {
    return static_cast<const Node*>(c.node_);
  }

  void CollectFrom(const Node* node, std::string* scratch, std::size_t limit,
                   std::vector<std::pair<std::string, std::int32_t>>* out)
      const;

  std::unique_ptr<Node> root_;
  std::size_t keyword_count_ = 0;
  std::size_t node_count_ = 1;  // root
};

}  // namespace cqads::trie

#endif  // CQADS_TRIE_KEYWORD_TRIE_H_
