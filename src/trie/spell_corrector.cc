#include "trie/spell_corrector.h"

#include "text/similar_text.h"

namespace cqads::trie {

std::optional<Correction> SpellCorrector::BestFrom(
    KeywordTrie::Cursor anchor, std::string_view prefix,
    std::string_view word) const {
  if (!anchor.valid()) return std::nullopt;
  auto candidates =
      trie_->Completions(anchor, prefix, options_.max_candidates);
  std::optional<Correction> best;
  for (const auto& [keyword, handle] : candidates) {
    (void)handle;
    if (keyword == word) continue;
    double pct = text::SimilarTextPercent(word, keyword);
    if (pct < options_.min_percent) continue;
    if (!best || pct > best->percent ||
        (pct == best->percent && keyword < best->keyword)) {
      best = Correction{keyword, pct};
    }
  }
  return best;
}

std::optional<Correction> SpellCorrector::Correct(
    std::string_view word) const {
  if (word.empty() || trie_->Contains(word)) return std::nullopt;

  // Walk as deep as the trie agrees with the word.
  KeywordTrie::Cursor cursor = trie_->Root();
  std::size_t depth = 0;
  while (depth < word.size()) {
    KeywordTrie::Cursor next = trie_->Step(cursor, word[depth]);
    if (!next.valid()) break;
    cursor = next;
    ++depth;
  }

  std::optional<Correction> best =
      BestFrom(cursor, word.substr(0, depth), word);
  if (best) return best;

  // Fallback: alternatives sharing the first letter.
  if (depth == 0) return std::nullopt;
  KeywordTrie::Cursor first = trie_->Step(trie_->Root(), word[0]);
  return BestFrom(first, word.substr(0, 1), word);
}

}  // namespace cqads::trie
