#include "datagen/ads_generator.h"

#include <algorithm>
#include <cmath>

namespace cqads::datagen {

namespace {

double DrawNumeric(const NumericGenSpec& gen, double cluster_mult, Rng* rng) {
  double v;
  if (gen.stddev > 0.0) {
    double mean = gen.cluster_scaled ? gen.base_mean * cluster_mult
                                     : gen.base_mean;
    double sd = gen.cluster_scaled ? gen.stddev * cluster_mult : gen.stddev;
    v = rng->Gaussian(mean, sd);
  } else {
    v = rng->UniformReal(gen.min, gen.max);
  }
  v = std::clamp(v, gen.min, gen.max);
  if (gen.integer) v = std::round(v);
  return v;
}

}  // namespace

Result<db::Table> GenerateAds(const DomainSpec& spec, std::size_t num_ads,
                              Rng* rng) {
  CQADS_RETURN_NOT_OK(spec.schema.Validate());
  if (spec.identities.empty()) {
    return Status::InvalidArgument("spec has no identities: " +
                                   spec.schema.domain());
  }
  db::Table table(spec.schema);

  std::vector<double> weights;
  weights.reserve(spec.identities.size());
  for (const auto& id : spec.identities) weights.push_back(id.weight);

  for (std::size_t n = 0; n < num_ads; ++n) {
    const IdentitySpec& identity =
        spec.identities[rng->WeightedIndex(weights)];
    db::Record record(spec.schema.num_attributes());

    // Type I identity values.
    for (std::size_t k = 0; k < spec.type_i_attrs.size(); ++k) {
      record[spec.type_i_attrs[k]] = db::Value::Text(identity.values[k]);
    }

    for (std::size_t a = 0; a < spec.schema.num_attributes(); ++a) {
      const db::Attribute& attr = spec.schema.attribute(a);
      if (!record[a].is_null()) continue;  // identity already set

      if (attr.data_kind == db::DataKind::kNumeric) {
        auto it = spec.numerics.find(a);
        if (it == spec.numerics.end()) continue;  // leave null
        record[a] = db::Value::Real(DrawNumeric(
            it->second, spec.ClusterMult(identity.cluster), rng));
        continue;
      }

      if (a == spec.features_attr) {
        // 3-6 features drawn from distinct groups; the segment's preferred
        // group is drawn first (luxury ads list leather seats etc.).
        std::vector<std::size_t> group_order(spec.feature_groups.size());
        for (std::size_t g = 0; g < group_order.size(); ++g) {
          group_order[g] = g;
        }
        rng->Shuffle(&group_order);
        const std::size_t preferred =
            (static_cast<std::size_t>(identity.cluster) * 2654435761u + a) %
            spec.feature_groups.size();
        auto it = std::find(group_order.begin(), group_order.end(),
                            preferred);
        if (it != group_order.end()) std::iter_swap(group_order.begin(), it);
        const std::size_t n_features = static_cast<std::size_t>(
            rng->UniformInt(3, std::min<std::int64_t>(
                                   6, static_cast<std::int64_t>(
                                          group_order.size()))));
        std::string joined;
        for (std::size_t f = 0; f < n_features; ++f) {
          const auto& group = spec.feature_groups[group_order[f]];
          const std::string& value = group[rng->UniformIndex(group.size())];
          if (!joined.empty()) joined += ";";
          joined += value;
        }
        record[a] = db::Value::Text(joined);
        continue;
      }

      auto pit = spec.pool_groups.find(a);
      if (pit == spec.pool_groups.end()) continue;  // leave null
      const auto& groups = pit->second;
      // Descriptive values correlate with the latent segment (sports cars
      // skew red/manual, luxury skews black/leather): real markets have
      // such correlations, and attribute-co-occurrence methods (AIMQ's
      // supertuples) depend on them.
      std::size_t g;
      if (rng->Bernoulli(0.6)) {
        g = (static_cast<std::size_t>(identity.cluster) * 2654435761u + a) %
            groups.size();
      } else {
        g = rng->UniformIndex(groups.size());
      }
      const auto& group = groups[g];
      record[a] = db::Value::Text(group[rng->UniformIndex(group.size())]);
    }

    auto inserted = table.Insert(std::move(record));
    if (!inserted.ok()) return inserted.status();
  }

  table.BuildIndexes();
  return table;
}

}  // namespace cqads::datagen
