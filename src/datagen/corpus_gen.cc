#include "datagen/corpus_gen.h"

namespace cqads::datagen {

namespace {

// Non-stopword filler vocabulary used to separate unrelated groups beyond
// the WS co-occurrence window. (Stopwords would be stripped before distance
// computation and provide no separation.)
const std::vector<std::string>& Fillers() {
  static const auto* kFillers = new std::vector<std::string>{
      "excellent", "condition",  "offered",  "sale",     "quality",
      "item",      "deal",       "local",    "pickup",   "clean",
      "original",  "owner",      "garage",   "kept",     "barely",
      "works",     "perfectly",  "includes", "warranty", "photos",
      "contact",   "available",  "serious",  "buyers",   "negotiable",
      "listed",    "today",      "priced",   "fair",     "market",
  };
  return *kFillers;
}

void AppendFillers(std::string* doc, std::size_t count, Rng* rng) {
  for (std::size_t i = 0; i < count; ++i) {
    doc->push_back(' ');
    doc->append(Fillers()[rng->UniformIndex(Fillers().size())]);
  }
}

}  // namespace

std::vector<std::string> GenerateCorpus(const std::vector<DomainSpec>& specs,
                                        std::size_t docs_per_domain,
                                        Rng* rng) {
  std::vector<std::string> corpus;
  corpus.reserve(specs.size() * docs_per_domain);

  for (const auto& spec : specs) {
    // Collect all related groups of the domain (pools + features).
    std::vector<const std::vector<std::string>*> groups;
    for (const auto& [attr, attr_groups] : spec.pool_groups) {
      for (const auto& g : attr_groups) {
        if (g.size() >= 1) groups.push_back(&g);
      }
    }
    for (const auto& g : spec.feature_groups) groups.push_back(&g);
    if (groups.empty()) continue;

    for (std::size_t d = 0; d < docs_per_domain; ++d) {
      std::string doc;
      const std::size_t n_sections =
          static_cast<std::size_t>(rng->UniformInt(2, 4));
      for (std::size_t s = 0; s < n_sections; ++s) {
        const auto& group = *groups[rng->UniformIndex(groups.size())];
        // Related words appear adjacent (within the WS window).
        std::vector<std::string> shuffled = group;
        rng->Shuffle(&shuffled);
        for (const auto& w : shuffled) {
          doc.push_back(' ');
          doc.append(w);
        }
        // Occasionally mention an identity so descriptive words also
        // co-occur with identity vocabulary at medium distance.
        if (rng->Bernoulli(0.3) && !spec.identities.empty()) {
          const auto& id =
              spec.identities[rng->UniformIndex(spec.identities.size())];
          AppendFillers(&doc, 2, rng);
          for (const auto& v : id.values) {
            doc.push_back(' ');
            doc.append(v);
          }
        }
        // Long filler gap: the next section's group must land outside the
        // co-occurrence window.
        AppendFillers(&doc, 12, rng);
      }
      corpus.push_back(std::move(doc));
    }
  }
  return corpus;
}

}  // namespace cqads::datagen
