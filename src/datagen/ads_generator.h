// Ads generation: produces a deterministic ads table for a domain spec,
// standing in for the ~500 ads per domain the paper crawled from ads
// websites (§4.1.4, §5.1). Numeric attributes follow the latent segment
// structure (luxury identities cost more), which the partial-match
// experiments depend on.
#ifndef CQADS_DATAGEN_ADS_GENERATOR_H_
#define CQADS_DATAGEN_ADS_GENERATOR_H_

#include "common/rng.h"
#include "common/status.h"
#include "datagen/domain_spec.h"
#include "db/table.h"

namespace cqads::datagen {

/// Generates `num_ads` ads for the spec. The returned table has its indexes
/// built and is ready for lexicon construction and querying.
Result<db::Table> GenerateAds(const DomainSpec& spec, std::size_t num_ads,
                              Rng* rng);

}  // namespace cqads::datagen

#endif  // CQADS_DATAGEN_ADS_GENERATOR_H_
