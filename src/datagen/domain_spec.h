// Domain specifications for the eight ads domains of §5.1 (Cars,
// Motorcycles, Clothing, CS Jobs, Furniture, Food Coupons, Musical
// Instruments, Jewellery). The paper sourced schemas and value pools from
// ebay.com and ~500 crawled ads per domain; we encode equivalent pools by
// hand, plus the latent ground-truth structure the synthetic evaluation
// needs:
//   * identities carry a latent market-segment cluster (Camry and Accord
//     share one) that drives ad generation, query-log sessions, and
//     appraiser judgements alike;
//   * Type II value pools are partitioned into related groups ({black,
//     grey, silver}...) that drive the WS-matrix corpus and appraiser
//     judgements alike.
#ifndef CQADS_DATAGEN_DOMAIN_SPEC_H_
#define CQADS_DATAGEN_DOMAIN_SPEC_H_

#include <cstddef>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "db/schema.h"

namespace cqads::datagen {

inline constexpr std::size_t kNoFeatureAttr =
    std::numeric_limits<std::size_t>::max();

/// One Type I identity (e.g. make+model pair), with its latent segment.
struct IdentitySpec {
  /// Values aligned with DomainSpec::type_i_attrs order.
  std::vector<std::string> values;
  int cluster = 0;
  double weight = 1.0;  ///< relative ad frequency
};

/// Generation model for one numeric attribute.
struct NumericGenSpec {
  double min = 0.0;
  double max = 1.0;
  bool integer = true;
  /// When > 0: values are Gaussian around base_mean (scaled by the
  /// identity's cluster multiplier), clamped to [min, max]. When 0: uniform.
  double base_mean = 0.0;
  double stddev = 0.0;
  bool cluster_scaled = false;
};

struct DomainSpec {
  db::Schema schema;
  std::vector<std::size_t> type_i_attrs;  ///< identity attribute indices
  std::vector<IdentitySpec> identities;
  /// Categorical Type II pools, partitioned into related groups.
  std::map<std::size_t, std::vector<std::vector<std::string>>> pool_groups;
  std::map<std::size_t, NumericGenSpec> numerics;
  /// Optional feature-list attribute and its grouped vocabulary.
  std::size_t features_attr = kNoFeatureAttr;
  std::vector<std::vector<std::string>> feature_groups;
  /// Per-cluster multiplier applied to cluster_scaled numeric means.
  std::map<int, double> cluster_value_mult;
  /// Words users employ for the domain itself ("car", "vehicle", "job").
  /// Real ads contain these; generated ads text does not, so the classifier
  /// is trained on extra documents carrying them.
  std::vector<std::string> domain_keywords;

  /// Flattened pool of a categorical attribute.
  std::vector<std::string> PoolValues(std::size_t attr) const;
  /// Group index of a categorical value within an attribute (-1 if absent).
  int GroupOf(std::size_t attr, const std::string& value) const;
  /// Cluster of an identity given its value tuple (-1 if unknown).
  int ClusterOf(const std::vector<std::string>& values) const;
  /// Multiplier for a cluster (1.0 when unset).
  double ClusterMult(int cluster) const;
};

/// The eight built-in domain specifications, in a fixed order:
/// cars, motorcycles, clothing, cs_jobs, furniture, food_coupons,
/// instruments, jewellery.
const std::vector<DomainSpec>& AllDomainSpecs();

/// Spec lookup by domain name; nullptr when unknown.
const DomainSpec* FindDomainSpec(const std::string& domain);

}  // namespace cqads::datagen

#endif  // CQADS_DATAGEN_DOMAIN_SPEC_H_
