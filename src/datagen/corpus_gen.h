// Corpus generation for the WS-matrix. The paper built its word-correlation
// matrix from ~930k Wikipedia documents; we synthesize ad-like documents in
// which related descriptive words (same pool group: {black, grey, silver})
// co-occur close together while unrelated words are kept apart, so the
// co-occurrence x distance construction recovers the latent relatedness.
#ifndef CQADS_DATAGEN_CORPUS_GEN_H_
#define CQADS_DATAGEN_CORPUS_GEN_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "datagen/domain_spec.h"

namespace cqads::datagen {

/// Generates `docs_per_domain` documents per spec.
std::vector<std::string> GenerateCorpus(const std::vector<DomainSpec>& specs,
                                        std::size_t docs_per_domain,
                                        Rng* rng);

}  // namespace cqads::datagen

#endif  // CQADS_DATAGEN_CORPUS_GEN_H_
