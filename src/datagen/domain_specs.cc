#include "datagen/domain_spec.h"

#include <algorithm>

namespace cqads::datagen {

std::vector<std::string> DomainSpec::PoolValues(std::size_t attr) const {
  std::vector<std::string> out;
  auto it = pool_groups.find(attr);
  if (it == pool_groups.end()) return out;
  for (const auto& group : it->second) {
    out.insert(out.end(), group.begin(), group.end());
  }
  return out;
}

int DomainSpec::GroupOf(std::size_t attr, const std::string& value) const {
  const auto* groups = attr == features_attr
                           ? &feature_groups
                           : nullptr;
  if (groups == nullptr) {
    auto it = pool_groups.find(attr);
    if (it == pool_groups.end()) return -1;
    groups = &it->second;
  }
  for (std::size_t g = 0; g < groups->size(); ++g) {
    const auto& group = (*groups)[g];
    if (std::find(group.begin(), group.end(), value) != group.end()) {
      return static_cast<int>(g);
    }
  }
  return -1;
}

int DomainSpec::ClusterOf(const std::vector<std::string>& values) const {
  for (const auto& id : identities) {
    if (id.values == values) return id.cluster;
  }
  // Partial identity (e.g. make only): the cluster of the first identity
  // whose leading values match.
  for (const auto& id : identities) {
    if (values.size() < id.values.size() &&
        std::equal(values.begin(), values.end(), id.values.begin())) {
      return id.cluster;
    }
  }
  return -1;
}

double DomainSpec::ClusterMult(int cluster) const {
  auto it = cluster_value_mult.find(cluster);
  return it == cluster_value_mult.end() ? 1.0 : it->second;
}

namespace {

using db::AttrType;
using db::Attribute;
using db::DataKind;

Attribute Cat(std::string name, AttrType type,
              std::vector<std::string> aliases = {}) {
  Attribute a;
  a.name = std::move(name);
  a.attr_type = type;
  a.data_kind = DataKind::kCategorical;
  a.aliases = std::move(aliases);
  return a;
}

Attribute Num(std::string name, std::vector<std::string> units,
              std::vector<std::string> aliases = {}) {
  Attribute a;
  a.name = std::move(name);
  a.attr_type = AttrType::kTypeIII;
  a.data_kind = DataKind::kNumeric;
  a.unit_keywords = std::move(units);
  a.aliases = std::move(aliases);
  return a;
}

Attribute FeatureList(std::string name) {
  Attribute a;
  a.name = std::move(name);
  a.attr_type = AttrType::kTypeII;
  a.data_kind = DataKind::kTextList;
  return a;
}

DomainSpec MakeCars() {
  DomainSpec s;
  s.schema = db::Schema(
      "cars",
      {Cat("make", AttrType::kTypeI, {"maker", "brand"}),
       Cat("model", AttrType::kTypeI),
       Num("year", {}, {"year"}),
       Num("price", {"dollars", "dollar", "usd", "bucks"}, {"price", "cost"}),
       Num("mileage", {"miles", "mi"}, {"mileage"}),
       Cat("color", AttrType::kTypeII, {"color", "colour"}),
       Cat("transmission", AttrType::kTypeII, {"transmission"}),
       Cat("doors", AttrType::kTypeII),
       Cat("drivetrain", AttrType::kTypeII),
       FeatureList("features")});
  s.type_i_attrs = {0, 1};
  // Latent market segments: 0 compact economy, 1 midsize, 2 suv, 3 sports,
  // 4 luxury, 5 truck.
  s.identities = {
      {{"toyota", "corolla"}, 0, 1.4}, {{"honda", "civic"}, 0, 1.4},
      {{"ford", "focus"}, 0, 1.2},     {{"nissan", "sentra"}, 0, 1.0},
      {{"mazda", "mazda3"}, 0, 0.9},   {{"chevy", "cavalier"}, 0, 0.8},
      {{"toyota", "camry"}, 1, 1.5},   {{"honda", "accord"}, 1, 1.5},
      {{"chevy", "malibu"}, 1, 1.1},   {{"ford", "fusion"}, 1, 1.0},
      {{"nissan", "altima"}, 1, 1.1},  {{"mazda", "mazda6"}, 1, 0.8},
      {{"toyota", "highlander"}, 2, 1.0}, {{"honda", "pilot"}, 2, 0.9},
      {{"ford", "explorer"}, 2, 1.1},  {{"chevy", "tahoe"}, 2, 0.9},
      {{"jeep", "cherokee"}, 2, 1.0},
      {{"ford", "mustang"}, 3, 1.0},   {{"chevy", "corvette"}, 3, 0.7},
      {{"dodge", "challenger"}, 3, 0.8}, {{"nissan", "350z"}, 3, 0.6},
      {{"bmw", "m3"}, 4, 0.7},         {{"mercedes", "c300"}, 4, 0.7},
      {{"audi", "a4"}, 4, 0.7},        {{"lexus", "es350"}, 4, 0.6},
      {{"ford", "f150"}, 5, 1.2},      {{"chevy", "silverado"}, 5, 1.1},
      {{"dodge", "ram"}, 5, 1.0},      {{"toyota", "tundra"}, 5, 0.8},
  };
  s.pool_groups[5] = {{"black", "grey", "silver"},
                      {"white", "cream"},
                      {"blue", "navy"},
                      {"red", "maroon"},
                      {"green"},
                      {"gold", "tan"}};
  s.pool_groups[6] = {{"automatic"}, {"manual"}};
  s.pool_groups[7] = {{"2 door"}, {"4 door"}};
  s.pool_groups[8] = {{"2 wheel drive"}, {"4 wheel drive", "all wheel drive"}};
  s.features_attr = 9;
  s.feature_groups = {{"gps", "navigation system"},
                      {"cd player", "stereo"},
                      {"leather seats", "heated seats"},
                      {"sunroof", "moonroof"},
                      {"power steering", "power windows", "power door locks"},
                      {"anti lock brakes", "airbags"},
                      {"cruise control"},
                      {"bluetooth", "usb port"},
                      {"alloy wheels"},
                      {"backup camera"}};
  s.numerics[2] = {1988, 2011, true, 2004, 5.0, false};
  s.numerics[3] = {700, 90000, true, 11000, 4500, true};
  s.numerics[4] = {1000, 240000, true, 85000, 45000, false};
  s.cluster_value_mult = {{0, 0.65}, {1, 0.9},  {2, 1.3},
                          {3, 1.6},  {4, 2.4},  {5, 1.4}};
  s.domain_keywords = {"car", "cars", "vehicle", "sedan", "auto", "automobile"};
  return s;
}

DomainSpec MakeMotorcycles() {
  DomainSpec s;
  s.schema = db::Schema(
      "motorcycles",
      {Cat("make", AttrType::kTypeI, {"maker", "brand"}),
       Cat("model", AttrType::kTypeI),
       Num("year", {}, {"year"}),
       Num("price", {"dollars", "dollar", "usd", "bucks"}, {"price", "cost"}),
       Num("mileage", {"miles", "mi"}, {"mileage"}),
       Num("engine", {"cc"}, {"engine", "displacement"}),
       Cat("color", AttrType::kTypeII, {"color"}),
       FeatureList("features")});
  s.type_i_attrs = {0, 1};
  // Segments: 0 cruiser, 1 sport, 2 touring, 3 classic.
  s.identities = {
      {{"harley davidson", "sportster"}, 0, 1.5},
      {{"harley davidson", "fat boy"}, 0, 1.0},
      {{"harley davidson", "road king"}, 0, 0.9},
      {{"honda", "shadow"}, 0, 1.1},
      {{"yamaha", "v star"}, 0, 1.0},
      {{"honda", "cbr600"}, 1, 1.3},
      {{"yamaha", "r6"}, 1, 1.2},
      {{"kawasaki", "ninja"}, 1, 1.4},
      {{"suzuki", "gsxr"}, 1, 1.1},
      {{"ducati", "panigale"}, 1, 0.6},
      {{"honda", "gold wing"}, 2, 0.8},
      {{"kawasaki", "concours"}, 2, 0.6},
      {{"triumph", "bonneville"}, 3, 0.8},
      {{"triumph", "scrambler"}, 3, 0.6},
      {{"ducati", "monster"}, 3, 0.7},
  };
  s.pool_groups[6] = {{"black", "grey"},
                      {"red", "orange"},
                      {"blue"},
                      {"white"},
                      {"green"}};
  s.features_attr = 7;
  s.feature_groups = {{"saddlebags", "luggage rack"},
                      {"windshield", "fairing"},
                      {"abs brakes"},
                      {"heated grips"},
                      {"custom exhaust", "slip on exhaust"},
                      {"crash bars"}};
  s.numerics[2] = {1990, 2011, true, 2004, 4.5, false};
  s.numerics[3] = {800, 35000, true, 6500, 2500, true};
  s.numerics[4] = {500, 90000, true, 22000, 14000, false};
  s.numerics[5] = {125, 1800, true, 0, 0, false};
  s.cluster_value_mult = {{0, 1.4}, {1, 1.0}, {2, 1.6}, {3, 1.1}};
  s.domain_keywords = {"motorcycle", "motorcycles", "bike", "motorbike", "cycle"};
  return s;
}

DomainSpec MakeClothing() {
  DomainSpec s;
  s.schema = db::Schema(
      "clothing",
      {Cat("brand", AttrType::kTypeI, {"brand", "label"}),
       Cat("category", AttrType::kTypeI, {"item"}),
       Cat("size", AttrType::kTypeII, {"size"}),
       Cat("color", AttrType::kTypeII, {"color"}),
       Cat("material", AttrType::kTypeII, {"material", "fabric"}),
       Cat("gender", AttrType::kTypeII),
       Num("price", {"dollars", "dollar", "usd", "bucks"}, {"price", "cost"})});
  s.type_i_attrs = {0, 1};
  // Segments: 0 athletic, 1 casual, 2 designer.
  s.identities = {
      {{"nike", "shoes"}, 0, 1.5},    {{"nike", "shirt"}, 0, 1.1},
      {{"adidas", "shoes"}, 0, 1.3},  {{"adidas", "jacket"}, 0, 0.9},
      {{"puma", "shoes"}, 0, 0.8},    {{"under armour", "shirt"}, 0, 0.8},
      {{"gap", "jeans"}, 1, 1.1},     {{"gap", "shirt"}, 1, 1.0},
      {{"levis", "jeans"}, 1, 1.4},   {{"old navy", "shirt"}, 1, 1.0},
      {{"old navy", "dress"}, 1, 0.8}, {{"uniqlo", "jacket"}, 1, 0.7},
      {{"gucci", "dress"}, 2, 0.6},   {{"gucci", "shoes"}, 2, 0.6},
      {{"prada", "dress"}, 2, 0.5},   {{"armani", "jacket"}, 2, 0.5},
      {{"versace", "shirt"}, 2, 0.4},
  };
  s.pool_groups[2] = {{"small"}, {"medium"}, {"large", "extra large"}};
  s.pool_groups[3] = {{"black", "grey"},
                      {"white", "cream"},
                      {"blue", "navy"},
                      {"red", "pink"},
                      {"green", "olive"}};
  s.pool_groups[4] = {{"cotton", "polyester"},
                      {"denim"},
                      {"leather", "suede"},
                      {"silk", "satin"},
                      {"wool", "cashmere"}};
  s.pool_groups[5] = {{"mens"}, {"womens"}, {"unisex"}};
  s.numerics[6] = {5, 3000, true, 60, 35, true};
  s.cluster_value_mult = {{0, 1.2}, {1, 0.7}, {2, 8.0}};
  s.domain_keywords = {"clothing", "clothes", "apparel", "wear", "outfit", "fashion"};
  return s;
}

DomainSpec MakeCsJobs() {
  DomainSpec s;
  s.schema = db::Schema(
      "cs_jobs",
      {Cat("title", AttrType::kTypeI, {"position", "job"}),
       Cat("company", AttrType::kTypeII, {"company", "employer"}),
       Cat("language", AttrType::kTypeII, {"language"}),
       Cat("level", AttrType::kTypeII, {"level"}),
       Cat("location", AttrType::kTypeII, {"location"}),
       Num("salary", {"dollars", "dollar", "usd", "bucks"},
           {"salary", "pay", "compensation"}),
       Num("experience", {"years", "yrs"}, {"experience"})});
  s.type_i_attrs = {0};
  // Segments: 0 development, 1 data, 2 ops/infra, 3 qa.
  s.identities = {
      {{"software engineer"}, 0, 1.6},
      {{"web developer"}, 0, 1.3},
      {{"mobile developer"}, 0, 1.0},
      {{"frontend developer"}, 0, 1.0},
      {{"backend developer"}, 0, 1.1},
      {{"data scientist"}, 1, 1.0},
      {{"data engineer"}, 1, 0.9},
      {{"database administrator"}, 1, 1.0},
      {{"data analyst"}, 1, 0.9},
      {{"devops engineer"}, 2, 0.9},
      {{"systems administrator"}, 2, 1.0},
      {{"network engineer"}, 2, 0.9},
      {{"security analyst"}, 2, 0.7},
      {{"qa engineer"}, 3, 0.9},
      {{"test engineer"}, 3, 0.7},
  };
  s.pool_groups[1] = {{"google", "microsoft", "amazon", "facebook", "apple"},
                      {"ibm", "oracle", "intel", "hp"},
                      {"startup", "small business"}};
  s.pool_groups[2] = {{"java", "c++", "c#"},
                      {"python", "ruby", "perl"},
                      {"javascript", "typescript"},
                      {"sql"},
                      {"go", "rust"}};
  s.pool_groups[3] = {{"intern", "junior"},
                      {"mid level"},
                      {"senior", "lead", "principal"}};
  s.pool_groups[4] = {{"new york", "boston"},
                      {"san francisco", "seattle"},
                      {"austin", "denver"},
                      {"remote"}};
  s.numerics[5] = {30000, 260000, true, 85000, 30000, true};
  s.numerics[6] = {0, 15, true, 5, 3.5, false};
  s.cluster_value_mult = {{0, 1.1}, {1, 1.2}, {2, 1.0}, {3, 0.8}};
  s.domain_keywords = {"job", "jobs", "position", "career", "hiring", "developer", "engineer", "programming"};
  return s;
}

DomainSpec MakeFurniture() {
  DomainSpec s;
  s.schema = db::Schema(
      "furniture",
      {Cat("type", AttrType::kTypeI, {"piece"}),
       Cat("brand", AttrType::kTypeII, {"brand"}),
       Cat("material", AttrType::kTypeII, {"material"}),
       Cat("color", AttrType::kTypeII, {"color"}),
       Cat("room", AttrType::kTypeII, {"room"}),
       Cat("condition", AttrType::kTypeII, {"condition"}),
       Num("price", {"dollars", "dollar", "usd", "bucks"}, {"price", "cost"})});
  s.type_i_attrs = {0};
  // Segments: 0 seating, 1 tables, 2 bedroom, 3 storage.
  s.identities = {
      {{"sofa"}, 0, 1.5},        {{"couch"}, 0, 1.3},
      {{"loveseat"}, 0, 0.8},    {{"recliner"}, 0, 0.9},
      {{"armchair"}, 0, 0.8},
      {{"dining table"}, 1, 1.1}, {{"coffee table"}, 1, 1.2},
      {{"end table"}, 1, 0.7},   {{"desk"}, 1, 1.2},
      {{"bed frame"}, 2, 1.0},   {{"dresser"}, 2, 1.1},
      {{"nightstand"}, 2, 0.8},  {{"wardrobe"}, 2, 0.6},
      {{"bookshelf"}, 3, 1.0},   {{"cabinet"}, 3, 0.8},
      {{"tv stand"}, 3, 0.9},
  };
  s.pool_groups[1] = {{"ikea"},
                      {"ashley furniture"},
                      {"wayfair"},
                      {"pottery barn", "crate and barrel"}};
  s.pool_groups[2] = {{"oak", "pine", "walnut", "maple"},
                      {"leather", "fabric", "suede"},
                      {"metal", "steel"},
                      {"glass"}};
  s.pool_groups[3] = {{"black", "grey"},
                      {"white"},
                      {"brown", "tan"},
                      {"beige", "cream"}};
  s.pool_groups[4] = {{"living room"},
                      {"bedroom"},
                      {"office"},
                      {"dining room"}};
  s.pool_groups[5] = {{"new"}, {"used", "like new"}};
  s.numerics[6] = {20, 5000, true, 350, 220, true};
  s.cluster_value_mult = {{0, 1.3}, {1, 1.0}, {2, 1.1}, {3, 0.7}};
  s.domain_keywords = {"furniture", "furnishing", "home", "decor"};
  return s;
}

DomainSpec MakeFoodCoupons() {
  DomainSpec s;
  s.schema = db::Schema(
      "food_coupons",
      {Cat("restaurant", AttrType::kTypeI, {"restaurant"}),
       Cat("cuisine", AttrType::kTypeII, {"cuisine", "food"}),
       Cat("city", AttrType::kTypeII, {"city"}),
       Num("discount", {"percent", "off"}, {"discount"}),
       Num("minimum", {"dollars", "dollar", "usd"},
           {"minimum", "minimum purchase"})});
  s.type_i_attrs = {0};
  // Segments: 0 pizza, 1 burgers, 2 sit-down, 3 fast-casual.
  s.identities = {
      {{"pizza hut"}, 0, 1.3},     {{"dominos"}, 0, 1.3},
      {{"papa johns"}, 0, 1.0},    {{"little caesars"}, 0, 0.8},
      {{"mcdonalds"}, 1, 1.5},     {{"burger king"}, 1, 1.2},
      {{"wendys"}, 1, 1.0},        {{"five guys"}, 1, 0.7},
      {{"olive garden"}, 2, 1.0},  {{"red lobster"}, 2, 0.8},
      {{"applebees"}, 2, 0.9},     {{"chilis"}, 2, 0.8},
      {{"subway"}, 3, 1.3},        {{"taco bell"}, 3, 1.1},
      {{"panda express"}, 3, 0.9}, {{"chipotle"}, 3, 1.0},
      {{"kfc"}, 3, 0.9},
  };
  s.pool_groups[1] = {{"pizza", "italian"},
                      {"burgers", "american"},
                      {"seafood"},
                      {"mexican"},
                      {"chinese", "asian"},
                      {"chicken"},
                      {"sandwiches"}};
  s.pool_groups[2] = {{"provo", "orem"},
                      {"salt lake city", "sandy"},
                      {"ogden"},
                      {"lehi"}};
  s.numerics[3] = {5, 75, true, 25, 13, false};
  s.numerics[4] = {5, 100, true, 22, 14, false};
  s.domain_keywords = {"coupon", "coupons", "restaurant", "meal", "dining", "takeout", "voucher"};
  return s;
}

DomainSpec MakeInstruments() {
  DomainSpec s;
  s.schema = db::Schema(
      "instruments",
      {Cat("instrument", AttrType::kTypeI, {"instrument"}),
       Cat("brand", AttrType::kTypeII, {"brand", "maker"}),
       Cat("condition", AttrType::kTypeII, {"condition"}),
       Cat("color", AttrType::kTypeII, {"color", "finish"}),
       Num("price", {"dollars", "dollar", "usd", "bucks"}, {"price", "cost"}),
       Num("year", {}, {"year"})});
  s.type_i_attrs = {0};
  // Segments: 0 strings, 1 keys, 2 wind/brass, 3 percussion.
  s.identities = {
      {{"guitar"}, 0, 1.6},       {{"bass guitar"}, 0, 1.0},
      {{"violin"}, 0, 1.0},       {{"cello"}, 0, 0.6},
      {{"banjo"}, 0, 0.5},        {{"mandolin"}, 0, 0.4},
      {{"piano"}, 1, 1.1},        {{"keyboard"}, 1, 1.2},
      {{"organ"}, 1, 0.4},
      {{"trumpet"}, 2, 0.9},      {{"trombone"}, 2, 0.6},
      {{"saxophone"}, 2, 0.9},    {{"clarinet"}, 2, 0.7},
      {{"flute"}, 2, 0.8},
      {{"drum set"}, 3, 0.9},     {{"snare drum"}, 3, 0.5},
      {{"xylophone"}, 3, 0.3},
  };
  s.pool_groups[1] = {{"fender", "gibson", "ibanez"},
                      {"yamaha", "casio", "roland"},
                      {"steinway", "baldwin"},
                      {"selmer", "bach"},
                      {"pearl", "ludwig"}};
  s.pool_groups[2] = {{"new"}, {"used", "refurbished"}};
  s.pool_groups[3] = {{"black"},
                      {"white"},
                      {"sunburst", "natural"},
                      {"red"}};
  s.numerics[4] = {30, 20000, true, 800, 600, true};
  s.numerics[5] = {1950, 2011, true, 1998, 12, false};
  s.cluster_value_mult = {{0, 0.9}, {1, 3.0}, {2, 1.0}, {3, 1.2}};
  s.domain_keywords = {"instrument", "instruments", "music", "musical", "band", "play"};
  return s;
}

DomainSpec MakeJewellery() {
  DomainSpec s;
  s.schema = db::Schema(
      "jewellery",
      {Cat("type", AttrType::kTypeI, {"piece"}),
       Cat("material", AttrType::kTypeII, {"material", "metal"}),
       Cat("gemstone", AttrType::kTypeII, {"gemstone", "stone"}),
       Cat("brand", AttrType::kTypeII, {"brand"}),
       Num("carat", {"carat", "carats", "ct"}, {"carat"}),
       Num("price", {"dollars", "dollar", "usd", "bucks"}, {"price", "cost"})});
  s.type_i_attrs = {0};
  // Segments: 0 neck, 1 hand, 2 wrist, 3 ears.
  s.identities = {
      {{"necklace"}, 0, 1.3}, {{"pendant"}, 0, 1.0}, {{"choker"}, 0, 0.5},
      {{"ring"}, 1, 1.6},     {{"wedding band"}, 1, 0.9},
      {{"bracelet"}, 2, 1.1}, {{"watch"}, 2, 1.2},   {{"bangle"}, 2, 0.5},
      {{"earrings"}, 3, 1.2}, {{"studs"}, 3, 0.6},
  };
  s.pool_groups[1] = {{"gold", "rose gold", "white gold"},
                      {"silver", "platinum"},
                      {"titanium", "stainless steel"}};
  s.pool_groups[2] = {{"diamond"},
                      {"ruby", "garnet"},
                      {"emerald"},
                      {"sapphire", "topaz"},
                      {"pearl", "opal"}};
  s.pool_groups[3] = {{"tiffany", "cartier"},
                      {"pandora", "swarovski"},
                      {"kay", "zales"}};
  s.numerics[4] = {0.25, 5.0, false, 1.2, 0.8, false};
  s.numerics[5] = {20, 50000, true, 1500, 1200, true};
  s.cluster_value_mult = {{0, 1.0}, {1, 1.8}, {2, 1.3}, {3, 0.8}};
  s.domain_keywords = {"jewellery", "jewelry", "gem", "accessory", "fine"};
  return s;
}

}  // namespace

const std::vector<DomainSpec>& AllDomainSpecs() {
  static const auto* kSpecs = new std::vector<DomainSpec>{
      MakeCars(),        MakeMotorcycles(), MakeClothing(), MakeCsJobs(),
      MakeFurniture(),   MakeFoodCoupons(), MakeInstruments(),
      MakeJewellery(),
  };
  return *kSpecs;
}

const DomainSpec* FindDomainSpec(const std::string& domain) {
  for (const auto& spec : AllDomainSpecs()) {
    if (spec.schema.domain() == domain) return &spec;
  }
  return nullptr;
}

}  // namespace cqads::datagen
