#include "datagen/question_gen.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "core/boolean_assembler.h"
#include "core/condition_builder.h"
#include "text/shorthand.h"

namespace cqads::datagen {

namespace {

db::Value NumValue(double d) {
  if (d == std::floor(d) && std::abs(d) < 9e15) {
    return db::Value::Int(static_cast<std::int64_t>(d));
  }
  return db::Value::Real(d);
}

db::ExprPtr UnitExpr(const IntentUnit& unit) {
  db::ExprPtr inner;
  switch (unit.kind) {
    case IntentUnit::Kind::kIdentity: {
      std::vector<db::ExprPtr> eqs;
      for (const auto& [attr, value] : unit.identity) {
        db::Predicate p;
        p.attr = attr;
        p.op = db::CompareOp::kEq;
        p.value = db::Value::Text(value);
        eqs.push_back(db::Expr::MakePredicate(std::move(p)));
      }
      inner = db::Expr::MakeAnd(std::move(eqs));
      break;
    }
    case IntentUnit::Kind::kTypeII: {
      std::vector<db::ExprPtr> eqs;
      for (const auto& v : unit.values) {
        db::Predicate p;
        p.attr = unit.attr;
        p.op = db::CompareOp::kEq;
        p.value = db::Value::Text(v);
        eqs.push_back(db::Expr::MakePredicate(std::move(p)));
      }
      inner = db::Expr::MakeOr(std::move(eqs));
      break;
    }
    case IntentUnit::Kind::kTypeIII: {
      db::Predicate p;
      p.attr = unit.attr;
      p.op = unit.op;
      p.value = NumValue(unit.lo);
      if (unit.op == db::CompareOp::kBetween) p.value_hi = NumValue(unit.hi);
      inner = db::Expr::MakePredicate(std::move(p));
      break;
    }
  }
  return unit.negated ? db::Expr::MakeNot(inner) : inner;
}

const std::vector<std::string>& FillerPrefixes() {
  static const auto* kFillers = new std::vector<std::string>{
      "", "find ", "show me ", "i want a ", "do you have a ",
      "looking for a ", "any ", "i need a ",
  };
  return *kFillers;
}

/// Numeric attributes of the spec that have a generation model, preferring
/// money ones (the dominant bound in ads questions).
std::vector<std::size_t> BoundableAttrs(const DomainSpec& spec) {
  std::vector<std::size_t> out;
  for (const auto& [attr, gen] : spec.numerics) out.push_back(attr);
  return out;
}

double RoundTarget(double v, const NumericGenSpec& gen) {
  double span = gen.max - gen.min;
  double step = 1.0;
  if (span > 100000) {
    step = 1000.0;
  } else if (span > 5000) {
    step = 500.0;
  } else if (span > 100) {
    step = 5.0;
  } else if (!gen.integer) {
    return std::round(v * 2.0) / 2.0;
  }
  double rounded = std::round(v / step) * step;
  return std::clamp(rounded, gen.min, gen.max);
}

std::string FormatNumberText(double v, bool money, Rng* rng) {
  const std::int64_t iv = static_cast<std::int64_t>(std::round(v));
  if (v != std::floor(v)) return FormatDouble(v, 1);
  const std::size_t style = rng->UniformIndex(money ? 4 : 2);
  switch (style) {
    case 0:
      return std::to_string(iv);
    case 1:
      if (iv >= 1000 && iv % 1000 == 0) {
        return std::to_string(iv / 1000) + "k";
      }
      return std::to_string(iv);
    case 2:
      return "$" + WithThousandsSeparators(iv);
    default:
      return "$" + std::to_string(iv);
  }
}

/// Renders a Type III bound ("less than 5000 dollars", "newer than 2005",
/// "between $2,000 and $7,000"). `incomplete` omits all attribute cues.
std::string BoundPhrase(const DomainSpec& spec, const IntentUnit& unit,
                        bool incomplete, Rng* rng) {
  const db::Attribute& attr = spec.schema.attribute(unit.attr);
  const bool money = core::IsMoneyAttribute(attr);
  const bool is_year = attr.name == "year";

  auto unit_suffix = [&](const std::string& num) -> std::string {
    if (incomplete) return num;
    if (money) {
      if (num[0] == '$') return num;
      if (rng->Bernoulli(0.5)) return num + " dollars";
      return "$" + num;
    }
    if (!attr.unit_keywords.empty()) {
      return num + " " + attr.unit_keywords[0];
    }
    return num;
  };

  const std::string lo_text = FormatNumberText(
      unit.lo, money && !incomplete && rng->Bernoulli(0.4), rng);

  switch (unit.op) {
    case db::CompareOp::kLt:
    case db::CompareOp::kLe: {
      if (is_year && !incomplete && rng->Bernoulli(0.5)) {
        return "older than " + lo_text;
      }
      static const char* kPhrases[] = {"less than", "under", "below",
                                       "at most"};
      std::string phrase = kPhrases[rng->UniformIndex(3)];
      if (unit.op == db::CompareOp::kLe) phrase = "at most";
      // Unit-less attributes (year) need their name spelled out or the
      // number is genuinely ambiguous.
      if (!incomplete && !money &&
          (is_year || (rng->Bernoulli(0.5) && !attr.aliases.empty()))) {
        return attr.aliases[0] + " " + phrase + " " + lo_text;
      }
      return phrase + " " + unit_suffix(lo_text);
    }
    case db::CompareOp::kGt:
    case db::CompareOp::kGe: {
      if (is_year && !incomplete && rng->Bernoulli(0.5)) {
        return "newer than " + lo_text;
      }
      static const char* kPhrases[] = {"more than", "over", "above"};
      std::string phrase = unit.op == db::CompareOp::kGe
                               ? "at least"
                               : kPhrases[rng->UniformIndex(3)];
      if (!incomplete && !money &&
          (is_year || (rng->Bernoulli(0.5) && !attr.aliases.empty()))) {
        return attr.aliases[0] + " " + phrase + " " + lo_text;
      }
      return phrase + " " + unit_suffix(lo_text);
    }
    case db::CompareOp::kBetween: {
      const std::string hi_text = FormatNumberText(unit.hi, false, rng);
      return "between " + lo_text + " and " + unit_suffix(hi_text);
    }
    default:  // kEq: a bare or unit-suffixed number
      return unit_suffix(lo_text);
  }
}

/// Known shorthand variants of a categorical value (validated against the
/// matcher so the generator and CQAds agree on what counts as shorthand).
std::vector<std::string> ShorthandVariants(const std::string& value) {
  std::vector<std::string> candidates;
  // no-space and hyphen variants
  candidates.push_back(ReplaceAll(value, " ", ""));
  candidates.push_back(ReplaceAll(value, " ", "-"));
  // digits + compressed words ("2 door" -> "2dr")
  auto words = SplitWhitespace(value);
  std::string compressed;
  for (const auto& w : words) {
    if (IsDigits(w)) {
      compressed += w;
    } else if (w.size() > 2) {
      compressed += w.front();
      compressed += w.back();
    } else {
      compressed += w;
    }
  }
  candidates.push_back(compressed);
  candidates.push_back(compressed + "s");

  std::vector<std::string> out;
  for (const auto& c : candidates) {
    if (c == value) continue;
    if (text::IsShorthandMatch(c, value)) out.push_back(c);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string MisspellWord(const std::string& word, Rng* rng) {
  if (word.size() < 5) return word;
  std::string out = word;
  if (rng->Bernoulli(0.5)) {
    // Swap two adjacent interior letters.
    std::size_t i = 1 + rng->UniformIndex(out.size() - 3);
    std::swap(out[i], out[i + 1]);
  } else {
    // Drop one interior letter.
    std::size_t i = 1 + rng->UniformIndex(out.size() - 2);
    out.erase(i, 1);
  }
  return out;
}

struct SegmentText {
  std::vector<std::string> descriptor_fragments;  // before the identity
  std::string identity_text;
  std::vector<std::string> bound_fragments;       // after the identity
};

}  // namespace

db::ExprPtr IntentToExpr(
    const std::vector<std::vector<IntentUnit>>& segments) {
  std::vector<db::ExprPtr> seg_exprs;
  for (const auto& seg : segments) {
    std::vector<db::ExprPtr> parts;
    for (const auto& u : seg) parts.push_back(UnitExpr(u));
    if (!parts.empty()) seg_exprs.push_back(db::Expr::MakeAnd(std::move(parts)));
  }
  if (seg_exprs.empty()) return nullptr;
  return db::Expr::MakeOr(std::move(seg_exprs));
}

std::vector<GeneratedQuestion> GenerateQuestions(const DomainSpec& spec,
                                                 const db::Table& table,
                                                 std::size_t n,
                                                 const QuestionGenOptions& opts,
                                                 Rng* rng) {
  (void)table;
  std::vector<GeneratedQuestion> out;
  out.reserve(n);

  // Type II attrs usable as descriptors (categorical pools + features).
  std::vector<std::size_t> t2_attrs;
  for (const auto& [attr, groups] : spec.pool_groups) {
    if (spec.schema.attribute(attr).attr_type == db::AttrType::kTypeII) {
      t2_attrs.push_back(attr);
    }
  }
  const bool has_features = spec.features_attr != kNoFeatureAttr;
  const std::vector<std::size_t> boundable = BoundableAttrs(spec);

  auto pick_identity_unit = [&](bool allow_partial) -> IntentUnit {
    const IdentitySpec& id =
        spec.identities[rng->UniformIndex(spec.identities.size())];
    IntentUnit unit;
    unit.kind = IntentUnit::Kind::kIdentity;
    unit.cluster = id.cluster;
    const bool partial = allow_partial && id.values.size() > 1 &&
                         rng->Bernoulli(opts.p_partial_identity);
    const std::size_t take = partial ? 1 : id.values.size();
    for (std::size_t k = 0; k < take; ++k) {
      unit.identity.emplace_back(spec.type_i_attrs[k], id.values[k]);
    }
    return unit;
  };

  auto pick_type_ii_unit = [&](bool prefer_feature) -> IntentUnit {
    IntentUnit unit;
    unit.kind = IntentUnit::Kind::kTypeII;
    if (prefer_feature && has_features) {
      unit.attr = spec.features_attr;
      const auto& groups = spec.feature_groups;
      std::size_t g = rng->UniformIndex(groups.size());
      unit.values.push_back(groups[g][rng->UniformIndex(groups[g].size())]);
      unit.groups.push_back(static_cast<int>(g));
    } else {
      unit.attr = t2_attrs[rng->UniformIndex(t2_attrs.size())];
      const auto& groups = spec.pool_groups.at(unit.attr);
      std::size_t g = rng->UniformIndex(groups.size());
      unit.values.push_back(groups[g][rng->UniformIndex(groups[g].size())]);
      unit.groups.push_back(static_cast<int>(g));
    }
    return unit;
  };

  auto pick_bound_unit = [&](int cluster) -> IntentUnit {
    IntentUnit unit;
    unit.kind = IntentUnit::Kind::kTypeIII;
    unit.attr = boundable[rng->UniformIndex(boundable.size())];
    // Prefer price when available: it dominates real ads questions.
    if (auto price = spec.schema.Resolve("price");
        price && rng->Bernoulli(0.6)) {
      unit.attr = *price;
    }
    // Draw the target from the OBSERVED table range: users bound against
    // the market they see, and §4.2.2's range rule uses observed values.
    const NumericGenSpec& gen = spec.numerics.at(unit.attr);
    double lo_obs = gen.min, hi_obs = gen.max;
    if (auto range = table.NumericRange(unit.attr); range.ok()) {
      lo_obs = range.value().first;
      hi_obs = range.value().second;
    }
    // Cluster-scaled attributes (price): a user asking about a luxury
    // identity quotes luxury-market numbers, not the global distribution.
    if (gen.cluster_scaled && cluster >= 0) {
      double center = gen.base_mean * spec.ClusterMult(cluster);
      double local = 2.5 * gen.stddev * spec.ClusterMult(cluster);
      lo_obs = std::max(lo_obs, center - local);
      hi_obs = std::min(hi_obs, center + local);
      if (lo_obs >= hi_obs) {
        lo_obs = gen.min;
        hi_obs = gen.max;
      }
    }
    double span = hi_obs - lo_obs;
    double draw =
        rng->UniformReal(lo_obs + 0.15 * span, lo_obs + 0.85 * span);
    unit.lo = RoundTarget(draw, gen);
    double r = rng->UniformReal(0.0, 1.0);
    if (r < 0.62) {
      unit.op = db::CompareOp::kLt;
    } else if (r < 0.8) {
      unit.op = db::CompareOp::kGt;
    } else if (r < 0.92) {
      unit.op = db::CompareOp::kBetween;
      double hi = RoundTarget(
          std::min(hi_obs, unit.lo + rng->UniformReal(0.1, 0.4) * span),
          gen);
      if (hi <= unit.lo) hi = std::min(hi_obs, unit.lo + span * 0.2);
      unit.hi = hi;
    } else {
      unit.op = db::CompareOp::kEq;
      // Equality targets integers ("2004 honda accord" style).
      unit.lo = std::round(unit.lo);
    }
    return unit;
  };

  for (std::size_t qi = 0; qi < n; ++qi) {
    GeneratedQuestion q;
    q.domain = spec.schema.domain();

    const bool is_bool = rng->Bernoulli(opts.p_boolean);
    const bool is_explicit =
        is_bool && rng->Bernoulli(opts.p_explicit_given_boolean);
    q.is_boolean = is_bool;
    q.is_explicit_boolean = is_explicit;

    enum class BoolKind { kNone, kNegation, kMutex, kMultiIdentity };
    BoolKind bool_kind = BoolKind::kNone;
    if (is_bool) {
      double r = rng->UniformReal(0.0, 1.0);
      bool_kind = r < 0.4 ? BoolKind::kNegation
                          : (r < 0.7 ? BoolKind::kMutex
                                     : BoolKind::kMultiIdentity);
    }

    // --- build intent segments ---
    std::vector<std::vector<IntentUnit>> segments;
    std::vector<SegmentText> seg_texts;

    const std::size_t n_segments =
        bool_kind == BoolKind::kMultiIdentity ? 2 : 1;
    const bool want_superlative =
        bool_kind == BoolKind::kNone && rng->Bernoulli(opts.p_superlative);
    bool incomplete = !want_superlative && rng->Bernoulli(opts.p_incomplete);

    for (std::size_t si = 0; si < n_segments; ++si) {
      std::vector<IntentUnit> seg;
      SegmentText st;

      IntentUnit identity = pick_identity_unit(n_segments == 1);
      std::vector<std::string> id_words;
      for (const auto& [attr, value] : identity.identity) {
        id_words.push_back(value);
      }
      st.identity_text = Join(id_words, " ");
      seg.push_back(identity);

      // Descriptors (only the first segment gets several).
      std::size_t n_t2 = si == 0 ? rng->UniformIndex(opts.max_type_ii + 1)
                                 : rng->UniformIndex(2);
      if (bool_kind == BoolKind::kNegation && n_t2 == 0) n_t2 = 1;
      if (bool_kind == BoolKind::kMutex) n_t2 = std::max<std::size_t>(n_t2, 1);

      std::vector<std::size_t> used_attrs;
      for (std::size_t t = 0; t < n_t2; ++t) {
        // Mutually-exclusive pairs must come from single-valued categorical
        // attributes; feature-list values can co-exist (rule 2a).
        const bool mutex_slot =
            t == 0 && bool_kind == BoolKind::kMutex && si == 0;
        IntentUnit u =
            pick_type_ii_unit(!mutex_slot && rng->Bernoulli(0.35));
        if (std::find(used_attrs.begin(), used_attrs.end(), u.attr) !=
            used_attrs.end()) {
          continue;
        }
        used_attrs.push_back(u.attr);

        if (mutex_slot) {
          // Add a second, mutually-exclusive value of the same attribute.
          const auto& groups = spec.pool_groups.at(u.attr);
          for (int attempts = 0; attempts < 8; ++attempts) {
            std::size_t g = rng->UniformIndex(groups.size());
            const std::string& v = groups[g][rng->UniformIndex(groups[g].size())];
            if (v != u.values[0]) {
              u.values.push_back(v);
              u.groups.push_back(static_cast<int>(g));
              break;
            }
          }
        }
        if (t == 0 && bool_kind == BoolKind::kNegation && si == 0) {
          u.negated = true;
          q.has_negation = true;
        }

        // Render descriptor.
        std::string frag;
        const bool feature = u.attr == spec.features_attr;
        if (u.negated) {
          static const char* kNegs[] = {"not", "without", "no"};
          frag = std::string(kNegs[rng->UniformIndex(3)]) + " " + u.values[0];
        } else if (u.values.size() > 1) {
          frag = u.values[0] +
                 (is_explicit ? " or " : " ") + u.values[1];
        } else if (feature) {
          frag = "with " + u.values[0];
        } else {
          frag = u.values[0];
        }
        st.descriptor_fragments.push_back(frag);
        seg.push_back(std::move(u));
      }

      // Bound (last segment only — trailing bounds right-associate with the
      // final identity under CQAds' rules, keeping intent and reading
      // aligned — and not alongside a superlative).
      if (si + 1 == n_segments && !want_superlative && rng->Bernoulli(0.55)) {
        IntentUnit b = pick_bound_unit(seg.empty() ? -1 : seg[0].cluster);
        // Equality bounds render as bare numbers: inherently incomplete
        // unless the attribute is year-like and unambiguous to a human.
        bool this_incomplete = incomplete || b.op == db::CompareOp::kEq;
        q.is_incomplete = q.is_incomplete || this_incomplete;
        st.bound_fragments.push_back(
            BoundPhrase(spec, b, this_incomplete, rng));
        seg.push_back(b);
      }

      segments.push_back(std::move(seg));
      seg_texts.push_back(std::move(st));
    }

    // Superlative.
    if (want_superlative) {
      struct SuperChoice {
        const char* alias;
        const char* min_word;
        const char* max_word;
      };
      static const SuperChoice kChoices[] = {
          {"price", "cheapest", "most expensive"},
          {"year", "oldest", "newest"},
          {"salary", "lowest paying", "highest paying"},
      };
      std::vector<std::pair<std::size_t, std::string>> usable;
      for (const auto& choice : kChoices) {
        auto attr = spec.schema.Resolve(choice.alias);
        if (!attr) continue;
        bool ascending = rng->Bernoulli(0.6);
        usable.emplace_back(*attr, ascending ? choice.min_word
                                             : choice.max_word);
        if (!usable.empty()) {
          q.superlative = db::Superlative{*attr, ascending};
          q.has_superlative = true;
          // Lexical form: complete superlative word before everything.
          seg_texts[0].descriptor_fragments.insert(
              seg_texts[0].descriptor_fragments.begin(), usable.back().second);
          break;
        }
      }
    }

    // --- assemble text ---
    std::string text = FillerPrefixes()[rng->UniformIndex(
        FillerPrefixes().size())];
    for (std::size_t si = 0; si < seg_texts.size(); ++si) {
      // Implicit multi-identity questions juxtapose the alternatives
      // ("toyota corolla honda accord"); only explicit ones say "or".
      if (si > 0) text += is_explicit ? " or a " : " ";
      const SegmentText& st = seg_texts[si];
      std::vector<std::string> parts = st.descriptor_fragments;
      parts.push_back(st.identity_text);
      for (const auto& b : st.bound_fragments) parts.push_back(b);
      std::string joined;
      for (std::size_t p = 0; p < parts.size(); ++p) {
        if (p > 0) {
          joined += (is_explicit && p == 1 && parts.size() > 2 &&
                     !q.has_negation && rng->Bernoulli(0.5))
                        ? " and "
                        : " ";
        }
        joined += parts[p];
      }
      text += joined;
    }

    // --- perturbations ---
    if (rng->Bernoulli(opts.p_shorthand)) {
      // Replace a multi-word Type II value by a shorthand variant.
      for (auto& seg : segments) {
        bool done = false;
        for (auto& u : seg) {
          if (u.kind != IntentUnit::Kind::kTypeII || u.negated) continue;
          for (const auto& v : u.values) {
            if (v.find(' ') == std::string::npos) continue;
            auto variants = ShorthandVariants(v);
            if (variants.empty()) continue;
            const std::string& variant =
                variants[rng->UniformIndex(variants.size())];
            std::string replaced = ReplaceAll(text, v, variant);
            if (replaced != text) {
              text = std::move(replaced);
              q.has_shorthand = true;
              done = true;
              break;
            }
          }
          if (done) break;
        }
        if (done) break;
      }
    }
    if (rng->Bernoulli(opts.p_missing_space) &&
        seg_texts[0].identity_text.find(' ') != std::string::npos) {
      std::string merged = ReplaceAll(seg_texts[0].identity_text, " ", "");
      text = ReplaceAll(text, seg_texts[0].identity_text, merged);
      q.has_missing_space = true;
    }
    if (rng->Bernoulli(opts.p_misspell)) {
      // Misspell the longest identity word (recoverable by the corrector).
      auto words = SplitWhitespace(seg_texts[0].identity_text);
      std::sort(words.begin(), words.end(),
                [](const auto& a, const auto& b) {
                  return a.size() > b.size();
                });
      if (!words.empty() && words[0].size() >= 5 && IsAlpha(words[0])) {
        std::string bad = MisspellWord(words[0], rng);
        std::string replaced = ReplaceAll(text, words[0], bad);
        if (replaced != text) {
          text = std::move(replaced);
          q.has_misspelling = true;
        }
      }
    }

    q.text = text;
    q.segments = std::move(segments);
    q.oracle.where = IntentToExpr(q.segments);
    q.oracle.superlative = q.superlative;
    q.oracle.limit = 30;
    q.oracle_interpretation =
        core::InterpretationString(spec.schema, q.oracle.where);
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace cqads::datagen
