// The "world": everything the experiments need, wired together — generated
// ads tables for all eight domains, the WS-matrix from the synthetic corpus,
// per-domain query logs and TI-matrices, and a fully configured CqadsEngine.
// One seed reproduces the whole evaluation bit-for-bit.
#ifndef CQADS_DATAGEN_WORLD_H_
#define CQADS_DATAGEN_WORLD_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cqads_engine.h"
#include "datagen/domain_spec.h"
#include "db/database.h"
#include "qlog/query_log.h"
#include "wordsim/ws_matrix.h"

namespace cqads::datagen {

struct WorldOptions {
  std::uint64_t seed = 20111130;  ///< the paper's arXiv date
  std::size_t ads_per_domain = 500;  ///< §4.1.4: 500 ads per domain
  std::size_t sessions_per_domain = 1500;
  std::size_t corpus_docs_per_domain = 200;
  core::CqadsEngine::Options engine_options;
  /// Restrict to these domains (empty = all eight).
  std::vector<std::string> domains;
};

class World {
 public:
  /// Builds the full world. Returned by unique_ptr: the engine holds
  /// pointers into the world's tables and matrices, so the world must not
  /// move.
  static Result<std::unique_ptr<World>> Build(const WorldOptions& options);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  const db::Database& database() const { return database_; }
  const db::Table* table(const std::string& domain) const {
    return database_.GetTable(domain);
  }
  const DomainSpec* spec(const std::string& domain) const;
  const core::CqadsEngine& engine() const { return *engine_; }
  /// Mutable engine access for benches that flip engine options (e.g. the
  /// planner-vs-seed parity and efficiency comparisons).
  core::CqadsEngine& mutable_engine() { return *engine_; }
  const wordsim::WsMatrix& ws_matrix() const { return ws_; }
  const qlog::QueryLog* query_log(const std::string& domain) const;
  std::vector<std::string> domains() const { return database_.Domains(); }
  const WorldOptions& options() const { return options_; }

 private:
  World() = default;

  WorldOptions options_;
  db::Database database_;
  wordsim::WsMatrix ws_;
  std::map<std::string, qlog::QueryLog> logs_;
  std::unique_ptr<core::CqadsEngine> engine_;
};

}  // namespace cqads::datagen

#endif  // CQADS_DATAGEN_WORLD_H_
