#include "datagen/world.h"

#include <algorithm>

#include "common/rng.h"
#include "datagen/ads_generator.h"
#include "datagen/corpus_gen.h"
#include "qlog/log_generator.h"
#include "qlog/ti_matrix.h"

namespace cqads::datagen {

namespace {

/// Log-generator spec for a domain: full identities plus the leading Type I
/// values on their own (so TI_Sim covers both "honda accord" <-> "toyota
/// camry" and "honda" <-> "toyota" lookups). A leading value's cluster is
/// the majority cluster of its identities.
qlog::LogGenSpec MakeLogSpec(const DomainSpec& spec,
                             std::size_t num_sessions) {
  qlog::LogGenSpec log_spec;
  log_spec.num_sessions = num_sessions;

  std::map<std::string, std::map<int, int>> leading_clusters;
  for (const auto& id : spec.identities) {
    std::string joined;
    for (const auto& v : id.values) {
      if (!joined.empty()) joined += " ";
      joined += v;
    }
    log_spec.values.push_back(joined);
    log_spec.cluster_of.push_back(id.cluster);
    if (id.values.size() > 1) {
      leading_clusters[id.values[0]][id.cluster]++;
    }
  }
  for (const auto& [leading, counts] : leading_clusters) {
    int best_cluster = 0, best_count = -1;
    for (const auto& [cluster, count] : counts) {
      if (count > best_count) {
        best_count = count;
        best_cluster = cluster;
      }
    }
    log_spec.values.push_back(leading);
    log_spec.cluster_of.push_back(best_cluster);
  }
  return log_spec;
}

}  // namespace

const DomainSpec* World::spec(const std::string& domain) const {
  return FindDomainSpec(domain);
}

const qlog::QueryLog* World::query_log(const std::string& domain) const {
  auto it = logs_.find(domain);
  return it == logs_.end() ? nullptr : &it->second;
}

Result<std::unique_ptr<World>> World::Build(const WorldOptions& options) {
  auto world = std::unique_ptr<World>(new World());
  world->options_ = options;
  Rng rng(options.seed);

  std::vector<const DomainSpec*> specs;
  for (const auto& spec : AllDomainSpecs()) {
    if (!options.domains.empty() &&
        std::find(options.domains.begin(), options.domains.end(),
                  spec.schema.domain()) == options.domains.end()) {
      continue;
    }
    specs.push_back(&spec);
  }
  if (specs.empty()) return Status::InvalidArgument("no domains selected");

  // 1. Ads tables.
  for (const DomainSpec* spec : specs) {
    Rng ads_rng = rng.Fork();
    auto table = GenerateAds(*spec, options.ads_per_domain, &ads_rng);
    if (!table.ok()) return table.status();
    CQADS_RETURN_NOT_OK(world->database_.AddTable(std::move(table).value()));
  }

  // 2. WS-matrix from the synthetic corpus (shared across domains, like the
  //    paper's single Wikipedia-derived matrix).
  {
    Rng corpus_rng = rng.Fork();
    std::vector<DomainSpec> spec_copies;
    for (const DomainSpec* s : specs) spec_copies.push_back(*s);
    auto corpus = GenerateCorpus(spec_copies, options.corpus_docs_per_domain,
                                 &corpus_rng);
    world->ws_ = wordsim::WsMatrix::Build(corpus);
  }

  // 3. Engine with per-domain query logs and TI-matrices.
  world->engine_ =
      std::make_unique<core::CqadsEngine>(options.engine_options);
  world->engine_->SetWordSimilarity(&world->ws_);
  for (const DomainSpec* spec : specs) {
    Rng log_rng = rng.Fork();
    qlog::QueryLog log = qlog::GenerateQueryLog(
        MakeLogSpec(*spec, options.sessions_per_domain), &log_rng);
    qlog::TiMatrix ti = qlog::TiMatrix::Build(log);
    world->logs_.emplace(spec->schema.domain(), std::move(log));
    CQADS_RETURN_NOT_OK(world->engine_->AddDomain(
        world->database_.GetTable(spec->schema.domain()), std::move(ti)));
  }
  // Extra classifier documents: real ads carry domain words ("car for
  // sale", "motorcycle"), which generated record texts lack. Each extra doc
  // pairs domain keywords with a sampled identity, mimicking ad titles.
  std::vector<classify::LabelledDoc> extra;
  {
    Rng kw_rng = rng.Fork();
    for (const DomainSpec* spec : specs) {
      if (spec->domain_keywords.empty()) continue;
      for (int d = 0; d < 25; ++d) {
        std::string text;
        for (const auto& kw : spec->domain_keywords) {
          text += kw;
          text += " ";
        }
        const auto& id =
            spec->identities[kw_rng.UniformIndex(spec->identities.size())];
        for (const auto& v : id.values) {
          text += v;
          text += " ";
        }
        extra.push_back({text, spec->schema.domain()});
      }
    }
  }
  CQADS_RETURN_NOT_OK(world->engine_->TrainClassifierWithExtra(extra));
  return world;
}

}  // namespace cqads::datagen
