// Question generation: synthesizes the Facebook-survey questions of §5.1
// from latent intents. Every question carries its ground-truth intent
// (units, oracle query, canonical interpretation), which is what the paper
// obtained by reading the surveyed users' questions. Knobs control the
// error phenomena §4.2 handles (misspellings, missing spaces, shorthand,
// incomplete values) and the Boolean phenomena §4.4 handles (negation,
// mutually-exclusive values, explicit AND/OR), at the papers' observed
// rates (~1/5 Boolean, ~5% explicit Boolean).
#ifndef CQADS_DATAGEN_QUESTION_GEN_H_
#define CQADS_DATAGEN_QUESTION_GEN_H_

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datagen/domain_spec.h"
#include "db/query.h"
#include "db/table.h"

namespace cqads::datagen {

/// One ground-truth unit of the questioner's intent.
struct IntentUnit {
  enum class Kind { kIdentity, kTypeII, kTypeIII };
  Kind kind = Kind::kTypeII;

  /// kIdentity: the (attr, value) pairs and the latent segment.
  std::vector<std::pair<std::size_t, std::string>> identity;
  int cluster = -1;

  /// kTypeII: attribute, requested value(s) (>1 = intended OR of mutually
  /// exclusive values), and their related groups.
  std::size_t attr = kNoFeatureAttr;
  std::vector<std::string> values;
  std::vector<int> groups;

  /// kTypeIII.
  db::CompareOp op = db::CompareOp::kEq;
  double lo = 0.0;
  double hi = 0.0;

  bool negated = false;
};

struct GeneratedQuestion {
  std::string domain;
  std::string text;
  /// Intent: OR over segments, AND over each segment's units.
  std::vector<std::vector<IntentUnit>> segments;
  std::optional<db::Superlative> superlative;
  /// Executable ground truth over the domain table.
  db::Query oracle;
  /// Canonical rendering of oracle.where (core::InterpretationString).
  std::string oracle_interpretation;

  // Structure flags (drive per-phenomenon accuracy reporting).
  bool is_boolean = false;
  bool is_explicit_boolean = false;
  bool has_negation = false;
  bool has_superlative = false;
  bool has_misspelling = false;
  bool has_missing_space = false;
  bool has_shorthand = false;
  bool is_incomplete = false;
};

struct QuestionGenOptions {
  double p_partial_identity = 0.3;  ///< use only the leading Type I value
  double p_misspell = 0.08;
  double p_missing_space = 0.05;
  double p_shorthand = 0.12;
  double p_incomplete = 0.07;
  double p_superlative = 0.12;
  /// Fraction of Boolean questions (§4.4: ~one fifth), of which
  /// `p_explicit_given_boolean` carry explicit operators (§4.4.2: ~5%
  /// overall).
  double p_boolean = 0.20;
  double p_explicit_given_boolean = 0.26;
  std::size_t max_type_ii = 2;
};

/// Generates `n` questions for a domain. `table` supplies realistic value
/// occurrences (oracle queries are executable against it).
std::vector<GeneratedQuestion> GenerateQuestions(const DomainSpec& spec,
                                                 const db::Table& table,
                                                 std::size_t n,
                                                 const QuestionGenOptions& opts,
                                                 Rng* rng);

/// Builds the executable oracle expression from intent segments.
db::ExprPtr IntentToExpr(const std::vector<std::vector<IntentUnit>>& segments);

}  // namespace cqads::datagen

#endif  // CQADS_DATAGEN_QUESTION_GEN_H_
