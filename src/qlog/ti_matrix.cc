#include "qlog/ti_matrix.h"

#include <algorithm>
#include <set>

namespace cqads::qlog {

TiMatrix::Key TiMatrix::MakeKey(std::string_view a, std::string_view b) {
  std::string sa(a), sb(b);
  if (sb < sa) std::swap(sa, sb);
  return {std::move(sa), std::move(sb)};
}

TiMatrix TiMatrix::Build(const QueryLog& log) {
  TiMatrix m;

  // Pass 1: accumulate raw features per unordered pair.
  for (const auto& session : log.sessions) {
    const auto& qs = session.queries;
    for (std::size_t i = 0; i < qs.size(); ++i) {
      // Mod: adjacent reformulation A -> B.
      if (i + 1 < qs.size() && qs[i].value != qs[i + 1].value) {
        m.features_[MakeKey(qs[i].value, qs[i + 1].value)].mod_count += 1.0;
      }
      // Time: every co-occurring pair within the session.
      for (std::size_t j = i + 1; j < qs.size(); ++j) {
        if (qs[i].value == qs[j].value) continue;
        PairFeatures& f = m.features_[MakeKey(qs[i].value, qs[j].value)];
        f.time_sum += qs[j].timestamp - qs[i].timestamp;
        f.time_pairs += 1.0;
      }
      // Ad_Time / Rank / Click: clicks on B-ads while searching A.
      for (const auto& click : qs[i].clicks) {
        if (click.ad_value == qs[i].value) continue;
        PairFeatures& f = m.features_[MakeKey(qs[i].value, click.ad_value)];
        f.dwell_sum += click.dwell_seconds;
        f.dwell_obs += 1.0;
        f.rank_sum += 1.0 / static_cast<double>(std::max(1, click.rank));
        f.rank_obs += 1.0;
        f.click_count += 1.0;
      }
    }
  }

  // Pass 2: per-feature maxima for normalization.
  double max_mod = 0, max_time = 0, max_dwell = 0, max_rank = 0, max_click = 0;
  for (const auto& [key, f] : m.features_) {
    max_mod = std::max(max_mod, f.mod_count);
    if (f.time_pairs > 0) {
      max_time = std::max(max_time, f.time_sum / f.time_pairs);
    }
    if (f.dwell_obs > 0) {
      max_dwell = std::max(max_dwell, f.dwell_sum / f.dwell_obs);
    }
    if (f.rank_obs > 0) {
      max_rank = std::max(max_rank, f.rank_sum / f.rank_obs);
    }
    max_click = std::max(max_click, f.click_count);
  }

  // Intern every observed value in sorted order, so ids are lexicographic
  // ranks (which keeps AllPairs/MostSimilar ordering identical to the
  // seed's string-pair map iteration).
  {
    std::set<std::string_view> values;
    for (const auto& [key, f] : m.features_) {
      values.insert(key.first);
      values.insert(key.second);
    }
    for (std::string_view v : values) m.dict_.Intern(v);
    m.dict_.Freeze();
  }

  // Pass 3: TI_Sim = sum of the five normalized features (Eq. 3), stored in
  // CSR adjacency rows. Time is inverted (shorter gap -> higher feature);
  // Rank already uses 1/position. features_ iterates lexicographic pairs
  // (first < second), and ids are lexicographic, so each row's neighbor
  // list comes out sorted without an extra sort.
  m.pair_count_ = m.features_.size();
  auto& row_begin = m.row_begin_.vec();
  auto& neighbor = m.neighbor_.vec();
  auto& sim_col = m.sim_.vec();
  row_begin.assign(m.dict_.size() + 1, 0);
  for (const auto& [key, f] : m.features_) {
    (void)f;
    ++row_begin[m.dict_.Find(key.first) + 1];
    ++row_begin[m.dict_.Find(key.second) + 1];
  }
  for (std::size_t i = 1; i < row_begin.size(); ++i) {
    row_begin[i] += row_begin[i - 1];
  }
  neighbor.resize(row_begin.back());
  sim_col.resize(row_begin.back());
  std::vector<std::uint32_t> fill(row_begin.begin(), row_begin.end() - 1);
  for (const auto& [key, f] : m.features_) {
    double sim = 0.0;
    if (max_mod > 0) sim += f.mod_count / max_mod;
    if (f.time_pairs > 0 && max_time > 0) {
      sim += 1.0 - (f.time_sum / f.time_pairs) / max_time;
    }
    if (f.dwell_obs > 0 && max_dwell > 0) {
      sim += (f.dwell_sum / f.dwell_obs) / max_dwell;
    }
    if (f.rank_obs > 0 && max_rank > 0) {
      sim += (f.rank_sum / f.rank_obs) / max_rank;
    }
    if (max_click > 0) sim += f.click_count / max_click;
    m.max_sim_ = std::max(m.max_sim_, sim);

    const text::TermId a = m.dict_.Find(key.first);
    const text::TermId b = m.dict_.Find(key.second);
    neighbor[fill[a]] = b;
    sim_col[fill[a]++] = sim;
    neighbor[fill[b]] = a;
    sim_col[fill[b]++] = sim;
  }
  return m;
}

double TiMatrix::SimById(text::TermId a, text::TermId b) const {
  if (a == text::kInvalidTerm || b == text::kInvalidTerm || a == b) {
    return 0.0;
  }
  const std::uint32_t begin = row_begin_[a];
  const std::uint32_t end = row_begin_[a + 1];
  auto it = std::lower_bound(neighbor_.begin() + begin,
                             neighbor_.begin() + end, b);
  if (it == neighbor_.begin() + end || *it != b) return 0.0;
  return sim_[static_cast<std::size_t>(it - neighbor_.begin())];
}

double TiMatrix::Sim(std::string_view a, std::string_view b) const {
  if (a == b) return 0.0;
  return SimById(dict_.Find(a), dict_.Find(b));
}

PairFeatures TiMatrix::Features(std::string_view a, std::string_view b) const {
  auto it = features_.find(MakeKey(a, b));
  return it == features_.end() ? PairFeatures{} : it->second;
}

std::vector<std::tuple<std::string, std::string, double>> TiMatrix::AllPairs()
    const {
  // Ids are lexicographic and rows are id-sorted, so walking rows ascending
  // and keeping the upper triangle reproduces the seed's map order.
  std::vector<std::tuple<std::string, std::string, double>> out;
  out.reserve(pair_count_);
  for (std::size_t a = 0; a + 1 < row_begin_.size(); ++a) {
    const text::TermId a_id = static_cast<text::TermId>(a);
    for (std::uint32_t i = row_begin_[a]; i < row_begin_[a + 1]; ++i) {
      if (neighbor_[i] <= a_id) continue;
      out.emplace_back(dict_.term(a_id), dict_.term(neighbor_[i]), sim_[i]);
    }
  }
  return out;
}

std::vector<std::pair<std::string, double>> TiMatrix::MostSimilarById(
    text::TermId id, std::size_t limit) const {
  std::vector<std::pair<std::string, double>> out;
  if (id == text::kInvalidTerm || row_begin_.empty()) return out;
  const std::uint32_t begin = row_begin_[id];
  const std::uint32_t end = row_begin_[id + 1];
  out.reserve(end - begin);
  for (std::uint32_t i = begin; i < end; ++i) {
    out.emplace_back(dict_.term(neighbor_[i]), sim_[i]);
  }
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    if (x.second != y.second) return x.second > y.second;
    return x.first < y.first;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<std::pair<std::string, double>> TiMatrix::MostSimilar(
    std::string_view a, std::size_t limit) const {
  return MostSimilarById(dict_.Find(a), limit);
}

std::size_t TiMatrix::RowDegree(text::TermId id) const {
  if (id == text::kInvalidTerm || row_begin_.empty()) return 0;
  return row_begin_[id + 1] - row_begin_[id];
}

}  // namespace cqads::qlog
