#include "qlog/ti_matrix.h"

#include <algorithm>

namespace cqads::qlog {

TiMatrix::Key TiMatrix::MakeKey(std::string_view a, std::string_view b) {
  std::string sa(a), sb(b);
  if (sb < sa) std::swap(sa, sb);
  return {std::move(sa), std::move(sb)};
}

TiMatrix TiMatrix::Build(const QueryLog& log) {
  TiMatrix m;

  // Pass 1: accumulate raw features per unordered pair.
  for (const auto& session : log.sessions) {
    const auto& qs = session.queries;
    for (std::size_t i = 0; i < qs.size(); ++i) {
      // Mod: adjacent reformulation A -> B.
      if (i + 1 < qs.size() && qs[i].value != qs[i + 1].value) {
        m.features_[MakeKey(qs[i].value, qs[i + 1].value)].mod_count += 1.0;
      }
      // Time: every co-occurring pair within the session.
      for (std::size_t j = i + 1; j < qs.size(); ++j) {
        if (qs[i].value == qs[j].value) continue;
        PairFeatures& f = m.features_[MakeKey(qs[i].value, qs[j].value)];
        f.time_sum += qs[j].timestamp - qs[i].timestamp;
        f.time_pairs += 1.0;
      }
      // Ad_Time / Rank / Click: clicks on B-ads while searching A.
      for (const auto& click : qs[i].clicks) {
        if (click.ad_value == qs[i].value) continue;
        PairFeatures& f = m.features_[MakeKey(qs[i].value, click.ad_value)];
        f.dwell_sum += click.dwell_seconds;
        f.dwell_obs += 1.0;
        f.rank_sum += 1.0 / static_cast<double>(std::max(1, click.rank));
        f.rank_obs += 1.0;
        f.click_count += 1.0;
      }
    }
  }

  // Pass 2: per-feature maxima for normalization.
  double max_mod = 0, max_time = 0, max_dwell = 0, max_rank = 0, max_click = 0;
  for (const auto& [key, f] : m.features_) {
    max_mod = std::max(max_mod, f.mod_count);
    if (f.time_pairs > 0) {
      max_time = std::max(max_time, f.time_sum / f.time_pairs);
    }
    if (f.dwell_obs > 0) {
      max_dwell = std::max(max_dwell, f.dwell_sum / f.dwell_obs);
    }
    if (f.rank_obs > 0) {
      max_rank = std::max(max_rank, f.rank_sum / f.rank_obs);
    }
    max_click = std::max(max_click, f.click_count);
  }

  // Pass 3: TI_Sim = sum of the five normalized features (Eq. 3). Time is
  // inverted (shorter gap -> higher feature); Rank already uses 1/position.
  for (const auto& [key, f] : m.features_) {
    double sim = 0.0;
    if (max_mod > 0) sim += f.mod_count / max_mod;
    if (f.time_pairs > 0 && max_time > 0) {
      sim += 1.0 - (f.time_sum / f.time_pairs) / max_time;
    }
    if (f.dwell_obs > 0 && max_dwell > 0) {
      sim += (f.dwell_sum / f.dwell_obs) / max_dwell;
    }
    if (f.rank_obs > 0 && max_rank > 0) {
      sim += (f.rank_sum / f.rank_obs) / max_rank;
    }
    if (max_click > 0) sim += f.click_count / max_click;
    m.sims_[key] = sim;
    m.max_sim_ = std::max(m.max_sim_, sim);
  }
  return m;
}

double TiMatrix::Sim(std::string_view a, std::string_view b) const {
  if (a == b) return 0.0;
  auto it = sims_.find(MakeKey(a, b));
  return it == sims_.end() ? 0.0 : it->second;
}

PairFeatures TiMatrix::Features(std::string_view a, std::string_view b) const {
  auto it = features_.find(MakeKey(a, b));
  return it == features_.end() ? PairFeatures{} : it->second;
}

std::vector<std::tuple<std::string, std::string, double>> TiMatrix::AllPairs()
    const {
  std::vector<std::tuple<std::string, std::string, double>> out;
  out.reserve(sims_.size());
  for (const auto& [key, sim] : sims_) {
    out.emplace_back(key.first, key.second, sim);
  }
  return out;
}

std::vector<std::pair<std::string, double>> TiMatrix::MostSimilar(
    std::string_view a, std::size_t limit) const {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [key, sim] : sims_) {
    if (key.first == a) {
      out.emplace_back(key.second, sim);
    } else if (key.second == a) {
      out.emplace_back(key.first, sim);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    if (x.second != y.second) return x.second > y.second;
    return x.first < y.first;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace cqads::qlog
