#include "qlog/log_io.h"

#include <cstdlib>

#include "common/string_util.h"

namespace cqads::qlog {

std::string SerializeLog(const QueryLog& log) {
  std::string out;
  for (const auto& session : log.sessions) {
    out += "session " + session.user_id + "\n";
    for (const auto& query : session.queries) {
      out += "query " + FormatDouble(query.timestamp, 3) + " " +
             query.value + "\n";
      for (const auto& click : query.clicks) {
        out += "click " + std::to_string(click.rank) + " " +
               FormatDouble(click.dwell_seconds, 3) + " " + click.ad_value +
               "\n";
      }
    }
  }
  return out;
}

namespace {

Status ParseError(std::size_t line_no, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                 message);
}

/// Parses a leading double and returns the remainder of the record.
bool TakeDouble(std::string_view* rest, double* out) {
  std::size_t space = rest->find(' ');
  std::string token(space == std::string_view::npos ? *rest
                                                    : rest->substr(0, space));
  if (token.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  *rest = space == std::string_view::npos ? std::string_view()
                                          : rest->substr(space + 1);
  return true;
}

}  // namespace

Result<QueryLog> ParseLog(std::string_view text) {
  QueryLog log;
  Session* session = nullptr;
  LogQuery* query = nullptr;

  std::size_t pos = 0, line_no = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = TrimView(text.substr(pos, end - pos));
    pos = end + 1;
    ++line_no;
    if (pos > text.size() + 1) break;
    if (line.empty() || line[0] == '#') {
      if (end == text.size()) break;
      continue;
    }

    if (StartsWith(line, "session ")) {
      Session s;
      s.user_id = Trim(line.substr(8));
      if (s.user_id.empty()) return ParseError(line_no, "empty user id");
      log.sessions.push_back(std::move(s));
      session = &log.sessions.back();
      query = nullptr;
    } else if (StartsWith(line, "query ")) {
      if (session == nullptr) {
        return ParseError(line_no, "query before any session");
      }
      std::string_view rest = line.substr(6);
      LogQuery q;
      if (!TakeDouble(&rest, &q.timestamp)) {
        return ParseError(line_no, "bad query timestamp");
      }
      q.value = Trim(rest);
      if (q.value.empty()) return ParseError(line_no, "empty query value");
      session->queries.push_back(std::move(q));
      query = &session->queries.back();
    } else if (StartsWith(line, "click ")) {
      if (query == nullptr) {
        return ParseError(line_no, "click before any query");
      }
      std::string_view rest = line.substr(6);
      double rank = 0, dwell = 0;
      if (!TakeDouble(&rest, &rank) || !TakeDouble(&rest, &dwell)) {
        return ParseError(line_no, "bad click rank/dwell");
      }
      Click c;
      c.rank = static_cast<int>(rank);
      c.dwell_seconds = dwell;
      c.ad_value = Trim(rest);
      if (c.rank < 1) return ParseError(line_no, "click rank must be >= 1");
      if (c.ad_value.empty()) return ParseError(line_no, "empty ad value");
      query->clicks.push_back(std::move(c));
    } else {
      return ParseError(line_no, "unknown record type");
    }
    if (end == text.size()) break;
  }
  return log;
}

std::string ExportTiMatrixCsv(const TiMatrix& matrix) {
  std::string out = "value_a,value_b,ti_sim\n";
  for (const auto& [a, b, sim] : matrix.AllPairs()) {
    out += "\"" + ReplaceAll(a, "\"", "\"\"") + "\",\"" +
           ReplaceAll(b, "\"", "\"\"") + "\"," + FormatDouble(sim, 6) + "\n";
  }
  return out;
}

}  // namespace cqads::qlog
