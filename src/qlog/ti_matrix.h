// TI-matrix (§4.3.2, Eq. 3): similarity between Type I attribute values,
// computed from a query log via five features per unordered pair {A, B}:
//
//   Mod(A,B)      times A was reformulated into B (adjacent in a session)
//   Time(A,B)     average seconds between submissions of A and B in a session
//   Ad_Time(A,B)  average dwell on an ad showcasing B when A was searched
//   Rank(A,B)     engine rank of B-ads on A's result pages (averaged)
//   Click(A,B)    clicks on B-ads when A was searched
//
// Each feature is normalized by its maximum across the log so it lies in
// [0, 1], then the five are summed (TI_Sim in [0, 5]). Time and Rank are
// *inverted* during normalization — shorter gaps and higher (numerically
// smaller) ranks mean more similar — so that, like the other three, larger
// normalized values mean more related.
//
// Values are interned into a per-matrix TermDict (sorted interning, so ids
// are lexicographic ranks) and similarities live in CSR-style sorted
// adjacency rows: SimById is O(log degree) with no string-pair key
// materialization, MostSimilar is one O(degree) row scan. The string API
// remains as a resolve-then-lookup wrapper; raw feature accumulators keep
// their map (diagnostics only, never on the ask path).
#ifndef CQADS_QLOG_TI_MATRIX_H_
#define CQADS_QLOG_TI_MATRIX_H_

#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "common/pod_vec.h"
#include "qlog/query_log.h"
#include "text/term_dict.h"

namespace cqads::snapshot {
struct SerdeAccess;
}

namespace cqads::qlog {

/// Per-pair raw feature accumulators (exposed for tests and benches).
struct PairFeatures {
  double mod_count = 0;
  double time_sum = 0;     // seconds
  double time_pairs = 0;   // observations contributing to time_sum
  double dwell_sum = 0;    // seconds
  double dwell_obs = 0;
  double rank_sum = 0;     // sum of 1/rank
  double rank_obs = 0;
  double click_count = 0;
};

/// Symmetric Type I value-similarity matrix. Immutable after Build(); all
/// const methods are safe to call from any number of threads concurrently
/// (the engine snapshot freezes one per domain for the lock-free ask path).
class TiMatrix {
 public:
  /// Builds the matrix from a log. Pairs never co-observed get similarity 0.
  static TiMatrix Build(const QueryLog& log);

  // --- legacy string API (resolve-then-lookup wrappers) ------------------

  /// TI_Sim(A, B) in [0, 5]; 0 for unknown pairs and for A == B (an equal
  /// value is an exact match, handled outside the partial-match path).
  double Sim(std::string_view a, std::string_view b) const;

  /// The `limit` most similar values to `a`, most similar first.
  std::vector<std::pair<std::string, double>> MostSimilar(
      std::string_view a, std::size_t limit) const;

  // --- id-keyed API (the hot path) ---------------------------------------

  /// Id of a value string observed in the log; kInvalidTerm otherwise.
  text::TermId Resolve(std::string_view value) const {
    return dict_.Find(value);
  }

  /// TI_Sim by id: equal ids and any invalid id score 0.0 (matching the
  /// string form's A == B and unknown-pair rules); otherwise a binary
  /// search of a's adjacency row.
  double SimById(text::TermId a, text::TermId b) const;

  /// Most-similar by id (same ordering contract as the string form).
  std::vector<std::pair<std::string, double>> MostSimilarById(
      text::TermId id, std::size_t limit) const;

  std::size_t RowDegree(text::TermId id) const;

  /// Largest similarity in the matrix (normalization factor for Eq. 5).
  double MaxSim() const { return max_sim_; }

  /// Number of pairs with nonzero similarity.
  std::size_t pair_count() const { return pair_count_; }

  /// Number of distinct values observed in pairs.
  std::size_t value_count() const { return dict_.size(); }

  /// The per-domain value dictionary (ids in lexicographic order).
  const text::TermDict& term_dict() const { return dict_; }

  /// Raw features for a pair (zeros when unobserved); for diagnostics.
  PairFeatures Features(std::string_view a, std::string_view b) const;

  /// Every stored pair with its similarity, in deterministic (lexicographic)
  /// order. Used by the CSV exporter and diagnostics.
  std::vector<std::tuple<std::string, std::string, double>> AllPairs() const;

 private:
  friend struct cqads::snapshot::SerdeAccess;

  using Key = std::pair<std::string, std::string>;  // lexicographic order
  static Key MakeKey(std::string_view a, std::string_view b);

  text::TermDict dict_;
  /// CSR over value ids; per-row neighbors ascending (== lexicographic).
  /// Each unordered pair is stored in both rows. PodVec: heap-built in
  /// Build(), zero-copy mapped views when loaded from a snapshot.
  common::PodVec<std::uint32_t> row_begin_;
  common::PodVec<text::TermId> neighbor_;
  common::PodVec<double> sim_;
  std::size_t pair_count_ = 0;
  /// Raw accumulators, kept string-keyed: Features()/diagnostics only.
  std::map<Key, PairFeatures> features_;
  double max_sim_ = 0.0;
};

}  // namespace cqads::qlog

#endif  // CQADS_QLOG_TI_MATRIX_H_
