#include "qlog/log_generator.h"

#include <algorithm>
#include <unordered_map>

namespace cqads::qlog {

namespace {

/// Exponential-ish positive gap with the given mean (clamped away from 0).
double DrawGap(Rng* rng, double mean) {
  double u = rng->UniformReal(1e-6, 1.0);
  double gap = -mean * std::log(u);
  return std::max(1.0, std::min(gap, mean * 8.0));
}

}  // namespace

QueryLog GenerateQueryLog(const LogGenSpec& spec, Rng* rng) {
  QueryLog log;
  if (spec.values.empty() || spec.values.size() != spec.cluster_of.size()) {
    return log;
  }

  // Bucket identities by segment for related-draw sampling.
  std::unordered_map<int, std::vector<std::size_t>> by_cluster;
  for (std::size_t i = 0; i < spec.values.size(); ++i) {
    by_cluster[spec.cluster_of[i]].push_back(i);
  }

  log.sessions.reserve(spec.num_sessions);
  for (std::size_t s = 0; s < spec.num_sessions; ++s) {
    Session session;
    session.user_id = "user_" + std::to_string(s);

    const std::size_t seed_idx = rng->UniformIndex(spec.values.size());
    const int seed_cluster = spec.cluster_of[seed_idx];
    const auto& cluster_members = by_cluster[seed_cluster];

    const int n_queries = static_cast<int>(rng->UniformInt(
        spec.min_queries_per_session, spec.max_queries_per_session));

    double clock = 0.0;
    std::size_t current = seed_idx;
    for (int q = 0; q < n_queries; ++q) {
      if (q > 0) {
        // Reformulate: usually within the segment (quick), sometimes a
        // topic switch (slow).
        bool stay = rng->Bernoulli(spec.in_cluster_prob) &&
                    cluster_members.size() > 1;
        if (stay) {
          std::size_t next = current;
          while (next == current) {
            next = cluster_members[rng->UniformIndex(cluster_members.size())];
          }
          current = next;
          clock += DrawGap(rng, spec.in_cluster_gap_mean);
        } else {
          current = rng->UniformIndex(spec.values.size());
          clock += DrawGap(rng,
                           spec.in_cluster_gap_mean * spec.cross_gap_factor);
        }
      }

      LogQuery query;
      query.timestamp = clock;
      query.value = spec.values[current];

      const int n_clicks =
          static_cast<int>(rng->UniformInt(0, spec.max_clicks_per_query));
      const int current_cluster = spec.cluster_of[current];
      const auto& related = by_cluster[current_cluster];
      for (int c = 0; c < n_clicks; ++c) {
        Click click;
        bool related_click =
            rng->Bernoulli(spec.related_click_prob) && related.size() > 1;
        std::size_t target;
        if (related_click) {
          target = related[rng->UniformIndex(related.size())];
        } else {
          target = rng->UniformIndex(spec.values.size());
        }
        click.ad_value = spec.values[target];
        const bool is_related =
            spec.cluster_of[target] == current_cluster;
        // The fictitious ads engine ranks related ads higher.
        click.rank = is_related
                         ? static_cast<int>(rng->UniformInt(1, 5))
                         : static_cast<int>(rng->UniformInt(6, 30));
        click.dwell_seconds = std::max(
            1.0, rng->Gaussian(is_related ? spec.related_dwell_mean
                                          : spec.unrelated_dwell_mean,
                               is_related ? spec.related_dwell_mean / 3.0
                                          : spec.unrelated_dwell_mean / 3.0));
        query.clicks.push_back(std::move(click));
      }
      session.queries.push_back(std::move(query));
    }
    log.sessions.push_back(std::move(session));
  }
  return log;
}

}  // namespace cqads::qlog
