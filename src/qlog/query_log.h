// Query-log model (§4.3.2). The paper builds its Type I similarity matrix
// from "query logs obtained from local ads search engines": sessions keyed by
// an anonymous user ID, each holding timestamped query texts and optionally
// the clicked ads with their engine rank and the time the user spent on them.
#ifndef CQADS_QLOG_QUERY_LOG_H_
#define CQADS_QLOG_QUERY_LOG_H_

#include <string>
#include <vector>

namespace cqads::qlog {

/// One clicked ad within a query's result page.
struct Click {
  std::string ad_value;   ///< Type I identity the clicked ad showcases
  int rank = 1;           ///< position assigned by the ads search engine (1 = top)
  double dwell_seconds = 0.0;  ///< time spent on the ad page
};

/// One submitted query within a session.
struct LogQuery {
  double timestamp = 0.0;  ///< seconds since session start
  std::string value;       ///< the Type I identity searched ("honda accord")
  std::vector<Click> clicks;
};

/// A period of sustained activity by one user. Each user ID is unique and
/// associated with one session (per the paper's session-boundary rule).
struct Session {
  std::string user_id;
  std::vector<LogQuery> queries;
};

/// A full log: the unit the TI-matrix is built from.
struct QueryLog {
  std::vector<Session> sessions;

  std::size_t TotalQueries() const {
    std::size_t n = 0;
    for (const auto& s : sessions) n += s.queries.size();
    return n;
  }
  std::size_t TotalClicks() const {
    std::size_t n = 0;
    for (const auto& s : sessions) {
      for (const auto& q : s.queries) n += q.clicks.size();
    }
    return n;
  }
};

}  // namespace cqads::qlog

#endif  // CQADS_QLOG_QUERY_LOG_H_
