// Synthetic query-log generation. The paper consumed logs of real local ads
// search engines; those are proprietary, so we simulate the behaviour the
// TI-matrix features measure: users reformulate between *related* identities
// (same latent market segment), do so quickly, click related ads even when
// searching for something else, and dwell longer on ads they find relevant.
// The latent segment assignment comes from the same domain model that
// generates the ads themselves (src/datagen), which is what lets Eq. 3
// recover human-perceived relatedness.
#ifndef CQADS_QLOG_LOG_GENERATOR_H_
#define CQADS_QLOG_LOG_GENERATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "qlog/query_log.h"

namespace cqads::qlog {

/// Generator configuration. `values[i]` is a Type I identity string and
/// `cluster_of[i]` its latent segment; identities sharing a segment are
/// ground-truth related.
struct LogGenSpec {
  std::vector<std::string> values;
  std::vector<int> cluster_of;

  std::size_t num_sessions = 2000;
  /// Probability a reformulation stays inside the segment.
  double in_cluster_prob = 0.85;
  /// Mean seconds between reformulations within a segment; cross-segment
  /// reformulations take kCrossGapFactor times longer on average.
  double in_cluster_gap_mean = 45.0;
  double cross_gap_factor = 4.0;
  /// Mean dwell seconds on a same-segment click vs an off-segment click.
  double related_dwell_mean = 90.0;
  double unrelated_dwell_mean = 12.0;
  /// Probability that a result-page click lands on a same-segment ad.
  double related_click_prob = 0.8;
  /// Queries per session are drawn uniformly from [min, max].
  int min_queries_per_session = 2;
  int max_queries_per_session = 6;
  /// Clicks per query are drawn uniformly from [0, max].
  int max_clicks_per_query = 3;
};

/// Generates a deterministic log from the spec and seed.
QueryLog GenerateQueryLog(const LogGenSpec& spec, Rng* rng);

}  // namespace cqads::qlog

#endif  // CQADS_QLOG_LOG_GENERATOR_H_
