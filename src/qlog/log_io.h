// Query-log serialization. A deployed CQAds consumes logs from external ads
// search engines (§4.3.2); this module defines the interchange format:
//
//   session <user_id>
//   query <timestamp> <value...>
//   click <rank> <dwell_seconds> <ad_value...>
//
// One record per line; `query` lines belong to the preceding `session`;
// `click` lines to the preceding `query`. Values may contain spaces (they
// extend to the end of the line). Blank lines and '#' comments are ignored.
// Also exports a TI-matrix as CSV for offline inspection.
#ifndef CQADS_QLOG_LOG_IO_H_
#define CQADS_QLOG_LOG_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "qlog/query_log.h"
#include "qlog/ti_matrix.h"

namespace cqads::qlog {

/// Serializes a log to the text format above.
std::string SerializeLog(const QueryLog& log);

/// Parses the text format; fails with a line-numbered message on malformed
/// input (click before query, query before session, bad numbers).
Result<QueryLog> ParseLog(std::string_view text);

/// CSV of every nonzero TI-matrix entry: value_a,value_b,similarity.
std::string ExportTiMatrixCsv(const TiMatrix& matrix);

}  // namespace cqads::qlog

#endif  // CQADS_QLOG_LOG_IO_H_
