// Beta-binomial distribution: the building block of the Joint Beta-Binomial
// Sampling Model (Allison 2008) that §3 uses for P(d|c). A word's count in a
// document is beta-binomially distributed, which — unlike the binomial — is
// over-dispersed: having seen a word once makes seeing it again more likely
// ("burstiness").
#ifndef CQADS_CLASSIFY_BETA_BINOMIAL_H_
#define CQADS_CLASSIFY_BETA_BINOMIAL_H_

#include <cstddef>
#include <vector>

namespace cqads::classify {

/// Parameters of a beta-binomial distribution (alpha, beta > 0).
struct BetaBinomialParams {
  double alpha = 1.0;
  double beta = 1.0;

  /// Mean success probability alpha / (alpha + beta).
  double MeanProbability() const { return alpha / (alpha + beta); }
};

/// log P(X = k | n, alpha, beta) = log [ C(n,k) B(k+a, n-k+b) / B(a,b) ].
/// Requires 0 <= k <= n and positive parameters.
double BetaBinomialLogPmf(std::size_t k, std::size_t n,
                          const BetaBinomialParams& params);

/// Method-of-moments fit from per-document (count, length) observations.
/// Falls back to a smoothed-binomial-equivalent prior (alpha+beta =
/// `fallback_strength`) when the data is too sparse or under-dispersed for
/// the moment equations. `prior_mean` anchors the fallback (typically the
/// class-level MLE of the word's rate, smoothed).
BetaBinomialParams FitBetaBinomial(
    const std::vector<std::pair<std::size_t, std::size_t>>& count_and_length,
    double prior_mean, double fallback_strength = 2.0);

}  // namespace cqads::classify

#endif  // CQADS_CLASSIFY_BETA_BINOMIAL_H_
