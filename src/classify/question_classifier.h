// Ads-domain question classifier (§3): Naive Bayes with Bayes' theorem
// (Eq. 1-2), choosing the domain c maximizing P(c|d) ∝ P(c) P(d|c).
// Two class-conditional document models are provided:
//   * kJBBSM (the paper's choice): each word's in-document count follows a
//     per-class beta-binomial, capturing burstiness and reserving mass for
//     unseen words via a background distribution;
//   * kMultinomial: the classical Laplace-smoothed multinomial baseline
//     (used by the ablation bench to quantify what JBBSM buys).
#ifndef CQADS_CLASSIFY_QUESTION_CLASSIFIER_H_
#define CQADS_CLASSIFY_QUESTION_CLASSIFIER_H_

#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "classify/beta_binomial.h"
#include "text/token.h"

namespace cqads::snapshot {
struct SerdeAccess;
}

namespace cqads::classify {

/// Tokenize + stopword-drop + Porter-stem, the feature pipeline used for
/// both training corpora (ads text) and questions.
std::vector<std::string> ExtractFeatures(std::string_view raw_text);

/// Same feature pipeline over an already-tokenized stream (the pipeline
/// tokenizes each question once into QueryContext and classifies from those
/// tokens). ExtractFeatures(raw) == ExtractFeaturesFromTokens(Tokenize(raw))
/// by construction.
std::vector<std::string> ExtractFeaturesFromTokens(
    const text::TokenList& tokens);

/// A labelled training document.
struct LabelledDoc {
  std::string text;
  std::string label;
};

/// Thread-safety: Train() mutates and must be externally serialized (the
/// EngineBuilder trains into a private copy before publishing a snapshot);
/// Classify()/Scores() are const and safe concurrently once trained.
class QuestionClassifier {
 public:
  enum class Model { kJBBSM, kMultinomial };

  struct Options {
    Model model = Model::kJBBSM;
    /// Laplace pseudo-count for the multinomial model / prior strength for
    /// the JBBSM fallback fit.
    double smoothing = 1.0;
    /// Probability mass reserved for out-of-vocabulary words.
    double unseen_mass = 1e-4;
  };

  QuestionClassifier() : QuestionClassifier(Options()) {}
  explicit QuestionClassifier(Options options) : options_(options) {}

  /// Trains from labelled documents; fails on an empty corpus.
  Status Train(const std::vector<LabelledDoc>& docs);

  /// Most probable class for the text; empty string when untrained.
  std::string Classify(std::string_view text) const;
  /// Token-stream form (identical result on identical tokenizations).
  std::string Classify(const text::TokenList& tokens) const;

  /// Log-posterior (up to a shared constant) per class, sorted descending.
  std::vector<std::pair<std::string, double>> Scores(
      std::string_view text) const;
  std::vector<std::pair<std::string, double>> Scores(
      const text::TokenList& tokens) const;

  const std::vector<std::string>& classes() const { return classes_; }
  std::size_t vocabulary_size() const { return vocab_.size(); }

 private:
  friend struct cqads::snapshot::SerdeAccess;

  struct ClassModel {
    double log_prior = 0.0;
    // Multinomial: log P(w|c) with Laplace smoothing.
    std::unordered_map<std::string, double> log_word_prob;
    double log_unseen = 0.0;
    double total_tokens = 0.0;
    // JBBSM: per-word beta-binomial parameters.
    std::unordered_map<std::string, BetaBinomialParams> word_params;
    BetaBinomialParams unseen_params;
  };

  double ScoreClass(const ClassModel& model,
                    const std::map<std::string, std::size_t>& counts,
                    std::size_t doc_len) const;

  Options options_;
  std::vector<std::string> classes_;
  std::map<std::string, ClassModel> models_;
  std::unordered_map<std::string, bool> vocab_;
};

}  // namespace cqads::classify

#endif  // CQADS_CLASSIFY_QUESTION_CLASSIFIER_H_
