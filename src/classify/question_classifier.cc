#include "classify/question_classifier.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace cqads::classify {

namespace {

/// Domain-independent operator vocabulary (Table 1 keywords). These words
/// express question *structure*, not domain content; they are excluded from
/// classification features. (They are deliberately not stopwords: the
/// tagger needs them downstream.)
bool IsOperatorWord(const std::string& w) {
  static const auto* kSet = new std::set<std::string>{
      "and",   "or",      "not",     "no",      "without", "except",
      "less",  "than",    "more",    "above",   "below",   "under",
      "over",  "between", "within",  "equal",   "equals",  "exactly",
      "least", "most",    "lowest",  "highest", "max",     "min",
      "fewer", "greater", "higher",  "lower",   "smaller", "larger",
  };
  return kSet->count(w) > 0;
}

}  // namespace

std::vector<std::string> ExtractFeaturesFromTokens(
    const text::TokenList& tokens) {
  std::vector<std::string> out;
  for (const auto& tok : tokens) {
    if (tok.kind == text::TokenKind::kWord &&
        (text::IsStopword(tok.text) || IsOperatorWord(tok.text))) {
      continue;
    }
    // Pure numbers carry no domain signal ("2004" occurs in cars and
    // motorcycles alike); mixed tokens like "2dr" do and are kept.
    if (tok.kind == text::TokenKind::kNumber) continue;
    out.push_back(tok.kind == text::TokenKind::kWord
                      ? text::PorterStem(tok.text)
                      : tok.text);
  }
  return out;
}

std::vector<std::string> ExtractFeatures(std::string_view raw_text) {
  return ExtractFeaturesFromTokens(text::Tokenize(raw_text));
}

namespace {

std::map<std::string, std::size_t> CountFeatures(
    const std::vector<std::string>& feats) {
  std::map<std::string, std::size_t> counts;
  for (const auto& f : feats) ++counts[f];
  return counts;
}

}  // namespace

Status QuestionClassifier::Train(const std::vector<LabelledDoc>& docs) {
  if (docs.empty()) return Status::InvalidArgument("empty training corpus");

  classes_.clear();
  models_.clear();
  vocab_.clear();

  // Per class: documents as feature-count maps.
  std::map<std::string, std::vector<std::map<std::string, std::size_t>>>
      class_docs;
  std::map<std::string, std::vector<std::size_t>> class_doc_lengths;
  for (const auto& doc : docs) {
    auto feats = ExtractFeatures(doc.text);
    std::size_t len = feats.size();
    class_docs[doc.label].push_back(CountFeatures(feats));
    class_doc_lengths[doc.label].push_back(len);
    for (const auto& f : feats) vocab_[f] = true;
  }

  const double total_docs = static_cast<double>(docs.size());
  const double vocab_size = std::max<double>(1.0, vocab_.size());

  for (auto& [label, doc_counts] : class_docs) {
    classes_.push_back(label);
    ClassModel model;
    model.log_prior =
        std::log(static_cast<double>(doc_counts.size()) / total_docs);

    // Aggregate token counts for the class.
    std::unordered_map<std::string, double> word_totals;
    double class_tokens = 0.0;
    for (const auto& counts : doc_counts) {
      for (const auto& [w, k] : counts) {
        word_totals[w] += static_cast<double>(k);
        class_tokens += static_cast<double>(k);
      }
    }
    model.total_tokens = class_tokens;

    // Multinomial with Laplace smoothing (always trained: cheap and used as
    // a tie-breaking fallback for degenerate JBBSM inputs).
    const double denom = class_tokens + options_.smoothing * vocab_size;
    for (const auto& [w, k] : word_totals) {
      model.log_word_prob[w] = std::log((k + options_.smoothing) / denom);
    }
    model.log_unseen = std::log(options_.smoothing / denom);

    if (options_.model == Model::kJBBSM) {
      const auto& lengths = class_doc_lengths[label];
      for (const auto& [w, total] : word_totals) {
        std::vector<std::pair<std::size_t, std::size_t>> obs;
        obs.reserve(doc_counts.size());
        for (std::size_t d = 0; d < doc_counts.size(); ++d) {
          auto it = doc_counts[d].find(w);
          obs.emplace_back(it == doc_counts[d].end() ? 0 : it->second,
                           lengths[d]);
        }
        double prior_mean =
            (total + options_.smoothing) /
            (class_tokens + options_.smoothing * vocab_size);
        model.word_params[w] =
            FitBetaBinomial(obs, prior_mean, options_.smoothing * 2.0);
      }
      // Unseen words: a background beta-binomial whose mean reserves
      // `unseen_mass` of probability ("JBBSM accounts for unseen words").
      model.unseen_params =
          BetaBinomialParams{options_.unseen_mass * 2.0,
                             (1.0 - options_.unseen_mass) * 2.0};
    }

    models_[label] = std::move(model);
  }
  std::sort(classes_.begin(), classes_.end());
  return Status::OK();
}

double QuestionClassifier::ScoreClass(
    const ClassModel& model, const std::map<std::string, std::size_t>& counts,
    std::size_t doc_len) const {
  double score = model.log_prior;
  if (options_.model == Model::kMultinomial) {
    for (const auto& [w, k] : counts) {
      auto it = model.log_word_prob.find(w);
      double logp = it == model.log_word_prob.end() ? model.log_unseen
                                                    : it->second;
      score += static_cast<double>(k) * logp;
    }
    return score;
  }
  // JBBSM: product over words of beta-binomial count likelihoods. Words the
  // question does not contain are omitted (their zero-count factors are
  // nearly identical across classes and drown the signal in short texts).
  for (const auto& [w, k] : counts) {
    auto it = model.word_params.find(w);
    const BetaBinomialParams& params =
        it == model.word_params.end() ? model.unseen_params : it->second;
    score += BetaBinomialLogPmf(k, doc_len, params);
  }
  return score;
}

namespace {

std::vector<std::pair<std::string, double>> SortScores(
    std::vector<std::pair<std::string, double>> out) {
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace

std::vector<std::pair<std::string, double>> QuestionClassifier::Scores(
    const text::TokenList& tokens) const {
  if (models_.empty()) return {};
  auto feats = ExtractFeaturesFromTokens(tokens);
  auto counts = CountFeatures(feats);
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [label, model] : models_) {
    out.emplace_back(label, ScoreClass(model, counts, feats.size()));
  }
  return SortScores(std::move(out));
}

std::vector<std::pair<std::string, double>> QuestionClassifier::Scores(
    std::string_view text) const {
  return Scores(text::Tokenize(text));
}

std::string QuestionClassifier::Classify(const text::TokenList& tokens) const {
  auto scores = Scores(tokens);
  return scores.empty() ? std::string() : scores.front().first;
}

std::string QuestionClassifier::Classify(std::string_view text) const {
  return Classify(text::Tokenize(text));
}

}  // namespace cqads::classify
