#include "classify/beta_binomial.h"

#include <algorithm>
#include <cmath>

namespace cqads::classify {

namespace {

// glibc's lgamma writes the process-global `signgam`, which races when the
// concurrent server classifies on several workers at once. All arguments
// here are positive, where the gamma function is positive too, so the sign
// output of the reentrant lgamma_r can be discarded.
double LogGamma(double x) {
  int sign = 0;
  return ::lgamma_r(x, &sign);
}

double LogBeta(double a, double b) {
  return LogGamma(a) + LogGamma(b) - LogGamma(a + b);
}

double LogChoose(std::size_t n, std::size_t k) {
  return LogGamma(static_cast<double>(n) + 1.0) -
         LogGamma(static_cast<double>(k) + 1.0) -
         LogGamma(static_cast<double>(n - k) + 1.0);
}

constexpr double kMinParam = 1e-4;
constexpr double kMaxParam = 1e6;

}  // namespace

double BetaBinomialLogPmf(std::size_t k, std::size_t n,
                          const BetaBinomialParams& params) {
  if (k > n) return -1e300;
  const double a = std::clamp(params.alpha, kMinParam, kMaxParam);
  const double b = std::clamp(params.beta, kMinParam, kMaxParam);
  return LogChoose(n, k) +
         LogBeta(static_cast<double>(k) + a,
                 static_cast<double>(n - k) + b) -
         LogBeta(a, b);
}

BetaBinomialParams FitBetaBinomial(
    const std::vector<std::pair<std::size_t, std::size_t>>& count_and_length,
    double prior_mean, double fallback_strength) {
  prior_mean = std::clamp(prior_mean, 1e-9, 1.0 - 1e-9);
  BetaBinomialParams fallback{prior_mean * fallback_strength,
                              (1.0 - prior_mean) * fallback_strength};

  // Method of moments over the per-document proportions p_i = k_i / n_i:
  //   t = m(1-m)/v - 1,  alpha = m t,  beta = (1-m) t
  // where m and v are the sample mean and variance of the proportions.
  std::vector<double> props;
  props.reserve(count_and_length.size());
  for (auto [k, n] : count_and_length) {
    if (n == 0) continue;
    props.push_back(static_cast<double>(k) / static_cast<double>(n));
  }
  if (props.size() < 3) return fallback;

  double mean = 0.0;
  for (double p : props) mean += p;
  mean /= static_cast<double>(props.size());
  double var = 0.0;
  for (double p : props) var += (p - mean) * (p - mean);
  var /= static_cast<double>(props.size() - 1);

  if (mean <= 0.0 || mean >= 1.0 || var <= 1e-12) return fallback;
  double t = mean * (1.0 - mean) / var - 1.0;
  if (t <= 0.0) return fallback;  // over-dispersed beyond the model / degenerate

  BetaBinomialParams out{mean * t, (1.0 - mean) * t};
  out.alpha = std::clamp(out.alpha, kMinParam, kMaxParam);
  out.beta = std::clamp(out.beta, kMinParam, kMaxParam);
  return out;
}

}  // namespace cqads::classify
