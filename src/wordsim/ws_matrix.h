// Word-similarity (WS) matrix (§4.3.2, citing Koberstein & Ng 2006). The
// paper uses a 54,625x54,625 matrix over non-stop stemmed words built from
// ~930k Wikipedia documents, where sim(w_i, w_j) combines (i) frequency of
// co-occurrence and (ii) relative distance of the words within documents.
// We reproduce the construction over a caller-supplied corpus (src/datagen
// supplies an ad-like synthetic corpus): for every pair of non-stop stemmed
// words co-occurring in a document within a window, accumulate 1/d where d
// is their token distance, then normalize rows into a symmetric matrix.
#ifndef CQADS_WORDSIM_WS_MATRIX_H_
#define CQADS_WORDSIM_WS_MATRIX_H_

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cqads::wordsim {

/// Build options.
struct WsOptions {
  /// Maximum token distance considered a co-occurrence.
  std::size_t window = 8;
  /// Words appearing in fewer than this many documents are dropped.
  std::size_t min_doc_freq = 2;
};

/// Symmetric word-correlation matrix over stemmed vocabulary. Immutable
/// after Build(); const methods are safe to share across threads (the
/// engine snapshot publishes one matrix to every concurrent request).
class WsMatrix {
 public:
  /// Builds from a corpus of raw documents (tokenization, stopword removal
  /// and Porter stemming happen inside).
  static WsMatrix Build(const std::vector<std::string>& corpus,
                        const WsOptions& options = WsOptions());

  /// Similarity of two raw words (stemmed internally). 1.0 when the stems
  /// are equal; 0.0 for unknown pairs.
  double Sim(std::string_view a, std::string_view b) const;

  /// Largest off-diagonal similarity (normalization factor for Eq. 5).
  double MaxSim() const { return max_sim_; }

  std::size_t vocabulary_size() const { return vocab_.size(); }
  std::size_t pair_count() const { return sims_.size(); }

  /// The `limit` most similar vocabulary stems to `word`, best first.
  std::vector<std::pair<std::string, double>> MostSimilar(
      std::string_view word, std::size_t limit) const;

 private:
  using Key = std::pair<std::string, std::string>;
  static Key MakeKey(std::string_view a, std::string_view b);

  std::vector<std::string> vocab_;
  std::map<Key, double> sims_;
  double max_sim_ = 0.0;
};

}  // namespace cqads::wordsim

#endif  // CQADS_WORDSIM_WS_MATRIX_H_
