// Word-similarity (WS) matrix (§4.3.2, citing Koberstein & Ng 2006). The
// paper uses a 54,625x54,625 matrix over non-stop stemmed words built from
// ~930k Wikipedia documents, where sim(w_i, w_j) combines (i) frequency of
// co-occurrence and (ii) relative distance of the words within documents.
// We reproduce the construction over a caller-supplied corpus (src/datagen
// supplies an ad-like synthetic corpus): for every pair of non-stop stemmed
// words co-occurring in a document within a window, accumulate 1/d where d
// is their token distance, then normalize rows into a symmetric matrix.
//
// Storage is id-keyed: the vocabulary is interned into a TermDict (the
// snapshot's shared-corpus instance; ids are lexicographic because stems are
// interned sorted) and similarities live in CSR-style sorted adjacency rows.
// SimById is O(log degree), MostSimilar is O(degree log degree) — at the
// paper's 54,625-stem scale the seed's string-pair std::map would pay a
// string-pair allocation per Sim call and a full-matrix scan per
// MostSimilar. The legacy string API remains as a thin resolve-then-lookup
// wrapper so callers migrate incrementally.
#ifndef CQADS_WORDSIM_WS_MATRIX_H_
#define CQADS_WORDSIM_WS_MATRIX_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/pod_vec.h"
#include "text/term_dict.h"

namespace cqads::snapshot {
struct SerdeAccess;
}

namespace cqads::wordsim {

/// Build options.
struct WsOptions {
  /// Maximum token distance considered a co-occurrence.
  std::size_t window = 8;
  /// Words appearing in fewer than this many documents are dropped.
  std::size_t min_doc_freq = 2;
};

/// Symmetric word-correlation matrix over stemmed vocabulary. Immutable
/// after Build(); const methods are safe to share across threads (the
/// engine snapshot publishes one matrix to every concurrent request).
class WsMatrix {
 public:
  /// Builds from a corpus of raw documents (tokenization, stopword removal
  /// and Porter stemming happen inside).
  static WsMatrix Build(const std::vector<std::string>& corpus,
                        const WsOptions& options = WsOptions());

  // --- legacy string API (resolve-then-lookup wrappers) ------------------

  /// Similarity of two raw words (stemmed internally). 1.0 when the stems
  /// are equal; 0.0 for unknown pairs.
  double Sim(std::string_view a, std::string_view b) const;

  /// Sim over words already Porter-stemmed by the caller — the hoisted form
  /// for loops that would otherwise re-stem an invariant argument per call.
  double SimStemmed(std::string_view stem_a, std::string_view stem_b) const;

  /// The `limit` most similar vocabulary stems to `word`, best first.
  std::vector<std::pair<std::string, double>> MostSimilar(
      std::string_view word, std::size_t limit) const;

  // --- id-keyed API (the hot path) ---------------------------------------

  /// Vocabulary id of raw `word` (stems internally); kInvalidTerm when the
  /// stem is out of vocabulary.
  text::TermId Resolve(std::string_view word) const {
    return dict_.FindStemOf(word);
  }
  /// Vocabulary id of an already-stemmed word.
  text::TermId ResolveStem(std::string_view stem) const {
    return dict_.Find(stem);
  }

  /// Similarity by vocabulary id: equal valid ids score 1.0 (equal stems);
  /// any invalid id scores 0.0; otherwise a binary search of a's adjacency
  /// row. Byte-identical to Sim() on the words the ids resolve from.
  double SimById(text::TermId a, text::TermId b) const;

  /// Most-similar by id (same ordering contract as the string form).
  std::vector<std::pair<std::string, double>> MostSimilarById(
      text::TermId id, std::size_t limit) const;

  /// Degree of one vocabulary row (bench/regression instrumentation).
  std::size_t RowDegree(text::TermId id) const;
  std::size_t MaxRowDegree() const;

  /// Largest off-diagonal similarity (normalization factor for Eq. 5).
  double MaxSim() const { return max_sim_; }

  std::size_t vocabulary_size() const { return dict_.size(); }
  std::size_t pair_count() const { return pair_count_; }

  /// The shared-corpus term dictionary (interned vocabulary stems, ids in
  /// lexicographic order). Published by the engine snapshot.
  const text::TermDict& term_dict() const { return dict_; }

 private:
  friend struct cqads::snapshot::SerdeAccess;

  text::TermDict dict_;
  /// CSR: row_begin_[id] .. row_begin_[id+1] index the (neighbor, sim)
  /// arrays; each row's neighbors are sorted ascending (== lexicographic,
  /// since ids are). Each unordered pair is stored twice, once per
  /// direction, so lookups never canonicalize a key. PodVec: heap-built in
  /// Build(), zero-copy mapped views when loaded from a snapshot.
  common::PodVec<std::uint32_t> row_begin_;
  common::PodVec<text::TermId> neighbor_;
  common::PodVec<double> sim_;
  std::size_t pair_count_ = 0;
  double max_sim_ = 0.0;
};

}  // namespace cqads::wordsim

#endif  // CQADS_WORDSIM_WS_MATRIX_H_
