#include "wordsim/ws_matrix.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace cqads::wordsim {

WsMatrix WsMatrix::Build(const std::vector<std::string>& corpus,
                         const WsOptions& options) {
  WsMatrix m;

  // Tokenize, drop stopwords, stem.
  std::vector<std::vector<std::string>> docs;
  docs.reserve(corpus.size());
  std::unordered_map<std::string, std::size_t> doc_freq;
  for (const auto& raw : corpus) {
    std::vector<std::string> stems;
    for (const auto& tok : text::Tokenize(raw)) {
      if (tok.kind != text::TokenKind::kWord) continue;
      if (text::IsStopword(tok.text)) continue;
      stems.push_back(text::PorterStem(tok.text));
    }
    std::set<std::string> uniq(stems.begin(), stems.end());
    for (const auto& s : uniq) ++doc_freq[s];
    docs.push_back(std::move(stems));
  }

  // Vocabulary after the document-frequency floor, interned in sorted order
  // so TermIds ARE lexicographic ranks (deterministic tie-breaking below).
  std::set<std::string> vocab_set;
  for (const auto& [word, df] : doc_freq) {
    if (df >= options.min_doc_freq) vocab_set.insert(word);
  }
  for (const auto& word : vocab_set) m.dict_.Intern(word);
  m.dict_.Freeze();

  // Accumulate co-occurrence weight: frequency x 1/distance inside a window.
  // Ids replace the seed's string-pair map keys; the per-document id
  // resolution happens once per token.
  std::map<std::pair<text::TermId, text::TermId>, double> raw;
  std::vector<text::TermId> ids;
  for (const auto& doc : docs) {
    ids.clear();
    ids.reserve(doc.size());
    for (const auto& s : doc) ids.push_back(m.dict_.Find(s));
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == text::kInvalidTerm) continue;
      const std::size_t end = std::min(ids.size(), i + 1 + options.window);
      for (std::size_t j = i + 1; j < end; ++j) {
        if (ids[j] == text::kInvalidTerm || ids[i] == ids[j]) continue;
        auto key = std::minmax(ids[i], ids[j]);
        raw[{key.first, key.second}] += 1.0 / static_cast<double>(j - i);
      }
    }
  }

  // Normalize by the global maximum so similarities land in (0, 1].
  double max_raw = 0.0;
  for (const auto& [key, w] : raw) max_raw = std::max(max_raw, w);
  m.pair_count_ = max_raw > 0.0 ? raw.size() : 0;

  // CSR build: count degrees (each pair contributes to both rows), then
  // fill. The raw map iterates (a, b) with a < b ascending, so per-row
  // neighbor order comes out sorted without an extra sort.
  auto& row_begin = m.row_begin_.vec();
  auto& neighbor = m.neighbor_.vec();
  auto& sim_col = m.sim_.vec();
  row_begin.assign(m.dict_.size() + 1, 0);
  if (max_raw > 0.0) {
    for (const auto& [key, w] : raw) {
      ++row_begin[key.first + 1];
      ++row_begin[key.second + 1];
    }
    for (std::size_t i = 1; i < row_begin.size(); ++i) {
      row_begin[i] += row_begin[i - 1];
    }
    neighbor.resize(row_begin.back());
    sim_col.resize(row_begin.back());
    std::vector<std::uint32_t> fill(row_begin.begin(), row_begin.end() - 1);
    for (const auto& [key, w] : raw) {
      const double sim = w / max_raw;
      m.max_sim_ = std::max(m.max_sim_, sim);
      neighbor[fill[key.first]] = key.second;
      sim_col[fill[key.first]++] = sim;
      neighbor[fill[key.second]] = key.first;
      sim_col[fill[key.second]++] = sim;
    }
  }
  return m;
}

double WsMatrix::SimById(text::TermId a, text::TermId b) const {
  if (a == text::kInvalidTerm || b == text::kInvalidTerm) return 0.0;
  if (a == b) return 1.0;  // equal interned stems
  const std::uint32_t begin = row_begin_[a];
  const std::uint32_t end = row_begin_[a + 1];
  auto it = std::lower_bound(neighbor_.begin() + begin,
                             neighbor_.begin() + end, b);
  if (it == neighbor_.begin() + end || *it != b) return 0.0;
  return sim_[static_cast<std::size_t>(it - neighbor_.begin())];
}

double WsMatrix::Sim(std::string_view a, std::string_view b) const {
  return SimStemmed(text::PorterStem(a), text::PorterStem(b));
}

double WsMatrix::SimStemmed(std::string_view stem_a,
                            std::string_view stem_b) const {
  if (stem_a == stem_b) return 1.0;
  return SimById(dict_.Find(stem_a), dict_.Find(stem_b));
}

std::vector<std::pair<std::string, double>> WsMatrix::MostSimilarById(
    text::TermId id, std::size_t limit) const {
  std::vector<std::pair<std::string, double>> out;
  if (id == text::kInvalidTerm || row_begin_.empty()) return out;
  // One O(degree) row scan replaces the seed's O(total pairs) full-map scan
  // with a string compare per entry (the parse_rank bench asserts the
  // difference so the regression cannot quietly come back).
  const std::uint32_t begin = row_begin_[id];
  const std::uint32_t end = row_begin_[id + 1];
  out.reserve(end - begin);
  for (std::uint32_t i = begin; i < end; ++i) {
    out.emplace_back(dict_.term(neighbor_[i]), sim_[i]);
  }
  // Row neighbors are id-ascending == lexicographic, so this comparator
  // reproduces the seed's (sim desc, stem asc) order exactly.
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    if (x.second != y.second) return x.second > y.second;
    return x.first < y.first;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<std::pair<std::string, double>> WsMatrix::MostSimilar(
    std::string_view word, std::size_t limit) const {
  return MostSimilarById(Resolve(word), limit);
}

std::size_t WsMatrix::RowDegree(text::TermId id) const {
  if (id == text::kInvalidTerm || row_begin_.empty()) return 0;
  return row_begin_[id + 1] - row_begin_[id];
}

std::size_t WsMatrix::MaxRowDegree() const {
  std::size_t best = 0;
  for (std::size_t i = 0; i + 1 < row_begin_.size(); ++i) {
    best = std::max<std::size_t>(best, row_begin_[i + 1] - row_begin_[i]);
  }
  return best;
}

}  // namespace cqads::wordsim
