#include "wordsim/ws_matrix.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace cqads::wordsim {

WsMatrix::Key WsMatrix::MakeKey(std::string_view a, std::string_view b) {
  std::string sa(a), sb(b);
  if (sb < sa) std::swap(sa, sb);
  return {std::move(sa), std::move(sb)};
}

WsMatrix WsMatrix::Build(const std::vector<std::string>& corpus,
                         const WsOptions& options) {
  WsMatrix m;

  // Tokenize, drop stopwords, stem.
  std::vector<std::vector<std::string>> docs;
  docs.reserve(corpus.size());
  std::unordered_map<std::string, std::size_t> doc_freq;
  for (const auto& raw : corpus) {
    std::vector<std::string> stems;
    for (const auto& tok : text::Tokenize(raw)) {
      if (tok.kind != text::TokenKind::kWord) continue;
      if (text::IsStopword(tok.text)) continue;
      stems.push_back(text::PorterStem(tok.text));
    }
    std::set<std::string> uniq(stems.begin(), stems.end());
    for (const auto& s : uniq) ++doc_freq[s];
    docs.push_back(std::move(stems));
  }

  // Vocabulary after the document-frequency floor.
  std::set<std::string> vocab_set;
  for (const auto& [word, df] : doc_freq) {
    if (df >= options.min_doc_freq) vocab_set.insert(word);
  }
  m.vocab_.assign(vocab_set.begin(), vocab_set.end());

  // Accumulate co-occurrence weight: frequency x 1/distance inside a window.
  std::map<Key, double> raw;
  for (const auto& doc : docs) {
    for (std::size_t i = 0; i < doc.size(); ++i) {
      if (vocab_set.count(doc[i]) == 0) continue;
      const std::size_t end = std::min(doc.size(), i + 1 + options.window);
      for (std::size_t j = i + 1; j < end; ++j) {
        if (doc[i] == doc[j]) continue;
        if (vocab_set.count(doc[j]) == 0) continue;
        raw[MakeKey(doc[i], doc[j])] +=
            1.0 / static_cast<double>(j - i);
      }
    }
  }

  // Normalize by the global maximum so similarities land in (0, 1].
  double max_raw = 0.0;
  for (const auto& [key, w] : raw) max_raw = std::max(max_raw, w);
  if (max_raw > 0.0) {
    for (const auto& [key, w] : raw) {
      double sim = w / max_raw;
      m.sims_[key] = sim;
      m.max_sim_ = std::max(m.max_sim_, sim);
    }
  }
  return m;
}

double WsMatrix::Sim(std::string_view a, std::string_view b) const {
  std::string sa = text::PorterStem(a);
  std::string sb = text::PorterStem(b);
  if (sa == sb) return 1.0;
  auto it = sims_.find(MakeKey(sa, sb));
  return it == sims_.end() ? 0.0 : it->second;
}

std::vector<std::pair<std::string, double>> WsMatrix::MostSimilar(
    std::string_view word, std::size_t limit) const {
  std::string stem = text::PorterStem(word);
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [key, sim] : sims_) {
    if (key.first == stem) {
      out.emplace_back(key.second, sim);
    } else if (key.second == stem) {
      out.emplace_back(key.first, sim);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    if (x.second != y.second) return x.second > y.second;
    return x.first < y.first;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace cqads::wordsim
