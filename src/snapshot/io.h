// Byte-stream primitives of the snapshot format.
//
// ByteWriter appends into a growable buffer: little-endian scalars,
// length-prefixed strings, and 64-byte-aligned POD arrays (the alignment
// every adoptable array needs so a page-aligned mmap base yields correctly
// aligned element pointers).
//
// ByteReader is the untrusted-input counterpart: every read is bounds-
// checked against the section it was handed and fails with a DataLoss
// Status instead of walking off the mapping — the corruption tests feed it
// deliberately damaged bytes. ReadArray returns a pointer INTO the source
// buffer (zero-copy); callers wrap it in a PodVec view that keeps the
// mapped arena alive.
#ifndef CQADS_SNAPSHOT_IO_H_
#define CQADS_SNAPSHOT_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace cqads::snapshot {

/// Alignment of adoptable arrays within a section (and of section payloads
/// within the file). 64 covers every element type we store and keeps
/// adopted arrays cache-line aligned.
inline constexpr std::size_t kArrayAlign = 64;

class ByteWriter {
 public:
  std::size_t size() const { return buf_.size(); }
  const std::vector<unsigned char>& buffer() const { return buf_; }
  std::vector<unsigned char> TakeBuffer() { return std::move(buf_); }

  void WriteBytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  template <typename T>
  void WritePod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteBytes(&v, sizeof(T));
  }

  void WriteU8(std::uint8_t v) { WritePod(v); }
  void WriteU32(std::uint32_t v) { WritePod(v); }
  void WriteU64(std::uint64_t v) { WritePod(v); }
  void WriteDouble(double v) { WritePod(v); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  void WriteString(std::string_view s) {
    WriteU64(s.size());
    WriteBytes(s.data(), s.size());
  }

  /// Zero-pads to the next multiple of `align` (relative to buffer start;
  /// sections are placed at kArrayAlign-multiple file offsets, so in-buffer
  /// alignment carries over to the file and the mapping).
  void AlignTo(std::size_t align) {
    while (buf_.size() % align != 0) buf_.push_back(0);
  }

  /// Length-prefixed, kArrayAlign-aligned POD array — the adoptable layout.
  template <typename T>
  void WriteArray(const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(count);
    AlignTo(kArrayAlign);
    WriteBytes(data, count * sizeof(T));
  }

  /// Unaligned length-prefixed POD array, for arrays that are COPIED at
  /// load (index postings, attr ranges) — skips the 64-byte padding the
  /// adoptable layout pays.
  template <typename T>
  void WritePacked(const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(count);
    WriteBytes(data, count * sizeof(T));
  }

 private:
  std::vector<unsigned char> buf_;
};

class ByteReader {
 public:
  ByteReader(const unsigned char* data, std::size_t size, std::string context)
      : data_(data), size_(size), context_(std::move(context)) {}

  std::size_t remaining() const { return size_ - pos_; }
  std::size_t position() const { return pos_; }

  Status ReadBytes(void* out, std::size_t n) {
    CQADS_RETURN_NOT_OK(Need(n));
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  template <typename T>
  Status ReadPod(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadBytes(out, sizeof(T));
  }

  Status ReadU8(std::uint8_t* out) { return ReadPod(out); }
  Status ReadU32(std::uint32_t* out) { return ReadPod(out); }
  Status ReadU64(std::uint64_t* out) { return ReadPod(out); }
  Status ReadDouble(double* out) { return ReadPod(out); }
  Status ReadBool(bool* out) {
    std::uint8_t v = 0;
    CQADS_RETURN_NOT_OK(ReadU8(&v));
    if (v > 1) return Corrupt("bool field out of range");
    *out = v != 0;
    return Status::OK();
  }

  Status ReadString(std::string* out) {
    std::uint64_t n = 0;
    CQADS_RETURN_NOT_OK(ReadU64(&n));
    CQADS_RETURN_NOT_OK(Need(n));
    out->assign(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return Status::OK();
  }

  Status SkipAlignment(std::size_t align) {
    while (pos_ % align != 0) {
      if (pos_ >= size_) return Corrupt("truncated inside alignment padding");
      ++pos_;
    }
    return Status::OK();
  }

  /// Zero-copy array read: validates the length prefix, alignment padding,
  /// and bounds, then returns a pointer into the source buffer. `*count`
  /// receives the element count. The pointed-at bytes live as long as the
  /// buffer this reader was constructed over (the mapped arena).
  template <typename T>
  Status ReadArray(const T** out, std::size_t* count) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t n = 0;
    CQADS_RETURN_NOT_OK(ReadU64(&n));
    CQADS_RETURN_NOT_OK(SkipAlignment(kArrayAlign));
    if (n > (size_ - pos_) / sizeof(T)) {
      return Corrupt("array length exceeds section bounds");
    }
    if (reinterpret_cast<std::uintptr_t>(data_ + pos_) % alignof(T) != 0) {
      return Corrupt("array misaligned for element type");
    }
    *out = reinterpret_cast<const T*>(data_ + pos_);
    *count = static_cast<std::size_t>(n);
    pos_ += static_cast<std::size_t>(n) * sizeof(T);
    return Status::OK();
  }

  /// Copying array read, for small arrays that stay heap-owned.
  template <typename T>
  Status ReadArrayCopy(std::vector<T>* out) {
    const T* p = nullptr;
    std::size_t n = 0;
    CQADS_RETURN_NOT_OK(ReadArray(&p, &n));
    out->assign(p, p + n);
    return Status::OK();
  }

  /// Counterpart of WritePacked: bounds-checked copy of an unaligned array
  /// (memcpy, so source alignment is irrelevant).
  template <typename T>
  Status ReadPacked(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t n = 0;
    CQADS_RETURN_NOT_OK(ReadU64(&n));
    if (n > (size_ - pos_) / sizeof(T)) {
      return Corrupt("array length exceeds section bounds");
    }
    out->resize(static_cast<std::size_t>(n));
    if (n > 0) {
      std::memcpy(out->data(), data_ + pos_,
                  static_cast<std::size_t>(n) * sizeof(T));
    }
    pos_ += static_cast<std::size_t>(n) * sizeof(T);
    return Status::OK();
  }

  /// A length-guarded count for follow-up per-element loops: fails when
  /// `count * min_element_bytes` cannot fit in the remaining bytes, so a
  /// corrupted count cannot drive a multi-gigabyte allocation loop.
  Status ReadCount(std::uint64_t* count, std::size_t min_element_bytes) {
    CQADS_RETURN_NOT_OK(ReadU64(count));
    const std::size_t min_bytes = min_element_bytes == 0 ? 1 : min_element_bytes;
    if (*count > remaining() / min_bytes) {
      return Corrupt("element count exceeds section bounds");
    }
    return Status::OK();
  }

  Status Corrupt(const std::string& what) const {
    return Status::DataLoss("snapshot corrupt (" + context_ + " @" +
                            std::to_string(pos_) + "): " + what);
  }

 private:
  Status Need(std::uint64_t n) {
    if (n > size_ - pos_) return Corrupt("truncated read");
    return Status::OK();
  }

  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string context_;
};

}  // namespace cqads::snapshot

#endif  // CQADS_SNAPSHOT_IO_H_
