// Engine-level snapshot container: SaveEngine lays the builder's complete
// built state out as named sections ("meta", "ws", "classifier", "dom<i>"),
// LoadEngine mmaps the file and wires DomainRuntimes around the restored
// structures. Cheap derived objects (tagger, executor, planner, parallel
// planner) are reconstructed at load — they are a handful of pointers each —
// while every heavy structure (tries, CSR matrices, column arrays, index
// postings, stats) comes out of the file.
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine_snapshot.h"
#include "db/exec/parallel_plan.h"
#include "db/exec/partitioned_table.h"
#include "db/exec/planner.h"
#include "db/executor.h"
#include "snapshot/serde.h"
#include "snapshot/snapshot_file.h"

namespace cqads::snapshot {

namespace {

std::string DomainSectionName(std::size_t i) {
  return "dom" + std::to_string(i);
}

}  // namespace

Status SerdeAccess::SaveEngine(const core::EngineBuilder& b,
                               const std::string& path) {
  for (const auto& [domain, rt] : b.runtimes_) {
    if (b.HasPendingDelta(domain)) {
      return Status::FailedPrecondition(
          "domain has a pending ingest delta: " + domain +
          " — CompactDomain before SaveSnapshot (a snapshot always "
          "represents a fully-merged base)");
    }
  }

  SnapshotFileWriter writer;

  ByteWriter meta;
  WriteOptions(b.options_, &meta);
  meta.WriteBool(b.ws_ != nullptr);
  meta.WriteBool(b.classifier_trained_);
  meta.WriteU64(b.runtimes_.size());
  for (const auto& [domain, rt] : b.runtimes_) meta.WriteString(domain);
  writer.AddSection("meta", std::move(meta));

  if (b.ws_ != nullptr) {
    ByteWriter w;
    WriteWsMatrix(*b.ws_, &w);
    writer.AddSection("ws", std::move(w));
  }
  if (b.classifier_trained_) {
    ByteWriter w;
    WriteClassifier(b.classifier_, &w);
    writer.AddSection("classifier", std::move(w));
  }

  std::size_t i = 0;
  for (const auto& [domain, rt] : b.runtimes_) {
    ByteWriter w;
    w.WriteString(domain);
    WriteTable(*rt->table, &w);
    WriteLexicon(*rt->lexicon, &w);
    if (rt->ti_matrix != nullptr) {
      w.WriteBool(true);
      WriteTiMatrix(*rt->ti_matrix, &w);
    } else {
      w.WriteBool(false);
    }
    w.WritePacked(rt->attr_ranges.data(), rt->attr_ranges.size());
    const bool has_parts = rt->partitions != nullptr;
    w.WriteBool(has_parts);
    if (has_parts) {
      const auto& pt = *rt->partitions;
      w.WriteU64(pt.rows_per_partition_);
      w.WritePacked(pt.bases_.data(), pt.bases_.size());
      w.WriteU64(pt.parts_.size());
      for (const auto& part : pt.parts_) WriteTable(*part, &w);
    }
    writer.AddSection(DomainSectionName(i++), std::move(w));
  }

  auto size = writer.Finish(path);
  if (!size.ok()) return size.status();
  return Status::OK();
}

Result<core::EngineBuilder> SerdeAccess::LoadEngine(const std::string& path) {
  auto file = SnapshotFile::Open(path);
  if (!file.ok()) return file.status();
  const ArenaPtr owner = file.value().arena();

  auto meta = file.value().Reader("meta");
  if (!meta.ok()) return meta.status();
  ByteReader mr = std::move(meta).value();

  core::EngineOptions options;
  CQADS_RETURN_NOT_OK(ReadOptions(&mr, &options));
  bool has_ws = false, trained = false;
  CQADS_RETURN_NOT_OK(mr.ReadBool(&has_ws));
  CQADS_RETURN_NOT_OK(mr.ReadBool(&trained));
  std::uint64_t n_domains = 0;
  CQADS_RETURN_NOT_OK(mr.ReadCount(&n_domains, 8));
  std::vector<std::string> domains;
  domains.reserve(static_cast<std::size_t>(n_domains));
  for (std::uint64_t i = 0; i < n_domains; ++i) {
    std::string d;
    CQADS_RETURN_NOT_OK(mr.ReadString(&d));
    domains.push_back(std::move(d));
  }

  core::EngineBuilder builder(options);

  if (has_ws) {
    auto r = file.value().Reader("ws");
    if (!r.ok()) return r.status();
    ByteReader wr = std::move(r).value();
    auto ws = std::make_shared<wordsim::WsMatrix>();
    CQADS_RETURN_NOT_OK(ReadWsMatrix(&wr, owner, ws.get()));
    builder.SetWordSimilarityOwned(std::move(ws));
  }
  if (trained) {
    auto r = file.value().Reader("classifier");
    if (!r.ok()) return r.status();
    ByteReader cr = std::move(r).value();
    CQADS_RETURN_NOT_OK(ReadClassifier(&cr, &builder.classifier_));
    builder.classifier_trained_ = true;
  }

  for (std::size_t i = 0; i < domains.size(); ++i) {
    auto r = file.value().Reader(DomainSectionName(i));
    if (!r.ok()) return r.status();
    ByteReader dr = std::move(r).value();

    std::string domain;
    CQADS_RETURN_NOT_OK(dr.ReadString(&domain));
    if (domain != domains[i]) {
      return dr.Corrupt("domain section name mismatch vs meta");
    }

    std::unique_ptr<db::Table> table_up;
    CQADS_RETURN_NOT_OK(ReadTable(&dr, owner, &table_up));
    if (!table_up->indexes_built()) {
      return dr.Corrupt("domain table has no indexes");
    }
    std::shared_ptr<const db::Table> table = std::move(table_up);

    std::shared_ptr<const core::DomainLexicon> lexicon;
    CQADS_RETURN_NOT_OK(ReadLexicon(&dr, owner, table.get(), &lexicon));

    bool has_ti = false;
    CQADS_RETURN_NOT_OK(dr.ReadBool(&has_ti));
    std::shared_ptr<const qlog::TiMatrix> ti;
    if (has_ti) {
      auto m = std::make_shared<qlog::TiMatrix>();
      CQADS_RETURN_NOT_OK(ReadTiMatrix(&dr, owner, m.get()));
      ti = std::move(m);
    }

    std::vector<double> attr_ranges;
    CQADS_RETURN_NOT_OK(dr.ReadPacked(&attr_ranges));

    // Wire the runtime exactly as EngineBuilder::MakeRuntime does, with the
    // loaded components standing in for freshly built ones.
    auto rt = std::make_shared<core::DomainRuntime>();
    rt->table = table.get();
    rt->owned_table = table;
    rt->lexicon = lexicon;
    rt->terms = std::shared_ptr<const text::TermDict>(rt->lexicon,
                                                      &rt->lexicon->terms());
    rt->tagger = std::make_shared<const core::QuestionTagger>(
        rt->lexicon.get());
    rt->executor = std::make_shared<const db::Executor>(rt->table);
    rt->stats = table->stats_ptr();
    rt->planner = std::make_shared<const db::exec::Planner>(rt->table);

    bool has_parts = false;
    CQADS_RETURN_NOT_OK(dr.ReadBool(&has_parts));
    if (has_parts) {
      std::shared_ptr<db::exec::PartitionedTable> pt(
          new db::exec::PartitionedTable());
      pt->base_ = rt->table;
      std::uint64_t rpp = 0;
      CQADS_RETURN_NOT_OK(dr.ReadU64(&rpp));
      pt->rows_per_partition_ = static_cast<std::size_t>(rpp);
      CQADS_RETURN_NOT_OK(dr.ReadPacked(&pt->bases_));
      std::uint64_t n_parts = 0;
      CQADS_RETURN_NOT_OK(dr.ReadCount(&n_parts, 8));
      if (n_parts != pt->bases_.size()) {
        return dr.Corrupt("partition base array size mismatch");
      }
      pt->parts_.reserve(static_cast<std::size_t>(n_parts));
      for (std::uint64_t p = 0; p < n_parts; ++p) {
        std::unique_ptr<db::Table> part;
        CQADS_RETURN_NOT_OK(ReadTable(&dr, owner, &part));
        pt->parts_.push_back(std::move(part));
      }
      rt->partitions = pt;
      rt->parallel_planner =
          std::make_shared<const db::exec::ParallelPlanner>(rt->partitions);
    }

    rt->ti_matrix = std::move(ti);
    rt->attr_ranges = std::move(attr_ranges);
    rt->rank_bounds = db::exec::RankBounds::Build(*rt->table);
    builder.runtimes_.emplace(domains[i], std::move(rt));
  }

  return builder;
}

}  // namespace cqads::snapshot

namespace cqads::core {

Status EngineBuilder::SaveSnapshot(const std::string& path) const {
  return snapshot::SerdeAccess::SaveEngine(*this, path);
}

Result<EngineBuilder> EngineBuilder::OpenSnapshot(const std::string& path) {
  return snapshot::SerdeAccess::LoadEngine(path);
}

}  // namespace cqads::core
