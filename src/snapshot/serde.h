// Per-structure (de)serialization for persistent snapshots. SerdeAccess is
// the single friend every snapshottable structure grants: all reads of
// private members funnel through here, so the set of fields a snapshot
// depends on is auditable in one file (serde.cc).
//
// Conventions:
//   * Write* is infallible (appends to a ByteWriter); Read* returns Status
//     and must treat the bytes as untrusted — every count is bounds-checked
//     and every enum validated, so a damaged-but-checksum-passing stream
//     still fails with DataLoss, never UB.
//   * Large POD arrays (trie nodes/edges, CSR rows, column codes, packed
//     doubles, null bitmaps, element postings, dict spans) use the aligned
//     adoptable layout and are restored as zero-copy PodVec views that keep
//     the mapped arena alive. String dictionaries and index postings are
//     materialized on the heap once per open.
//   * unordered_map contents are written in sorted key order, so identical
//     engine state always produces byte-identical files.
#ifndef CQADS_SNAPSHOT_SERDE_H_
#define CQADS_SNAPSHOT_SERDE_H_

#include <memory>
#include <string>
#include <vector>

#include "classify/question_classifier.h"
#include "common/status.h"
#include "core/ask_types.h"
#include "core/domain_lexicon.h"
#include "core/engine_snapshot.h"
#include "core/tags.h"
#include "db/exec/partitioned_table.h"
#include "db/exec/table_stats.h"
#include "db/indexes.h"
#include "db/schema.h"
#include "db/storage/column_store.h"
#include "db/table.h"
#include "db/value.h"
#include "qlog/ti_matrix.h"
#include "snapshot/io.h"
#include "text/term_dict.h"
#include "trie/flat_trie.h"
#include "wordsim/ws_matrix.h"

namespace cqads::snapshot {

/// Keeps the mapped arena alive from inside adopted PodVec views.
using ArenaPtr = std::shared_ptr<const void>;

struct SerdeAccess {
  // --- text ---------------------------------------------------------------
  static void WriteTermDict(const text::TermDict& d, ByteWriter* w);
  static Status ReadTermDict(ByteReader* r, text::TermDict* out);

  // --- trie ---------------------------------------------------------------
  static void WriteFlatTrie(const trie::FlatTrie& t, ByteWriter* w);
  static Status ReadFlatTrie(ByteReader* r, const ArenaPtr& owner,
                             trie::FlatTrie* out);

  // --- similarity matrices ------------------------------------------------
  static void WriteWsMatrix(const wordsim::WsMatrix& m, ByteWriter* w);
  static Status ReadWsMatrix(ByteReader* r, const ArenaPtr& owner,
                             wordsim::WsMatrix* out);
  static void WriteTiMatrix(const qlog::TiMatrix& m, ByteWriter* w);
  static Status ReadTiMatrix(ByteReader* r, const ArenaPtr& owner,
                             qlog::TiMatrix* out);

  // --- db -----------------------------------------------------------------
  static void WriteValue(const db::Value& v, ByteWriter* w);
  static Status ReadValue(ByteReader* r, db::Value* out);
  static void WriteSchema(const db::Schema& s, ByteWriter* w);
  static Status ReadSchema(ByteReader* r, db::Schema* out);
  static void WriteColumnStore(const db::ColumnStore& s, ByteWriter* w);
  static Status ReadColumnStore(ByteReader* r, const ArenaPtr& owner,
                                db::ColumnStore* out);
  static void WriteHashIndex(const db::HashIndex& idx, ByteWriter* w);
  static Status ReadHashIndex(ByteReader* r, db::HashIndex* out);
  static void WriteSortedIndex(const db::SortedIndex& idx, ByteWriter* w);
  static Status ReadSortedIndex(ByteReader* r, db::SortedIndex* out);
  static void WriteNGramIndex(const db::NGramIndex& idx, ByteWriter* w);
  static Status ReadNGramIndex(ByteReader* r, db::NGramIndex* out);
  static void WriteStats(const db::exec::TableStats& s, ByteWriter* w);
  static Status ReadStats(ByteReader* r, db::exec::TableStats* out);
  /// Whole table: schema, columnar store (frozen at load), all access-path
  /// indexes, and the statistics the planner was built against.
  static void WriteTable(const db::Table& t, ByteWriter* w);
  static Status ReadTable(ByteReader* r, const ArenaPtr& owner,
                          std::unique_ptr<db::Table>* out);

  // --- core ---------------------------------------------------------------
  static void WriteTaggedItem(const core::TaggedItem& item, ByteWriter* w);
  static Status ReadTaggedItem(ByteReader* r, core::TaggedItem* out);
  /// Lexicon is restored against the already-loaded table (schema_ rewires
  /// to it); the pointer trie_ is rebuilt from the flat trie's completion
  /// enumeration, since FindShorthand walks it at serve time.
  static void WriteLexicon(const core::DomainLexicon& lex, ByteWriter* w);
  static Status ReadLexicon(ByteReader* r, const ArenaPtr& owner,
                            const db::Table* table,
                            std::shared_ptr<const core::DomainLexicon>* out);
  static void WriteClassifier(const classify::QuestionClassifier& c,
                              ByteWriter* w);
  static Status ReadClassifier(ByteReader* r,
                               classify::QuestionClassifier* out);
  /// All fields except exec_runner, which is a process-local pointer and is
  /// restored as nullptr (callers re-attach a pool after load).
  static void WriteOptions(const core::EngineOptions& o, ByteWriter* w);
  static Status ReadOptions(ByteReader* r, core::EngineOptions* out);

  // --- engine-level container (src/snapshot/engine_io.cc) -----------------
  static Status SaveEngine(const core::EngineBuilder& b,
                           const std::string& path);
  static Result<core::EngineBuilder> LoadEngine(const std::string& path);
};

}  // namespace cqads::snapshot

#endif  // CQADS_SNAPSHOT_SERDE_H_
