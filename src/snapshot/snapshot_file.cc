#include "snapshot/snapshot_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "snapshot/xxhash64.h"

namespace cqads::snapshot {

namespace {

std::uint64_t PadTo(std::uint64_t n, std::uint64_t align) {
  return (n + align - 1) / align * align;
}

std::uint64_t HeaderChecksum(FileHeader h) {
  h.header_checksum = 0;
  return XxHash64(&h, sizeof(h));
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " failed for '" + path +
                          "': " + std::strerror(errno));
}

}  // namespace

// ---------------------------------------------------------------- writer ---

void SnapshotFileWriter::AddSection(const std::string& name,
                                    std::vector<unsigned char> payload) {
  assert(name.size() <= kMaxSectionName && "section name too long");
  for (const auto& [existing, bytes] : sections_) {
    (void)bytes;
    assert(existing != name && "duplicate section name");
  }
  sections_.emplace_back(name, std::move(payload));
}

Result<std::uint64_t> SnapshotFileWriter::Finish(const std::string& path) {
  // Lay out: header, TOC, then payloads each starting at a kArrayAlign
  // multiple so in-section array alignment carries through the mapping.
  std::vector<SectionEntry> toc(sections_.size());
  std::uint64_t cursor =
      PadTo(sizeof(FileHeader) + sections_.size() * sizeof(SectionEntry),
            kArrayAlign);
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const auto& [name, payload] = sections_[i];
    SectionEntry& e = toc[i];
    std::memset(&e, 0, sizeof(e));
    std::memcpy(e.name, name.data(), name.size());
    e.offset = cursor;
    e.length = payload.size();
    e.padded_length = PadTo(payload.size(), kArrayAlign);
    cursor += e.padded_length;
  }
  const std::uint64_t file_size = cursor;

  // Checksum payloads including their trailing zero padding, so every file
  // byte is covered and padding tampering is detected too. The padding is
  // materialized into the payload buffer first: XXH64 of the padded span
  // must be one hash (seed-chaining is not concatenation-equivalent), and
  // the padded buffer is what gets written anyway.
  const std::vector<unsigned char> pad(kArrayAlign, 0);
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    auto& payload = sections_[i].second;
    payload.resize(static_cast<std::size_t>(toc[i].padded_length), 0);
    toc[i].checksum = XxHash64(payload.data(), payload.size());
  }

  // The TOC checksum covers the SectionEntry block AND the zero padding up
  // to the first section offset — otherwise that gap would be the one file
  // region no checksum sees.
  const std::size_t toc_bytes = toc.size() * sizeof(SectionEntry);
  std::vector<unsigned char> toc_block(static_cast<std::size_t>(
      PadTo(sizeof(FileHeader) + toc_bytes, kArrayAlign) -
      sizeof(FileHeader)));
  std::memcpy(toc_block.data(), toc.data(), toc_bytes);

  FileHeader header{};
  header.magic = kMagic;
  header.endian_mark = kEndianMark;
  header.format_version = kFormatVersion;
  header.file_size = file_size;
  header.toc_offset = sizeof(FileHeader);
  header.section_count = sections_.size();
  header.toc_checksum = XxHash64(toc_block.data(), toc_block.size());
  header.header_checksum = HeaderChecksum(header);

  // Write to a temp sibling then rename: opens never observe partial files.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Errno("fopen", tmp);
  auto write_all = [&](const void* data, std::size_t n) {
    return n == 0 || std::fwrite(data, 1, n, f) == n;
  };
  bool ok = write_all(&header, sizeof(header)) &&
            write_all(toc.data(), toc.size() * sizeof(SectionEntry));
  std::uint64_t written = sizeof(header) + toc.size() * sizeof(SectionEntry);
  for (std::size_t i = 0; ok && i < sections_.size(); ++i) {
    const std::uint64_t lead_pad = toc[i].offset - written;
    ok = write_all(pad.data(), lead_pad) &&
         write_all(sections_[i].second.data(), sections_[i].second.size());
    written = toc[i].offset + toc[i].padded_length;
  }
  if (ok && written < file_size) {
    ok = write_all(pad.data(), file_size - written);
    written = file_size;
  }
  ok = ok && std::fflush(f) == 0;
  if (ok) ok = ::fsync(::fileno(f)) == 0;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return Errno("write", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Errno("rename", path);
  }
  return file_size;
}

// ----------------------------------------------------------------- arena ---

MappedArena::~MappedArena() {
  if (data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
}

Result<std::shared_ptr<MappedArena>> MappedArena::Map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    Status s = Errno("fstat", path);
    ::close(fd);
    return s;
  }
  if (st.st_size == 0) {
    ::close(fd);
    return Status::DataLoss("snapshot '" + path + "' is empty");
  }
  // PROT_READ + MAP_SHARED: read-only pages shared across every process
  // mapping this file — the multi-process serving story in one flag.
  void* addr = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                      MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (addr == MAP_FAILED) return Errno("mmap", path);
  return std::shared_ptr<MappedArena>(
      new MappedArena(addr, static_cast<std::size_t>(st.st_size)));
}

// ------------------------------------------------------------------ open ---

Result<SnapshotFile> SnapshotFile::Open(const std::string& path,
                                        const OpenOptions& options) {
  auto arena_r = MappedArena::Map(path);
  if (!arena_r.ok()) return arena_r.status();
  std::shared_ptr<MappedArena> arena = std::move(arena_r).value();
  const unsigned char* base = arena->data();
  const std::size_t size = arena->size();
  auto corrupt = [&](const std::string& what) {
    return Status::DataLoss("snapshot '" + path + "': " + what);
  };

  if (size < sizeof(FileHeader)) {
    return corrupt("file shorter than header (" + std::to_string(size) +
                   " bytes)");
  }
  FileHeader header;
  std::memcpy(&header, base, sizeof(header));

  if (header.magic != kMagic) {
    // Distinguish the byte-swapped magic (a wrong-endian writer or a
    // byte-swap-corrupted header) from arbitrary garbage.
    std::uint64_t swapped = __builtin_bswap64(header.magic);
    if (swapped == kMagic) {
      return corrupt("magic is byte-swapped: written on an opposite-endian "
                     "host; snapshots are not endian-portable");
    }
    return corrupt("bad magic (not a cqads snapshot)");
  }
  if (header.endian_mark != kEndianMark) {
    return corrupt("endian mark mismatch: file written on an "
                   "opposite-endian host");
  }
  if (header.format_version != kFormatVersion) {
    return corrupt("format version skew: file is v" +
                   std::to_string(header.format_version) +
                   ", this build reads v" + std::to_string(kFormatVersion) +
                   " — rebuild the snapshot");
  }
  if (HeaderChecksum(header) != header.header_checksum) {
    return corrupt("header checksum mismatch");
  }
  if (header.file_size != size) {
    return corrupt("size mismatch: header says " +
                   std::to_string(header.file_size) + " bytes, file has " +
                   std::to_string(size) + " (truncated or appended)");
  }
  if (header.toc_offset != sizeof(FileHeader)) {
    return corrupt("unexpected TOC offset");
  }
  if (header.section_count >
      (size - sizeof(FileHeader)) / sizeof(SectionEntry)) {
    return corrupt("TOC extends past end of file");
  }

  const auto* toc =
      reinterpret_cast<const SectionEntry*>(base + header.toc_offset);
  const std::size_t toc_bytes = header.section_count * sizeof(SectionEntry);
  // The checksum region runs to the first kArrayAlign boundary past the
  // TOC, covering the zero gap before the first section payload.
  const std::size_t toc_padded =
      PadTo(sizeof(FileHeader) + toc_bytes, kArrayAlign) - sizeof(FileHeader);
  if (toc_padded > size - sizeof(FileHeader)) {
    return corrupt("TOC extends past end of file");
  }
  if (XxHash64(base + header.toc_offset, toc_padded) != header.toc_checksum) {
    return corrupt("TOC checksum mismatch");
  }

  SnapshotFile file;
  file.arena_ = std::move(arena);
  file.header_ = header;
  file.sections_.reserve(header.section_count);
  for (std::uint64_t i = 0; i < header.section_count; ++i) {
    const SectionEntry& e = toc[i];
    if (e.name[kMaxSectionName] != '\0') {
      return corrupt("section name not NUL-terminated");
    }
    if (e.offset % kArrayAlign != 0) {
      return corrupt("section '" + std::string(e.name) + "' misaligned");
    }
    if (e.padded_length < e.length || e.offset > size ||
        e.padded_length > size - e.offset) {
      return corrupt("section '" + std::string(e.name) +
                     "' extends past end of file");
    }
    if (options.verify_checksums &&
        XxHash64(base + e.offset, e.padded_length) != e.checksum) {
      return corrupt("section '" + std::string(e.name) +
                     "' checksum mismatch");
    }
    file.sections_.push_back(Section{std::string(e.name), base + e.offset,
                                     e.length, e.checksum, e.offset});
  }
  return file;
}

Result<const SnapshotFile::Section*> SnapshotFile::Find(
    const std::string& name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return &s;
  }
  return Status::DataLoss("snapshot has no section '" + name +
                          "' — incompatible writer");
}

Result<ByteReader> SnapshotFile::Reader(const std::string& name) const {
  auto section = Find(name);
  if (!section.ok()) return section.status();
  const Section* s = section.value();
  return ByteReader(s->data, static_cast<std::size_t>(s->length), s->name);
}

}  // namespace cqads::snapshot
