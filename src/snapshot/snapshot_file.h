// The snapshot container: a single relocatable file of named, checksummed,
// 64-byte-aligned sections, opened with mmap() for zero-copy adoption.
//
// File layout (all little-endian, offsets from file start):
//
//   [FileHeader]           fixed-size, self-checksummed
//   [SectionEntry x N]     the TOC, checksummed as one block
//   [padding to 64]
//   [section 0 payload]    checksummed individually
//   [padding to 64]
//   [section 1 payload]
//   ...
//
// Relocation rule: no file byte encodes an address — only offsets relative
// to a section start (and array element indices). A mapping at any base
// address is valid; N processes mapping the same file share its pages
// (MAP_SHARED, PROT_READ).
//
// Integrity: every byte of the file is covered by exactly one checksum —
// the header by `header_checksum` (computed with that field zeroed), the
// TOC block by `toc_checksum`, each payload (incl. its trailing alignment
// padding) by its SectionEntry's checksum. Open() validates magic, endian
// mark, format version, file size, and all checksums before any section is
// parsed, so a damaged file fails with a DataLoss Status, never UB.
//
// Versioning: `format_version` is bumped on any layout change; Open()
// rejects a mismatch naming both versions. There is no migration path —
// snapshots are derived artifacts, rebuilt from source data.
#ifndef CQADS_SNAPSHOT_SNAPSHOT_FILE_H_
#define CQADS_SNAPSHOT_SNAPSHOT_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "snapshot/io.h"

namespace cqads::snapshot {

/// "CQADSNAP" as bytes; doubles as an endianness canary — a big-endian
/// writer would produce the reversed pattern and be rejected.
inline constexpr std::uint64_t kMagic = 0x50414E5344415143ULL;
/// Written as 0x01020304; reads back as 0x04030201 under byte-swap.
inline constexpr std::uint32_t kEndianMark = 0x01020304u;
inline constexpr std::uint32_t kFormatVersion = 1;

/// Fixed-size file header. Trivially copyable; explicit padding so every
/// written byte is deterministic.
struct FileHeader {
  std::uint64_t magic;
  std::uint32_t endian_mark;
  std::uint32_t format_version;
  std::uint64_t file_size;        // total bytes; detects truncation
  std::uint64_t toc_offset;       // byte offset of the SectionEntry array
  std::uint64_t section_count;
  std::uint64_t toc_checksum;     // XXH64 of the SectionEntry block
  std::uint64_t header_checksum;  // XXH64 of this struct with field zeroed
};
static_assert(sizeof(FileHeader) == 56);

inline constexpr std::size_t kMaxSectionName = 23;

/// One TOC row. Names are short fixed-width ASCII (NUL-padded).
struct SectionEntry {
  char name[kMaxSectionName + 1];
  std::uint64_t offset;    // from file start; multiple of kArrayAlign
  std::uint64_t length;    // payload bytes (excluding trailing padding)
  std::uint64_t checksum;  // XXH64 of payload + trailing padding
  std::uint64_t padded_length;  // payload + trailing padding
};
static_assert(sizeof(SectionEntry) == 56);

/// Accumulates named sections and writes the container atomically
/// (tmp file + rename), so a crashed save never leaves a half-written
/// snapshot at the target path.
class SnapshotFileWriter {
 public:
  /// Adds a section; `name` must be unique and ≤ kMaxSectionName chars.
  void AddSection(const std::string& name, std::vector<unsigned char> payload);
  void AddSection(const std::string& name, ByteWriter writer) {
    AddSection(name, writer.TakeBuffer());
  }

  /// Writes header + TOC + payloads to `path`. Returns the final file size.
  Result<std::uint64_t> Finish(const std::string& path);

 private:
  std::vector<std::pair<std::string, std::vector<unsigned char>>> sections_;
};

/// An open, read-only mmap of a file. Unmapped on destruction; PodVec views
/// and string_views into the mapping keep the arena alive via shared_ptr.
class MappedArena {
 public:
  ~MappedArena();
  MappedArena(const MappedArena&) = delete;
  MappedArena& operator=(const MappedArena&) = delete;

  static Result<std::shared_ptr<MappedArena>> Map(const std::string& path);

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  MappedArena(void* addr, std::size_t size)
      : data_(static_cast<const unsigned char*>(addr)), size_(size) {}

  const unsigned char* data_;
  std::size_t size_;
};

/// A validated open snapshot: the arena plus the parsed TOC.
class SnapshotFile {
 public:
  struct Section {
    std::string name;
    const unsigned char* data;
    std::uint64_t length;
    std::uint64_t checksum;
    std::uint64_t offset;
  };

  struct OpenOptions {
    /// Verify all section checksums up front. Costs one sequential pass
    /// over the file (which also pre-faults the page cache — usually a
    /// feature for cold starts, not a bug).
    bool verify_checksums = true;
  };

  static Result<SnapshotFile> Open(const std::string& path,
                                   const OpenOptions& options);
  static Result<SnapshotFile> Open(const std::string& path) {
    return Open(path, OpenOptions());
  }

  /// Section lookup by name; DataLoss if absent (a skew-proofing guard:
  /// a future writer dropping a section fails loudly here).
  Result<const Section*> Find(const std::string& name) const;

  /// A bounds-checked reader over a section's payload.
  Result<ByteReader> Reader(const std::string& name) const;

  const std::vector<Section>& sections() const { return sections_; }
  const std::shared_ptr<MappedArena>& arena() const { return arena_; }
  const FileHeader& header() const { return header_; }

 private:
  SnapshotFile() = default;

  std::shared_ptr<MappedArena> arena_;
  FileHeader header_{};
  std::vector<Section> sections_;
};

}  // namespace cqads::snapshot

#endif  // CQADS_SNAPSHOT_SNAPSHOT_FILE_H_
