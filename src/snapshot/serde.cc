#include "snapshot/serde.h"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <limits>
#include <string_view>
#include <utility>
#include <vector>

#include "classify/beta_binomial.h"
#include "db/query.h"

namespace cqads::snapshot {

namespace {

// --- string columns (offset table + character arena) ------------------------
//
// The layout the tentpole asks for: one offsets array (count+1 entries) and
// one contiguous character arena per string field, instead of count
// length-prefixed records. Strings are materialized on the heap at load.

template <typename Get>
void WriteStringColumn(ByteWriter* w, std::size_t count, Get get) {
  std::vector<std::uint64_t> offsets;
  offsets.reserve(count + 1);
  std::uint64_t off = 0;
  offsets.push_back(0);
  std::string arena;
  for (std::size_t i = 0; i < count; ++i) {
    std::string_view s = get(i);
    arena.append(s);
    off += s.size();
    offsets.push_back(off);
  }
  w->WritePacked(offsets.data(), offsets.size());
  w->WritePacked(arena.data(), arena.size());
}

Status ReadStringColumn(ByteReader* r, std::vector<std::string>* out) {
  std::vector<std::uint64_t> offsets;
  CQADS_RETURN_NOT_OK(r->ReadPacked(&offsets));
  std::vector<char> arena;
  CQADS_RETURN_NOT_OK(r->ReadPacked(&arena));
  if (offsets.empty()) return r->Corrupt("string column missing offset table");
  if (offsets.front() != 0 || offsets.back() != arena.size()) {
    return r->Corrupt("string column offsets do not cover the arena");
  }
  const std::size_t count = offsets.size() - 1;
  // Validate the WHOLE offset table before building any string: a single
  // lazily-checked pair would let one huge intermediate offset (still ≥ its
  // predecessor) drive a giant out-of-bounds string construction below.
  for (std::size_t i = 0; i < count; ++i) {
    if (offsets[i + 1] < offsets[i]) {
      return r->Corrupt("string column offsets not monotone");
    }
  }
  out->clear();
  out->reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out->emplace_back(arena.data() + offsets[i],
                      static_cast<std::size_t>(offsets[i + 1] - offsets[i]));
  }
  return Status::OK();
}

// --- CSR adjacency (shared by the WS and TI matrices) -----------------------

struct CsrViews {
  common::PodVec<std::uint32_t> row_begin;
  common::PodVec<text::TermId> neighbor;
  common::PodVec<double> sim;
};

void WriteCsr(const common::PodVec<std::uint32_t>& row_begin,
              const common::PodVec<text::TermId>& neighbor,
              const common::PodVec<double>& sim, ByteWriter* w) {
  w->WriteArray(row_begin.data(), row_begin.size());
  w->WriteArray(neighbor.data(), neighbor.size());
  w->WriteArray(sim.data(), sim.size());
}

Status ReadCsr(ByteReader* r, const ArenaPtr& owner, std::size_t vocab,
               CsrViews* out) {
  const std::uint32_t* rb = nullptr;
  std::size_t n_rb = 0;
  CQADS_RETURN_NOT_OK(r->ReadArray(&rb, &n_rb));
  const text::TermId* nb = nullptr;
  std::size_t n_nb = 0;
  CQADS_RETURN_NOT_OK(r->ReadArray(&nb, &n_nb));
  const double* sm = nullptr;
  std::size_t n_sm = 0;
  CQADS_RETURN_NOT_OK(r->ReadArray(&sm, &n_sm));

  if (n_nb != n_sm) return r->Corrupt("CSR neighbor/sim arrays differ");
  if (n_rb == 0) {
    if (vocab != 0 || n_nb != 0) return r->Corrupt("CSR rows missing");
  } else {
    if (n_rb != vocab + 1) return r->Corrupt("CSR row count != vocabulary");
    if (rb[0] != 0 || rb[n_rb - 1] != n_nb) {
      return r->Corrupt("CSR row offsets do not cover adjacency");
    }
    for (std::size_t i = 1; i < n_rb; ++i) {
      if (rb[i] < rb[i - 1]) return r->Corrupt("CSR row offsets not monotone");
    }
    for (std::size_t i = 0; i < n_nb; ++i) {
      if (nb[i] >= vocab) return r->Corrupt("CSR neighbor id out of range");
    }
  }
  out->row_begin = common::PodVec<std::uint32_t>::View(rb, n_rb, owner);
  out->neighbor = common::PodVec<text::TermId>::View(nb, n_nb, owner);
  out->sim = common::PodVec<double>::View(sm, n_sm, owner);
  return Status::OK();
}

template <typename Map>
std::vector<std::string> SortedKeys(const Map& m) {
  std::vector<std::string> keys;
  keys.reserve(m.size());
  for (const auto& [k, v] : m) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

// --- TermDict ----------------------------------------------------------------

void SerdeAccess::WriteTermDict(const text::TermDict& d, ByteWriter* w) {
  const std::size_t n = d.entries_.size();
  w->WriteU64(n);
  w->WriteBool(d.frozen_);
  WriteStringColumn(w, n, [&](std::size_t i) -> std::string_view {
    return d.entries_[i].text;
  });
  WriteStringColumn(w, n, [&](std::size_t i) -> std::string_view {
    return d.entries_[i].stem;
  });
  WriteStringColumn(w, n, [&](std::size_t i) -> std::string_view {
    return d.entries_[i].shorthand_norm;
  });
  std::vector<std::uint32_t> stem_ids(n);
  std::vector<std::uint8_t> stopwords(n);
  for (std::size_t i = 0; i < n; ++i) {
    stem_ids[i] = d.entries_[i].stem_id;
    stopwords[i] = d.entries_[i].stopword ? 1 : 0;
  }
  w->WritePacked(stem_ids.data(), n);
  w->WritePacked(stopwords.data(), n);
}

Status SerdeAccess::ReadTermDict(ByteReader* r, text::TermDict* out) {
  std::uint64_t n = 0;
  CQADS_RETURN_NOT_OK(r->ReadU64(&n));
  bool frozen = false;
  CQADS_RETURN_NOT_OK(r->ReadBool(&frozen));
  std::vector<std::string> texts, stems, norms;
  CQADS_RETURN_NOT_OK(ReadStringColumn(r, &texts));
  CQADS_RETURN_NOT_OK(ReadStringColumn(r, &stems));
  CQADS_RETURN_NOT_OK(ReadStringColumn(r, &norms));
  std::vector<std::uint32_t> stem_ids;
  std::vector<std::uint8_t> stopwords;
  CQADS_RETURN_NOT_OK(r->ReadPacked(&stem_ids));
  CQADS_RETURN_NOT_OK(r->ReadPacked(&stopwords));
  if (texts.size() != n || stems.size() != n || norms.size() != n ||
      stem_ids.size() != n || stopwords.size() != n) {
    return r->Corrupt("term dict field arrays disagree on entry count");
  }
  out->entries_.clear();
  out->index_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    // Cached derived forms restored verbatim — no Porter re-stemming, no
    // shorthand re-normalization at load.
    out->entries_.push_back({std::move(texts[i]), std::move(stems[i]),
                             std::move(norms[i]), stem_ids[i],
                             stopwords[i] != 0});
  }
  out->index_.reserve(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    out->index_.emplace(std::string_view(out->entries_[i].text),
                        static_cast<text::TermId>(i));
  }
  if (out->index_.size() != n) {
    return r->Corrupt("term dict contains duplicate terms");
  }
  out->frozen_ = frozen;
  return Status::OK();
}

// --- FlatTrie ----------------------------------------------------------------

void SerdeAccess::WriteFlatTrie(const trie::FlatTrie& t, ByteWriter* w) {
  w->WriteU64(t.keyword_count_);
  w->WriteArray(t.nodes_.data(), t.nodes_.size());
  w->WriteArray(t.edges_.data(), t.edges_.size());
  w->WriteArray(t.handles_.data(), t.handles_.size());
}

Status SerdeAccess::ReadFlatTrie(ByteReader* r, const ArenaPtr& owner,
                                 trie::FlatTrie* out) {
  using Node = trie::FlatTrie::Node;
  using Edge = trie::FlatTrie::Edge;
  std::uint64_t keyword_count = 0;
  CQADS_RETURN_NOT_OK(r->ReadU64(&keyword_count));
  const Node* nodes = nullptr;
  std::size_t n_nodes = 0;
  CQADS_RETURN_NOT_OK(r->ReadArray(&nodes, &n_nodes));
  const Edge* edges = nullptr;
  std::size_t n_edges = 0;
  CQADS_RETURN_NOT_OK(r->ReadArray(&edges, &n_edges));
  const std::int32_t* handles = nullptr;
  std::size_t n_handles = 0;
  CQADS_RETURN_NOT_OK(r->ReadArray(&handles, &n_handles));
  // Structural bounds: a serve-time walk indexes edges/handles through node
  // spans and nodes through edge targets; none may escape its array.
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const Node& nd = nodes[i];
    if (static_cast<std::uint64_t>(nd.edge_begin) + nd.edge_count > n_edges ||
        static_cast<std::uint64_t>(nd.handle_begin) + nd.handle_count >
            n_handles) {
      return r->Corrupt("trie node span out of bounds");
    }
  }
  for (std::size_t i = 0; i < n_edges; ++i) {
    if (edges[i].target >= n_nodes) {
      return r->Corrupt("trie edge target out of bounds");
    }
  }
  out->nodes_ = common::PodVec<Node>::View(nodes, n_nodes, owner);
  out->edges_ = common::PodVec<Edge>::View(edges, n_edges, owner);
  out->handles_ =
      common::PodVec<std::int32_t>::View(handles, n_handles, owner);
  out->keyword_count_ = static_cast<std::size_t>(keyword_count);
  return Status::OK();
}

// --- WS matrix ---------------------------------------------------------------

void SerdeAccess::WriteWsMatrix(const wordsim::WsMatrix& m, ByteWriter* w) {
  WriteTermDict(m.dict_, w);
  w->WriteU64(m.pair_count_);
  w->WriteDouble(m.max_sim_);
  WriteCsr(m.row_begin_, m.neighbor_, m.sim_, w);
}

Status SerdeAccess::ReadWsMatrix(ByteReader* r, const ArenaPtr& owner,
                                 wordsim::WsMatrix* out) {
  CQADS_RETURN_NOT_OK(ReadTermDict(r, &out->dict_));
  std::uint64_t pair_count = 0;
  CQADS_RETURN_NOT_OK(r->ReadU64(&pair_count));
  CQADS_RETURN_NOT_OK(r->ReadDouble(&out->max_sim_));
  CsrViews csr;
  CQADS_RETURN_NOT_OK(ReadCsr(r, owner, out->dict_.size(), &csr));
  out->row_begin_ = std::move(csr.row_begin);
  out->neighbor_ = std::move(csr.neighbor);
  out->sim_ = std::move(csr.sim);
  out->pair_count_ = static_cast<std::size_t>(pair_count);
  return Status::OK();
}

// --- TI matrix ---------------------------------------------------------------

void SerdeAccess::WriteTiMatrix(const qlog::TiMatrix& m, ByteWriter* w) {
  WriteTermDict(m.dict_, w);
  w->WriteU64(m.pair_count_);
  w->WriteDouble(m.max_sim_);
  WriteCsr(m.row_begin_, m.neighbor_, m.sim_, w);
  // Raw feature accumulators (diagnostics): std::map iterates sorted.
  w->WriteU64(m.features_.size());
  for (const auto& [key, f] : m.features_) {
    w->WriteString(key.first);
    w->WriteString(key.second);
    w->WriteDouble(f.mod_count);
    w->WriteDouble(f.time_sum);
    w->WriteDouble(f.time_pairs);
    w->WriteDouble(f.dwell_sum);
    w->WriteDouble(f.dwell_obs);
    w->WriteDouble(f.rank_sum);
    w->WriteDouble(f.rank_obs);
    w->WriteDouble(f.click_count);
  }
}

Status SerdeAccess::ReadTiMatrix(ByteReader* r, const ArenaPtr& owner,
                                 qlog::TiMatrix* out) {
  CQADS_RETURN_NOT_OK(ReadTermDict(r, &out->dict_));
  std::uint64_t pair_count = 0;
  CQADS_RETURN_NOT_OK(r->ReadU64(&pair_count));
  CQADS_RETURN_NOT_OK(r->ReadDouble(&out->max_sim_));
  CsrViews csr;
  CQADS_RETURN_NOT_OK(ReadCsr(r, owner, out->dict_.size(), &csr));
  out->row_begin_ = std::move(csr.row_begin);
  out->neighbor_ = std::move(csr.neighbor);
  out->sim_ = std::move(csr.sim);
  out->pair_count_ = static_cast<std::size_t>(pair_count);
  std::uint64_t n_features = 0;
  // 2 length prefixes + 8 doubles = 80 bytes minimum per entry.
  CQADS_RETURN_NOT_OK(r->ReadCount(&n_features, 80));
  out->features_.clear();
  for (std::uint64_t i = 0; i < n_features; ++i) {
    std::string a, b;
    CQADS_RETURN_NOT_OK(r->ReadString(&a));
    CQADS_RETURN_NOT_OK(r->ReadString(&b));
    qlog::PairFeatures f;
    CQADS_RETURN_NOT_OK(r->ReadDouble(&f.mod_count));
    CQADS_RETURN_NOT_OK(r->ReadDouble(&f.time_sum));
    CQADS_RETURN_NOT_OK(r->ReadDouble(&f.time_pairs));
    CQADS_RETURN_NOT_OK(r->ReadDouble(&f.dwell_sum));
    CQADS_RETURN_NOT_OK(r->ReadDouble(&f.dwell_obs));
    CQADS_RETURN_NOT_OK(r->ReadDouble(&f.rank_sum));
    CQADS_RETURN_NOT_OK(r->ReadDouble(&f.rank_obs));
    CQADS_RETURN_NOT_OK(r->ReadDouble(&f.click_count));
    out->features_.emplace(qlog::TiMatrix::Key(std::move(a), std::move(b)),
                           f);
  }
  return Status::OK();
}

// --- Value / Schema ----------------------------------------------------------

namespace {
constexpr std::uint8_t kValueNull = 0;
constexpr std::uint8_t kValueInt = 1;
constexpr std::uint8_t kValueReal = 2;
constexpr std::uint8_t kValueText = 3;
}  // namespace

void SerdeAccess::WriteValue(const db::Value& v, ByteWriter* w) {
  if (v.is_int()) {
    w->WriteU8(kValueInt);
    // Exact decimal rendering: int64s beyond 2^53 survive, unlike a double
    // round-trip.
    w->WriteString(v.AsText());
  } else if (v.is_real()) {
    w->WriteU8(kValueReal);
    w->WriteDouble(v.AsDouble());
  } else if (v.is_text()) {
    w->WriteU8(kValueText);
    w->WriteString(v.text());
  } else {
    w->WriteU8(kValueNull);
  }
}

Status SerdeAccess::ReadValue(ByteReader* r, db::Value* out) {
  std::uint8_t tag = 0;
  CQADS_RETURN_NOT_OK(r->ReadU8(&tag));
  switch (tag) {
    case kValueNull:
      *out = db::Value::Null();
      return Status::OK();
    case kValueInt: {
      std::string text;
      CQADS_RETURN_NOT_OK(r->ReadString(&text));
      std::int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return r->Corrupt("unparseable integer value");
      }
      *out = db::Value::Int(v);
      return Status::OK();
    }
    case kValueReal: {
      double v = 0.0;
      CQADS_RETURN_NOT_OK(r->ReadDouble(&v));
      *out = db::Value::Real(v);
      return Status::OK();
    }
    case kValueText: {
      std::string text;
      CQADS_RETURN_NOT_OK(r->ReadString(&text));
      *out = db::Value::Text(std::move(text));
      return Status::OK();
    }
    default:
      return r->Corrupt("unknown value tag");
  }
}

void SerdeAccess::WriteSchema(const db::Schema& s, ByteWriter* w) {
  w->WriteString(s.domain());
  w->WriteU64(s.num_attributes());
  for (const auto& a : s.attributes()) {
    w->WriteString(a.name);
    w->WriteU8(static_cast<std::uint8_t>(a.attr_type));
    w->WriteU8(static_cast<std::uint8_t>(a.data_kind));
    w->WriteU64(a.unit_keywords.size());
    for (const auto& k : a.unit_keywords) w->WriteString(k);
    w->WriteU64(a.aliases.size());
    for (const auto& k : a.aliases) w->WriteString(k);
  }
}

Status SerdeAccess::ReadSchema(ByteReader* r, db::Schema* out) {
  std::string domain;
  CQADS_RETURN_NOT_OK(r->ReadString(&domain));
  std::uint64_t n_attrs = 0;
  CQADS_RETURN_NOT_OK(r->ReadCount(&n_attrs, 16));
  std::vector<db::Attribute> attrs;
  attrs.reserve(static_cast<std::size_t>(n_attrs));
  for (std::uint64_t i = 0; i < n_attrs; ++i) {
    db::Attribute a;
    CQADS_RETURN_NOT_OK(r->ReadString(&a.name));
    std::uint8_t attr_type = 0, data_kind = 0;
    CQADS_RETURN_NOT_OK(r->ReadU8(&attr_type));
    CQADS_RETURN_NOT_OK(r->ReadU8(&data_kind));
    if (attr_type > static_cast<std::uint8_t>(db::AttrType::kTypeIII) ||
        data_kind > static_cast<std::uint8_t>(db::DataKind::kTextList)) {
      return r->Corrupt("attribute enum out of range");
    }
    a.attr_type = static_cast<db::AttrType>(attr_type);
    a.data_kind = static_cast<db::DataKind>(data_kind);
    std::uint64_t n = 0;
    CQADS_RETURN_NOT_OK(r->ReadCount(&n, 8));
    for (std::uint64_t k = 0; k < n; ++k) {
      std::string s;
      CQADS_RETURN_NOT_OK(r->ReadString(&s));
      a.unit_keywords.push_back(std::move(s));
    }
    CQADS_RETURN_NOT_OK(r->ReadCount(&n, 8));
    for (std::uint64_t k = 0; k < n; ++k) {
      std::string s;
      CQADS_RETURN_NOT_OK(r->ReadString(&s));
      a.aliases.push_back(std::move(s));
    }
    attrs.push_back(std::move(a));
  }
  *out = db::Schema(std::move(domain), std::move(attrs));
  CQADS_RETURN_NOT_OK(out->Validate());
  return Status::OK();
}

// --- ColumnStore -------------------------------------------------------------

void SerdeAccess::WriteColumnStore(const db::ColumnStore& s, ByteWriter* w) {
  w->WriteU64(s.num_rows_);
  w->WriteU64(s.cols_.size());
  for (const auto& col : s.cols_) {
    w->WriteU64(col.dict.size());
    for (const auto& v : col.dict) WriteValue(v, w);
    WriteStringColumn(w, col.rendered.size(),
                      [&](std::size_t i) -> std::string_view {
                        return col.rendered[i];
                      });
    w->WriteArray(col.codes.data(), col.codes.size());
    w->WriteArray(col.null_bits.data(), col.null_bits.size());
    WriteStringColumn(w, col.elem_dict.size(),
                      [&](std::size_t i) -> std::string_view {
                        return col.elem_dict[i];
                      });
    WriteStringColumn(w, col.elem_norms.size(),
                      [&](std::size_t i) -> std::string_view {
                        return col.elem_norms[i];
                      });
    w->WriteArray(col.elem_codes.data(), col.elem_codes.size());
    w->WriteArray(col.elem_offsets.data(), col.elem_offsets.size());
    w->WriteArray(col.dict_spans.data(), col.dict_spans.size());
    w->WriteArray(col.packed.data(), col.packed.size());
  }
}

Status SerdeAccess::ReadColumnStore(ByteReader* r, const ArenaPtr& owner,
                                    db::ColumnStore* out) {
  std::uint64_t num_rows = 0;
  CQADS_RETURN_NOT_OK(r->ReadU64(&num_rows));
  std::uint64_t n_cols = 0;
  CQADS_RETURN_NOT_OK(r->ReadU64(&n_cols));
  if (n_cols != out->cols_.size()) {
    return r->Corrupt("column count does not match schema");
  }
  for (auto& col : out->cols_) {
    std::uint64_t dict_size = 0;
    CQADS_RETURN_NOT_OK(r->ReadCount(&dict_size, 1));
    col.dict.clear();
    col.dict.reserve(static_cast<std::size_t>(dict_size));
    for (std::uint64_t i = 0; i < dict_size; ++i) {
      db::Value v;
      CQADS_RETURN_NOT_OK(ReadValue(r, &v));
      col.dict.push_back(std::move(v));
    }
    CQADS_RETURN_NOT_OK(ReadStringColumn(r, &col.rendered));

    const std::uint32_t* codes = nullptr;
    std::size_t n_codes = 0;
    CQADS_RETURN_NOT_OK(r->ReadArray(&codes, &n_codes));
    if (n_codes != num_rows) return r->Corrupt("code column row mismatch");
    for (std::size_t i = 0; i < n_codes; ++i) {
      if (codes[i] != db::ColumnStore::kNullCode && codes[i] >= dict_size) {
        return r->Corrupt("dictionary code out of range");
      }
    }
    const std::uint64_t* null_bits = nullptr;
    std::size_t n_null = 0;
    CQADS_RETURN_NOT_OK(r->ReadArray(&null_bits, &n_null));

    CQADS_RETURN_NOT_OK(ReadStringColumn(r, &col.elem_dict));
    CQADS_RETURN_NOT_OK(ReadStringColumn(r, &col.elem_norms));

    const std::uint32_t* elem_codes = nullptr;
    std::size_t n_elem_codes = 0;
    CQADS_RETURN_NOT_OK(r->ReadArray(&elem_codes, &n_elem_codes));
    for (std::size_t i = 0; i < n_elem_codes; ++i) {
      if (elem_codes[i] >= col.elem_dict.size()) {
        return r->Corrupt("element code out of range");
      }
    }
    const std::uint32_t* elem_offsets = nullptr;
    std::size_t n_elem_offsets = 0;
    CQADS_RETURN_NOT_OK(r->ReadArray(&elem_offsets, &n_elem_offsets));
    for (std::size_t i = 0; i < n_elem_offsets; ++i) {
      if (elem_offsets[i] > n_elem_codes ||
          (i > 0 && elem_offsets[i] < elem_offsets[i - 1])) {
        return r->Corrupt("element offsets not monotone");
      }
    }
    const db::ColumnStore::DictSpan* spans = nullptr;
    std::size_t n_spans = 0;
    CQADS_RETURN_NOT_OK(r->ReadArray(&spans, &n_spans));
    for (std::size_t i = 0; i < n_spans; ++i) {
      if (spans[i].begin > spans[i].end || spans[i].end > n_elem_codes) {
        return r->Corrupt("dictionary element span out of bounds");
      }
    }
    const double* packed = nullptr;
    std::size_t n_packed = 0;
    CQADS_RETURN_NOT_OK(r->ReadArray(&packed, &n_packed));

    col.codes = common::PodVec<std::uint32_t>::View(codes, n_codes, owner);
    col.null_bits =
        common::PodVec<std::uint64_t>::View(null_bits, n_null, owner);
    col.elem_codes =
        common::PodVec<std::uint32_t>::View(elem_codes, n_elem_codes, owner);
    col.elem_offsets = common::PodVec<std::uint32_t>::View(
        elem_offsets, n_elem_offsets, owner);
    col.dict_spans = common::PodVec<db::ColumnStore::DictSpan>::View(
        spans, n_spans, owner);
    col.packed = common::PodVec<double>::View(packed, n_packed, owner);
    // Intern tables deliberately stay empty: Append is forbidden on a
    // frozen store; ingest goes through DeltaStore heap generations.
    col.dict_lookup.clear();
    col.elem_lookup.clear();
  }
  out->num_rows_ = static_cast<std::size_t>(num_rows);
  out->frozen_ = true;
  return Status::OK();
}

// --- indexes -----------------------------------------------------------------

void SerdeAccess::WriteHashIndex(const db::HashIndex& idx, ByteWriter* w) {
  auto keys = SortedKeys(idx.postings_);
  w->WriteU64(keys.size());
  for (const auto& k : keys) {
    w->WriteString(k);
    const auto& rows = idx.postings_.at(k);
    w->WritePacked(rows.data(), rows.size());
  }
}

Status SerdeAccess::ReadHashIndex(ByteReader* r, db::HashIndex* out) {
  std::uint64_t n = 0;
  CQADS_RETURN_NOT_OK(r->ReadCount(&n, 16));
  out->postings_.clear();
  out->postings_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key;
    CQADS_RETURN_NOT_OK(r->ReadString(&key));
    db::RowSet rows;
    CQADS_RETURN_NOT_OK(r->ReadPacked(&rows));
    if (!out->postings_.emplace(std::move(key), std::move(rows)).second) {
      return r->Corrupt("duplicate hash index key");
    }
  }
  return Status::OK();
}

void SerdeAccess::WriteSortedIndex(const db::SortedIndex& idx, ByteWriter* w) {
  // entries_ is vector<pair<double, RowId>>; std::pair is not trivially
  // copyable, so the pairs are written as split key/row arrays.
  const std::size_t n = idx.entries_.size();
  std::vector<double> keys(n);
  std::vector<db::RowId> rows(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = idx.entries_[i].first;
    rows[i] = idx.entries_[i].second;
  }
  w->WritePacked(keys.data(), n);
  w->WritePacked(rows.data(), n);
  w->WriteBool(idx.sealed_);
}

Status SerdeAccess::ReadSortedIndex(ByteReader* r, db::SortedIndex* out) {
  std::vector<double> keys;
  std::vector<db::RowId> rows;
  CQADS_RETURN_NOT_OK(r->ReadPacked(&keys));
  CQADS_RETURN_NOT_OK(r->ReadPacked(&rows));
  if (keys.size() != rows.size()) {
    return r->Corrupt("sorted index key/row arrays differ");
  }
  out->entries_.clear();
  out->entries_.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    out->entries_.emplace_back(keys[i], rows[i]);
  }
  CQADS_RETURN_NOT_OK(r->ReadBool(&out->sealed_));
  return Status::OK();
}

void SerdeAccess::WriteNGramIndex(const db::NGramIndex& idx, ByteWriter* w) {
  auto keys = SortedKeys(idx.postings_);
  w->WriteU64(keys.size());
  for (const auto& k : keys) {
    w->WriteString(k);
    const auto& rows = idx.postings_.at(k);
    w->WritePacked(rows.data(), rows.size());
  }
}

Status SerdeAccess::ReadNGramIndex(ByteReader* r, db::NGramIndex* out) {
  std::uint64_t n = 0;
  CQADS_RETURN_NOT_OK(r->ReadCount(&n, 16));
  out->postings_.clear();
  out->postings_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key;
    CQADS_RETURN_NOT_OK(r->ReadString(&key));
    db::RowSet rows;
    CQADS_RETURN_NOT_OK(r->ReadPacked(&rows));
    if (!out->postings_.emplace(std::move(key), std::move(rows)).second) {
      return r->Corrupt("duplicate n-gram index key");
    }
  }
  return Status::OK();
}

// --- TableStats --------------------------------------------------------------

void SerdeAccess::WriteStats(const db::exec::TableStats& s, ByteWriter* w) {
  w->WriteU64(s.row_count);
  w->WriteU64(s.columns.size());
  for (const auto& c : s.columns) {
    w->WriteU64(c.row_count);
    w->WriteU64(c.null_count);
    w->WriteU64(c.distinct_count);
    w->WriteU64(c.element_distinct);
    w->WriteU64(c.element_postings);
    w->WriteBool(c.numeric);
    w->WriteDouble(c.min);
    w->WriteDouble(c.max);
    w->WriteDouble(c.histogram.lo);
    w->WriteDouble(c.histogram.hi);
    w->WritePacked(c.histogram.counts.data(), c.histogram.counts.size());
    w->WriteU64(c.histogram.total);
  }
}

Status SerdeAccess::ReadStats(ByteReader* r, db::exec::TableStats* out) {
  std::uint64_t row_count = 0;
  CQADS_RETURN_NOT_OK(r->ReadU64(&row_count));
  out->row_count = static_cast<std::size_t>(row_count);
  std::uint64_t n_cols = 0;
  CQADS_RETURN_NOT_OK(r->ReadCount(&n_cols, 64));
  out->columns.clear();
  out->columns.reserve(static_cast<std::size_t>(n_cols));
  for (std::uint64_t i = 0; i < n_cols; ++i) {
    db::exec::ColumnStats c;
    std::uint64_t v = 0;
    CQADS_RETURN_NOT_OK(r->ReadU64(&v));
    c.row_count = static_cast<std::size_t>(v);
    CQADS_RETURN_NOT_OK(r->ReadU64(&v));
    c.null_count = static_cast<std::size_t>(v);
    CQADS_RETURN_NOT_OK(r->ReadU64(&v));
    c.distinct_count = static_cast<std::size_t>(v);
    CQADS_RETURN_NOT_OK(r->ReadU64(&v));
    c.element_distinct = static_cast<std::size_t>(v);
    CQADS_RETURN_NOT_OK(r->ReadU64(&v));
    c.element_postings = static_cast<std::size_t>(v);
    CQADS_RETURN_NOT_OK(r->ReadBool(&c.numeric));
    CQADS_RETURN_NOT_OK(r->ReadDouble(&c.min));
    CQADS_RETURN_NOT_OK(r->ReadDouble(&c.max));
    CQADS_RETURN_NOT_OK(r->ReadDouble(&c.histogram.lo));
    CQADS_RETURN_NOT_OK(r->ReadDouble(&c.histogram.hi));
    CQADS_RETURN_NOT_OK(r->ReadPacked(&c.histogram.counts));
    CQADS_RETURN_NOT_OK(r->ReadU64(&c.histogram.total));
    out->columns.push_back(std::move(c));
  }
  return Status::OK();
}

// --- Table -------------------------------------------------------------------

void SerdeAccess::WriteTable(const db::Table& t, ByteWriter* w) {
  WriteSchema(t.schema_, w);
  WriteColumnStore(t.store_, w);
  w->WriteU64(t.hash_indexes_.size());
  for (const auto& idx : t.hash_indexes_) WriteHashIndex(idx, w);
  w->WriteU64(t.sorted_indexes_.size());
  for (const auto& idx : t.sorted_indexes_) WriteSortedIndex(idx, w);
  w->WriteU64(t.ngram_indexes_.size());
  for (const auto& idx : t.ngram_indexes_) WriteNGramIndex(idx, w);
  w->WriteBool(t.indexes_built_);
  w->WriteBool(t.stats_ != nullptr);
  if (t.stats_ != nullptr) WriteStats(*t.stats_, w);
}

Status SerdeAccess::ReadTable(ByteReader* r, const ArenaPtr& owner,
                              std::unique_ptr<db::Table>* out) {
  db::Schema schema;
  CQADS_RETURN_NOT_OK(ReadSchema(r, &schema));
  auto table = std::make_unique<db::Table>(std::move(schema));
  CQADS_RETURN_NOT_OK(ReadColumnStore(r, owner, &table->store_));

  const std::size_t n_attrs = table->schema_.num_attributes();
  std::uint64_t n = 0;
  CQADS_RETURN_NOT_OK(r->ReadCount(&n, 8));
  if (n != 0 && n != n_attrs) return r->Corrupt("hash index count mismatch");
  table->hash_indexes_.resize(static_cast<std::size_t>(n));
  for (auto& idx : table->hash_indexes_) {
    CQADS_RETURN_NOT_OK(ReadHashIndex(r, &idx));
  }
  CQADS_RETURN_NOT_OK(r->ReadCount(&n, 8));
  if (n != 0 && n != n_attrs) {
    return r->Corrupt("sorted index count mismatch");
  }
  table->sorted_indexes_.resize(static_cast<std::size_t>(n));
  for (auto& idx : table->sorted_indexes_) {
    CQADS_RETURN_NOT_OK(ReadSortedIndex(r, &idx));
  }
  CQADS_RETURN_NOT_OK(r->ReadCount(&n, 8));
  if (n != 0 && n != n_attrs) return r->Corrupt("n-gram index count mismatch");
  table->ngram_indexes_.resize(static_cast<std::size_t>(n));
  for (auto& idx : table->ngram_indexes_) {
    CQADS_RETURN_NOT_OK(ReadNGramIndex(r, &idx));
  }
  CQADS_RETURN_NOT_OK(r->ReadBool(&table->indexes_built_));
  bool has_stats = false;
  CQADS_RETURN_NOT_OK(r->ReadBool(&has_stats));
  if (has_stats) {
    auto stats = std::make_shared<db::exec::TableStats>();
    CQADS_RETURN_NOT_OK(ReadStats(r, stats.get()));
    table->stats_ = std::move(stats);
  }
  if (table->indexes_built_ &&
      (table->hash_indexes_.size() != n_attrs || table->stats_ == nullptr)) {
    return r->Corrupt("table marked indexed but access paths missing");
  }
  *out = std::move(table);
  return Status::OK();
}

// --- TaggedItem / DomainLexicon ---------------------------------------------

void SerdeAccess::WriteTaggedItem(const core::TaggedItem& item, ByteWriter* w) {
  w->WriteU8(static_cast<std::uint8_t>(item.kind));
  w->WriteU64(item.attr);
  w->WriteString(item.value);
  w->WriteDouble(item.number);
  w->WriteBool(item.is_money);
  w->WriteBool(item.ascending);
  w->WriteU8(static_cast<std::uint8_t>(item.op));
  w->WriteU64(item.token_begin);
  w->WriteU64(item.token_end);
}

Status SerdeAccess::ReadTaggedItem(ByteReader* r, core::TaggedItem* out) {
  std::uint8_t kind = 0;
  CQADS_RETURN_NOT_OK(r->ReadU8(&kind));
  if (kind > static_cast<std::uint8_t>(core::TagKind::kNumber)) {
    return r->Corrupt("tag kind out of range");
  }
  out->kind = static_cast<core::TagKind>(kind);
  std::uint64_t attr = 0;
  CQADS_RETURN_NOT_OK(r->ReadU64(&attr));
  out->attr = static_cast<std::size_t>(attr);
  CQADS_RETURN_NOT_OK(r->ReadString(&out->value));
  CQADS_RETURN_NOT_OK(r->ReadDouble(&out->number));
  CQADS_RETURN_NOT_OK(r->ReadBool(&out->is_money));
  CQADS_RETURN_NOT_OK(r->ReadBool(&out->ascending));
  std::uint8_t op = 0;
  CQADS_RETURN_NOT_OK(r->ReadU8(&op));
  if (op > static_cast<std::uint8_t>(db::CompareOp::kContains)) {
    return r->Corrupt("compare op out of range");
  }
  out->op = static_cast<db::CompareOp>(op);
  std::uint64_t tok = 0;
  CQADS_RETURN_NOT_OK(r->ReadU64(&tok));
  out->token_begin = static_cast<std::size_t>(tok);
  CQADS_RETURN_NOT_OK(r->ReadU64(&tok));
  out->token_end = static_cast<std::size_t>(tok);
  return Status::OK();
}

void SerdeAccess::WriteLexicon(const core::DomainLexicon& lex, ByteWriter* w) {
  WriteTermDict(lex.terms_, w);
  WriteFlatTrie(lex.flat_trie_, w);
  w->WriteU64(lex.entries_.size());
  for (const auto& item : lex.entries_) WriteTaggedItem(item, w);
  w->WriteU64(lex.categorical_values_.size());
  for (const auto& cv : lex.categorical_values_) {
    w->WriteU64(cv.attr);
    w->WriteString(cv.value);
    w->WriteU32(cv.id);
  }
}

Status SerdeAccess::ReadLexicon(
    ByteReader* r, const ArenaPtr& owner, const db::Table* table,
    std::shared_ptr<const core::DomainLexicon>* out) {
  std::shared_ptr<core::DomainLexicon> lex(new core::DomainLexicon());
  CQADS_RETURN_NOT_OK(ReadTermDict(r, &lex->terms_));
  CQADS_RETURN_NOT_OK(ReadFlatTrie(r, owner, &lex->flat_trie_));

  const std::size_t n_attrs = table->schema().num_attributes();
  std::uint64_t n_entries = 0;
  CQADS_RETURN_NOT_OK(r->ReadCount(&n_entries, 32));
  lex->entries_.clear();
  lex->entries_.reserve(static_cast<std::size_t>(n_entries));
  for (std::uint64_t i = 0; i < n_entries; ++i) {
    core::TaggedItem item;
    CQADS_RETURN_NOT_OK(ReadTaggedItem(r, &item));
    if (item.attr != core::kNoAttr && item.attr >= n_attrs) {
      return r->Corrupt("tag prototype attribute out of range");
    }
    lex->entries_.push_back(std::move(item));
  }
  std::uint64_t n_cats = 0;
  CQADS_RETURN_NOT_OK(r->ReadCount(&n_cats, 16));
  lex->categorical_values_.clear();
  lex->categorical_values_.reserve(static_cast<std::size_t>(n_cats));
  for (std::uint64_t i = 0; i < n_cats; ++i) {
    std::uint64_t attr = 0;
    CQADS_RETURN_NOT_OK(r->ReadU64(&attr));
    std::string value;
    CQADS_RETURN_NOT_OK(r->ReadString(&value));
    std::uint32_t id = 0;
    CQADS_RETURN_NOT_OK(r->ReadU32(&id));
    if (attr >= n_attrs || id >= lex->terms_.size()) {
      return r->Corrupt("categorical value attr/id out of range");
    }
    lex->categorical_values_.push_back(
        {static_cast<std::size_t>(attr), std::move(value), id});
  }

  lex->schema_ = &table->schema();
  // Rebuild the pointer trie from the flat compile: Completions enumerates
  // (keyword, handle) pairs in exactly the order Insert originally recorded
  // them per keyword, and FindShorthand walks trie_ at serve time.
  if (lex->flat_trie_.Root().valid()) {
    auto pairs = lex->flat_trie_.Completions(
        lex->flat_trie_.Root(), "", std::numeric_limits<std::size_t>::max());
    for (const auto& [keyword, handle] : pairs) {
      if (handle < 0 ||
          static_cast<std::size_t>(handle) >= lex->entries_.size()) {
        return r->Corrupt("trie handle out of entry range");
      }
      lex->trie_.Insert(keyword, handle);
    }
  }
  *out = std::move(lex);
  return Status::OK();
}

// --- QuestionClassifier ------------------------------------------------------

void SerdeAccess::WriteClassifier(const classify::QuestionClassifier& c,
                                  ByteWriter* w) {
  w->WriteU8(static_cast<std::uint8_t>(c.options_.model));
  w->WriteDouble(c.options_.smoothing);
  w->WriteDouble(c.options_.unseen_mass);
  w->WriteU64(c.classes_.size());
  for (const auto& cls : c.classes_) w->WriteString(cls);
  w->WriteU64(c.models_.size());
  for (const auto& [name, m] : c.models_) {  // std::map: sorted
    w->WriteString(name);
    w->WriteDouble(m.log_prior);
    w->WriteDouble(m.log_unseen);
    w->WriteDouble(m.total_tokens);
    w->WriteDouble(m.unseen_params.alpha);
    w->WriteDouble(m.unseen_params.beta);
    auto word_keys = SortedKeys(m.log_word_prob);
    w->WriteU64(word_keys.size());
    for (const auto& word : word_keys) {
      w->WriteString(word);
      w->WriteDouble(m.log_word_prob.at(word));
    }
    auto param_keys = SortedKeys(m.word_params);
    w->WriteU64(param_keys.size());
    for (const auto& word : param_keys) {
      const auto& p = m.word_params.at(word);
      w->WriteString(word);
      w->WriteDouble(p.alpha);
      w->WriteDouble(p.beta);
    }
  }
  auto vocab_keys = SortedKeys(c.vocab_);
  w->WriteU64(vocab_keys.size());
  for (const auto& word : vocab_keys) {
    w->WriteString(word);
    w->WriteBool(c.vocab_.at(word));
  }
}

Status SerdeAccess::ReadClassifier(ByteReader* r,
                                   classify::QuestionClassifier* out) {
  std::uint8_t model = 0;
  CQADS_RETURN_NOT_OK(r->ReadU8(&model));
  if (model > static_cast<std::uint8_t>(
                  classify::QuestionClassifier::Model::kMultinomial)) {
    return r->Corrupt("classifier model out of range");
  }
  out->options_.model =
      static_cast<classify::QuestionClassifier::Model>(model);
  CQADS_RETURN_NOT_OK(r->ReadDouble(&out->options_.smoothing));
  CQADS_RETURN_NOT_OK(r->ReadDouble(&out->options_.unseen_mass));

  std::uint64_t n = 0;
  CQADS_RETURN_NOT_OK(r->ReadCount(&n, 8));
  out->classes_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string s;
    CQADS_RETURN_NOT_OK(r->ReadString(&s));
    out->classes_.push_back(std::move(s));
  }
  CQADS_RETURN_NOT_OK(r->ReadCount(&n, 48));
  out->models_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    CQADS_RETURN_NOT_OK(r->ReadString(&name));
    classify::QuestionClassifier::ClassModel m;
    CQADS_RETURN_NOT_OK(r->ReadDouble(&m.log_prior));
    CQADS_RETURN_NOT_OK(r->ReadDouble(&m.log_unseen));
    CQADS_RETURN_NOT_OK(r->ReadDouble(&m.total_tokens));
    CQADS_RETURN_NOT_OK(r->ReadDouble(&m.unseen_params.alpha));
    CQADS_RETURN_NOT_OK(r->ReadDouble(&m.unseen_params.beta));
    std::uint64_t n_words = 0;
    CQADS_RETURN_NOT_OK(r->ReadCount(&n_words, 16));
    m.log_word_prob.reserve(static_cast<std::size_t>(n_words));
    for (std::uint64_t k = 0; k < n_words; ++k) {
      std::string word;
      CQADS_RETURN_NOT_OK(r->ReadString(&word));
      double p = 0.0;
      CQADS_RETURN_NOT_OK(r->ReadDouble(&p));
      m.log_word_prob.emplace(std::move(word), p);
    }
    CQADS_RETURN_NOT_OK(r->ReadCount(&n_words, 24));
    m.word_params.reserve(static_cast<std::size_t>(n_words));
    for (std::uint64_t k = 0; k < n_words; ++k) {
      std::string word;
      CQADS_RETURN_NOT_OK(r->ReadString(&word));
      classify::BetaBinomialParams p;
      CQADS_RETURN_NOT_OK(r->ReadDouble(&p.alpha));
      CQADS_RETURN_NOT_OK(r->ReadDouble(&p.beta));
      m.word_params.emplace(std::move(word), p);
    }
    out->models_.emplace(std::move(name), std::move(m));
  }
  CQADS_RETURN_NOT_OK(r->ReadCount(&n, 9));
  out->vocab_.clear();
  out->vocab_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string word;
    CQADS_RETURN_NOT_OK(r->ReadString(&word));
    bool v = false;
    CQADS_RETURN_NOT_OK(r->ReadBool(&v));
    out->vocab_.emplace(std::move(word), v);
  }
  return Status::OK();
}

// --- EngineOptions -----------------------------------------------------------

void SerdeAccess::WriteOptions(const core::EngineOptions& o, ByteWriter* w) {
  w->WriteU64(o.answer_cap);
  w->WriteU64(o.partial_trigger);
  w->WriteBool(o.enable_partial);
  w->WriteBool(o.use_planner);
  w->WriteBool(o.explain_plans);
  w->WriteBool(o.use_term_substrate);
  w->WriteBool(o.use_vector_kernels);
  w->WriteU64(o.partition_rows);
  w->WriteU64(o.exec_parallelism);
  // exec_runner is a process-local pointer; it does not persist.
}

Status SerdeAccess::ReadOptions(ByteReader* r, core::EngineOptions* out) {
  std::uint64_t v = 0;
  CQADS_RETURN_NOT_OK(r->ReadU64(&v));
  out->answer_cap = static_cast<std::size_t>(v);
  CQADS_RETURN_NOT_OK(r->ReadU64(&v));
  out->partial_trigger = static_cast<std::size_t>(v);
  CQADS_RETURN_NOT_OK(r->ReadBool(&out->enable_partial));
  CQADS_RETURN_NOT_OK(r->ReadBool(&out->use_planner));
  CQADS_RETURN_NOT_OK(r->ReadBool(&out->explain_plans));
  CQADS_RETURN_NOT_OK(r->ReadBool(&out->use_term_substrate));
  CQADS_RETURN_NOT_OK(r->ReadBool(&out->use_vector_kernels));
  CQADS_RETURN_NOT_OK(r->ReadU64(&v));
  out->partition_rows = static_cast<std::size_t>(v);
  CQADS_RETURN_NOT_OK(r->ReadU64(&v));
  out->exec_parallelism = static_cast<std::size_t>(v);
  out->exec_runner = nullptr;
  return Status::OK();
}

}  // namespace cqads::snapshot
