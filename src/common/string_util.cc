#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace cqads {

namespace {
inline bool IsSpaceByte(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

std::string_view TrimView(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && IsSpaceByte(s[b])) ++b;
  std::size_t e = s.size();
  while (e > b && IsSpaceByte(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsSpaceByte(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !IsSpaceByte(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

bool IsAlpha(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isalpha(c) != 0;
  });
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<std::size_t> row(a.size() + 1);
  for (std::size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (std::size_t j = 1; j <= b.size(); ++j) {
    std::size_t prev_diag = row[0];
    row[0] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      std::size_t cur = row[i];
      std::size_t subst = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, subst});
      prev_diag = cur;
    }
  }
  return row[a.size()];
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string WithThousandsSeparators(long long v) {
  bool neg = v < 0;
  unsigned long long u =
      neg ? 0ULL - static_cast<unsigned long long>(v)
          : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(u);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace cqads
