// Owning-or-view array of trivially-copyable elements: the storage type
// behind every large read-side POD array that a persistent snapshot can
// adopt zero-copy (trie node/edge arrays, CSR similarity rows, column code
// vectors, packed doubles, null bitmaps).
//
// Two modes, one read API:
//   * OWNING (the build side): wraps a std::vector<T>. Builders mutate
//     through vec()/push_back exactly as before; freezing is implicit —
//     the engine snapshot layer already guarantees structures stop mutating
//     before they are shared.
//   * VIEW (the mapped side): points into an externally-owned buffer —
//     in practice a snapshot::MappedArena — and keeps that owner alive
//     through a shared_ptr<const void>, the same aliasing-ownership pattern
//     DomainRuntime uses for its components. No bytes are copied; N serving
//     processes mapping one snapshot file share the physical pages.
//
// The read API mirrors const std::vector<T> (data/size/operator[]/begin/
// end/empty/back), so swapping a member from std::vector<T> to PodVec<T>
// leaves const consumers untouched. Iterators are raw pointers.
//
// Thread-safety: const methods are safe concurrently; mutation must stop
// before sharing (unchanged from the std::vector members this replaces).
#ifndef CQADS_COMMON_POD_VEC_H_
#define CQADS_COMMON_POD_VEC_H_

#include <cassert>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace cqads::common {

template <typename T>
class PodVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "PodVec holds raw bytes; T must be trivially copyable");

 public:
  PodVec() = default;
  /*implicit*/ PodVec(std::vector<T> v) : own_(std::move(v)) {}  // NOLINT

  PodVec(PodVec&&) = default;
  PodVec& operator=(PodVec&&) = default;
  PodVec(const PodVec&) = default;
  PodVec& operator=(const PodVec&) = default;

  /// A zero-copy view of `size` elements at `data`, keeping `owner` (the
  /// mapped arena) alive for the view's lifetime. `data` must be suitably
  /// aligned for T — the snapshot reader validates alignment before
  /// constructing views.
  static PodVec View(const T* data, std::size_t size,
                     std::shared_ptr<const void> owner) {
    PodVec v;
    v.view_ = data;
    v.view_size_ = size;
    v.owner_ = std::move(owner);
    return v;
  }

  bool is_view() const { return view_ != nullptr; }

  // --- read API (both modes) --------------------------------------------
  const T* data() const { return view_ ? view_ : own_.data(); }
  std::size_t size() const { return view_ ? view_size_ : own_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }
  const T& back() const { return data()[size() - 1]; }
  const T& front() const { return data()[0]; }

  // --- build-side mutation (owning mode only) ---------------------------
  /// The underlying vector, for builders. Must not be called on a view.
  std::vector<T>& vec() {
    assert(view_ == nullptr && "mutating a mapped PodVec view");
    return own_;
  }
  void push_back(const T& v) { vec().push_back(v); }
  void reserve(std::size_t n) { vec().reserve(n); }

 private:
  std::vector<T> own_;
  const T* view_ = nullptr;
  std::size_t view_size_ = 0;
  std::shared_ptr<const void> owner_;
};

}  // namespace cqads::common

#endif  // CQADS_COMMON_POD_VEC_H_
