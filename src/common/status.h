// Lightweight Status / Result error-handling primitives, in the style of
// Arrow/RocksDB. Library code never throws across module boundaries; fallible
// operations return Status (or Result<T> when they produce a value).
#ifndef CQADS_COMMON_STATUS_H_
#define CQADS_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace cqads {

/// Machine-readable failure category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  /// The request's deadline passed before an answer was produced; partial
  /// work was abandoned cooperatively (common/deadline.h).
  kDeadlineExceeded,
  /// Admission control shed the request: the serving queue was saturated
  /// and executing it would only have made every queued request late.
  kOverloaded,
  /// Stored bytes failed validation (bad magic, checksum mismatch,
  /// truncation, out-of-bounds encoding) — the artifact is unusable.
  kDataLoss,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// Cheap to copy when OK (no allocation). Use the factory functions
/// (`Status::OK()`, `Status::InvalidArgument(...)`, ...) rather than the
/// constructor.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or a non-OK Status explaining why there is none.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: failure. Constructing from an OK status
  /// is a programming error and is downgraded to kInternal.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) status_ = Status::Internal("Result built from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Callers must check ok() (or use ValueOr).
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace cqads

/// Propagates a non-OK Status from an expression, Arrow-style.
#define CQADS_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::cqads::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (false)

#endif  // CQADS_COMMON_STATUS_H_
