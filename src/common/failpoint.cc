#include "common/failpoint.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/string_util.h"

namespace cqads {

namespace {

struct SiteState {
  FailPoints::Config config;
  std::uint64_t hits = 0;      ///< evaluations since armed
  std::uint64_t triggers = 0;  ///< injections performed
};

struct Registry {
  std::mutex mu;
  std::map<std::string, SiteState> sites;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

/// Reverse of StatusCodeToString for the spec parser; kOk when unknown.
StatusCode ParseStatusCode(const std::string& name) {
  static const std::vector<StatusCode> kCodes = {
      StatusCode::kInvalidArgument,  StatusCode::kNotFound,
      StatusCode::kAlreadyExists,    StatusCode::kOutOfRange,
      StatusCode::kFailedPrecondition, StatusCode::kUnimplemented,
      StatusCode::kInternal,         StatusCode::kDeadlineExceeded,
      StatusCode::kOverloaded,
  };
  for (StatusCode code : kCodes) {
    if (EqualsIgnoreCase(name, StatusCodeToString(code))) return code;
  }
  return StatusCode::kOk;
}

}  // namespace

std::atomic<std::uint64_t>& FailPoints::armed_count() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

void FailPoints::Arm(const std::string& name, Config config) {
  if (config.every_n == 0) config.every_n = 1;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto [it, inserted] = r.sites.insert_or_assign(name, SiteState{config, 0, 0});
  (void)it;
  if (inserted) armed_count().fetch_add(1, std::memory_order_relaxed);
}

void FailPoints::Disarm(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.sites.erase(name) > 0) {
    armed_count().fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPoints::DisarmAll() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  armed_count().fetch_sub(r.sites.size(), std::memory_order_relaxed);
  r.sites.clear();
}

std::uint64_t FailPoints::Hits(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(name);
  return it == r.sites.end() ? 0 : it->second.hits;
}

Status FailPoints::Evaluate(const char* site) {
  std::chrono::microseconds delay{0};
  Status injected = Status::OK();
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.sites.find(site);
    if (it == r.sites.end()) return Status::OK();
    SiteState& state = it->second;
    ++state.hits;
    const Config& cfg = state.config;
    if (state.hits <= cfg.skip) return Status::OK();
    if ((state.hits - cfg.skip - 1) % cfg.every_n != 0) return Status::OK();
    if (cfg.limit != 0 && state.triggers >= cfg.limit) return Status::OK();
    ++state.triggers;
    delay = cfg.delay;
    if (cfg.error != StatusCode::kOk) {
      // Build the Status via the matching factory semantics: code + a
      // message naming the site so chaos-test failures are attributable.
      const std::string msg = std::string("failpoint ") + site;
      switch (cfg.error) {
        case StatusCode::kInvalidArgument:
          injected = Status::InvalidArgument(msg);
          break;
        case StatusCode::kNotFound:
          injected = Status::NotFound(msg);
          break;
        case StatusCode::kAlreadyExists:
          injected = Status::AlreadyExists(msg);
          break;
        case StatusCode::kOutOfRange:
          injected = Status::OutOfRange(msg);
          break;
        case StatusCode::kFailedPrecondition:
          injected = Status::FailedPrecondition(msg);
          break;
        case StatusCode::kUnimplemented:
          injected = Status::Unimplemented(msg);
          break;
        case StatusCode::kDeadlineExceeded:
          injected = Status::DeadlineExceeded(msg);
          break;
        case StatusCode::kOverloaded:
          injected = Status::Overloaded(msg);
          break;
        case StatusCode::kInternal:
        default:
          injected = Status::Internal(msg);
          break;
      }
    }
  }
  // Sleep outside the registry lock: an injected delay must stall only the
  // thread that hit the site, never other sites (or Arm/Disarm).
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
  return injected;
}

void FailPoints::ArmFromSpec(const std::string& spec) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    const std::string entry = spec.substr(pos, semi - pos);
    pos = semi + 1;

    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    const std::string name = entry.substr(0, eq);
    Config config;

    std::size_t kpos = eq + 1;
    while (kpos < entry.size()) {
      std::size_t comma = entry.find(',', kpos);
      if (comma == std::string::npos) comma = entry.size();
      const std::string kv = entry.substr(kpos, comma - kpos);
      kpos = comma + 1;
      const std::size_t colon = kv.find(':');
      if (colon == std::string::npos) continue;
      const std::string key = kv.substr(0, colon);
      const std::string value = kv.substr(colon + 1);
      char* end = nullptr;
      const std::uint64_t num = std::strtoull(value.c_str(), &end, 10);
      if (key == "delay_us") {
        config.delay = std::chrono::microseconds(num);
      } else if (key == "error") {
        config.error = ParseStatusCode(value);
      } else if (key == "skip") {
        config.skip = num;
      } else if (key == "every") {
        config.every_n = num;
      } else if (key == "limit") {
        config.limit = num;
      }
      // Unknown keys are ignored by design.
    }
    Arm(name, config);
  }
}

void FailPoints::ArmFromEnv() {
  const char* spec = std::getenv("CQADS_FAILPOINTS");
  if (spec != nullptr && spec[0] != '\0') ArmFromSpec(spec);
}

}  // namespace cqads
