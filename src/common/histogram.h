// A log-linear latency histogram (HdrHistogram-style): power-of-two major
// buckets, each split into 16 linear sub-buckets, so relative quantile
// error is bounded at ~3% across the whole microsecond-to-minutes range
// with a few KB of fixed memory and an O(1) branch-free Record. The
// network-serving bench records every completion here and reports
// p50/p99/p999 without keeping (or sorting) per-request arrays; Merge folds
// per-thread histograms into one.
//
// Not internally synchronized: record into one instance per thread and
// Merge, or guard externally.
#ifndef CQADS_COMMON_HISTOGRAM_H_
#define CQADS_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

namespace cqads {

class LatencyHistogram {
 public:
  /// Resolution: 2^kMajors major buckets x kSubBuckets linear sub-buckets.
  /// Values are microseconds; anything >= 2^kMajors us (~18 minutes) clamps
  /// into the top bucket.
  static constexpr int kMajors = 30;
  static constexpr int kSubBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 16

  void Record(double micros) {
    if (micros < 0.0) micros = 0.0;
    const std::uint64_t v = static_cast<std::uint64_t>(micros);
    ++buckets_[BucketIndex(v)];
    ++count_;
    sum_micros_ += micros;
    max_micros_ = std::max(max_micros_, micros);
  }

  void Merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_micros_ += other.sum_micros_;
    max_micros_ = std::max(max_micros_, other.max_micros_);
  }

  std::uint64_t count() const { return count_; }
  double max_micros() const { return max_micros_; }
  double mean_micros() const {
    return count_ > 0 ? sum_micros_ / static_cast<double>(count_) : 0.0;
  }

  /// Value (microseconds) at quantile q in [0,1]: the midpoint of the
  /// bucket holding the q-th recorded sample. 0 when empty.
  double PercentileMicros(double q) const {
    if (count_ == 0) return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    // Rank of the target sample, 1-based; q=1 must land on the last one.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(count_))));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen >= rank) return BucketMidpoint(i);
    }
    return max_micros_;
  }

 private:
  static std::size_t BucketIndex(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    // Major bucket = position of the highest set bit; sub-bucket = the next
    // kSubBits bits below it.
    const int high = 63 - __builtin_clzll(v);
    const int major = std::min(high, kMajors - 1);
    const std::uint64_t sub = (v >> (major - kSubBits)) & (kSubBuckets - 1);
    return static_cast<std::size_t>(major - kSubBits) * kSubBuckets +
           static_cast<std::size_t>(sub) + kSubBuckets;
  }

  static double BucketMidpoint(std::size_t index) {
    if (index < kSubBuckets) return static_cast<double>(index) + 0.5;
    const std::size_t major = (index - kSubBuckets) / kSubBuckets + kSubBits;
    const std::size_t sub = (index - kSubBuckets) % kSubBuckets;
    const double base = std::ldexp(1.0, static_cast<int>(major));
    const double width = std::ldexp(1.0, static_cast<int>(major) - kSubBits);
    return base + (static_cast<double>(sub) + 0.5) * width;
  }

  static constexpr std::size_t kBucketCount =
      kSubBuckets + static_cast<std::size_t>(kMajors - kSubBits) * kSubBuckets;

  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  double sum_micros_ = 0.0;
  double max_micros_ = 0.0;
};

}  // namespace cqads

#endif  // CQADS_COMMON_HISTOGRAM_H_
