// Named failpoints: a process-wide registry of fault-injection sites for
// chaos testing. A site in library code is one macro invocation:
//
//   CQADS_RETURN_NOT_OK(CQADS_FAILPOINT("engine.compact"));   // Status site
//   CQADS_FAILPOINT_HIT("worker_pool.task");                  // void site
//
// Disarmed (the production state) a site costs ONE relaxed atomic load of a
// global armed-site counter — no string is built, no map is touched, no
// clock is read. Tests (or the environment, see ArmFromEnv) arm a site by
// name with a Config describing what to inject:
//
//   delay      sleep this long on every triggering hit (widens race windows
//              so TSan can see ingest/compaction/snapshot-swap interleavings
//              that are otherwise nanoseconds wide)
//   error      return this StatusCode from Status sites (kOk = no error;
//              void sites apply the delay and drop the error)
//   skip       let the first `skip` hits pass untouched (activate "later")
//   every_n    then trigger only every Nth eligible hit (1 = every hit)
//   limit      deactivate after this many triggers (1 = one-shot)
//
// Sites are evaluated under a registry mutex (cheap: only armed processes
// ever reach it; the sleep itself happens outside the lock). Hit counters
// keep counting while a site is armed so tests can assert coverage.
//
// Thread-safety: all static methods are safe from any thread. Arm/Disarm
// while other threads evaluate is the designed use (chaos tests race them).
#ifndef CQADS_COMMON_FAILPOINT_H_
#define CQADS_COMMON_FAILPOINT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace cqads {

class FailPoints {
 public:
  struct Config {
    /// Injected latency per triggering hit.
    std::chrono::microseconds delay{0};
    /// Injected failure for Status sites; kOk injects nothing.
    StatusCode error = StatusCode::kOk;
    /// Hits to let through untouched before the site becomes eligible.
    std::uint64_t skip = 0;
    /// Of the eligible hits, trigger every Nth (1 = all). 0 behaves as 1.
    std::uint64_t every_n = 1;
    /// Triggers after which the site deactivates (stays armed for hit
    /// counting, stops injecting). 1 = one-shot. 0 = unlimited.
    std::uint64_t limit = 0;
  };

  /// Arms (or re-arms, resetting counters) the named site.
  static void Arm(const std::string& name, Config config);

  /// Disarms one site / every site. Safe when not armed.
  static void Disarm(const std::string& name);
  static void DisarmAll();

  /// Total evaluations of the site since it was (re-)armed, triggering or
  /// not. 0 when the site is not armed.
  static std::uint64_t Hits(const std::string& name);

  /// True when any site is armed — the macro's fast-path gate.
  static bool AnyArmed() {
    return armed_count().load(std::memory_order_relaxed) > 0;
  }

  /// Slow path behind the macros: applies the armed config for `site`, if
  /// any. Returns the injected error (Status sites propagate it) or OK.
  static Status Evaluate(const char* site);

  /// Arms sites from a spec string, the shape the env hook uses:
  ///   "site=key:value,key:value;site2=..."
  /// keys: delay_us, error (a StatusCodeToString name, case-insensitive),
  /// skip, every, limit. Unknown keys/malformed entries are ignored (chaos
  /// arming must never break the process under test). Example:
  ///   CQADS_FAILPOINTS="pipeline.execute=delay_us:500,every:3;engine.compact=error:INTERNAL,limit:1"
  static void ArmFromSpec(const std::string& spec);

  /// ArmFromSpec(getenv("CQADS_FAILPOINTS")); call once at startup if the
  /// binary opts into env-armed chaos. No-op when unset.
  static void ArmFromEnv();

 private:
  static std::atomic<std::uint64_t>& armed_count();
};

}  // namespace cqads

/// Status-site failpoint: evaluates to the injected Status (or OK).
/// Zero-cost when nothing is armed.
#define CQADS_FAILPOINT(site)                         \
  (::cqads::FailPoints::AnyArmed()                    \
       ? ::cqads::FailPoints::Evaluate(site)          \
       : ::cqads::Status::OK())

/// Void-site failpoint: applies delay, drops any injected error.
#define CQADS_FAILPOINT_HIT(site)                                        \
  do {                                                                   \
    if (::cqads::FailPoints::AnyArmed()) {                               \
      (void)::cqads::FailPoints::Evaluate(site);                         \
    }                                                                    \
  } while (false)

#endif  // CQADS_COMMON_FAILPOINT_H_
