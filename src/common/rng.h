// Deterministic random number generation. Every stochastic component in the
// reproduction (ads generator, query-log generator, appraiser model, Random
// ranker) takes an Rng so experiments replay bit-for-bit from a seed.
//
// Thread-safety: an Rng is mutable single-owner state — never share one
// across threads. There are deliberately no global generators in the
// library: datagen/eval code receives an Rng from its caller, and the ask
// path draws (if ever needed) from the per-request QueryContext::rng, which
// is seeded deterministically from the question text (core/pipeline.h).
// Concurrent components that need independent streams should Fork() one
// child per thread or per request up front, then hand each child to exactly
// one owner.
#ifndef CQADS_COMMON_RNG_H_
#define CQADS_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace cqads {

/// Seeded pseudo-random generator wrapping std::mt19937_64 with the handful
/// of draw shapes the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformReal(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Normal draw.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Index drawn proportionally to non-negative weights. Requires a
  /// non-empty weight vector with positive total mass.
  std::size_t WeightedIndex(const std::vector<double>& weights) {
    std::discrete_distribution<std::size_t> d(weights.begin(), weights.end());
    return d(engine_);
  }

  /// Uniform index into a container of the given size. Requires size > 0.
  std::size_t UniformIndex(std::size_t size) {
    return static_cast<std::size_t>(
        UniformInt(0, static_cast<std::int64_t>(size) - 1));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = UniformIndex(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Forks a child generator whose stream is independent of subsequent draws
  /// from this one (useful to decorrelate per-record generation).
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cqads

#endif  // CQADS_COMMON_RNG_H_
