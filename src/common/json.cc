#include "common/json.h"

#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cqads {

void JsonValue::Set(std::string key, JsonValue v) {
  kind_ = Kind::kObject;
  for (auto& member : object_) {
    if (member.first == key) {
      member.second = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::string JsonValue::GetString(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value()
                                          : std::move(fallback);
}

double JsonValue::GetNumber(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value() : fallback;
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_value() : fallback;
}

void JsonEscape(std::string_view s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

namespace {

void DumpNumber(double d, std::string* out) {
  if (!std::isfinite(d)) {
    // JSON has no inf/nan literal; null is the conventional degradation.
    out->append("null");
    return;
  }
  // Integral values inside the exact-double range print as integers so
  // request ids and counters round-trip byte-exactly.
  constexpr double kExactLimit = 9007199254740992.0;  // 2^53
  if (d == std::floor(d) && std::fabs(d) < kExactLimit) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<std::int64_t>(d));
    out->append(buf);
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out->append(buf);
}

}  // namespace

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      return;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Kind::kNumber:
      DumpNumber(number_, out);
      return;
    case Kind::kString:
      JsonEscape(string_, out);
      return;
    case Kind::kArray: {
      out->push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        array_[i].DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        JsonEscape(object_[i].first, out);
        out->push_back(':');
        object_[i].second.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

namespace {

/// Recursive-descent parser over untrusted bytes. Every advance is bounds-
/// checked; errors carry the byte offset so protocol tests can pin them.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Run() {
    SkipWhitespace();
    JsonValue v;
    CQADS_RETURN_NOT_OK(ParseValue(0, &v));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing bytes after JSON document");
    }
    return v;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (AtEnd() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  Status ParseValue(int depth, JsonValue* out) {
    if (depth > JsonValue::kMaxDepth) return Fail("nesting too deep");
    if (AtEnd()) return Fail("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string s;
        CQADS_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue::Null(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view word, JsonValue value, JsonValue* out) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("invalid literal");
    }
    pos_ += word.size();
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    while (!AtEnd()) {
      const char c = Peek();
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    double d = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc() || end != text_.data() + pos_ || pos_ == start) {
      return Fail("invalid number");
    }
    *out = JsonValue::Number(d);
    return Status::OK();
  }

  Status ParseHex4(std::uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(std::uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Fail("raw control byte in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // past the backslash
      if (AtEnd()) return Fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          std::uint32_t cp = 0;
          CQADS_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (!Consume('\\') || !Consume('u')) {
              return Fail("unpaired high surrogate");
            }
            std::uint32_t low = 0;
            CQADS_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail("invalid escape");
      }
    }
  }

  Status ParseArray(int depth, JsonValue* out) {
    Consume('[');
    *out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue item;
      SkipWhitespace();
      CQADS_RETURN_NOT_OK(ParseValue(depth + 1, &item));
      out->Append(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseObject(int depth, JsonValue* out) {
    Consume('{');
    *out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      CQADS_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' in object");
      SkipWhitespace();
      JsonValue value;
      CQADS_RETURN_NOT_OK(ParseValue(depth + 1, &value));
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace cqads
