// Request budgets and cooperative cancellation. The serving north star is
// an ad-tech-style 20-50 ms decision window where late answers are
// discarded: a request that misses its deadline must release its worker in
// bounded time instead of finishing a doomed scan. Three pieces:
//
//   Deadline     a steady-clock expiry instant carried by the request
//                (QueryContext, ConcurrentServer). Default-constructed it is
//                infinite and costs nothing to check — the no-deadline hot
//                path never reads the clock, which is how byte-identity with
//                the pre-deadline engine is preserved.
//   CancelToken  one shared atomic flag per request. The first checker that
//                observes an expired deadline raises it; every other thread
//                cooperating on the request (partition morsels on the
//                work-stealing scheduler) sees the flag with one relaxed
//                load instead of each paying a clock read.
//   ExecControl  the (deadline, token) pair threaded through the execution
//                layers (db/exec morsels, delta scans, pipeline stages).
//                Null/default means "run to completion" everywhere.
//
// Checking discipline: long loops call ExecControl::Expired() at natural
// batch boundaries (per partition morsel, per N-1 relaxation pass, per
// stage) — often enough that a worker is reclaimed within one morsel's
// work, rarely enough that the clock never shows up in profiles.
#ifndef CQADS_COMMON_DEADLINE_H_
#define CQADS_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>

namespace cqads {

/// An absolute steady-clock expiry instant. Copyable, trivially cheap.
/// Default-constructed = infinite (never expires, never reads the clock).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  /// Never expires.
  static Deadline Infinite() { return Deadline(); }

  /// Expires `budget` from now. A zero or negative budget is already
  /// expired (useful for testing the shed/expiry paths deterministically).
  static Deadline After(Clock::duration budget) {
    return Deadline(Clock::now() + budget);
  }

  /// Expires at `when`.
  static Deadline At(Clock::time_point when) { return Deadline(when); }

  bool is_infinite() const { return infinite_; }

  /// True once the clock passed the expiry instant. Infinite deadlines
  /// return false without reading the clock.
  bool expired() const { return !infinite_ && Clock::now() >= when_; }

  /// Time left; Clock::duration::max() when infinite, never negative.
  Clock::duration remaining() const {
    if (infinite_) return Clock::duration::max();
    const auto now = Clock::now();
    return now >= when_ ? Clock::duration::zero() : when_ - now;
  }

  /// The expiry instant; Clock::time_point::max() when infinite.
  Clock::time_point time_point() const {
    return infinite_ ? Clock::time_point::max() : when_;
  }

  /// The earlier of the two deadlines.
  static Deadline Earlier(const Deadline& a, const Deadline& b) {
    if (a.infinite_) return b;
    if (b.infinite_) return a;
    return Deadline(a.when_ < b.when_ ? a.when_ : b.when_);
  }

 private:
  explicit Deadline(Clock::time_point when) : when_(when), infinite_(false) {}

  Clock::time_point when_{};
  bool infinite_ = true;
};

/// A shared request-scoped cancellation flag. Raised once (by whichever
/// thread first observes the expired deadline, or explicitly by the owner);
/// checked with one relaxed atomic load by everyone else. Never reset —
/// a token lives exactly as long as its request.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// The cancellation context threaded through execution: a deadline plus an
/// optional shared token. Value type (two words); default-constructed it
/// never stops anything. The exec layers receive `const ExecControl*` with
/// nullptr meaning the same thing, so pre-deadline call sites stay valid.
struct ExecControl {
  Deadline deadline;
  CancelToken* cancel = nullptr;

  /// The per-batch-boundary check: true when this request should stop.
  /// Reads the token first (one relaxed load — the common case once a
  /// sibling noticed expiry) and the clock only when the token is silent;
  /// on expiry it raises the token so sibling morsels stop without their
  /// own clock read.
  bool Expired() const {
    if (cancel != nullptr && cancel->cancelled()) return true;
    if (deadline.expired()) {
      if (cancel != nullptr) cancel->Cancel();
      return true;
    }
    return false;
  }

  /// Convenience for `const ExecControl*` call sites.
  static bool Expired(const ExecControl* control) {
    return control != nullptr && control->Expired();
  }
};

}  // namespace cqads

#endif  // CQADS_COMMON_DEADLINE_H_
