// String helpers shared across the library. All functions are pure and
// ASCII-oriented: ads text in the reproduction corpus is ASCII, matching the
// paper's English-language setting.
#ifndef CQADS_COMMON_STRING_UTIL_H_
#define CQADS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace cqads {

/// Lower-cases ASCII letters; other bytes pass through unchanged.
std::string ToLower(std::string_view s);

/// Upper-cases ASCII letters; other bytes pass through unchanged.
std::string ToUpper(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Replaces every occurrence of `from` (must be non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// True if every byte is an ASCII digit (and s is non-empty).
bool IsDigits(std::string_view s);

/// True if every byte is an ASCII letter (and s is non-empty).
bool IsAlpha(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
std::size_t EditDistance(std::string_view a, std::string_view b);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double v, int digits);

/// Formats an integer with thousands separators: 16536 -> "16,536".
std::string WithThousandsSeparators(long long v);

}  // namespace cqads

#endif  // CQADS_COMMON_STRING_UTIL_H_
