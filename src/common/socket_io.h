// POSIX socket helpers for the network serving layer: an RAII fd, TCP and
// Unix-domain listen/connect, non-blocking mode, and exact-count blocking
// I/O with EINTR retry. Everything returns Status/Result — no exceptions,
// no errno leaking past this header. Linux/POSIX only (the serving daemon's
// target); nothing here is included by the engine core.
#ifndef CQADS_COMMON_SOCKET_IO_H_
#define CQADS_COMMON_SOCKET_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"

namespace cqads::net {

/// Owns one file descriptor; closes it on destruction. Move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Transfers ownership out (the destructor then does nothing).
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void Close();

 private:
  int fd_ = -1;
};

/// Listens on host:port (host empty = all interfaces). `port` 0 binds an
/// ephemeral port; on success *bound_port holds the actual port either way.
/// SO_REUSEADDR is set so restarting a daemon never races TIME_WAIT.
Result<Fd> TcpListen(const std::string& host, std::uint16_t port,
                     std::uint16_t* bound_port);

/// Blocking connect to host:port. TCP_NODELAY is set — request/response
/// frames are latency-bound, not bandwidth-bound.
Result<Fd> TcpConnect(const std::string& host, std::uint16_t port);

/// Listens on a Unix-domain socket path (an existing socket file at `path`
/// is unlinked first — stale sockets from a crashed daemon never block a
/// restart). Path length is capped by sockaddr_un.
Result<Fd> UnixListen(const std::string& path);

/// Blocking connect to a Unix-domain socket path.
Result<Fd> UnixConnect(const std::string& path);

/// Toggles O_NONBLOCK.
Status SetNonBlocking(int fd, bool non_blocking);

/// Writes exactly `n` bytes (blocking fd), retrying partial writes and
/// EINTR. EPIPE/ECONNRESET surface as a Status — callers treat a dead peer
/// as a normal serving event, so SIGPIPE is suppressed per-call
/// (MSG_NOSIGNAL).
Status WriteFull(int fd, const void* data, std::size_t n);

/// Reads exactly `n` bytes (blocking fd), retrying EINTR.
///   true   -> all n bytes read
///   false  -> clean EOF before the FIRST byte (orderly peer close)
/// EOF mid-count is an error (a truncated frame, not an orderly close).
Result<bool> ReadFull(int fd, void* data, std::size_t n);

}  // namespace cqads::net

#endif  // CQADS_COMMON_SOCKET_IO_H_
