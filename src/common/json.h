// A minimal JSON value type with a strict parser and a deterministic
// writer — the control-plane codec of the network serving layer
// (serve/net/protocol.h frames carry one JSON document each) and of the
// machine-readable stats dumps (ConcurrentServer::StatsJson).
//
// Scope is deliberately small: objects keep insertion order (so dumps are
// deterministic and diffable), numbers are doubles (integral values within
// the exact-double range print as integers — request ids round-trip),
// strings are byte sequences assumed UTF-8 (the writer escapes quotes,
// backslashes, and control bytes; the parser decodes every \u escape
// including surrogate pairs). The parser treats input as UNTRUSTED network
// bytes: it rejects trailing garbage, caps nesting depth, and never reads
// past the buffer — malformed input costs an error Status, not undefined
// behavior. No external dependency.
#ifndef CQADS_COMMON_JSON_H_
#define CQADS_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace cqads {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Members of an object, in insertion order. Lookups are linear — the
  /// documents this layer carries have a handful of keys.
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  ///< null

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue Str(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; precondition: matching kind (callers route through the
  // kind checks or the defaulted Get* helpers below).
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  std::vector<JsonValue>& array_items() { return array_; }
  const std::vector<Member>& object_members() const { return object_; }

  /// Array append / object set (replaces an existing key).
  void Append(JsonValue v) { array_.push_back(std::move(v)); }
  void Set(std::string key, JsonValue v);

  /// Member lookup; nullptr when absent or when this is not an object.
  const JsonValue* Find(std::string_view key) const;

  // Defaulted lookups for the common "read a field of an object" pattern.
  // A missing key or a kind mismatch yields the fallback.
  std::string GetString(std::string_view key, std::string fallback = "") const;
  double GetNumber(std::string_view key, double fallback = 0.0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;

  /// Compact single-line serialization (no insignificant whitespace).
  /// Deterministic: member order is insertion order.
  std::string Dump() const;
  void DumpTo(std::string* out) const;

  /// Strict parse of exactly one JSON document (leading/trailing whitespace
  /// allowed, anything else after the value is an error). Depth is capped
  /// (kMaxDepth) so adversarial nesting cannot overflow the stack.
  static Result<JsonValue> Parse(std::string_view text);

  static constexpr int kMaxDepth = 96;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> object_;
};

/// Appends `s` as a quoted JSON string literal (escaping `"`, `\`, and
/// control bytes; other bytes pass through as UTF-8). Exposed for callers
/// that build JSON text directly.
void JsonEscape(std::string_view s, std::string* out);

}  // namespace cqads

#endif  // CQADS_COMMON_JSON_H_
