#include "common/socket_io.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace cqads::net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

void Fd::Close() {
  if (fd_ >= 0) {
    // EINTR on close is unrecoverable by retry on Linux (the fd is gone
    // either way); just drop it.
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Fd> TcpListen(const std::string& host, std::uint16_t port,
                     std::uint16_t* bound_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty()) {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) return Errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

Result<Fd> TcpConnect(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect " + host + ":" + std::to_string(port));
  const int one = 1;
  // Best-effort: a kernel without TCP_NODELAY support only costs latency.
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

namespace {

Result<sockaddr_un> UnixAddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path empty or too long: " +
                                   path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Result<Fd> UnixListen(const std::string& path) {
  auto addr = UnixAddr(path);
  if (!addr.ok()) return addr.status();
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr.value()),
             sizeof(addr.value())) != 0) {
    return Errno("bind " + path);
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) return Errno("listen " + path);
  return fd;
}

Result<Fd> UnixConnect(const std::string& path) {
  auto addr = UnixAddr(path);
  if (!addr.ok()) return addr.status();
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr.value()),
                   sizeof(addr.value()));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect " + path);
  return fd;
}

Status SetNonBlocking(int fd, bool non_blocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int want =
      non_blocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

Status WriteFull(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-write yields EPIPE here
    // instead of killing the process with SIGPIPE.
    const ssize_t written = ::send(fd, p, n, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    p += written;
    n -= static_cast<std::size_t>(written);
  }
  return Status::OK();
}

Result<bool> ReadFull(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (r == 0) {
      if (got == 0) return false;  // orderly close at a frame boundary
      return Status::DataLoss("connection closed mid-frame (" +
                              std::to_string(got) + "/" + std::to_string(n) +
                              " bytes)");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace cqads::net
