// Query AST produced by the CQAds question translator and consumed by the
// executor and the SQL writer. The shape mirrors what the paper generates:
// a Boolean combination of single-attribute conditions, an optional
// superlative (rendered as "group by <attr> [DESC]" in Table 1, executed as
// order-by-then-take), and a result cap of 30 (§4.3.1).
#ifndef CQADS_DB_QUERY_H_
#define CQADS_DB_QUERY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/value.h"

namespace cqads::db {

/// Comparison operator of a condition.
enum class CompareOp {
  kEq,        ///< equality (with shorthand matching for text)
  kNe,        ///< negation of kEq
  kLt,
  kLe,
  kGt,
  kGe,
  kBetween,   ///< lo <= v <= hi
  kContains,  ///< substring containment over text (uses the n-gram index)
};

const char* CompareOpToSql(CompareOp op);

/// One condition on one attribute.
struct Predicate {
  std::size_t attr = 0;   ///< schema attribute index
  CompareOp op = CompareOp::kEq;
  Value value;            ///< primary operand (lo for kBetween)
  Value value_hi;         ///< hi operand, kBetween only
  /// Text equality also accepts shorthand-notation matches (§4.2.3).
  bool allow_shorthand = true;

  bool operator==(const Predicate& other) const;
};

/// Boolean expression over predicates.
class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  enum class Kind { kPredicate, kAnd, kOr, kNot };

  static ExprPtr MakePredicate(Predicate p);
  static ExprPtr MakeAnd(std::vector<ExprPtr> children);
  static ExprPtr MakeOr(std::vector<ExprPtr> children);
  static ExprPtr MakeNot(ExprPtr child);

  Kind kind() const { return kind_; }
  const Predicate& predicate() const { return predicate_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// Number of predicate leaves.
  std::size_t LeafCount() const;

  /// Collects predicate leaves in left-to-right order.
  void CollectPredicates(std::vector<Predicate>* out) const;

  /// True when the tree is a pure conjunction of predicate leaves (possibly
  /// a single predicate), the form most questions translate to.
  bool IsConjunctive() const;

 private:
  Expr() = default;
  Kind kind_ = Kind::kPredicate;
  Predicate predicate_;
  std::vector<ExprPtr> children_;
};

/// Superlative (§4.1.2): order by an attribute and keep the extreme rows.
struct Superlative {
  std::size_t attr = 0;
  bool ascending = true;  ///< true: min-seeking ("cheapest"/"oldest")
};

/// A complete executable query.
struct Query {
  ExprPtr where;  ///< may be null: no constraints (match all)
  std::optional<Superlative> superlative;
  std::size_t limit = 30;  ///< §4.3.1: at most 30 answers per question
};

}  // namespace cqads::db

#endif  // CQADS_DB_QUERY_H_
