// In-memory ads relation with the paper's index complement: hash indexes on
// Type I (primary) and Type II (secondary) attributes, sorted indexes on
// Type III attributes, and a length-3 n-gram substring index on every
// attribute (§4.5).
#ifndef CQADS_DB_TABLE_H_
#define CQADS_DB_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "db/indexes.h"
#include "db/schema.h"
#include "db/value.h"

namespace cqads::db {

/// One ad: a tuple of attribute values in schema order.
using Record = std::vector<Value>;

class Table {
 public:
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  // Movable, not copyable (indexes can be large).
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return rows_.size(); }

  /// Appends a record; fails on arity or kind mismatch. Returns the RowId.
  Result<RowId> Insert(Record record);

  /// Builds all indexes. Must be called after the last Insert and before
  /// queries; repeated calls rebuild from scratch.
  void BuildIndexes();
  bool indexes_built() const { return indexes_built_; }

  const Record& row(RowId id) const { return rows_[id]; }
  const Value& cell(RowId id, std::size_t attr) const {
    return rows_[id][attr];
  }

  /// Elements of a TextList cell (';'-separated); a categorical cell yields
  /// its single value. Numeric/null cells yield an empty list.
  std::vector<std::string> CellElements(RowId id, std::size_t attr) const;

  /// All text of a row joined with spaces (for TF-IDF baselines and the
  /// domain classifier's training corpus).
  std::string RowText(RowId id) const;

  /// Every RowId in the table, ascending.
  RowSet AllRows() const;

  // --- access paths (valid after BuildIndexes) ---
  /// Equality index for a categorical/text-list attribute, or nullptr.
  const HashIndex* hash_index(std::size_t attr) const;
  /// Order index for a numeric attribute, or nullptr.
  const SortedIndex* sorted_index(std::size_t attr) const;
  /// Substring index for a text attribute, or nullptr.
  const NGramIndex* ngram_index(std::size_t attr) const;

  /// Observed [min, max] of a numeric attribute, used by the incomplete-
  /// question best guess (§4.2.2: "the valid range ... determined by the
  /// smallest (largest) value under the pretended column"). Fails when the
  /// attribute is not numeric or the table is empty.
  Result<std::pair<double, double>> NumericRange(std::size_t attr) const;

 private:
  Schema schema_;
  std::vector<Record> rows_;
  std::vector<HashIndex> hash_indexes_;      // per attribute (may be unused)
  std::vector<SortedIndex> sorted_indexes_;  // per attribute (may be unused)
  std::vector<NGramIndex> ngram_indexes_;    // per attribute (may be unused)
  bool indexes_built_ = false;
};

}  // namespace cqads::db

#endif  // CQADS_DB_TABLE_H_
