// In-memory ads relation: a columnar store (db/storage/column_store.h)
// under the paper's index complement — hash indexes on Type I (primary) and
// Type II (secondary) attributes, sorted indexes on Type III attributes, and
// a length-3 n-gram substring index on every attribute (§4.5). BuildIndexes
// additionally collects per-column statistics (db/exec/table_stats.h) that
// the cost-aware planner orders predicates by.
#ifndef CQADS_DB_TABLE_H_
#define CQADS_DB_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/exec/table_stats.h"
#include "db/indexes.h"
#include "db/schema.h"
#include "db/storage/column_store.h"
#include "db/value.h"

namespace cqads::snapshot {
struct SerdeAccess;
}

namespace cqads::db {

class Table {
 public:
  explicit Table(Schema schema)
      : schema_(std::move(schema)), store_(schema_) {}

  // Movable, not copyable (indexes can be large).
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return store_.num_rows(); }

  /// The columnar storage layer (the exec layer scans it directly).
  const ColumnStore& store() const { return store_; }

  /// Appends a record; fails on arity or kind mismatch. Returns the RowId.
  Result<RowId> Insert(Record record);

  /// Builds all indexes and collects column statistics. Must be called
  /// after the last Insert and before queries; repeated calls rebuild from
  /// scratch.
  void BuildIndexes();
  bool indexes_built() const { return indexes_built_; }

  /// Materialized row view (classifier corpus, dedup, TF-IDF baselines).
  Record row(RowId id) const { return store_.MaterializeRow(id); }
  /// Cell value: a reference into the column dictionary, valid until the
  /// next Insert (interning a new distinct value may grow the pool). Tables
  /// are frozen before queries run, so query-time references never move.
  const Value& cell(RowId id, std::size_t attr) const {
    return store_.cell(id, attr);
  }

  /// Elements of a TextList cell (pre-tokenized ';'-members); a categorical
  /// cell yields its single value. Numeric/null cells yield an empty list.
  std::vector<std::string> CellElements(RowId id, std::size_t attr) const {
    return store_.CellElements(id, attr);
  }

  /// All text of a row joined with spaces (for TF-IDF baselines and the
  /// domain classifier's training corpus).
  std::string RowText(RowId id) const { return store_.RowText(id); }

  /// Every RowId in the table, ascending.
  RowSet AllRows() const;

  // --- access paths (valid after BuildIndexes) ---
  /// Equality index for a categorical/text-list attribute, or nullptr.
  const HashIndex* hash_index(std::size_t attr) const;
  /// Order index for a numeric attribute, or nullptr.
  const SortedIndex* sorted_index(std::size_t attr) const;
  /// Substring index for a text attribute, or nullptr.
  const NGramIndex* ngram_index(std::size_t attr) const;

  /// Per-column statistics, or nullptr before BuildIndexes. The shared_ptr
  /// form lets engine snapshots freeze the stats a planner was built
  /// against.
  const exec::TableStats* stats() const { return stats_.get(); }
  std::shared_ptr<const exec::TableStats> stats_ptr() const { return stats_; }

  /// Observed [min, max] of a numeric attribute, used by the incomplete-
  /// question best guess (§4.2.2: "the valid range ... determined by the
  /// smallest (largest) value under the pretended column"). Fails when the
  /// attribute is not numeric or the table is empty.
  Result<std::pair<double, double>> NumericRange(std::size_t attr) const;

 private:
  friend struct cqads::snapshot::SerdeAccess;

  Schema schema_;
  ColumnStore store_;
  std::vector<HashIndex> hash_indexes_;      // per attribute (may be unused)
  std::vector<SortedIndex> sorted_indexes_;  // per attribute (may be unused)
  std::vector<NGramIndex> ngram_indexes_;    // per attribute (may be unused)
  std::shared_ptr<const exec::TableStats> stats_;
  bool indexes_built_ = false;
};

}  // namespace cqads::db

#endif  // CQADS_DB_TABLE_H_
