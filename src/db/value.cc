#include "db/value.h"

#include "common/string_util.h"
#include "db/compare.h"

namespace cqads::db {

Value Value::Text(std::string v) {
  return Value(Payload(ToLower(v)));
}

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
  if (is_real()) return std::get<double>(v_);
  return 0.0;
}

std::string Value::AsText() const {
  if (is_null()) return "";
  if (is_int()) return CanonicalNumericText(std::get<std::int64_t>(v_));
  if (is_real()) return CanonicalNumericText(std::get<double>(v_));
  return std::get<std::string>(v_);
}

const std::string& Value::text() const {
  static const std::string kEmpty;
  if (!is_text()) return kEmpty;
  return std::get<std::string>(v_);
}

std::string Value::ToSqlLiteral() const {
  if (is_null()) return "NULL";
  if (is_text()) {
    return "'" + ReplaceAll(std::get<std::string>(v_), "'", "''") + "'";
  }
  return AsText();
}

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_numeric() && other.is_numeric()) {
    return AsDouble() == other.AsDouble();
  }
  if (is_text() && other.is_text()) return text() == other.text();
  return false;
}

bool Value::operator<(const Value& other) const {
  if (is_null() != other.is_null()) return is_null();
  if (is_null()) return false;
  if (is_numeric() && other.is_numeric()) return AsDouble() < other.AsDouble();
  if (is_text() && other.is_text()) return text() < other.text();
  // Mixed type: numerics sort before text.
  return is_numeric();
}

}  // namespace cqads::db
