#include "db/compare.h"

#include <charconv>
#include <cmath>

#include "common/string_util.h"

namespace cqads::db {

int TypeRank(const Schema& schema, std::size_t attr) {
  switch (schema.attribute(attr).attr_type) {
    case AttrType::kTypeI:
      return 0;
    case AttrType::kTypeII:
      return 1;
    case AttrType::kTypeIII:
      return 2;
  }
  return 3;
}

std::string CanonicalNumericText(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  return FormatDouble(v, 2);
}

std::string CanonicalNumericText(std::int64_t v) { return std::to_string(v); }

std::string CanonicalContainsText(const Value& v) {
  if (v.is_null()) return "";
  // Numeric payloads already render through CanonicalNumericText (it is the
  // formatting path behind Value::AsText).
  if (v.is_numeric()) return v.AsText();
  const std::string& text = v.text();
  // A probe that is a complete plain-decimal literal ([-]digits[.digits])
  // canonicalizes like a stored number: "8900.50", "8900.5", and
  // Real(8900.5) all render identically. std::from_chars in fixed format is
  // locale-independent and rejects hex/scientific/whitespace forms, which
  // stay verbatim text.
  if (!text.empty()) {
    double parsed = 0.0;
    const char* begin = text.data();
    const char* end = begin + text.size();
    auto [ptr, ec] =
        std::from_chars(begin, end, parsed, std::chars_format::fixed);
    if (ec == std::errc() && ptr == end && std::isfinite(parsed)) {
      return CanonicalNumericText(parsed);
    }
  }
  return text;
}

}  // namespace cqads::db
