// CSV import/export for ads tables. The paper builds its DB from a web
// extraction tool; a downstream user of this library will more likely load
// ads from CSV dumps, so the store speaks a minimal, well-defined dialect:
// comma-separated, double-quote quoting with "" escapes, one header row of
// attribute names, empty field = NULL.
#ifndef CQADS_DB_CSV_H_
#define CQADS_DB_CSV_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "db/table.h"

namespace cqads::db {

/// Serializes the table (header + one line per record). Numeric cells print
/// via Value::AsText; TextList cells keep their ';' separators.
std::string ExportCsv(const Table& table);

/// Parses CSV text into a table of the given schema. The header must list
/// exactly the schema's attribute names in order (case-insensitive).
/// Numeric columns parse as doubles; empty fields become NULL. Indexes are
/// built on success.
Result<Table> ImportCsv(const Schema& schema, std::string_view csv_text);

/// Splits one CSV record line into fields, honouring quotes. Exposed for
/// tests.
std::vector<std::string> SplitCsvLine(std::string_view line);

/// Quotes a field when needed.
std::string CsvQuote(std::string_view field);

}  // namespace cqads::db

#endif  // CQADS_DB_CSV_H_
