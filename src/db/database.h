// Multi-domain ads database: one Table per ads domain (§4.1: "a table in
// the DB for each domain"), addressed by domain name.
#ifndef CQADS_DB_DATABASE_H_
#define CQADS_DB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "db/table.h"

namespace cqads::db {

class Database {
 public:
  Database() = default;

  // Movable, not copyable.
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Registers a table under its schema's domain name; fails on duplicates
  /// or invalid schemas.
  Status AddTable(Table table);

  /// Table for a domain, or nullptr.
  const Table* GetTable(std::string_view domain) const;
  Table* GetMutableTable(std::string_view domain);

  /// Registered domain names, sorted.
  std::vector<std::string> Domains() const;

  std::size_t num_domains() const { return tables_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
};

}  // namespace cqads::db

#endif  // CQADS_DB_DATABASE_H_
