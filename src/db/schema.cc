#include "db/schema.h"

#include <unordered_set>

#include "common/string_util.h"

namespace cqads::db {

const char* AttrTypeToString(AttrType t) {
  switch (t) {
    case AttrType::kTypeI:
      return "TypeI";
    case AttrType::kTypeII:
      return "TypeII";
    case AttrType::kTypeIII:
      return "TypeIII";
  }
  return "Unknown";
}

Schema::Schema(std::string domain, std::vector<Attribute> attributes)
    : domain_(ToLower(domain)), attributes_(std::move(attributes)) {
  for (auto& attr : attributes_) {
    attr.name = ToLower(attr.name);
    for (auto& u : attr.unit_keywords) u = ToLower(u);
    for (auto& a : attr.aliases) a = ToLower(a);
  }
}

std::optional<std::size_t> Schema::IndexOf(std::string_view name) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> Schema::Resolve(
    std::string_view name_or_alias) const {
  std::string needle = ToLower(name_or_alias);
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == needle) return i;
    for (const auto& alias : attributes_[i].aliases) {
      if (alias == needle) return i;
    }
  }
  return std::nullopt;
}

std::vector<std::size_t> Schema::AttrsOfType(AttrType t) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].attr_type == t) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Schema::NumericAttrs() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].data_kind == DataKind::kNumeric) out.push_back(i);
  }
  return out;
}

std::string Schema::TableName() const {
  std::string base = domain_;
  if (!base.empty()) base[0] = static_cast<char>(std::toupper(base[0]));
  // "cars" -> "Car_Ads", "cs_jobs" -> "Cs_jobs_Ads": singularize a trailing
  // plural 's' of a single-word domain, matching the paper's Car_Ads.
  if (base.size() > 2 && base.back() == 's' &&
      base.find('_') == std::string::npos) {
    base.pop_back();
  }
  return base + "_Ads";
}

Status Schema::Validate() const {
  if (domain_.empty()) return Status::InvalidArgument("schema has no domain");
  if (attributes_.empty()) {
    return Status::InvalidArgument("schema has no attributes");
  }
  std::unordered_set<std::string> seen;
  bool has_type_i = false;
  for (const auto& a : attributes_) {
    if (a.name.empty()) {
      return Status::InvalidArgument("attribute with empty name");
    }
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + a.name);
    }
    if (a.attr_type == AttrType::kTypeI) {
      has_type_i = true;
      if (a.data_kind != DataKind::kCategorical) {
        return Status::InvalidArgument("Type I attribute must be categorical: " +
                                       a.name);
      }
    }
    if (a.attr_type == AttrType::kTypeIII &&
        a.data_kind != DataKind::kNumeric) {
      return Status::InvalidArgument("Type III attribute must be numeric: " +
                                     a.name);
    }
  }
  if (!has_type_i) {
    return Status::InvalidArgument("schema needs at least one Type I attribute");
  }
  return Status::OK();
}

}  // namespace cqads::db
