// Renders a Query as MySQL-dialect SQL text. The paper's contract is
// "question -> SQL statement" (§4.5, Example 7): each condition becomes a
// nested `Car_ID IN (SELECT ...)` subquery and the subqueries are combined
// with AND/OR. The executor runs the AST directly; this writer preserves the
// textual artifact so it can be inspected, logged, and golden-tested.
#ifndef CQADS_DB_SQL_WRITER_H_
#define CQADS_DB_SQL_WRITER_H_

#include <string>

#include "db/query.h"
#include "db/schema.h"

namespace cqads::db {

/// Nested-subquery rendering matching the paper's Example 7.
std::string WriteSql(const Schema& schema, const Query& query);

/// Flat rendering (single WHERE clause) for logs and debugging.
std::string WriteFlatSql(const Schema& schema, const Query& query);

/// Renders just a predicate as a WHERE-clause fragment.
std::string WritePredicate(const Schema& schema, const Predicate& pred);

}  // namespace cqads::db

#endif  // CQADS_DB_SQL_WRITER_H_
