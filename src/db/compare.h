// Shared predicate-matching semantics used by BOTH execution paths — the
// seed row-at-a-time Executor (§4.3 Type-rank reference) and the columnar
// plan evaluator (db/exec). Centralizing them here is what keeps the two
// paths answer-identical: any semantic rule that exists in two copies will
// eventually drift.
#ifndef CQADS_DB_COMPARE_H_
#define CQADS_DB_COMPARE_H_

#include <string>

#include "db/query.h"
#include "db/schema.h"
#include "db/value.h"

namespace cqads::db {

/// NULL-comparison rule: a NULL cell satisfies a predicate iff the predicate
/// is a negation (kNe) — "not blue" is true of an ad that lists no color;
/// every positive comparison (equality, ranges, containment) is false on
/// NULL. One helper, used by Executor::Matches and the compiled-predicate
/// evaluator, so the rule cannot diverge between paths.
inline bool NullComparisonMatches(CompareOp op) { return op == CompareOp::kNe; }

/// The paper's §4.3 evaluation rank of an attribute's type: Type I = 0,
/// Type II = 1, Type III = 2. The seed executor orders conjunctions by it;
/// the cost-aware planner uses it as the selectivity tie-break. One copy,
/// so the two paths can never disagree on tie order.
int TypeRank(const Schema& schema, std::size_t attr);

/// The single canonical rendering of a numeric quantity as text. This is the
/// formatting path behind Value::AsText for numerics and the ONLY rendering
/// kContains may match against on numeric attributes.
std::string CanonicalNumericText(double v);
std::string CanonicalNumericText(std::int64_t v);

/// Canonical text a value exposes to substring (kContains) matching on a
/// numeric attribute. Numeric payloads render through CanonicalNumericText;
/// text probes that spell a complete number ("8900.5") canonicalize through
/// the same path, so a probe and a stored cell can never disagree about how
/// the same quantity is written; other text passes through unchanged
/// (already lower-cased by Value::Text). NULL renders as "".
std::string CanonicalContainsText(const Value& v);

}  // namespace cqads::db

#endif  // CQADS_DB_COMPARE_H_
