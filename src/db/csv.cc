#include "db/csv.h"

#include <cstdlib>

#include "common/string_util.h"

namespace cqads::db {

std::string CsvQuote(std::string_view field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::vector<std::string> SplitCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::string ExportCsv(const Table& table) {
  const Schema& schema = table.schema();
  std::string out;
  for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
    if (a > 0) out.push_back(',');
    out += CsvQuote(schema.attribute(a).name);
  }
  out.push_back('\n');
  for (RowId r = 0; r < table.num_rows(); ++r) {
    for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
      if (a > 0) out.push_back(',');
      const Value& v = table.cell(r, a);
      if (!v.is_null()) out += CsvQuote(v.AsText());
    }
    out.push_back('\n');
  }
  return out;
}

Result<Table> ImportCsv(const Schema& schema, std::string_view csv_text) {
  CQADS_RETURN_NOT_OK(schema.Validate());
  Table table(schema);

  std::size_t pos = 0;
  bool header_done = false;
  std::size_t line_no = 0;
  while (pos <= csv_text.size()) {
    // Scan to the next unquoted newline (fields may contain '\n').
    std::size_t end = pos;
    bool in_quotes = false;
    while (end < csv_text.size() &&
           (in_quotes || csv_text[end] != '\n')) {
      if (csv_text[end] == '"') in_quotes = !in_quotes;
      ++end;
    }
    std::string_view line = csv_text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty() && pos > csv_text.size()) break;
    if (TrimView(line).empty()) {
      if (pos > csv_text.size()) break;
      continue;
    }

    auto fields = SplitCsvLine(line);
    if (!header_done) {
      if (fields.size() != schema.num_attributes()) {
        return Status::InvalidArgument(
            "header has " + std::to_string(fields.size()) +
            " columns; schema expects " +
            std::to_string(schema.num_attributes()));
      }
      for (std::size_t a = 0; a < fields.size(); ++a) {
        if (!EqualsIgnoreCase(Trim(fields[a]), schema.attribute(a).name)) {
          return Status::InvalidArgument(
              "header column " + std::to_string(a) + " is '" + fields[a] +
              "'; schema expects '" + schema.attribute(a).name + "'");
        }
      }
      header_done = true;
      continue;
    }

    if (fields.size() != schema.num_attributes()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + " has " +
          std::to_string(fields.size()) + " fields; expected " +
          std::to_string(schema.num_attributes()));
    }
    Record record(schema.num_attributes());
    for (std::size_t a = 0; a < fields.size(); ++a) {
      const std::string& field = fields[a];
      if (field.empty()) continue;  // NULL
      if (schema.attribute(a).data_kind == DataKind::kNumeric) {
        char* parse_end = nullptr;
        double v = std::strtod(field.c_str(), &parse_end);
        if (parse_end == field.c_str() || *parse_end != '\0') {
          return Status::InvalidArgument(
              "line " + std::to_string(line_no) + ": '" + field +
              "' is not numeric for attribute " + schema.attribute(a).name);
        }
        record[a] = Value::Real(v);
      } else {
        record[a] = Value::Text(field);
      }
    }
    auto inserted = table.Insert(std::move(record));
    if (!inserted.ok()) return inserted.status();
    if (pos > csv_text.size()) break;
  }

  if (!header_done) return Status::InvalidArgument("empty CSV input");
  table.BuildIndexes();
  return table;
}

}  // namespace cqads::db
