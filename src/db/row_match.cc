#include "db/row_match.h"

#include "common/string_util.h"
#include "db/compare.h"
#include "text/shorthand.h"

namespace cqads::db {

namespace {

bool TextMatches(const std::vector<std::string>& elements,
                 const std::string& needle, bool allow_shorthand) {
  for (const auto& e : elements) {
    if (e == needle) return true;
    if (allow_shorthand && text::IsShorthandMatch(e, needle)) return true;
  }
  return false;
}

bool TextContains(const std::vector<std::string>& elements,
                  const std::string& needle) {
  for (const auto& e : elements) {
    if (e.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

std::vector<std::string> ValueElements(const Schema& schema, std::size_t attr,
                                       const Value& v) {
  std::vector<std::string> out;
  if (v.is_null() || !v.is_text()) return out;
  if (schema.attribute(attr).data_kind == DataKind::kTextList) {
    for (auto& part : Split(v.text(), ';')) {
      std::string trimmed = Trim(part);
      if (!trimmed.empty()) out.push_back(std::move(trimmed));
    }
  } else {
    out.push_back(v.text());
  }
  return out;
}

bool MatchesCell(const Schema& schema, const Predicate& pred,
                 const Value& cell, const std::vector<std::string>& elements) {
  const bool numeric_attr =
      schema.attribute(pred.attr).data_kind == DataKind::kNumeric;

  // Shared NULL rule (db/compare.h): only negations match a NULL cell.
  if (cell.is_null()) return NullComparisonMatches(pred.op);

  if (numeric_attr) {
    double v = cell.AsDouble();
    switch (pred.op) {
      case CompareOp::kEq:
        return v == pred.value.AsDouble();
      case CompareOp::kNe:
        return v != pred.value.AsDouble();
      case CompareOp::kLt:
        return v < pred.value.AsDouble();
      case CompareOp::kLe:
        return v <= pred.value.AsDouble();
      case CompareOp::kGt:
        return v > pred.value.AsDouble();
      case CompareOp::kGe:
        return v >= pred.value.AsDouble();
      case CompareOp::kBetween:
        return v >= pred.value.AsDouble() && v <= pred.value_hi.AsDouble();
      case CompareOp::kContains:
        // Both sides render through the canonical formatting path, so a
        // probe can never disagree with a stored cell about how the same
        // quantity is written.
        return CanonicalContainsText(cell).find(
                   CanonicalContainsText(pred.value)) != std::string::npos;
    }
    return false;
  }

  const std::string needle = pred.value.AsText();
  switch (pred.op) {
    case CompareOp::kEq:
      return TextMatches(elements, needle, pred.allow_shorthand);
    case CompareOp::kNe:
      return !TextMatches(elements, needle, pred.allow_shorthand);
    case CompareOp::kContains:
      return TextContains(elements, needle);
    default:
      return false;  // range operators are undefined on text
  }
}

bool RecordMatches(const Schema& schema, const Record& record,
                   const Predicate& pred) {
  const Value& cell = record[pred.attr];
  return MatchesCell(schema, pred, cell,
                     ValueElements(schema, pred.attr, cell));
}

bool RecordMatchesExpr(const Schema& schema, const Record& record,
                       const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kPredicate:
      return RecordMatches(schema, record, expr.predicate());
    case Expr::Kind::kAnd:
      for (const auto& child : expr.children()) {
        if (!RecordMatchesExpr(schema, record, *child)) return false;
      }
      return true;
    case Expr::Kind::kOr:
      for (const auto& child : expr.children()) {
        if (RecordMatchesExpr(schema, record, *child)) return true;
      }
      return false;
    case Expr::Kind::kNot:
      return !RecordMatchesExpr(schema, record, *expr.children()[0]);
  }
  return false;
}

Status ValidateRecord(const Schema& schema, const Record& record) {
  if (record.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "record arity " + std::to_string(record.size()) + " != schema arity " +
        std::to_string(schema.num_attributes()));
  }
  for (std::size_t i = 0; i < record.size(); ++i) {
    const Attribute& attr = schema.attribute(i);
    const Value& v = record[i];
    if (v.is_null()) continue;
    if (attr.data_kind == DataKind::kNumeric && !v.is_numeric()) {
      return Status::InvalidArgument("non-numeric value for numeric attribute " +
                                     attr.name);
    }
    if (attr.data_kind != DataKind::kNumeric && !v.is_text()) {
      return Status::InvalidArgument("non-text value for text attribute " +
                                     attr.name);
    }
  }
  return Status::OK();
}

}  // namespace cqads::db
