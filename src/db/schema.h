// Relational schemas for ads domains (§4.1.1). Every attribute carries the
// paper's Type I/II/III classification, which drives indexing (primary /
// secondary / sorted) and question-evaluation order.
#ifndef CQADS_DB_SCHEMA_H_
#define CQADS_DB_SCHEMA_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace cqads::db {

/// The paper's attribute taxonomy.
enum class AttrType {
  kTypeI,    ///< identity values (Make, Model): primary-indexed, required
  kTypeII,   ///< descriptive properties (Color): secondary-indexed
  kTypeIII,  ///< quantitative values (Price, Year): range-searchable
};

const char* AttrTypeToString(AttrType t);

/// Physical representation of the attribute's values.
enum class DataKind {
  kCategorical,  ///< single text value from a finite pool
  kNumeric,      ///< int/real quantity
  kTextList,     ///< ';'-separated bag of descriptive terms ("features")
};

/// One column of an ads relation.
struct Attribute {
  std::string name;                 ///< column name, lower-case ("make")
  AttrType attr_type = AttrType::kTypeII;
  DataKind data_kind = DataKind::kCategorical;
  /// Unit / identifying keywords users attach to the attribute's values in
  /// questions ("miles", "mi" for mileage; "dollars", "usd" for price;
  /// "doors", "dr" for doors). Used by the tagger to resolve combined
  /// keywords (§4.1.3) and incomplete values (§4.2.2).
  std::vector<std::string> unit_keywords;
  /// Names by which users refer to the attribute itself ("price", "cost").
  std::vector<std::string> aliases;
};

/// Schema of one ads domain's relation.
class Schema {
 public:
  Schema() = default;
  Schema(std::string domain, std::vector<Attribute> attributes);

  const std::string& domain() const { return domain_; }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  std::size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(std::size_t i) const { return attributes_[i]; }

  /// Column index by exact name; nullopt when absent.
  std::optional<std::size_t> IndexOf(std::string_view name) const;

  /// Column index by name or alias (case-insensitive); nullopt when absent.
  std::optional<std::size_t> Resolve(std::string_view name_or_alias) const;

  /// Indices of all attributes of the given type, in schema order.
  std::vector<std::size_t> AttrsOfType(AttrType t) const;

  /// Indices of numeric Type III attributes, in schema order.
  std::vector<std::size_t> NumericAttrs() const;

  /// SQL table name, e.g. "Car_Ads" for domain "cars".
  std::string TableName() const;

  /// Validates structural invariants: non-empty, unique names, at least one
  /// Type I attribute, Type III attributes are numeric.
  Status Validate() const;

 private:
  std::string domain_;
  std::vector<Attribute> attributes_;
};

}  // namespace cqads::db

#endif  // CQADS_DB_SCHEMA_H_
