// Row-at-a-time query execution over a Table, implementing the paper's
// evaluation order (§4.3): Type I conditions seed the candidate set through
// the primary hash index, Type II conditions filter it through secondary
// indexes, Type III boundaries run on what remains, and superlatives are
// applied last ("the cheapest Honda" = filter Honda, then take cheapest —
// never the reverse).
//
// This is the REFERENCE path. The serving pipeline executes compiled
// cost-aware plans over the column store (db/exec/planner.h), which must
// stay answer-identical to this executor — the planner-vs-seed differential
// property test and the parity benches compare against it, and the rankers
// still use Matches/MatchesExpr for row-level checks. Predicate semantics
// shared by both paths (NULL rule, canonical kContains rendering) live in
// db/compare.h.
//
// Thread-safety: the executor is stateless over a const table — it holds
// only the table pointer and every method is const. Any number of threads
// may Execute() through one executor (or the ExecuteQuery free function)
// concurrently, provided the table's indexes were built beforehand and the
// table is not mutated afterwards (the engine snapshot layer guarantees
// both).
#ifndef CQADS_DB_EXECUTOR_H_
#define CQADS_DB_EXECUTOR_H_

#include "common/status.h"
#include "db/query.h"
#include "db/table.h"

namespace cqads::db {

/// Work counters for the efficiency experiments (Fig. 6, ablations).
struct ExecStats {
  std::size_t index_lookups = 0;  ///< hash/sorted/ngram probes
  std::size_t rows_verified = 0;  ///< per-row predicate checks
  std::size_t full_scans = 0;     ///< predicates that fell back to scanning
  /// Block-at-a-time work (vectorized path only): rows entering residual
  /// filters and 1024-row blocks actually evaluated (all-zero selection
  /// masks are skipped without touching their predicates).
  std::size_t rows_visited = 0;
  std::size_t blocks_visited = 0;
  /// Top-k rank-stage work (EngineOptions::use_topk_rank only): 1024-row
  /// candidate blocks actually scored vs skipped because their block-max
  /// score bound fell below the running k-th threshold, rows inside skipped
  /// blocks that were never scored, and successful raises of the shared
  /// threshold (top-k heap fills/evictions that tightened pruning).
  std::size_t rank_blocks_visited = 0;
  std::size_t rank_blocks_skipped = 0;
  std::size_t rank_rows_pruned = 0;
  std::size_t rank_threshold_updates = 0;

  ExecStats& operator+=(const ExecStats& other) {
    index_lookups += other.index_lookups;
    rows_verified += other.rows_verified;
    full_scans += other.full_scans;
    rows_visited += other.rows_visited;
    blocks_visited += other.blocks_visited;
    rank_blocks_visited += other.rank_blocks_visited;
    rank_blocks_skipped += other.rank_blocks_skipped;
    rank_rows_pruned += other.rank_rows_pruned;
    rank_threshold_updates += other.rank_threshold_updates;
    return *this;
  }
};

/// Result rows in rank order (superlative order when present, otherwise
/// ascending RowId), capped at Query::limit.
struct QueryResult {
  std::vector<RowId> rows;
  ExecStats stats;
};

class Executor {
 public:
  /// The table must outlive the executor and have indexes built.
  explicit Executor(const Table* table) : table_(table) {}

  /// Executes a query. Fails when the table's indexes are not built or the
  /// query references an out-of-range attribute.
  Result<QueryResult> Execute(const Query& query) const;

  /// Row-level predicate check (also used by rankers and tests).
  bool Matches(RowId row, const Predicate& pred) const;

  /// Row-level expression check (no indexes; used by rankers).
  bool MatchesExpr(RowId row, const Expr& expr) const;

  /// Evaluates one predicate to a row set, preferring index access paths.
  RowSet EvalPredicate(const Predicate& pred, ExecStats* stats) const;

  /// Evaluates an expression tree to a row set.
  RowSet EvalExpr(const Expr& expr, ExecStats* stats) const;

 private:
  Status ValidateExpr(const Expr& expr) const;

  /// Conjunction with the §4.3 type-ordered strategy.
  RowSet EvalConjunction(std::vector<Predicate> preds, ExecStats* stats) const;

  RowSet ScanPredicate(const Predicate& pred, ExecStats* stats) const;

  const Table* table_;
};

/// Stateless entry point: executes `query` against `table` (indexes built).
/// Exactly Executor(&table).Execute(query); the pipeline's execution stages
/// use this form to make the no-shared-state contract explicit.
Result<QueryResult> ExecuteQuery(const Table& table, const Query& query);

}  // namespace cqads::db

#endif  // CQADS_DB_EXECUTOR_H_
