#include "db/sql_writer.h"

#include "common/string_util.h"

namespace cqads::db {

namespace {

std::string ColumnName(const Schema& schema, std::size_t attr) {
  std::string name = schema.attribute(attr).name;
  if (!name.empty()) name[0] = static_cast<char>(std::toupper(name[0]));
  return name;
}

std::string IdColumn(const Schema& schema) {
  std::string table = schema.TableName();  // "Car_Ads"
  auto pos = table.rfind("_Ads");
  std::string base = pos == std::string::npos ? table : table.substr(0, pos);
  return base + "_ID";
}

std::string RenderExprAsSubqueries(const Schema& schema, const Expr& expr,
                                   const std::string& id_col,
                                   const std::string& table) {
  switch (expr.kind()) {
    case Expr::Kind::kPredicate:
      return id_col + " IN (SELECT " + id_col + " FROM " + table +
             " C WHERE " + WritePredicate(schema, expr.predicate()) + ")";
    case Expr::Kind::kNot: {
      const Expr& child = *expr.children()[0];
      if (child.kind() == Expr::Kind::kPredicate) {
        return id_col + " NOT IN (SELECT " + id_col + " FROM " + table +
               " C WHERE " + WritePredicate(schema, child.predicate()) + ")";
      }
      return "NOT (" +
             RenderExprAsSubqueries(schema, child, id_col, table) + ")";
    }
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      const char* joiner =
          expr.kind() == Expr::Kind::kAnd ? " AND " : " OR ";
      std::string out;
      for (std::size_t i = 0; i < expr.children().size(); ++i) {
        if (i > 0) out += joiner;
        const Expr& child = *expr.children()[i];
        bool needs_parens = child.kind() == Expr::Kind::kAnd ||
                            child.kind() == Expr::Kind::kOr;
        if (needs_parens) out += "(";
        out += RenderExprAsSubqueries(schema, child, id_col, table);
        if (needs_parens) out += ")";
      }
      return out;
    }
  }
  return "";
}

std::string RenderExprFlat(const Schema& schema, const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kPredicate:
      return WritePredicate(schema, expr.predicate());
    case Expr::Kind::kNot:
      return "NOT (" + RenderExprFlat(schema, *expr.children()[0]) + ")";
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      const char* joiner =
          expr.kind() == Expr::Kind::kAnd ? " AND " : " OR ";
      std::string out;
      for (std::size_t i = 0; i < expr.children().size(); ++i) {
        if (i > 0) out += joiner;
        out += "(" + RenderExprFlat(schema, *expr.children()[i]) + ")";
      }
      return out;
    }
  }
  return "";
}

std::string RenderTail(const Schema& schema, const Query& query) {
  std::string out;
  if (query.superlative) {
    out += " ORDER BY " + ColumnName(schema, query.superlative->attr);
    out += query.superlative->ascending ? " ASC" : " DESC";
  }
  out += " LIMIT " + std::to_string(query.limit);
  return out;
}

}  // namespace

std::string WritePredicate(const Schema& schema, const Predicate& pred) {
  std::string col = "C." + ColumnName(schema, pred.attr);
  switch (pred.op) {
    case CompareOp::kBetween:
      return col + " BETWEEN " + pred.value.ToSqlLiteral() + " AND " +
             pred.value_hi.ToSqlLiteral();
    case CompareOp::kContains:
      return col + " LIKE '%" +
             ReplaceAll(pred.value.AsText(), "'", "''") + "%'";
    default:
      return col + " " + CompareOpToSql(pred.op) + " " +
             pred.value.ToSqlLiteral();
  }
}

std::string WriteSql(const Schema& schema, const Query& query) {
  const std::string table = schema.TableName();
  std::string out = "SELECT * FROM " + table;
  if (query.where) {
    out += " WHERE " +
           RenderExprAsSubqueries(schema, *query.where, IdColumn(schema),
                                  table);
  }
  out += RenderTail(schema, query);
  return out;
}

std::string WriteFlatSql(const Schema& schema, const Query& query) {
  std::string out = "SELECT * FROM " + schema.TableName();
  if (query.where) {
    out += " WHERE " + RenderExprFlat(schema, *query.where);
  }
  out += RenderTail(schema, query);
  return out;
}

}  // namespace cqads::db
