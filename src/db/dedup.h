// Near-duplicate ad detection — §6 lists "de-duplication of data to remove
// similar data records from a DB" as planned work; ads sites are full of
// re-posts of the same listing with trivially edited text. Two records are
// near-duplicates when they share every Type I identity value, agree on all
// categorical attributes, lie within a small relative distance on every
// numeric attribute, and overlap strongly on feature lists.
#ifndef CQADS_DB_DEDUP_H_
#define CQADS_DB_DEDUP_H_

#include <vector>

#include "common/status.h"
#include "db/table.h"

namespace cqads::db {

struct DedupOptions {
  /// Max relative numeric difference, |a-b| / max(|a|,|b|,1), per attribute.
  double numeric_tolerance = 0.02;
  /// Min Jaccard overlap of TextList attributes.
  double feature_overlap = 0.8;
  /// When false, Type II categorical attributes may differ (only identity +
  /// numerics decide).
  bool require_equal_categoricals = true;
};

/// Groups of mutually near-duplicate rows (each group sorted ascending,
/// size >= 2). Groups are disjoint; rows without duplicates don't appear.
std::vector<std::vector<RowId>> FindDuplicateGroups(
    const Table& table, const DedupOptions& options = DedupOptions());

/// Row-level check used by FindDuplicateGroups (exposed for tests).
bool AreNearDuplicates(const Table& table, RowId a, RowId b,
                       const DedupOptions& options = DedupOptions());

/// Copies the table keeping only the first (lowest RowId) member of each
/// duplicate group. The result has its indexes built.
Result<Table> Deduplicate(const Table& table,
                          const DedupOptions& options = DedupOptions());

}  // namespace cqads::db

#endif  // CQADS_DB_DEDUP_H_
