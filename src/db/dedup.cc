#include "db/dedup.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace cqads::db {

namespace {

double RelativeDiff(double a, double b) {
  double denom = std::max({std::abs(a), std::abs(b), 1.0});
  return std::abs(a - b) / denom;
}

double JaccardOverlap(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::set<std::string> sa(a.begin(), a.end());
  std::set<std::string> sb(b.begin(), b.end());
  std::size_t inter = 0;
  for (const auto& v : sa) {
    if (sb.count(v) > 0) ++inter;
  }
  std::size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

}  // namespace

bool AreNearDuplicates(const Table& table, RowId a, RowId b,
                       const DedupOptions& options) {
  if (a == b) return true;
  const Schema& schema = table.schema();
  for (std::size_t attr = 0; attr < schema.num_attributes(); ++attr) {
    const Attribute& meta = schema.attribute(attr);
    const Value& va = table.cell(a, attr);
    const Value& vb = table.cell(b, attr);
    if (va.is_null() != vb.is_null()) return false;
    if (va.is_null()) continue;

    switch (meta.data_kind) {
      case DataKind::kNumeric:
        if (RelativeDiff(va.AsDouble(), vb.AsDouble()) >
            options.numeric_tolerance) {
          return false;
        }
        break;
      case DataKind::kCategorical:
        if (meta.attr_type == AttrType::kTypeI ||
            options.require_equal_categoricals) {
          if (va.text() != vb.text()) return false;
        }
        break;
      case DataKind::kTextList:
        if (JaccardOverlap(table.CellElements(a, attr),
                           table.CellElements(b, attr)) <
            options.feature_overlap) {
          return false;
        }
        break;
    }
  }
  return true;
}

std::vector<std::vector<RowId>> FindDuplicateGroups(
    const Table& table, const DedupOptions& options) {
  const Schema& schema = table.schema();
  const auto type_i = schema.AttrsOfType(AttrType::kTypeI);

  // Block by identity: only rows sharing all Type I values can collide.
  std::map<std::string, std::vector<RowId>> blocks;
  for (RowId r = 0; r < table.num_rows(); ++r) {
    std::string key;
    for (std::size_t a : type_i) {
      key += table.cell(r, a).AsText();
      key.push_back('\x1f');
    }
    blocks[key].push_back(r);
  }

  std::vector<std::vector<RowId>> groups;
  std::vector<bool> grouped(table.num_rows(), false);
  for (const auto& [key, rows] : blocks) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (grouped[rows[i]]) continue;
      std::vector<RowId> group = {rows[i]};
      for (std::size_t j = i + 1; j < rows.size(); ++j) {
        if (grouped[rows[j]]) continue;
        if (AreNearDuplicates(table, rows[i], rows[j], options)) {
          group.push_back(rows[j]);
        }
      }
      if (group.size() >= 2) {
        for (RowId r : group) grouped[r] = true;
        groups.push_back(std::move(group));
      }
    }
  }
  std::sort(groups.begin(), groups.end());
  return groups;
}

Result<Table> Deduplicate(const Table& table, const DedupOptions& options) {
  auto groups = FindDuplicateGroups(table, options);
  std::vector<bool> drop(table.num_rows(), false);
  for (const auto& group : groups) {
    for (std::size_t i = 1; i < group.size(); ++i) drop[group[i]] = true;
  }
  Table out(table.schema());
  for (RowId r = 0; r < table.num_rows(); ++r) {
    if (drop[r]) continue;
    auto inserted = out.Insert(table.row(r));
    if (!inserted.ok()) return inserted.status();
  }
  out.BuildIndexes();
  return out;
}

}  // namespace cqads::db
