// Delta-union query execution: one query answered over a base table (via
// whichever compiled path is available — partitioned plan, monolithic plan,
// or the seed Type-rank executor) PLUS a row-major DeltaStore riding on it.
//
//   base rows   index/plan-driven, then tombstoned base rows masked out
//   delta rows  row-at-a-time scan with the seed value semantics
//               (db/row_match.h), tombstoned slots skipped, ids offset to
//               base_rows + slot
//   finally     global superlative sort + answer cap, once, with the seed
//               §4.3 step-4 semantics over the combined id space
//
// The invariant: for any query, the answer equals what the same query would
// return against a single table holding exactly the live rows (the
// compaction differential tests pin this at the record level, and byte-
// identically after compaction).
#ifndef CQADS_DB_EXEC_DELTA_EXEC_H_
#define CQADS_DB_EXEC_DELTA_EXEC_H_

#include <cstddef>

#include "common/status.h"
#include "db/exec/morsel.h"
#include "db/exec/parallel_plan.h"
#include "db/exec/plan.h"
#include "db/executor.h"
#include "db/storage/delta_store.h"
#include "db/table.h"

namespace cqads::db::exec {

/// How the base table's raw (uncapped, pre-superlative) row set is
/// produced. Preference order: part_plan, then plan, then the seed
/// executor. The runner/parallelism only matter for part_plan.
struct BaseRowSource {
  const PartitionedPlan* part_plan = nullptr;
  const PhysicalPlan* plan = nullptr;
  TaskRunner* runner = nullptr;
  std::size_t parallelism = 1;
  /// Cooperative cancellation (common/deadline.h): checked per partition
  /// morsel and per delta-scan chunk. Null = run to completion.
  const ExecControl* control = nullptr;
  /// Block-at-a-time kernels for the base plan paths
  /// (EngineOptions::use_vector_kernels); false runs the scalar loops.
  /// Delta rows are row-major and always scan row-at-a-time.
  bool vectorize = true;
};

/// Cell of a global row id: a base-table cell or a delta record's value.
/// `delta` may be null (global ids then never exceed the base).
const Value& HybridCell(const Table& base, const DeltaStore* delta, RowId row,
                        std::size_t attr);

/// Executes `query` over base ∪ delta as described above. `query.limit`
/// caps the COMBINED result; any limit baked into the source plans is
/// ignored (raw row sets are fetched). Works with an empty delta too, but
/// callers should prefer the direct plan paths then — this function always
/// pays the merge.
Result<QueryResult> ExecuteHybrid(const Table& base, const DeltaStore& delta,
                                  const Query& query,
                                  const BaseRowSource& source);

}  // namespace cqads::db::exec

#endif  // CQADS_DB_EXEC_DELTA_EXEC_H_
