// Partition-parallel compiled plans. A PartitionedPlan is one PhysicalPlan
// per partition (each compiled by that partition's own cost-aware Planner
// against that partition's own TableStats — shards may legitimately pick
// different predicate orders), executed as morsels on a work-stealing
// scheduler (db/exec/morsel.h) and merged into the global answer:
//
//   1. every partition's plan evaluates to a partition-local sorted RowSet;
//   2. locals are offset by the partition's base RowId — because partitions
//      tile the base table in order, concatenation IS the globally sorted,
//      duplicate-free row set (no k-way merge needed);
//   3. the superlative sort and the answer cap run once, globally, over the
//      BASE table's cells with the seed §4.3 step-4 semantics.
//
// Step 3 is the answer-identity argument: per-shard work ordering changes,
// the final set and its presented order never do. The partitioned-vs-
// monolithic differential tests pin this.
//
// Thread-safety: immutable after construction; Execute is const and any
// number of threads may run one plan instance concurrently (each call owns
// its per-partition result slots).
#ifndef CQADS_DB_EXEC_PARALLEL_PLAN_H_
#define CQADS_DB_EXEC_PARALLEL_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/exec/morsel.h"
#include "db/exec/plan.h"
#include "db/exec/partitioned_table.h"
#include "db/exec/planner.h"
#include "db/query.h"

namespace cqads::db::exec {

/// Below this many base rows, callers should execute shard plans inline
/// (runner = nullptr): per-query morsel submission (enqueue + completion
/// latch) costs more than scanning a few hundred rows per shard. This is
/// the usual morsel-sizing rule — morsel-driven engines hand out work in
/// units of tens of thousands of rows for the same reason. Policy lives
/// with the caller (the serving pipeline applies it); PartitionedPlan
/// itself always honors whatever runner it is given, so tests and benches
/// can force pooled execution on any table size.
inline constexpr std::size_t kMinRowsForParallelExec = 8192;

class PartitionedPlan {
 public:
  PartitionedPlan(PartitionedTablePtr partitions, std::vector<PlanPtr> shards,
                  std::optional<Superlative> superlative, std::size_t limit);

  /// Raw global row set (sorted, duplicate-free, uncapped): morsels across
  /// the partitions on `runner`, caller participating. Per-shard ExecStats
  /// are summed into *stats. When `control` carries an expired (or
  /// expiring) deadline, unstarted shard morsels are skipped and the call
  /// returns kDeadlineExceeded — the request releases its workers within
  /// one shard's scan instead of finishing a doomed sweep.
  /// `vectorize` selects the shards' block-at-a-time kernels
  /// (EngineOptions::use_vector_kernels); false runs the scalar reference
  /// loops — identical rows either way.
  Result<RowSet> ExecuteRowSet(TaskRunner* runner, std::size_t parallelism,
                               ExecStats* stats,
                               const ExecControl* control = nullptr,
                               bool vectorize = true) const;

  /// Full execution: ExecuteRowSet, then the global superlative sort (base-
  /// table cells, stable ties by RowId) and the answer cap — byte-identical
  /// to the monolithic plan's Execute.
  Result<QueryResult> Execute(TaskRunner* runner, std::size_t parallelism,
                              const ExecControl* control = nullptr,
                              bool vectorize = true) const;

  const PartitionedTable& partitions() const { return *partitions_; }
  std::size_t num_shards() const { return shards_.size(); }

  /// Plan dump: a Partitioned(...) header plus every shard's tree.
  std::string Explain() const;

 private:
  PartitionedTablePtr partitions_;
  std::vector<PlanPtr> shards_;  ///< parallel to partitions
  std::optional<Superlative> superlative_;
  std::size_t limit_;
};

using PartitionedPlanPtr = std::shared_ptr<const PartitionedPlan>;

/// Compiles db::Query into PartitionedPlans over a PartitionedTable. Holds
/// one per-partition Planner (each frozen to its partition's stats).
/// Immutable after construction; Compile is const and thread-safe.
class ParallelPlanner {
 public:
  /// The partitioned table must outlive the planner and every plan.
  explicit ParallelPlanner(PartitionedTablePtr partitions);

  /// Compiles the query for every shard. The superlative and limit are
  /// recorded globally; shard plans carry only the constraint tree.
  Result<PartitionedPlanPtr> Compile(const Query& query) const;

  const PartitionedTable& partitions() const { return *partitions_; }

 private:
  PartitionedTablePtr partitions_;
  std::vector<Planner> shard_planners_;
};

}  // namespace cqads::db::exec

#endif  // CQADS_DB_EXEC_PARALLEL_PLAN_H_
