#include "db/exec/planner.h"

#include <algorithm>
#include <numeric>

#include "db/compare.h"
#include "text/shorthand.h"

namespace cqads::db::exec {

PlanNodePtr Planner::AccessPath(CompiledPredicate cp) const {
  const Predicate& pred = cp.pred;
  const Attribute& attr = table_->schema().attribute(pred.attr);

  if (attr.data_kind == DataKind::kNumeric) {
    if (pred.op != CompareOp::kContains &&
        table_->sorted_index(pred.attr) != nullptr) {
      return std::make_unique<RangeScanNode>(table_, std::move(cp));
    }
    return std::make_unique<FullScanFilterNode>(table_, std::move(cp));
  }

  if (pred.op == CompareOp::kEq || pred.op == CompareOp::kNe) {
    const HashIndex* idx = table_->hash_index(pred.attr);
    if (idx != nullptr) {
      // The hash-index keys are exactly the store's element dictionary, so
      // the compiled element-match set IS the resolved key set (needle plus
      // shorthand variants, §4.2.3). Execute() only unions postings.
      const auto& elems = table_->store().element_dictionary(pred.attr);
      std::vector<std::string> keys;
      for (std::size_t c = 0; c < cp.element_match.size(); ++c) {
        if (cp.element_match[c]) keys.push_back(elems[c]);
      }
      return std::make_unique<IndexScanNode>(table_, std::move(cp),
                                             std::move(keys));
    }
    return std::make_unique<FullScanFilterNode>(table_, std::move(cp));
  }

  if (pred.op == CompareOp::kContains) {
    const NGramIndex* idx = table_->ngram_index(pred.attr);
    if (idx != nullptr && NGramIndex::CanLookup(pred.value.AsText())) {
      return std::make_unique<SubstringScanNode>(table_, std::move(cp));
    }
    return std::make_unique<FullScanFilterNode>(table_, std::move(cp));
  }

  // Range operators are undefined on text (match nothing): a full scan of
  // the never-matching compiled form keeps seed behavior.
  return std::make_unique<FullScanFilterNode>(table_, std::move(cp));
}

PlanNodePtr Planner::CompileConjunction(std::vector<Predicate> preds) const {
  if (preds.empty()) {
    // Degenerate AND() matches everything: AllRows as Not(Union()).
    return std::make_unique<NotNode>(
        table_,
        std::make_unique<UnionNode>(table_, std::vector<PlanNodePtr>{}));
  }
  // Cost-aware order: estimated selectivity ascending; ties fall back to
  // the paper's §4.3 Type rank, then question order (stable sort).
  std::vector<CompiledPredicate> compiled;
  compiled.reserve(preds.size());
  for (const auto& p : preds) {
    compiled.push_back(CompilePredicate(*table_, p, stats_.get()));
  }

  std::vector<std::size_t> order(compiled.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (compiled[a].selectivity != compiled[b].selectivity) {
                       return compiled[a].selectivity < compiled[b].selectivity;
                     }
                     return TypeRank(table_->schema(), compiled[a].pred.attr) <
                            TypeRank(table_->schema(), compiled[b].pred.attr);
                   });

  PlanNodePtr seed = AccessPath(std::move(compiled[order[0]]));
  if (order.size() == 1) return seed;

  std::vector<CompiledPredicate> residual;
  residual.reserve(order.size() - 1);
  for (std::size_t i = 1; i < order.size(); ++i) {
    residual.push_back(std::move(compiled[order[i]]));
  }
  return std::make_unique<FilterNode>(table_, std::move(seed),
                                      std::move(residual));
}

PlanNodePtr Planner::CompileExpr(const Expr& expr) const {
  switch (expr.kind()) {
    case Expr::Kind::kPredicate:
      return AccessPath(
          CompilePredicate(*table_, expr.predicate(), stats_.get()));
    case Expr::Kind::kAnd: {
      if (expr.IsConjunctive()) {
        std::vector<Predicate> preds;
        expr.CollectPredicates(&preds);
        return CompileConjunction(std::move(preds));
      }
      std::vector<PlanNodePtr> children;
      children.reserve(expr.children().size());
      for (const auto& child : expr.children()) {
        children.push_back(CompileExpr(*child));
      }
      // Most selective child first: the intersection narrows fastest and
      // empty accumulators short-circuit the rest.
      std::stable_sort(children.begin(), children.end(),
                       [](const PlanNodePtr& a, const PlanNodePtr& b) {
                         return a->est_selectivity < b->est_selectivity;
                       });
      return std::make_unique<IntersectNode>(table_, std::move(children));
    }
    case Expr::Kind::kOr: {
      std::vector<PlanNodePtr> children;
      children.reserve(expr.children().size());
      for (const auto& child : expr.children()) {
        children.push_back(CompileExpr(*child));
      }
      return std::make_unique<UnionNode>(table_, std::move(children));
    }
    case Expr::Kind::kNot:
      return std::make_unique<NotNode>(table_,
                                       CompileExpr(*expr.children()[0]));
  }
  return nullptr;
}

Status Planner::ValidateExpr(const Expr& expr) const {
  if (expr.kind() == Expr::Kind::kPredicate) {
    if (expr.predicate().attr >= table_->schema().num_attributes()) {
      return Status::OutOfRange("predicate attribute out of range");
    }
    return Status::OK();
  }
  for (const auto& child : expr.children()) {
    CQADS_RETURN_NOT_OK(ValidateExpr(*child));
  }
  return Status::OK();
}

Result<PlanPtr> Planner::Compile(const Query& query) const {
  if (!table_->indexes_built()) {
    return Status::FailedPrecondition("table indexes not built");
  }
  if (query.where) {
    CQADS_RETURN_NOT_OK(ValidateExpr(*query.where));
  }
  if (query.superlative &&
      query.superlative->attr >= table_->schema().num_attributes()) {
    return Status::OutOfRange("superlative attribute out of range");
  }
  PlanNodePtr root = query.where ? CompileExpr(*query.where) : nullptr;
  return std::make_shared<const PhysicalPlan>(table_, std::move(root),
                                              query.superlative, query.limit);
}

Result<QueryResult> Planner::Run(const Query& query) const {
  auto plan = Compile(query);
  if (!plan.ok()) return plan.status();
  return plan.value()->Execute();
}

}  // namespace cqads::db::exec
