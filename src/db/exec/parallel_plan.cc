#include "db/exec/parallel_plan.h"

#include <algorithm>
#include <utility>

#include "db/exec/rowset_ops.h"

namespace cqads::db::exec {

PartitionedPlan::PartitionedPlan(PartitionedTablePtr partitions,
                                 std::vector<PlanPtr> shards,
                                 std::optional<Superlative> superlative,
                                 std::size_t limit)
    : partitions_(std::move(partitions)),
      shards_(std::move(shards)),
      superlative_(superlative),
      limit_(limit) {}

Result<RowSet> PartitionedPlan::ExecuteRowSet(TaskRunner* runner,
                                              std::size_t parallelism,
                                              ExecStats* stats,
                                              const ExecControl* control,
                                              bool vectorize) const {
  const std::size_t n = shards_.size();

  // Serial fast path: no morsel state, no per-shard slots — shards append
  // straight into the result (still globally sorted: shards tile in order).
  // The deadline is re-checked per shard, the same cancellation grain as
  // the morsel path below.
  if (runner == nullptr || parallelism <= 1 || n <= 1) {
    RowSet rows;
    for (std::size_t p = 0; p < n; ++p) {
      if (ExecControl::Expired(control)) {
        return Status::DeadlineExceeded("partitioned scan cancelled");
      }
      auto local = shards_[p]->ExecuteRowSet(stats, vectorize);
      if (!local.ok()) return local.status();
      const RowId base = partitions_->base_of(p);
      for (RowId r : local.value()) rows.push_back(base + r);
    }
    return rows;
  }

  // Per-morsel result slots: distinct indices, no synchronization needed
  // beyond RunMorsels' completion barrier.
  std::vector<RowSet> slots(n);
  std::vector<ExecStats> slot_stats(n);
  std::vector<Status> slot_status(n, Status::OK());

  const bool complete =
      RunMorsels(n, parallelism, runner, [&](std::size_t p) {
        auto local = shards_[p]->ExecuteRowSet(&slot_stats[p], vectorize);
        if (!local.ok()) {
          slot_status[p] = local.status();
          return;
        }
        const RowId base = partitions_->base_of(p);
        RowSet& out = slots[p];
        out = std::move(local).value();
        for (RowId& r : out) r += base;
      }, control);
  if (!complete) {
    // Partial shard coverage is not an answer; the deadline outcome
    // replaces it (the caller never sees a silently truncated row set).
    return Status::DeadlineExceeded("partitioned scan cancelled");
  }

  RowSet rows;
  std::size_t total = 0;
  for (const auto& s : slots) total += s.size();
  rows.reserve(total);
  for (std::size_t p = 0; p < n; ++p) {
    if (!slot_status[p].ok()) return slot_status[p];
    *stats += slot_stats[p];
    // Partitions tile the table in order: concatenation preserves global
    // sorted order.
    rows.insert(rows.end(), slots[p].begin(), slots[p].end());
  }
  return rows;
}

Result<QueryResult> PartitionedPlan::Execute(TaskRunner* runner,
                                             std::size_t parallelism,
                                             const ExecControl* control,
                                             bool vectorize) const {
  QueryResult result;
  auto row_result =
      ExecuteRowSet(runner, parallelism, &result.stats, control, vectorize);
  if (!row_result.ok()) return row_result.status();
  RowSet rows = std::move(row_result).value();
  // §4.3 step 4 runs once, globally, over the BASE table's cells — never
  // per shard (a per-shard cap would drop rows the global superlative
  // should keep).
  const Table& base = partitions_->base();
  ApplySuperlativeAndCap(
      &rows, superlative_,
      [&](RowId r, std::size_t a) -> const Value& { return base.cell(r, a); },
      limit_);
  result.rows = std::move(rows);
  return result;
}

std::string PartitionedPlan::Explain() const {
  std::string out = "Partitioned(shards=" + std::to_string(shards_.size()) +
                    ", limit=" + std::to_string(limit_);
  if (superlative_) {
    out += ", superlative=" +
           partitions_->base().schema().attribute(superlative_->attr).name +
           (superlative_->ascending ? " asc" : " desc");
  }
  out += ")\n";
  for (std::size_t p = 0; p < shards_.size(); ++p) {
    out += "  shard " + std::to_string(p) + " [base " +
           std::to_string(partitions_->base_of(p)) + ", rows " +
           std::to_string(partitions_->partition(p).num_rows()) + "]\n";
    std::string shard = shards_[p]->Explain();
    // Indent the shard dump under its header.
    std::size_t pos = 0;
    while (pos < shard.size()) {
      std::size_t nl = shard.find('\n', pos);
      if (nl == std::string::npos) nl = shard.size();
      out += "    " + shard.substr(pos, nl - pos) + "\n";
      pos = nl + 1;
    }
  }
  return out;
}

ParallelPlanner::ParallelPlanner(PartitionedTablePtr partitions)
    : partitions_(std::move(partitions)) {
  shard_planners_.reserve(partitions_->num_partitions());
  for (std::size_t p = 0; p < partitions_->num_partitions(); ++p) {
    shard_planners_.emplace_back(&partitions_->partition(p));
  }
}

Result<PartitionedPlanPtr> ParallelPlanner::Compile(const Query& query) const {
  // Shards compile only the constraint tree: the superlative and the cap
  // are global decisions applied after the merge (capping per shard would
  // drop rows the global superlative should keep).
  Query shard_query;
  shard_query.where = query.where;
  shard_query.superlative = std::nullopt;

  std::vector<PlanPtr> shards;
  shards.reserve(shard_planners_.size());
  for (std::size_t p = 0; p < shard_planners_.size(); ++p) {
    shard_query.limit = partitions_->partition(p).num_rows();
    auto plan = shard_planners_[p].Compile(shard_query);
    if (!plan.ok()) return plan.status();
    shards.push_back(std::move(plan).value());
  }
  // Validate the superlative against the base schema even when there are
  // zero shards (empty table) — same contract as Planner::Compile.
  if (query.superlative &&
      query.superlative->attr >=
          partitions_->base().schema().num_attributes()) {
    return Status::OutOfRange("superlative attribute out of range");
  }
  return std::make_shared<const PartitionedPlan>(
      partitions_, std::move(shards), query.superlative, query.limit);
}

}  // namespace cqads::db::exec
