// Physical query plans over the columnar ads store. A compiled plan is an
// immutable tree of access-path and set-operation nodes produced by the
// Planner (db/exec/planner.h) and shared freely across threads — the
// prepared-query cache memoizes plans per snapshot version and any number
// of concurrent requests Execute() one plan instance.
//
// Node vocabulary:
//   IndexScanNode      hash-index equality seed (keys resolved at compile
//                      time, shorthand variants included)
//   RangeScanNode      sorted-index range/equality over a numeric column
//   SubstringScanNode  n-gram candidate fetch + columnar verification
//   FullScanFilterNode columnar scan of every row
//   FilterNode         residual predicates verified over a child's rows,
//                      in planner (selectivity) order
//   IntersectNode / UnionNode / NotNode
//                      set algebra; each call picks sorted-vector or bitmap
//                      representation by density (db/exec/rowset_ops.h)
//
// Every node returns a sorted, duplicate-free RowSet, which is what makes
// planner-chosen predicate orders answer-identical to the seed executor's
// §4.3 Type-rank order: conjunction reordering changes work, never the set.
#ifndef CQADS_DB_EXEC_PLAN_H_
#define CQADS_DB_EXEC_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/exec/rowset_ops.h"
#include "db/executor.h"
#include "db/query.h"
#include "db/table.h"

namespace cqads::db::exec {

/// A predicate resolved against the column store at compile time: text
/// needles become element-dictionary code sets (equality, shorthand, and
/// substring matching run once per DISTINCT value instead of once per row
/// probe), numeric operands become doubles. Row evaluation is then integer
/// compares over code spans or packed doubles.
struct CompiledPredicate {
  enum class Mode {
    kNumeric,          ///< packed-double compare
    kNumericContains,  ///< substring over canonical rendered text
    kTextCodes,        ///< element-code membership (eq/ne/contains)
    kNever,            ///< undefined op on this column: matches nothing
  };

  Predicate pred;
  Mode mode = Mode::kNever;
  double lo = 0.0;  ///< numeric operand (kBetween lower bound)
  double hi = 0.0;  ///< kBetween upper bound
  /// Per element-dictionary code: 1 when the element satisfies the
  /// predicate's value test (equality incl. shorthand, or containment).
  std::vector<char> element_match;
  std::string needle;  ///< canonical contains needle (numeric columns)
  double selectivity = 1.0;  ///< estimate from TableStats

  /// Row test; must agree with Executor::Matches on every (row, predicate).
  bool Matches(const ColumnStore& store, RowId row) const;
};

/// Compiles `pred` against the table's store. Selectivity comes from
/// `stats` when given (the Planner passes the stats frozen at snapshot
/// registration) and falls back to the table's current stats otherwise.
CompiledPredicate CompilePredicate(const Table& table, const Predicate& pred,
                                   const TableStats* stats = nullptr);

/// One node of a physical plan.
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  /// Evaluates to a sorted, duplicate-free RowSet.
  ///
  /// This is the scalar REFERENCE path: row-at-a-time predicate loops, kept
  /// byte-identical forever so the vectorized path below always has an
  /// oracle to diff against (EngineOptions::use_vector_kernels = false runs
  /// it end to end).
  virtual RowSet Execute(ExecStats* stats) const = 0;

  /// Block-at-a-time evaluation: scans run 1024-row selection masks through
  /// the branch-free kernels (db/exec/vector_kernels.h) and set operations
  /// stay word-parallel across adjacent nodes via LazyRowSet. Denotes
  /// exactly the same set as Execute on every node — only the work differs.
  /// The default forwards to Execute, so index-seeded leaves (sparse
  /// results, nothing to vectorize) participate unchanged.
  virtual LazyRowSet ExecuteLazy(ExecStats* stats) const {
    return LazyRowSet::FromRows(Execute(stats));
  }

  /// Appends this node's Explain() line(s): two-space indentation per
  /// depth, children below their parent.
  virtual void Explain(std::string* out, int depth) const = 0;

  double est_selectivity = 1.0;
};

using PlanNodePtr = std::unique_ptr<PlanNode>;

class IndexScanNode : public PlanNode {
 public:
  /// `keys` are the hash-index keys to union (the needle plus any shorthand
  /// variants present in the index), resolved at compile time.
  IndexScanNode(const Table* table, CompiledPredicate cp,
                std::vector<std::string> keys);
  RowSet Execute(ExecStats* stats) const override;
  void Explain(std::string* out, int depth) const override;

  const std::vector<std::string>& keys() const { return keys_; }

 private:
  const Table* table_;
  CompiledPredicate cp_;
  std::vector<std::string> keys_;
};

class RangeScanNode : public PlanNode {
 public:
  RangeScanNode(const Table* table, CompiledPredicate cp);
  RowSet Execute(ExecStats* stats) const override;
  /// Non-selective ranges (est. selectivity >= 1/16) run a branch-free
  /// block scan of the packed column into a bitmap instead of the sorted
  /// index probe: past that density the index path's gather-and-sort of
  /// row ids costs more than streaming every double through SIMD compares,
  /// and the bitmap output feeds word-parallel set ops downstream. Selective
  /// ranges keep the index probe (sparse vector).
  LazyRowSet ExecuteLazy(ExecStats* stats) const override;
  void Explain(std::string* out, int depth) const override;

 private:
  const Table* table_;
  CompiledPredicate cp_;
};

class SubstringScanNode : public PlanNode {
 public:
  SubstringScanNode(const Table* table, CompiledPredicate cp);
  RowSet Execute(ExecStats* stats) const override;
  void Explain(std::string* out, int depth) const override;

 private:
  const Table* table_;
  CompiledPredicate cp_;
};

class FullScanFilterNode : public PlanNode {
 public:
  FullScanFilterNode(const Table* table, CompiledPredicate cp);
  RowSet Execute(ExecStats* stats) const override;
  /// Block-at-a-time scan into a bitmap via the selection-mask kernels.
  LazyRowSet ExecuteLazy(ExecStats* stats) const override;
  void Explain(std::string* out, int depth) const override;

 private:
  const Table* table_;
  CompiledPredicate cp_;
};

class FilterNode : public PlanNode {
 public:
  /// Residual predicates are verified over the child's rows in the given
  /// (selectivity) order.
  FilterNode(const Table* table, PlanNodePtr child,
             std::vector<CompiledPredicate> residual);
  /// Single pass: every residual is applied per row with early-out, not one
  /// full re-scan of the surviving set per predicate.
  RowSet Execute(ExecStats* stats) const override;
  /// Dense child: AND each residual's block mask into the child's bitmap,
  /// skipping blocks whose mask is already empty. Sparse child: one scalar
  /// pass (building per-distinct-cell tables wouldn't amortize).
  LazyRowSet ExecuteLazy(ExecStats* stats) const override;
  void Explain(std::string* out, int depth) const override;

 private:
  const Table* table_;
  PlanNodePtr child_;
  std::vector<CompiledPredicate> residual_;
};

class IntersectNode : public PlanNode {
 public:
  IntersectNode(const Table* table, std::vector<PlanNodePtr> children);
  RowSet Execute(ExecStats* stats) const override;
  LazyRowSet ExecuteLazy(ExecStats* stats) const override;
  void Explain(std::string* out, int depth) const override;

 private:
  const Table* table_;
  std::vector<PlanNodePtr> children_;
};

class UnionNode : public PlanNode {
 public:
  UnionNode(const Table* table, std::vector<PlanNodePtr> children);
  RowSet Execute(ExecStats* stats) const override;
  LazyRowSet ExecuteLazy(ExecStats* stats) const override;
  void Explain(std::string* out, int depth) const override;

 private:
  const Table* table_;
  std::vector<PlanNodePtr> children_;
};

class NotNode : public PlanNode {
 public:
  NotNode(const Table* table, PlanNodePtr child);
  RowSet Execute(ExecStats* stats) const override;
  LazyRowSet ExecuteLazy(ExecStats* stats) const override;
  void Explain(std::string* out, int depth) const override;

 private:
  const Table* table_;
  PlanNodePtr child_;
};

/// A complete compiled query: plan tree + superlative + answer cap.
/// Immutable; Execute() is const and thread-safe over a frozen table.
class PhysicalPlan {
 public:
  PhysicalPlan(const Table* table, PlanNodePtr root,
               std::optional<Superlative> superlative, std::size_t limit);

  /// Runs the plan. Superlative ordering and the answer cap are applied
  /// exactly as the seed executor does (§4.3 step 4), so results are
  /// byte-identical for identical row sets. `vectorize` selects the
  /// block-at-a-time kernels (EngineOptions::use_vector_kernels); false
  /// runs the scalar reference loops — same rows either way.
  Result<QueryResult> Execute(bool vectorize = true) const;

  /// The constraint tree's raw row set — sorted, duplicate-free, BEFORE the
  /// superlative sort and the answer cap. The partition-parallel executor
  /// merges these across shards, and the delta-union path combines one with
  /// the delta scan, before applying the final §4.3 step-4 semantics
  /// globally (applying a per-shard cap first would drop rows the global
  /// superlative should have kept).
  Result<RowSet> ExecuteRowSet(ExecStats* stats, bool vectorize = true) const;

  const std::optional<Superlative>& superlative() const { return superlative_; }
  std::size_t limit() const { return limit_; }

  /// Human-readable plan dump:
  ///   Plan(limit=30, superlative=price asc)
  ///     Filter(color = 'blue', sel=0.385)
  ///       IndexScan(make = 'honda', sel=0.077, keys=1)
  std::string Explain() const;

  const PlanNode* root() const { return root_.get(); }

 private:
  const Table* table_;
  PlanNodePtr root_;  ///< null: no constraint (all rows)
  std::optional<Superlative> superlative_;
  std::size_t limit_;
};

using PlanPtr = std::shared_ptr<const PhysicalPlan>;

}  // namespace cqads::db::exec

#endif  // CQADS_DB_EXEC_PLAN_H_
