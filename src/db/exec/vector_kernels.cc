#include "db/exec/vector_kernels.h"

#include <atomic>

#include "db/compare.h"
#include "db/exec/plan.h"

// SIMD tiers are compiled only where they can run: x86-64 guarantees SSE2,
// and the AVX2 bodies carry function-level target attributes so no special
// build flag is needed (dispatch checks the CPU at startup). The
// CQADS_FORCE_SCALAR_KERNELS build (CI's no-SIMD leg) compiles the portable
// path alone, proving the engine never silently depends on a vector tier.
#if (defined(__x86_64__) || defined(_M_X64)) && \
    !defined(CQADS_FORCE_SCALAR_KERNELS)
#define CQADS_X86_KERNELS 1
#include <immintrin.h>
#endif

namespace cqads::db::exec {

namespace {

// ----------------------------------------------------------- SIMD dispatch

SimdLevel DetectSimdLevel() {
#if defined(CQADS_X86_KERNELS)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  return SimdLevel::kSse2;
#else
  return SimdLevel::kScalar;
#endif
}

// -1 = no override; otherwise the int value of the forced SimdLevel,
// already clamped to what the CPU supports.
std::atomic<int> g_simd_override{-1};

// ---------------------------------------------------------- scalar kernels
// The portable tier doubles as the differential oracle: every SIMD word
// below must produce these exact bits.

inline bool NumericTest(double v, CompareOp op, double lo, double hi) {
  switch (op) {
    case CompareOp::kEq:
      return v == lo;
    case CompareOp::kNe:
      return v != lo;
    case CompareOp::kLt:
      return v < lo;
    case CompareOp::kLe:
      return v <= lo;
    case CompareOp::kGt:
      return v > lo;
    case CompareOp::kGe:
      return v >= lo;
    case CompareOp::kBetween:
      return v >= lo && v <= hi;
    case CompareOp::kContains:
      return false;  // compiled as kNumericContains, never kNumeric
  }
  return false;
}

void ScalarNumericWords(const double* p, CompareOp op, double lo, double hi,
                        std::size_t words, std::uint64_t* out) {
  for (std::size_t j = 0; j < words; ++j) {
    std::uint64_t w = 0;
    const double* q = p + 64 * j;
    for (std::size_t b = 0; b < 64; ++b) {
      w |= static_cast<std::uint64_t>(NumericTest(q[b], op, lo, hi)) << b;
    }
    out[j] = w;
  }
}

void ScalarCodeEqWords(const std::uint32_t* c, std::uint32_t target,
                       std::size_t words, std::uint64_t* eq_out,
                       std::uint64_t* null_out) {
  for (std::size_t j = 0; j < words; ++j) {
    std::uint64_t eq = 0, nul = 0;
    const std::uint32_t* q = c + 64 * j;
    for (std::size_t b = 0; b < 64; ++b) {
      eq |= static_cast<std::uint64_t>(q[b] == target) << b;
      nul |= static_cast<std::uint64_t>(q[b] == ColumnStore::kNullCode) << b;
    }
    eq_out[j] = eq;
    null_out[j] = nul;
  }
}

#if defined(CQADS_X86_KERNELS)

// ------------------------------------------------------------ SSE2 kernels
// x86-64 baseline; no target attributes needed. 64 rows per mask word =
// 32 two-double compares (movemask_pd yields 2 bits) or 16 four-code
// compares (movemask_ps yields 4 bits).

// The packed _mm_cmp*_pd intrinsics match C's quiet-NaN semantics: the
// ordered forms (eq/lt/le/gt/ge) are false on NaN, cmpneq is unordered and
// true on NaN — exactly NumericTest. NaN lanes (NULL rows) get masked by
// the null-rule fold regardless.
#define CQADS_SSE2_CMP_WORD(NAME, CMP)                                   \
  inline std::uint64_t NAME(const double* p, double t) {                 \
    const __m128d tv = _mm_set1_pd(t);                                   \
    std::uint64_t w = 0;                                                 \
    for (int k = 0; k < 32; ++k) {                                       \
      const __m128d v = _mm_loadu_pd(p + 2 * k);                         \
      w |= static_cast<std::uint64_t>(_mm_movemask_pd(CMP(v, tv)))       \
           << (2 * k);                                                   \
    }                                                                    \
    return w;                                                            \
  }

CQADS_SSE2_CMP_WORD(Sse2EqWord, _mm_cmpeq_pd)
CQADS_SSE2_CMP_WORD(Sse2NeWord, _mm_cmpneq_pd)
CQADS_SSE2_CMP_WORD(Sse2LtWord, _mm_cmplt_pd)
CQADS_SSE2_CMP_WORD(Sse2LeWord, _mm_cmple_pd)
CQADS_SSE2_CMP_WORD(Sse2GtWord, _mm_cmpgt_pd)
CQADS_SSE2_CMP_WORD(Sse2GeWord, _mm_cmpge_pd)
#undef CQADS_SSE2_CMP_WORD

inline std::uint64_t Sse2BetweenWord(const double* p, double lo, double hi) {
  const __m128d lv = _mm_set1_pd(lo), hv = _mm_set1_pd(hi);
  std::uint64_t w = 0;
  for (int k = 0; k < 32; ++k) {
    const __m128d v = _mm_loadu_pd(p + 2 * k);
    const __m128d m = _mm_and_pd(_mm_cmpge_pd(v, lv), _mm_cmple_pd(v, hv));
    w |= static_cast<std::uint64_t>(_mm_movemask_pd(m)) << (2 * k);
  }
  return w;
}

void Sse2NumericWords(const double* p, CompareOp op, double lo, double hi,
                      std::size_t words, std::uint64_t* out) {
  for (std::size_t j = 0; j < words; ++j) {
    const double* q = p + 64 * j;
    switch (op) {
      case CompareOp::kEq:
        out[j] = Sse2EqWord(q, lo);
        break;
      case CompareOp::kNe:
        out[j] = Sse2NeWord(q, lo);
        break;
      case CompareOp::kLt:
        out[j] = Sse2LtWord(q, lo);
        break;
      case CompareOp::kLe:
        out[j] = Sse2LeWord(q, lo);
        break;
      case CompareOp::kGt:
        out[j] = Sse2GtWord(q, lo);
        break;
      case CompareOp::kGe:
        out[j] = Sse2GeWord(q, lo);
        break;
      case CompareOp::kBetween:
        out[j] = Sse2BetweenWord(q, lo, hi);
        break;
      case CompareOp::kContains:
        out[j] = 0;
        break;
    }
  }
}

void Sse2CodeEqWords(const std::uint32_t* c, std::uint32_t target,
                     std::size_t words, std::uint64_t* eq_out,
                     std::uint64_t* null_out) {
  const __m128i tv = _mm_set1_epi32(static_cast<int>(target));
  const __m128i nv = _mm_set1_epi32(static_cast<int>(ColumnStore::kNullCode));
  for (std::size_t j = 0; j < words; ++j) {
    const std::uint32_t* q = c + 64 * j;
    std::uint64_t eq = 0, nul = 0;
    for (int k = 0; k < 16; ++k) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + 4 * k));
      eq |= static_cast<std::uint64_t>(
                _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, tv))))
            << (4 * k);
      nul |= static_cast<std::uint64_t>(
                 _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, nv))))
             << (4 * k);
    }
    eq_out[j] = eq;
    null_out[j] = nul;
  }
}

// ------------------------------------------------------------ AVX2 kernels
// Compiled via target attributes so the TU builds without -mavx2; only
// dispatched when __builtin_cpu_supports("avx2") said yes at startup.

#define CQADS_AVX2_CMP_WORD(NAME, PRED)                                  \
  __attribute__((target("avx2"))) inline std::uint64_t NAME(             \
      const double* p, double t) {                                       \
    const __m256d tv = _mm256_set1_pd(t);                                \
    std::uint64_t w = 0;                                                 \
    for (int k = 0; k < 16; ++k) {                                       \
      const __m256d v = _mm256_loadu_pd(p + 4 * k);                      \
      w |= static_cast<std::uint64_t>(                                   \
               _mm256_movemask_pd(_mm256_cmp_pd(v, tv, PRED)))           \
           << (4 * k);                                                   \
    }                                                                    \
    return w;                                                            \
  }

// _CMP_NEQ_UQ is true on NaN like C's !=; the ordered-quiet forms are
// false on NaN like C's relational operators.
CQADS_AVX2_CMP_WORD(Avx2EqWord, _CMP_EQ_OQ)
CQADS_AVX2_CMP_WORD(Avx2NeWord, _CMP_NEQ_UQ)
CQADS_AVX2_CMP_WORD(Avx2LtWord, _CMP_LT_OQ)
CQADS_AVX2_CMP_WORD(Avx2LeWord, _CMP_LE_OQ)
CQADS_AVX2_CMP_WORD(Avx2GtWord, _CMP_GT_OQ)
CQADS_AVX2_CMP_WORD(Avx2GeWord, _CMP_GE_OQ)
#undef CQADS_AVX2_CMP_WORD

__attribute__((target("avx2"))) inline std::uint64_t Avx2BetweenWord(
    const double* p, double lo, double hi) {
  const __m256d lv = _mm256_set1_pd(lo), hv = _mm256_set1_pd(hi);
  std::uint64_t w = 0;
  for (int k = 0; k < 16; ++k) {
    const __m256d v = _mm256_loadu_pd(p + 4 * k);
    const __m256d m = _mm256_and_pd(_mm256_cmp_pd(v, lv, _CMP_GE_OQ),
                                    _mm256_cmp_pd(v, hv, _CMP_LE_OQ));
    w |= static_cast<std::uint64_t>(_mm256_movemask_pd(m)) << (4 * k);
  }
  return w;
}

void Avx2NumericWords(const double* p, CompareOp op, double lo, double hi,
                      std::size_t words, std::uint64_t* out) {
  for (std::size_t j = 0; j < words; ++j) {
    const double* q = p + 64 * j;
    switch (op) {
      case CompareOp::kEq:
        out[j] = Avx2EqWord(q, lo);
        break;
      case CompareOp::kNe:
        out[j] = Avx2NeWord(q, lo);
        break;
      case CompareOp::kLt:
        out[j] = Avx2LtWord(q, lo);
        break;
      case CompareOp::kLe:
        out[j] = Avx2LeWord(q, lo);
        break;
      case CompareOp::kGt:
        out[j] = Avx2GtWord(q, lo);
        break;
      case CompareOp::kGe:
        out[j] = Avx2GeWord(q, lo);
        break;
      case CompareOp::kBetween:
        out[j] = Avx2BetweenWord(q, lo, hi);
        break;
      case CompareOp::kContains:
        out[j] = 0;
        break;
    }
  }
}

__attribute__((target("avx2"))) void Avx2CodeEqWords(const std::uint32_t* c,
                                                     std::uint32_t target,
                                                     std::size_t words,
                                                     std::uint64_t* eq_out,
                                                     std::uint64_t* null_out) {
  const __m256i tv = _mm256_set1_epi32(static_cast<int>(target));
  const __m256i nv =
      _mm256_set1_epi32(static_cast<int>(ColumnStore::kNullCode));
  for (std::size_t j = 0; j < words; ++j) {
    const std::uint32_t* q = c + 64 * j;
    std::uint64_t eq = 0, nul = 0;
    for (int k = 0; k < 8; ++k) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + 8 * k));
      eq |= static_cast<std::uint64_t>(_mm256_movemask_ps(
                _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, tv))))
            << (8 * k);
      nul |= static_cast<std::uint64_t>(_mm256_movemask_ps(
                 _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, nv))))
             << (8 * k);
    }
    eq_out[j] = eq;
    null_out[j] = nul;
  }
}

#endif  // CQADS_X86_KERNELS

/// Clears bits at and beyond row n (kernels fill whole words).
inline void ClearTailBits(std::size_t n, SelMask* out) {
  if (n % 64 != 0) {
    out->words[n / 64] &= (std::uint64_t{1} << (n % 64)) - 1;
  }
}

}  // namespace

SimdLevel ActiveSimdLevel() {
  static const SimdLevel detected = DetectSimdLevel();
  const int forced = g_simd_override.load(std::memory_order_relaxed);
  if (forced < 0) return detected;
  // Never dispatch above the CPU's capability (enum is best-first).
  return static_cast<SimdLevel>(
      forced > static_cast<int>(detected) ? forced
                                          : static_cast<int>(detected));
}

void SetSimdOverride(SimdLevel level) {
  g_simd_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ClearSimdOverride() {
  g_simd_override.store(-1, std::memory_order_relaxed);
}

void NumericCompareMask(const double* packed, const std::uint64_t* null_words,
                        CompareOp op, double lo, double hi, std::size_t base,
                        std::size_t n, SelMask* out) {
  out->Clear();
  if (n == 0) return;
  const double* p = packed + base;
  const std::size_t full_words = n / 64;

  switch (ActiveSimdLevel()) {
#if defined(CQADS_X86_KERNELS)
    case SimdLevel::kAvx2:
      Avx2NumericWords(p, op, lo, hi, full_words, out->words);
      break;
    case SimdLevel::kSse2:
      Sse2NumericWords(p, op, lo, hi, full_words, out->words);
      break;
#else
    case SimdLevel::kAvx2:
    case SimdLevel::kSse2:
#endif
    case SimdLevel::kScalar:
      ScalarNumericWords(p, op, lo, hi, full_words, out->words);
      break;
  }
  for (std::size_t i = full_words * 64; i < n; ++i) {
    out->words[i / 64] |= static_cast<std::uint64_t>(
                              NumericTest(p[i], op, lo, hi))
                          << (i % 64);
  }

  // Null-rule fold: NULL rows carry NaN in the packed column, so the
  // compare words above already treat them as no-match for the ordered ops
  // and as match for kNe — but the rule is defined by the null BITMAP, not
  // by NaN propagation, so mask explicitly and OR the rule back in.
  const bool null_matches = NullComparisonMatches(op);
  const std::uint64_t* nw =
      null_words == nullptr ? nullptr : null_words + base / 64;
  const std::size_t mask_words = (n + 63) / 64;
  for (std::size_t j = 0; j < mask_words; ++j) {
    const std::uint64_t nulls = nw == nullptr ? 0 : nw[j];
    out->words[j] = (out->words[j] & ~nulls) | (null_matches ? nulls : 0);
  }
  ClearTailBits(n, out);
}

void CodeEqMask(const std::uint32_t* codes, std::uint32_t target, bool negate,
                bool null_matches, std::size_t base, std::size_t n,
                SelMask* out) {
  out->Clear();
  if (n == 0) return;
  const std::uint32_t* c = codes + base;
  const std::size_t full_words = n / 64;
  std::uint64_t null_bits[kMaskWords];

  switch (ActiveSimdLevel()) {
#if defined(CQADS_X86_KERNELS)
    case SimdLevel::kAvx2:
      Avx2CodeEqWords(c, target, full_words, out->words, null_bits);
      break;
    case SimdLevel::kSse2:
      Sse2CodeEqWords(c, target, full_words, out->words, null_bits);
      break;
#else
    case SimdLevel::kAvx2:
    case SimdLevel::kSse2:
#endif
    case SimdLevel::kScalar:
      ScalarCodeEqWords(c, target, full_words, out->words, null_bits);
      break;
  }
  if (n % 64 != 0) {
    std::uint64_t eq = 0, nul = 0;
    for (std::size_t i = full_words * 64; i < n; ++i) {
      eq |= static_cast<std::uint64_t>(c[i] == target) << (i % 64);
      nul |= static_cast<std::uint64_t>(c[i] == ColumnStore::kNullCode)
             << (i % 64);
    }
    out->words[full_words] = eq;
    null_bits[full_words] = nul;
  }

  const std::uint64_t neg = negate ? ~std::uint64_t{0} : 0;
  const std::size_t mask_words = (n + 63) / 64;
  for (std::size_t j = 0; j < mask_words; ++j) {
    const std::uint64_t nulls = null_bits[j];
    out->words[j] =
        ((out->words[j] ^ neg) & ~nulls) | (null_matches ? nulls : 0);
  }
  ClearTailBits(n, out);
}

void CodeTableMask(const std::uint32_t* codes, const std::uint8_t* table,
                   std::uint32_t table_size, bool negate, bool null_matches,
                   std::size_t base, std::size_t n, SelMask* out) {
  out->Clear();
  const std::uint32_t* c = codes + base;
  // One gather per row, branch-free select between the NULL rule and the
  // (possibly negated) table bit. The match table is the SIMD substitute
  // here: it collapses the per-row element-span walk to one byte load, and
  // is identical at every dispatch tier.
  for (std::size_t j = 0; j * 64 < n; ++j) {
    std::uint64_t w = 0;
    const std::size_t limit = n - j * 64 < 64 ? n - j * 64 : 64;
    const std::uint32_t* q = c + 64 * j;
    for (std::size_t b = 0; b < limit; ++b) {
      const std::uint32_t code = q[b];
      const bool is_null = code == ColumnStore::kNullCode;
      const bool hit = code < table_size && table[code] != 0;
      const bool match = is_null ? null_matches : (hit != negate);
      w |= static_cast<std::uint64_t>(match) << b;
    }
    out->words[j] = w;
  }
}

std::size_t EmitRows(const SelMask& mask, RowId base, RowSet* out) {
  std::size_t added = 0;
  for (std::size_t j = 0; j < kMaskWords; ++j) {
    std::uint64_t w = mask.words[j];
    while (w != 0) {
      const int bit = __builtin_ctzll(w);
      out->push_back(base + static_cast<RowId>(64 * j + bit));
      w &= w - 1;
      ++added;
    }
  }
  return added;
}

// ---------------------------------------------------------- BlockPredicate

BlockPredicate::BlockPredicate(const ColumnStore& store,
                               const CompiledPredicate& cp) {
  const std::size_t attr = cp.pred.attr;
  null_matches_ = NullComparisonMatches(cp.pred.op);
  switch (cp.mode) {
    case CompiledPredicate::Mode::kNumeric:
      if (cp.pred.op == CompareOp::kContains) {
        kind_ = Kind::kNever;  // scalar path also matches nothing
        return;
      }
      kind_ = Kind::kNumeric;
      op_ = cp.pred.op;
      lo_ = cp.lo;
      hi_ = cp.hi;
      packed_ = store.numeric_column(attr).data();
      null_words_ = store.null_bitmap(attr).data();
      return;
    case CompiledPredicate::Mode::kNumericContains: {
      const auto& rendered = store.rendered_dictionary(attr);
      cell_match_.resize(rendered.size());
      for (std::size_t code = 0; code < rendered.size(); ++code) {
        cell_match_[code] =
            rendered[code].find(cp.needle) != std::string::npos ? 1 : 0;
      }
      negate_ = false;
      break;
    }
    case CompiledPredicate::Mode::kTextCodes: {
      // Rows sharing a dictionary code share the exact element sequence, so
      // the any-element test runs once per DISTINCT cell here instead of
      // once per row in the block loop.
      const std::size_t dict_size = store.dictionary(attr).size();
      cell_match_.resize(dict_size);
      for (std::size_t code = 0; code < dict_size; ++code) {
        auto [begin, end] =
            store.DictElementSpan(attr, static_cast<std::uint32_t>(code));
        bool any = false;
        for (const std::uint32_t* it = begin; it != end && !any; ++it) {
          any = cp.element_match[*it] != 0;
        }
        cell_match_[code] = any ? 1 : 0;
      }
      negate_ = cp.pred.op == CompareOp::kNe;
      break;
    }
    case CompiledPredicate::Mode::kNever:
      kind_ = Kind::kNever;
      return;
  }

  // Shared tail of the two table modes: pick the direct-compare fast path
  // when exactly one distinct cell matches, drop to all-zero when none can.
  codes_ = store.code_column(cp.pred.attr).data();
  std::size_t hits = 0;
  std::uint32_t only = 0;
  for (std::size_t code = 0; code < cell_match_.size(); ++code) {
    if (cell_match_[code] != 0) {
      ++hits;
      only = static_cast<std::uint32_t>(code);
    }
  }
  if (hits == 1) {
    kind_ = Kind::kCodeEq;
    target_code_ = only;
  } else if (hits == 0 && !negate_ && !null_matches_) {
    kind_ = Kind::kNever;
  } else {
    kind_ = Kind::kCodeTable;
  }
}

void BlockPredicate::EvalBlock(std::size_t base, std::size_t n,
                               SelMask* out) const {
  switch (kind_) {
    case Kind::kNumeric:
      NumericCompareMask(packed_, null_words_, op_, lo_, hi_, base, n, out);
      return;
    case Kind::kCodeEq:
      CodeEqMask(codes_, target_code_, negate_, null_matches_, base, n, out);
      return;
    case Kind::kCodeTable:
      CodeTableMask(codes_, cell_match_.data(),
                    static_cast<std::uint32_t>(cell_match_.size()), negate_,
                    null_matches_, base, n, out);
      return;
    case Kind::kNever:
      out->Clear();
      return;
  }
}

void BlockPredicate::AndBlock(std::size_t base, std::size_t n,
                              SelMask* inout) const {
  SelMask mine;
  EvalBlock(base, n, &mine);
  inout->AndWith(mine);
}

}  // namespace cqads::db::exec
