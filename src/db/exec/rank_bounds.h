// Per-block summaries for block-max rank pruning. For every attribute of a
// table, RankBounds records per 1024-row block:
//
//   * the dictionary-code range [code_min, code_max] of the block's non-NULL
//     cells (codes are dense intern indexes, so the range is a compact
//     superset of the codes actually present);
//   * whether the block contains a NULL cell;
//   * for numeric columns, the [val_min, val_max] of the block's non-NaN
//     packed values.
//
// Plus one representative row per distinct dictionary code (the first row
// carrying it) and one per-attribute first-NULL row. A similarity that is a
// pure function of a row's code on one attribute (the SimScorer memo
// argument: same code -> same cell -> same elements) can then be bounded
// per block by maxing the representative-row similarities over the block's
// code range — an upper bound because the range is a superset, and exact on
// the codes it was computed from. Numeric Num_Sim is bounded exactly from
// [val_min, val_max] (Eq. 4 is unimodal in the record value with its peak
// at the question's target).
//
// Built once per table generation in EngineBuilder::MakeRuntime (and the
// snapshot-load path), one O(attrs x rows) pass; never serialized — a
// loaded snapshot rebuilds it at open. Immutable after Build, safe to share
// across threads.
#ifndef CQADS_DB_EXEC_RANK_BOUNDS_H_
#define CQADS_DB_EXEC_RANK_BOUNDS_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "db/table.h"

namespace cqads::db::exec {

/// Block granularity of the rank-pruning summaries. Matches the executor's
/// vectorized block size so Explain counters speak one unit.
inline constexpr std::size_t kRankBlockRows = 1024;

/// Sentinel: no representative row exists (code unused / column never NULL).
inline constexpr RowId kNoRankRow = static_cast<RowId>(-1);

class RankBounds {
 public:
  /// Per-attribute, per-block summary. Arrays are indexed by block; a block
  /// with no non-NULL cell has code_min > code_max (and val_min > val_max).
  struct AttrBounds {
    std::vector<std::uint32_t> code_min;
    std::vector<std::uint32_t> code_max;
    std::vector<std::uint8_t> has_null;
    /// Numeric columns only (empty otherwise).
    std::vector<double> val_min;
    std::vector<double> val_max;
    /// First row of each dictionary code (size = dictionary size).
    std::vector<RowId> first_row_of_code;
    /// First row whose cell is NULL; kNoRankRow when the column has none.
    RowId first_null_row = kNoRankRow;
  };

  static std::shared_ptr<const RankBounds> Build(const db::Table& table);

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_blocks() const { return num_blocks_; }
  const AttrBounds& attr(std::size_t a) const { return attrs_[a]; }

  /// Rows of block b: [b * kRankBlockRows, block_end(b)).
  RowId block_end(std::size_t b) const {
    const std::size_t end = (b + 1) * kRankBlockRows;
    return static_cast<RowId>(end < num_rows_ ? end : num_rows_);
  }

 private:
  RankBounds() = default;

  std::size_t num_rows_ = 0;
  std::size_t num_blocks_ = 0;
  std::vector<AttrBounds> attrs_;
};

}  // namespace cqads::db::exec

#endif  // CQADS_DB_EXEC_RANK_BOUNDS_H_
