#include "db/exec/delta_exec.h"

#include <algorithm>

#include "db/exec/rowset_ops.h"
#include "db/row_match.h"

namespace cqads::db::exec {

const Value& HybridCell(const Table& base, const DeltaStore* delta, RowId row,
                        std::size_t attr) {
  if (row < base.num_rows()) return base.cell(row, attr);
  return delta->cell(row, attr);
}

Result<QueryResult> ExecuteHybrid(const Table& base, const DeltaStore& delta,
                                  const Query& query,
                                  const BaseRowSource& source) {
  QueryResult result;
  const std::size_t base_rows = base.num_rows();

  // 1. Base rows through the fastest available path, uncapped and unsorted
  //    (plain ascending RowIds).
  RowSet rows;
  if (source.part_plan != nullptr) {
    auto r = source.part_plan->ExecuteRowSet(source.runner, source.parallelism,
                                             &result.stats, source.control,
                                             source.vectorize);
    if (!r.ok()) return r.status();
    rows = std::move(r).value();
  } else if (source.plan != nullptr) {
    auto r = source.plan->ExecuteRowSet(&result.stats, source.vectorize);
    if (!r.ok()) return r.status();
    rows = std::move(r).value();
  } else {
    // Seed Type-rank executor. Execute() with the superlative and cap
    // stripped returns exactly the raw constraint row set (ascending).
    Query raw = query;
    raw.superlative = std::nullopt;
    raw.limit = base_rows;
    auto r = Executor(&base).Execute(raw);
    if (!r.ok()) return r.status();
    result.stats += r.value().stats;
    rows = std::move(r).value().rows;
  }

  // 2. Mask tombstoned base rows.
  if (!delta.retired_base().empty()) {
    rows = DifferenceSets(rows, delta.retired_base(), base_rows);
  }

  // 3. Scan the live delta rows with the seed row-at-a-time semantics. The
  //    deadline is re-checked every chunk so an expired request abandons a
  //    large delta within a few hundred row probes.
  constexpr std::size_t kCancelCheckRows = 256;
  const Schema& schema = base.schema();
  std::size_t scanned = 0;
  for (std::size_t i = 0; i < delta.num_rows(); ++i) {
    if (i % kCancelCheckRows == 0 && ExecControl::Expired(source.control)) {
      return Status::DeadlineExceeded("delta scan cancelled");
    }
    if (delta.delta_retired(i)) continue;
    ++scanned;
    if (query.where == nullptr ||
        RecordMatchesExpr(schema, delta.record(i), *query.where)) {
      rows.push_back(static_cast<RowId>(base_rows + i));
    }
  }
  result.stats.rows_verified += scanned;
  if (delta.live_delta_rows() > 0) ++result.stats.full_scans;

  // 4. Global §4.3 step 4: superlative over the combined id space, stable
  //    ties by global id, then the cap.
  ApplySuperlativeAndCap(&rows, query.superlative,
                         [&](RowId r, std::size_t a) -> const Value& {
                           return HybridCell(base, &delta, r, a);
                         },
                         query.limit);
  result.rows = std::move(rows);
  return result;
}

}  // namespace cqads::db::exec
