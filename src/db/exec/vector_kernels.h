// Block-at-a-time selection kernels over the columnar store. Predicates are
// evaluated over fixed-width chunks of kBlockRows rows into branch-free
// selection masks (one bit per row) instead of per-row branching loops:
//
//   * numeric compares run over the packed-double column (SIMD compare,
//     movemask) with the NULL rule folded in word-parallel from the
//     column's null bitmap;
//   * text predicates gather through a per-DISTINCT-CELL match table
//     (u8 per dictionary code, derived once per node execution from the
//     compile-time element-match set), so the per-row test is one load
//     instead of an element-span walk; single-code equality additionally
//     takes a direct SIMD code-compare fast path;
//   * masks AND together across conjunct predicates and convert to sorted
//     RowSets (or whole RowBitmaps) only at plan-node boundaries.
//
// SIMD dispatch is resolved once at startup: AVX2 when the CPU supports it
// (compiled via function target attributes, no special build flags), SSE2
// on any x86-64, and a portable scalar path everywhere else. The scalar
// path is ALSO the differential oracle — tests force it with
// SetSimdOverride and assert byte-identical masks — and the
// CQADS_FORCE_SCALAR_KERNELS build (CI's no-SIMD leg) pins the portable
// path green. Every kernel must agree with CompiledPredicate::Matches on
// every (row, predicate); tests/test_vector_kernels.cc holds that line.
#ifndef CQADS_DB_EXEC_VECTOR_KERNELS_H_
#define CQADS_DB_EXEC_VECTOR_KERNELS_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "db/query.h"
#include "db/storage/column_store.h"

namespace cqads::db::exec {

struct CompiledPredicate;  // db/exec/plan.h (cyclic include avoided)

/// Rows per execution block. One block's selection mask is kMaskWords u64
/// words; blocks tile the table from row 0, so block masks are word-aligned
/// views of a whole-table RowBitmap.
inline constexpr std::size_t kBlockRows = 1024;
inline constexpr std::size_t kMaskWords = kBlockRows / 64;

/// Selection mask of one block: bit i of word i/64 = row (block_base + i)
/// selected. Bits at and beyond the block's row count are always zero.
struct SelMask {
  std::uint64_t words[kMaskWords];

  void Clear() { std::memset(words, 0, sizeof(words)); }
  bool AnySet() const {
    std::uint64_t acc = 0;
    for (std::uint64_t w : words) acc |= w;
    return acc != 0;
  }
  std::size_t Count() const {
    std::size_t n = 0;
    for (std::uint64_t w : words) n += __builtin_popcountll(w);
    return n;
  }
  void AndWith(const SelMask& other) {
    for (std::size_t i = 0; i < kMaskWords; ++i) words[i] &= other.words[i];
  }
};

/// Available instruction-set tiers, best-first.
enum class SimdLevel { kAvx2, kSse2, kScalar };

/// The tier kernels dispatch to: the best the CPU supports, unless
/// overridden (tests) or built with CQADS_FORCE_SCALAR_KERNELS.
SimdLevel ActiveSimdLevel();

/// Forces a dispatch tier (kernel differential tests run every tier against
/// the scalar oracle). Levels above the CPU's capability are clamped.
/// Not for concurrent use with in-flight queries.
void SetSimdOverride(SimdLevel level);
void ClearSimdOverride();

// --- raw kernels -----------------------------------------------------------
// All kernels fill `out` for rows [base, base+n), n <= kBlockRows, and zero
// the tail bits. `base` must be a multiple of kBlockRows so null-bitmap
// words align with mask words.

/// Numeric compare over packed doubles (NaN at NULL rows). Implements the
/// scalar semantics of CompiledPredicate Mode::kNumeric, NULL rule included:
/// a NULL row matches iff op == kNe. `null_words` is the column's null
/// bitmap (may be null when the column has no NULLs).
void NumericCompareMask(const double* packed, const std::uint64_t* null_words,
                        CompareOp op, double lo, double hi, std::size_t base,
                        std::size_t n, SelMask* out);

/// Membership gather through a per-dictionary-code match table:
/// row matches iff table[code] != 0 (flipped by `negate`). NULL rows are
/// detected from the code column itself (code == kNullCode) and match iff
/// `null_matches`. Codes >= table_size test as no-match before negation.
void CodeTableMask(const std::uint32_t* codes, const std::uint8_t* table,
                   std::uint32_t table_size, bool negate, bool null_matches,
                   std::size_t base, std::size_t n, SelMask* out);

/// Single-code equality fast path: row matches iff code == target (flipped
/// by `negate`); NULL rows (code == kNullCode) match iff `null_matches`.
/// `target` must be a real dictionary code (never kNullCode).
void CodeEqMask(const std::uint32_t* codes, std::uint32_t target, bool negate,
                bool null_matches, std::size_t base, std::size_t n,
                SelMask* out);

/// Appends the selected rows of a block mask to `out` as global RowIds,
/// ascending. Returns the number appended.
std::size_t EmitRows(const SelMask& mask, RowId base, RowSet* out);

// --- per-predicate block evaluator -----------------------------------------

/// Execution-time view of one CompiledPredicate: raw column pointers plus
/// the per-distinct-cell match table, built ONCE per plan-node execution
/// (O(distinct cells), amortized across every block of the scan).
/// EvalBlock must agree with CompiledPredicate::Matches row-for-row — the
/// scalar predicate stays the oracle.
class BlockPredicate {
 public:
  BlockPredicate(const ColumnStore& store, const CompiledPredicate& cp);

  /// Fills `out` with the predicate's selection mask for rows
  /// [base, base+n). base % kBlockRows == 0, n <= kBlockRows.
  void EvalBlock(std::size_t base, std::size_t n, SelMask* out) const;

  /// out &= predicate mask (callers skip blocks whose mask is already 0).
  void AndBlock(std::size_t base, std::size_t n, SelMask* inout) const;

 private:
  enum class Kind { kNumeric, kCodeTable, kCodeEq, kNever };

  Kind kind_ = Kind::kNever;
  CompareOp op_ = CompareOp::kEq;
  double lo_ = 0.0, hi_ = 0.0;
  const double* packed_ = nullptr;
  const std::uint32_t* codes_ = nullptr;
  const std::uint64_t* null_words_ = nullptr;
  bool negate_ = false;
  bool null_matches_ = false;
  std::uint32_t target_code_ = 0;
  /// Per-dictionary-code match (kCodeTable): 1 iff any of the distinct
  /// cell's elements satisfies the compiled element-match set, or — for
  /// numeric kContains — the canonical rendered text contains the needle.
  std::vector<std::uint8_t> cell_match_;
};

}  // namespace cqads::db::exec

#endif  // CQADS_DB_EXEC_VECTOR_KERNELS_H_
