#include "db/exec/rank_bounds.h"

#include <cmath>

#include "db/storage/column_store.h"

namespace cqads::db::exec {

std::shared_ptr<const RankBounds> RankBounds::Build(const db::Table& table) {
  auto bounds = std::shared_ptr<RankBounds>(new RankBounds());
  const db::ColumnStore& store = table.store();
  const std::size_t rows = table.num_rows();
  const std::size_t attrs = table.schema().num_attributes();
  bounds->num_rows_ = rows;
  bounds->num_blocks_ = (rows + kRankBlockRows - 1) / kRankBlockRows;
  bounds->attrs_.resize(attrs);

  for (std::size_t a = 0; a < attrs; ++a) {
    AttrBounds& ab = bounds->attrs_[a];
    const std::size_t nb = bounds->num_blocks_;
    ab.code_min.assign(nb, std::numeric_limits<std::uint32_t>::max());
    ab.code_max.assign(nb, 0);
    ab.has_null.assign(nb, 0);
    ab.first_row_of_code.assign(store.dictionary(a).size(), kNoRankRow);

    const std::uint32_t* codes = store.code_column(a).data();
    const auto& packed = store.numeric_column(a);
    const bool numeric = packed.size() == rows && rows > 0;
    if (numeric) {
      ab.val_min.assign(nb, std::numeric_limits<double>::infinity());
      ab.val_max.assign(nb, -std::numeric_limits<double>::infinity());
    }

    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t b = r / kRankBlockRows;
      const std::uint32_t c = codes[r];
      if (c == db::ColumnStore::kNullCode) {
        ab.has_null[b] = 1;
        if (ab.first_null_row == kNoRankRow) {
          ab.first_null_row = static_cast<RowId>(r);
        }
        continue;
      }
      if (c < ab.code_min[b]) ab.code_min[b] = c;
      if (c > ab.code_max[b]) ab.code_max[b] = c;
      if (ab.first_row_of_code[c] == kNoRankRow) {
        ab.first_row_of_code[c] = static_cast<RowId>(r);
      }
      if (numeric) {
        const double v = packed.data()[r];
        if (!std::isnan(v)) {
          if (v < ab.val_min[b]) ab.val_min[b] = v;
          if (v > ab.val_max[b]) ab.val_max[b] = v;
        }
      }
    }
    // All-NULL blocks keep code_min > code_max (and val_min > val_max): the
    // empty-range encoding bound computations test for.
  }
  return bounds;
}

}  // namespace cqads::db::exec
