#include "db/exec/plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include <cstring>

#include "db/compare.h"
#include "db/exec/rowset_ops.h"
#include "db/exec/vector_kernels.h"
#include "text/shorthand.h"

namespace cqads::db::exec {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// RangeScanNode::ExecuteLazy switches from the sorted-index probe to the
/// vectorized packed-column scan at this estimated selectivity: past it the
/// index path's row-id gather + sort costs more than streaming the column.
constexpr double kRangeScanDenseThreshold = 1.0 / 16.0;

/// Loads the word-aligned window of a whole-table bitmap covering rows
/// [base, base+n) into a block mask (tail words zeroed).
void LoadBlockMask(const RowBitmap& bm, std::size_t base, std::size_t n,
                   SelMask* out) {
  out->Clear();
  std::memcpy(out->words, bm.word_data() + base / 64,
              (n + 63) / 64 * sizeof(std::uint64_t));
}

/// Stores a block mask back into the bitmap window it was loaded from.
void StoreBlockMask(const SelMask& mask, std::size_t base, std::size_t n,
                    RowBitmap* bm) {
  std::memcpy(bm->word_data() + base / 64, mask.words,
              (n + 63) / 64 * sizeof(std::uint64_t));
}

std::string PredicateText(const Table& table, const Predicate& pred) {
  std::string out = table.schema().attribute(pred.attr).name;
  out += ' ';
  out += CompareOpToSql(pred.op);
  out += ' ';
  out += pred.value.ToSqlLiteral();
  if (pred.op == CompareOp::kBetween) {
    out += " AND ";
    out += pred.value_hi.ToSqlLiteral();
  }
  return out;
}

void Indent(std::string* out, int depth) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
}

std::string SelText(double sel) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "sel=%.3f", sel);
  return buf;
}

}  // namespace

// ------------------------------------------------------ CompiledPredicate

bool CompiledPredicate::Matches(const ColumnStore& store, RowId row) const {
  if (store.is_null(row, pred.attr)) {
    // Shared NULL rule: only negations match a NULL cell.
    return NullComparisonMatches(pred.op);
  }
  switch (mode) {
    case Mode::kNumeric: {
      const double v = store.numeric_column(pred.attr)[row];
      switch (pred.op) {
        case CompareOp::kEq:
          return v == lo;
        case CompareOp::kNe:
          return v != lo;
        case CompareOp::kLt:
          return v < lo;
        case CompareOp::kLe:
          return v <= lo;
        case CompareOp::kGt:
          return v > lo;
        case CompareOp::kGe:
          return v >= lo;
        case CompareOp::kBetween:
          return v >= lo && v <= hi;
        case CompareOp::kContains:
          return false;  // compiled as kNumericContains instead
      }
      return false;
    }
    case Mode::kNumericContains: {
      const auto& rendered = store.rendered_dictionary(pred.attr);
      return rendered[store.dict_code(row, pred.attr)].find(needle) !=
             std::string::npos;
    }
    case Mode::kTextCodes: {
      auto [begin, end] = store.ElementSpan(row, pred.attr);
      bool any = false;
      for (const std::uint32_t* it = begin; it != end && !any; ++it) {
        any = element_match[*it] != 0;
      }
      return pred.op == CompareOp::kNe ? !any : any;
    }
    case Mode::kNever:
      return false;
  }
  return false;
}

CompiledPredicate CompilePredicate(const Table& table, const Predicate& pred,
                                   const TableStats* stats) {
  CompiledPredicate cp;
  cp.pred = pred;
  const ColumnStore& store = table.store();
  const bool numeric =
      table.schema().attribute(pred.attr).data_kind == DataKind::kNumeric;

  if (numeric) {
    if (pred.op == CompareOp::kContains) {
      cp.mode = CompiledPredicate::Mode::kNumericContains;
      cp.needle = CanonicalContainsText(pred.value);
    } else {
      cp.mode = CompiledPredicate::Mode::kNumeric;
      cp.lo = pred.value.AsDouble();
      cp.hi = pred.op == CompareOp::kBetween ? pred.value_hi.AsDouble() : cp.lo;
    }
  } else if (pred.op == CompareOp::kEq || pred.op == CompareOp::kNe ||
             pred.op == CompareOp::kContains) {
    // Resolve the needle against the element dictionary once: per-distinct
    // string work at compile time, per-row integer work at run time.
    cp.mode = CompiledPredicate::Mode::kTextCodes;
    const std::string needle = pred.value.AsText();
    const auto& elems = store.element_dictionary(pred.attr);
    cp.element_match.assign(elems.size(), 0);
    if (pred.op == CompareOp::kContains) {
      for (std::size_t c = 0; c < elems.size(); ++c) {
        cp.element_match[c] = elems[c].find(needle) != std::string::npos;
      }
    } else {
      // Shorthand matching against cached normalized forms: the needle is
      // normalized once, each dictionary entry never again.
      const auto& norms = store.element_shorthand_norms(pred.attr);
      const std::string needle_norm =
          pred.allow_shorthand ? text::NormalizeForShorthand(needle)
                               : std::string();
      for (std::size_t c = 0; c < elems.size(); ++c) {
        cp.element_match[c] =
            elems[c] == needle ||
            (pred.allow_shorthand &&
             text::IsShorthandMatchNormalized(norms[c], elems[c],
                                              needle_norm, needle));
      }
    }
  } else {
    cp.mode = CompiledPredicate::Mode::kNever;  // range ops on text
  }

  if (stats == nullptr) stats = table.stats();
  if (stats != nullptr) {
    cp.selectivity = stats->EstimateSelectivity(table.schema(), pred);
  }
  return cp;
}

// ------------------------------------------------------------- leaf nodes

IndexScanNode::IndexScanNode(const Table* table, CompiledPredicate cp,
                             std::vector<std::string> keys)
    : table_(table), cp_(std::move(cp)), keys_(std::move(keys)) {
  est_selectivity = cp_.selectivity;
}

RowSet IndexScanNode::Execute(ExecStats* stats) const {
  ++stats->index_lookups;
  const HashIndex* idx = table_->hash_index(cp_.pred.attr);
  RowSet eq;
  for (const auto& key : keys_) {
    eq = UnionSets(eq, idx->Lookup(key), table_->num_rows());
  }
  if (cp_.pred.op == CompareOp::kNe) {
    return DifferenceSets(table_->AllRows(), eq, table_->num_rows());
  }
  return eq;
}

void IndexScanNode::Explain(std::string* out, int depth) const {
  Indent(out, depth);
  *out += "IndexScan(" + PredicateText(*table_, cp_.pred) + ", " +
          SelText(est_selectivity) + ", keys=" + std::to_string(keys_.size()) +
          ")\n";
}

RangeScanNode::RangeScanNode(const Table* table, CompiledPredicate cp)
    : table_(table), cp_(std::move(cp)) {
  est_selectivity = cp_.selectivity;
}

LazyRowSet RangeScanNode::ExecuteLazy(ExecStats* stats) const {
  if (est_selectivity < kRangeScanDenseThreshold ||
      cp_.mode != CompiledPredicate::Mode::kNumeric) {
    return PlanNode::ExecuteLazy(stats);  // index probe, sparse result
  }
  ++stats->full_scans;
  const std::size_t n = table_->num_rows();
  stats->rows_verified += n;
  const BlockPredicate bp(table_->store(), cp_);
  RowBitmap bm(n);
  SelMask mask;
  for (std::size_t base = 0; base < n; base += kBlockRows) {
    const std::size_t count = std::min(kBlockRows, n - base);
    bp.EvalBlock(base, count, &mask);
    StoreBlockMask(mask, base, count, &bm);
    ++stats->blocks_visited;
  }
  return LazyRowSet::FromBitmap(std::move(bm));
}

RowSet RangeScanNode::Execute(ExecStats* stats) const {
  ++stats->index_lookups;
  const SortedIndex* idx = table_->sorted_index(cp_.pred.attr);
  const double t = cp_.lo;
  switch (cp_.pred.op) {
    case CompareOp::kEq:
      return idx->Range(t, t);
    case CompareOp::kNe:
      return DifferenceSets(table_->AllRows(), idx->Range(t, t),
                            table_->num_rows());
    case CompareOp::kLt:
      return idx->Range(-kInf, std::nextafter(t, -kInf));
    case CompareOp::kLe:
      return idx->Range(-kInf, t);
    case CompareOp::kGt:
      return idx->Range(std::nextafter(t, kInf), kInf);
    case CompareOp::kGe:
      return idx->Range(t, kInf);
    case CompareOp::kBetween:
      return idx->Range(t, cp_.hi);
    case CompareOp::kContains:
      return {};  // never compiled to a range scan
  }
  return {};
}

void RangeScanNode::Explain(std::string* out, int depth) const {
  Indent(out, depth);
  *out += "RangeScan(" + PredicateText(*table_, cp_.pred) + ", " +
          SelText(est_selectivity) + ")\n";
}

SubstringScanNode::SubstringScanNode(const Table* table, CompiledPredicate cp)
    : table_(table), cp_(std::move(cp)) {
  est_selectivity = cp_.selectivity;
}

RowSet SubstringScanNode::Execute(ExecStats* stats) const {
  ++stats->index_lookups;
  const NGramIndex* idx = table_->ngram_index(cp_.pred.attr);
  RowSet candidates = idx->Candidates(cp_.pred.value.AsText());
  stats->rows_verified += candidates.size();
  RowSet out;
  const ColumnStore& store = table_->store();
  if (cp_.mode == CompiledPredicate::Mode::kNumericContains) {
    // Candidates repeat dictionary codes heavily (n-gram postings point at
    // rows, values dedupe at intern time), so probe each DISTINCT code's
    // canonical rendered text once and replay the memo per row instead of
    // re-running find() per candidate. -1 = not probed yet.
    const auto& rendered = store.rendered_dictionary(cp_.pred.attr);
    std::vector<signed char> memo(rendered.size(), -1);
    for (RowId row : candidates) {
      const std::uint32_t code = store.dict_code(row, cp_.pred.attr);
      if (code == ColumnStore::kNullCode) continue;  // NULL: kContains false
      signed char& m = memo[code];
      if (m < 0) {
        m = rendered[code].find(cp_.needle) != std::string::npos ? 1 : 0;
      }
      if (m != 0) out.push_back(row);
    }
    return out;
  }
  for (RowId row : candidates) {
    if (cp_.Matches(store, row)) out.push_back(row);
  }
  return out;
}

void SubstringScanNode::Explain(std::string* out, int depth) const {
  Indent(out, depth);
  *out += "SubstringScan(" + PredicateText(*table_, cp_.pred) + ", " +
          SelText(est_selectivity) + ")\n";
}

FullScanFilterNode::FullScanFilterNode(const Table* table,
                                       CompiledPredicate cp)
    : table_(table), cp_(std::move(cp)) {
  est_selectivity = cp_.selectivity;
}

RowSet FullScanFilterNode::Execute(ExecStats* stats) const {
  ++stats->full_scans;
  const std::size_t n = table_->num_rows();
  stats->rows_verified += n;
  RowSet out;
  const ColumnStore& store = table_->store();
  for (RowId row = 0; row < n; ++row) {
    if (cp_.Matches(store, row)) out.push_back(row);
  }
  return out;
}

LazyRowSet FullScanFilterNode::ExecuteLazy(ExecStats* stats) const {
  ++stats->full_scans;
  const std::size_t n = table_->num_rows();
  stats->rows_verified += n;
  const BlockPredicate bp(table_->store(), cp_);
  RowBitmap bm(n);
  SelMask mask;
  for (std::size_t base = 0; base < n; base += kBlockRows) {
    const std::size_t count = std::min(kBlockRows, n - base);
    bp.EvalBlock(base, count, &mask);
    StoreBlockMask(mask, base, count, &bm);
    ++stats->blocks_visited;
  }
  return LazyRowSet::FromBitmap(std::move(bm));
}

void FullScanFilterNode::Explain(std::string* out, int depth) const {
  Indent(out, depth);
  *out += "FullScan(" + PredicateText(*table_, cp_.pred) + ", " +
          SelText(est_selectivity) + ")\n";
}

// ------------------------------------------------------------ inner nodes

FilterNode::FilterNode(const Table* table, PlanNodePtr child,
                       std::vector<CompiledPredicate> residual)
    : table_(table), child_(std::move(child)), residual_(std::move(residual)) {
  est_selectivity = child_->est_selectivity;
  for (const auto& cp : residual_) est_selectivity *= cp.selectivity;
}

RowSet FilterNode::Execute(ExecStats* stats) const {
  RowSet rows = child_->Execute(stats);
  if (rows.empty() || residual_.empty()) return rows;
  // One pass: each row runs the residual conjunction with early-out, in the
  // planner's selectivity order — no per-predicate re-scan of the surviving
  // set (the old shape rebuilt the RowSet once per predicate).
  const ColumnStore& store = table_->store();
  stats->rows_verified += rows.size();
  stats->rows_visited += rows.size();
  RowSet out;
  for (RowId row : rows) {
    bool keep = true;
    for (const auto& cp : residual_) {
      if (!cp.Matches(store, row)) {
        keep = false;
        break;
      }
    }
    if (keep) out.push_back(row);
  }
  return out;
}

LazyRowSet FilterNode::ExecuteLazy(ExecStats* stats) const {
  LazyRowSet child = child_->ExecuteLazy(stats);
  if (residual_.empty()) return child;
  const ColumnStore& store = table_->store();

  if (!child.is_bitmap()) {
    // Sparse survivors: per-distinct-cell tables would not amortize over a
    // few probes, so run the scalar single-pass conjunction.
    if (child.rows.empty()) return child;
    stats->rows_verified += child.rows.size();
    stats->rows_visited += child.rows.size();
    RowSet out;
    for (RowId row : child.rows) {
      bool keep = true;
      for (const auto& cp : residual_) {
        if (!cp.Matches(store, row)) {
          keep = false;
          break;
        }
      }
      if (keep) out.push_back(row);
    }
    return LazyRowSet::FromRows(std::move(out));
  }

  // Dense survivors: AND every residual's selection mask into the child's
  // bitmap block by block. Blocks the child already zeroed are skipped
  // without evaluating any predicate, and a block goes dark the moment its
  // mask empties mid-conjunction.
  std::vector<BlockPredicate> bps;
  bps.reserve(residual_.size());
  for (const auto& cp : residual_) bps.emplace_back(store, cp);

  RowBitmap bm = std::move(*child.bitmap);
  const std::size_t n = bm.universe();
  SelMask mask;
  for (std::size_t base = 0; base < n; base += kBlockRows) {
    const std::size_t count = std::min(kBlockRows, n - base);
    LoadBlockMask(bm, base, count, &mask);
    if (!mask.AnySet()) continue;
    ++stats->blocks_visited;
    stats->rows_visited += mask.Count();
    for (const auto& bp : bps) {
      bp.AndBlock(base, count, &mask);
      if (!mask.AnySet()) break;
    }
    StoreBlockMask(mask, base, count, &bm);
  }
  return LazyRowSet::FromBitmap(std::move(bm));
}

void FilterNode::Explain(std::string* out, int depth) const {
  for (const auto& cp : residual_) {
    Indent(out, depth);
    *out += "Filter(" + PredicateText(*table_, cp.pred) + ", " +
            SelText(cp.selectivity) + ")\n";
    ++depth;
  }
  child_->Explain(out, depth);
}

IntersectNode::IntersectNode(const Table* table,
                             std::vector<PlanNodePtr> children)
    : table_(table), children_(std::move(children)) {
  est_selectivity = 1.0;
  for (const auto& c : children_) est_selectivity *= c->est_selectivity;
}

RowSet IntersectNode::Execute(ExecStats* stats) const {
  RowSet acc;
  bool first = true;
  for (const auto& child : children_) {
    RowSet s = child->Execute(stats);
    acc = first ? std::move(s)
                : IntersectSets(acc, s, table_->num_rows());
    first = false;
    if (acc.empty()) break;
  }
  return acc;
}

LazyRowSet IntersectNode::ExecuteLazy(ExecStats* stats) const {
  LazyRowSet acc;
  bool first = true;
  for (const auto& child : children_) {
    LazyRowSet s = child->ExecuteLazy(stats);
    if (first) {
      acc = std::move(s);
      first = false;
    } else {
      acc.IntersectWith(std::move(s), table_->num_rows());
    }
    if (acc.Count() == 0) break;
  }
  return acc;
}

void IntersectNode::Explain(std::string* out, int depth) const {
  Indent(out, depth);
  *out += "Intersect(" + SelText(est_selectivity) + ")\n";
  for (const auto& c : children_) c->Explain(out, depth + 1);
}

UnionNode::UnionNode(const Table* table, std::vector<PlanNodePtr> children)
    : table_(table), children_(std::move(children)) {
  est_selectivity = 0.0;
  for (const auto& c : children_) est_selectivity += c->est_selectivity;
  est_selectivity = std::min(1.0, est_selectivity);
}

RowSet UnionNode::Execute(ExecStats* stats) const {
  RowSet acc;
  for (const auto& child : children_) {
    acc = UnionSets(acc, child->Execute(stats), table_->num_rows());
  }
  return acc;
}

LazyRowSet UnionNode::ExecuteLazy(ExecStats* stats) const {
  LazyRowSet acc;
  for (const auto& child : children_) {
    acc.UnionWith(child->ExecuteLazy(stats), table_->num_rows());
  }
  return acc;
}

void UnionNode::Explain(std::string* out, int depth) const {
  Indent(out, depth);
  *out += "Union(" + SelText(est_selectivity) + ")\n";
  for (const auto& c : children_) c->Explain(out, depth + 1);
}

NotNode::NotNode(const Table* table, PlanNodePtr child)
    : table_(table), child_(std::move(child)) {
  est_selectivity = std::max(0.0, 1.0 - child_->est_selectivity);
}

RowSet NotNode::Execute(ExecStats* stats) const {
  return DifferenceSets(table_->AllRows(), child_->Execute(stats),
                        table_->num_rows());
}

LazyRowSet NotNode::ExecuteLazy(ExecStats* stats) const {
  LazyRowSet s = child_->ExecuteLazy(stats);
  s.ComplementWithin(table_->num_rows());
  return s;
}

void NotNode::Explain(std::string* out, int depth) const {
  Indent(out, depth);
  *out += "Not(" + SelText(est_selectivity) + ")\n";
  child_->Explain(out, depth + 1);
}

// ----------------------------------------------------------- PhysicalPlan

PhysicalPlan::PhysicalPlan(const Table* table, PlanNodePtr root,
                           std::optional<Superlative> superlative,
                           std::size_t limit)
    : table_(table),
      root_(std::move(root)),
      superlative_(superlative),
      limit_(limit) {}

Result<RowSet> PhysicalPlan::ExecuteRowSet(ExecStats* stats,
                                           bool vectorize) const {
  if (!table_->indexes_built()) {
    return Status::FailedPrecondition("table indexes not built");
  }
  if (root_ == nullptr) return table_->AllRows();
  if (vectorize) return root_->ExecuteLazy(stats).ToRows();
  return root_->Execute(stats);
}

Result<QueryResult> PhysicalPlan::Execute(bool vectorize) const {
  QueryResult result;
  auto row_result = ExecuteRowSet(&result.stats, vectorize);
  if (!row_result.ok()) return row_result.status();
  RowSet rows = std::move(row_result).value();
  ApplySuperlativeAndCap(
      &rows, superlative_,
      [&](RowId r, std::size_t a) -> const Value& { return table_->cell(r, a); },
      limit_);
  result.rows = std::move(rows);
  return result;
}

std::string PhysicalPlan::Explain() const {
  std::string out = "Plan(limit=" + std::to_string(limit_);
  if (superlative_) {
    out += ", superlative=" +
           table_->schema().attribute(superlative_->attr).name +
           (superlative_->ascending ? " asc" : " desc");
  }
  out += ")\n";
  if (root_) {
    root_->Explain(&out, 1);
  } else {
    out += "  AllRows\n";
  }
  return out;
}

}  // namespace cqads::db::exec
