#include "db/exec/rowset_ops.h"

namespace cqads::db::exec {

namespace {

bool UseBitmap(const RowSet& a, const RowSet& b, std::size_t universe) {
  return universe > 0 && (a.size() + b.size()) * kDenseDivisor >= universe;
}

}  // namespace

RowBitmap RowBitmap::FromSet(const RowSet& set, std::size_t universe) {
  RowBitmap bm(universe);
  for (RowId r : set) bm.Set(r);
  return bm;
}

void RowBitmap::UnionWith(const RowBitmap& other) {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] |= other.words_[w];
  }
}

void RowBitmap::IntersectWith(const RowBitmap& other) {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] &= other.words_[w];
  }
}

void RowBitmap::SubtractWith(const RowBitmap& other) {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] &= ~other.words_[w];
  }
}

std::size_t RowBitmap::Count() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += __builtin_popcountll(w);
  return n;
}

RowSet RowBitmap::ToSet() const {
  RowSet out;
  out.reserve(Count());
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = __builtin_ctzll(w);
      out.push_back(static_cast<RowId>(wi * 64 + bit));
      w &= w - 1;
    }
  }
  return out;
}

RowSet UnionSets(const RowSet& a, const RowSet& b, std::size_t universe) {
  if (!UseBitmap(a, b, universe)) return Union(a, b);
  RowBitmap bm = RowBitmap::FromSet(a, universe);
  bm.UnionWith(RowBitmap::FromSet(b, universe));
  return bm.ToSet();
}

RowSet IntersectSets(const RowSet& a, const RowSet& b, std::size_t universe) {
  if (!UseBitmap(a, b, universe)) return Intersect(a, b);
  RowBitmap bm = RowBitmap::FromSet(a, universe);
  bm.IntersectWith(RowBitmap::FromSet(b, universe));
  return bm.ToSet();
}

RowSet DifferenceSets(const RowSet& a, const RowSet& b, std::size_t universe) {
  if (!UseBitmap(a, b, universe)) return Difference(a, b);
  RowBitmap bm = RowBitmap::FromSet(a, universe);
  bm.SubtractWith(RowBitmap::FromSet(b, universe));
  return bm.ToSet();
}

}  // namespace cqads::db::exec
