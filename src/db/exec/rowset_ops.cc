#include "db/exec/rowset_ops.h"

namespace cqads::db::exec {

namespace {

bool UseBitmap(const RowSet& a, const RowSet& b, std::size_t universe) {
  return universe > 0 && (a.size() + b.size()) * kDenseDivisor >= universe;
}

}  // namespace

RowBitmap RowBitmap::FromSet(const RowSet& set, std::size_t universe) {
  RowBitmap bm(universe);
  for (RowId r : set) bm.Set(r);
  return bm;
}

void RowBitmap::UnionWith(const RowBitmap& other) {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] |= other.words_[w];
  }
}

void RowBitmap::IntersectWith(const RowBitmap& other) {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] &= other.words_[w];
  }
}

void RowBitmap::SubtractWith(const RowBitmap& other) {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] &= ~other.words_[w];
  }
}

void RowBitmap::ComplementAll() {
  for (std::uint64_t& w : words_) w = ~w;
  // Bits past the universe must stay clear (ToSet/Count would count ghost
  // rows otherwise).
  if (universe_ % 64 != 0) {
    words_.back() &= (std::uint64_t{1} << (universe_ % 64)) - 1;
  }
}

std::size_t RowBitmap::Count() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += __builtin_popcountll(w);
  return n;
}

RowSet RowBitmap::ToSet() const {
  RowSet out;
  out.reserve(Count());
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = __builtin_ctzll(w);
      out.push_back(static_cast<RowId>(wi * 64 + bit));
      w &= w - 1;
    }
  }
  return out;
}

LazyRowSet LazyRowSet::FromRows(RowSet r) {
  LazyRowSet out;
  out.rows = std::move(r);
  return out;
}

LazyRowSet LazyRowSet::FromBitmap(RowBitmap bm) {
  LazyRowSet out;
  out.bitmap.emplace(std::move(bm));
  return out;
}

std::size_t LazyRowSet::Count() const {
  return bitmap ? bitmap->Count() : rows.size();
}

RowSet LazyRowSet::ToRows() && {
  if (bitmap) return bitmap->ToSet();
  return std::move(rows);
}

void LazyRowSet::IntersectWith(LazyRowSet other, std::size_t universe) {
  if (bitmap && other.bitmap) {
    bitmap->IntersectWith(*other.bitmap);
    return;
  }
  if (bitmap) {
    // bitmap ∩ vector: the result is a subset of the (sparse) vector side —
    // probe the bitmap per element and demote to the vector form.
    RowSet out;
    out.reserve(other.rows.size());
    for (RowId r : other.rows) {
      if (bitmap->Test(r)) out.push_back(r);
    }
    bitmap.reset();
    rows = std::move(out);
    return;
  }
  if (other.bitmap) {
    RowSet out;
    out.reserve(rows.size());
    for (RowId r : rows) {
      if (other.bitmap->Test(r)) out.push_back(r);
    }
    rows = std::move(out);
    return;
  }
  rows = IntersectSets(rows, other.rows, universe);
}

void LazyRowSet::UnionWith(LazyRowSet other, std::size_t universe) {
  if (bitmap && other.bitmap) {
    bitmap->UnionWith(*other.bitmap);
    return;
  }
  if (bitmap) {
    for (RowId r : other.rows) bitmap->Set(r);
    return;
  }
  if (other.bitmap) {
    for (RowId r : rows) other.bitmap->Set(r);
    bitmap = std::move(other.bitmap);
    rows.clear();
    return;
  }
  if (UseBitmap(rows, other.rows, universe)) {
    // Dense union: promote to a bitmap and STAY there for downstream ops.
    RowBitmap bm = RowBitmap::FromSet(rows, universe);
    for (RowId r : other.rows) bm.Set(r);
    bitmap.emplace(std::move(bm));
    rows.clear();
    return;
  }
  rows = Union(rows, other.rows);
}

void LazyRowSet::ComplementWithin(std::size_t universe) {
  if (!bitmap) {
    bitmap.emplace(RowBitmap::FromSet(rows, universe));
    rows.clear();
  }
  bitmap->ComplementAll();
}

RowSet UnionSets(const RowSet& a, const RowSet& b, std::size_t universe) {
  if (!UseBitmap(a, b, universe)) return Union(a, b);
  RowBitmap bm = RowBitmap::FromSet(a, universe);
  bm.UnionWith(RowBitmap::FromSet(b, universe));
  return bm.ToSet();
}

RowSet IntersectSets(const RowSet& a, const RowSet& b, std::size_t universe) {
  if (!UseBitmap(a, b, universe)) return Intersect(a, b);
  RowBitmap bm = RowBitmap::FromSet(a, universe);
  bm.IntersectWith(RowBitmap::FromSet(b, universe));
  return bm.ToSet();
}

RowSet DifferenceSets(const RowSet& a, const RowSet& b, std::size_t universe) {
  if (!UseBitmap(a, b, universe)) return Difference(a, b);
  RowBitmap bm = RowBitmap::FromSet(a, universe);
  bm.SubtractWith(RowBitmap::FromSet(b, universe));
  return bm.ToSet();
}

}  // namespace cqads::db::exec
