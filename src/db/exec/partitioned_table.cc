#include "db/exec/partitioned_table.h"

#include <algorithm>
#include <utility>

namespace cqads::db::exec {

Result<std::shared_ptr<const PartitionedTable>> PartitionedTable::Build(
    const Table& base, std::size_t rows_per_partition) {
  if (rows_per_partition == 0) {
    return Status::InvalidArgument("rows_per_partition must be positive");
  }
  if (!base.indexes_built()) {
    return Status::FailedPrecondition("base table indexes not built");
  }

  auto pt = std::shared_ptr<PartitionedTable>(new PartitionedTable());
  pt->base_ = &base;
  pt->rows_per_partition_ = rows_per_partition;

  const std::size_t n = base.num_rows();
  for (std::size_t lo = 0; lo < n; lo += rows_per_partition) {
    const std::size_t hi = std::min(n, lo + rows_per_partition);
    auto part = std::make_unique<Table>(base.schema());
    for (std::size_t r = lo; r < hi; ++r) {
      auto inserted = part->Insert(base.row(static_cast<RowId>(r)));
      if (!inserted.ok()) return inserted.status();
    }
    part->BuildIndexes();
    pt->bases_.push_back(static_cast<RowId>(lo));
    pt->parts_.push_back(std::move(part));
  }
  return std::shared_ptr<const PartitionedTable>(std::move(pt));
}

}  // namespace cqads::db::exec
