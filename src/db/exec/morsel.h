// Morsel-style work-stealing scheduler for partition-parallel plan
// execution. Work is a range of morsel indices behind one shared atomic
// dispenser: every participating thread (the CALLER plus up to
// `parallelism - 1` helper tasks submitted to a TaskRunner) loops stealing
// the next unclaimed morsel until the dispenser is exhausted. That caller
// participation is the deadlock-freedom argument for sharing the serving
// WorkerPool: even if every pool thread is busy (or the helpers are queued
// behind the very queries that spawned them), the caller alone drains all
// morsels; late-starting helpers find the dispenser empty and exit.
//
// TaskRunner is the minimal submission hook the exec layer needs — it keeps
// db/ free of any dependency on the serving layer; serve::WorkerPool
// implements it.
#ifndef CQADS_DB_EXEC_MORSEL_H_
#define CQADS_DB_EXEC_MORSEL_H_

#include <cstddef>
#include <functional>

#include "common/deadline.h"

namespace cqads::db::exec {

/// Anything that can run a task on some other thread, eventually. Submit
/// must be safe from any thread, including from inside a task.
class TaskRunner {
 public:
  virtual ~TaskRunner() = default;
  virtual void Submit(std::function<void()> task) = 0;
};

/// Runs body(0..count-1), each index exactly once, stealing work from a
/// shared dispenser. Blocks until every morsel has FINISHED (not merely been
/// claimed). `body` must be safe to call concurrently for distinct indices
/// and must not throw.
///
/// With runner == nullptr or parallelism <= 1 the caller runs everything
/// inline — the serial path, no atomics contended, no tasks submitted.
///
/// Cooperative cancellation: when `control` is non-null, every participant
/// re-checks it before claiming the next morsel (the shared CancelToken
/// makes that one relaxed load once any thread saw the deadline pass).
/// After cancellation UNSTARTED morsels are skipped — their indices are
/// never passed to `body` — while already-claimed morsels finish, so the
/// call still returns only when no body invocation is in flight. Returns
/// false iff the batch was cut short this way; the caller decides what a
/// partial batch means (the partitioned executor maps it to
/// kDeadlineExceeded and discards the partial row sets).
bool RunMorsels(std::size_t count, std::size_t parallelism, TaskRunner* runner,
                const std::function<void(std::size_t)>& body,
                const ExecControl* control = nullptr);

}  // namespace cqads::db::exec

#endif  // CQADS_DB_EXEC_MORSEL_H_
