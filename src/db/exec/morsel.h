// Morsel-style work-stealing scheduler for partition-parallel plan
// execution. Work is a range of morsel indices behind one shared atomic
// dispenser: every participating thread (the CALLER plus up to
// `parallelism - 1` helper tasks submitted to a TaskRunner) loops stealing
// the next unclaimed morsel until the dispenser is exhausted. That caller
// participation is the deadlock-freedom argument for sharing the serving
// WorkerPool: even if every pool thread is busy (or the helpers are queued
// behind the very queries that spawned them), the caller alone drains all
// morsels; late-starting helpers find the dispenser empty and exit.
//
// TaskRunner is the minimal submission hook the exec layer needs — it keeps
// db/ free of any dependency on the serving layer; serve::WorkerPool
// implements it.
#ifndef CQADS_DB_EXEC_MORSEL_H_
#define CQADS_DB_EXEC_MORSEL_H_

#include <cstddef>
#include <functional>

namespace cqads::db::exec {

/// Anything that can run a task on some other thread, eventually. Submit
/// must be safe from any thread, including from inside a task.
class TaskRunner {
 public:
  virtual ~TaskRunner() = default;
  virtual void Submit(std::function<void()> task) = 0;
};

/// Runs body(0..count-1), each index exactly once, stealing work from a
/// shared dispenser. Blocks until every morsel has FINISHED (not merely been
/// claimed). `body` must be safe to call concurrently for distinct indices
/// and must not throw.
///
/// With runner == nullptr or parallelism <= 1 the caller runs everything
/// inline — the serial path, no atomics contended, no tasks submitted.
void RunMorsels(std::size_t count, std::size_t parallelism, TaskRunner* runner,
                const std::function<void(std::size_t)>& body);

}  // namespace cqads::db::exec

#endif  // CQADS_DB_EXEC_MORSEL_H_
