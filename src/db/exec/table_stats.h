// Per-column statistics collected once at Table::BuildIndexes time and
// frozen alongside the engine snapshot: distinct counts, null counts,
// min/max, and equi-width histograms for numeric columns; element-posting
// densities for text columns. The cost-aware Planner orders conjunctive
// predicates by the selectivities estimated here (most selective first),
// falling back to the paper's §4.3 Type I/II/III rank only to break ties.
#ifndef CQADS_DB_EXEC_TABLE_STATS_H_
#define CQADS_DB_EXEC_TABLE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/pod_vec.h"
#include "db/query.h"
#include "db/schema.h"
#include "db/storage/column_store.h"

namespace cqads::db::exec {

/// Equi-width histogram over a numeric column's non-null values.
struct Histogram {
  static constexpr std::size_t kDefaultBuckets = 32;

  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::uint32_t> counts;
  std::uint64_t total = 0;  ///< non-null values histogrammed

  /// Builds from raw values (NaNs — the packed-column null marker — are
  /// skipped). Pointer+count form so callers can pass any contiguous
  /// layout (std::vector, PodVec, a mapped span).
  static Histogram Build(const double* values, std::size_t count,
                         std::size_t buckets = kDefaultBuckets);
  static Histogram Build(const std::vector<double>& values,
                         std::size_t buckets = kDefaultBuckets) {
    return Build(values.data(), values.size(), buckets);
  }
  static Histogram Build(const common::PodVec<double>& values,
                         std::size_t buckets = kDefaultBuckets) {
    return Build(values.data(), values.size(), buckets);
  }

  /// Estimated fraction of values falling in [range_lo, range_hi], with
  /// linear interpolation inside partially-covered edge buckets. In [0,1].
  double EstimateRangeFraction(double range_lo, double range_hi) const;
};

/// Statistics of one column.
struct ColumnStats {
  std::size_t row_count = 0;
  std::size_t null_count = 0;
  std::size_t distinct_count = 0;  ///< distinct non-null cell values

  // Text columns: pre-tokenized element postings.
  std::size_t element_distinct = 0;
  std::size_t element_postings = 0;

  // Numeric columns.
  bool numeric = false;
  double min = 0.0;
  double max = 0.0;
  Histogram histogram;

  double null_fraction() const {
    return row_count == 0
               ? 0.0
               : static_cast<double>(null_count) / static_cast<double>(row_count);
  }
};

/// Frozen per-table statistics (immutable after Collect; safe to share
/// across threads and snapshot generations).
struct TableStats {
  std::size_t row_count = 0;
  std::vector<ColumnStats> columns;

  static TableStats Collect(const Schema& schema, const ColumnStore& store);

  /// Estimated fraction of rows satisfying `pred`, in [0,1]. NULL rows are
  /// counted as matching only negations (the shared NULL-comparison rule).
  double EstimateSelectivity(const Schema& schema, const Predicate& pred) const;
};

}  // namespace cqads::db::exec

#endif  // CQADS_DB_EXEC_TABLE_STATS_H_
