// Density-adaptive row-set algebra for the plan evaluator. The seed
// executor's sorted-vector Intersect/Union/Difference (db/indexes.h) stays
// the representation of record sets between plan nodes, but set-operation
// nodes pick the cheaper physical algorithm per call: a sorted-vector merge
// for sparse inputs, a word-parallel bitmap pass for dense ones. Results are
// always sorted ascending and duplicate-free, so the two strategies are
// interchangeable answer-wise — the property tests assert exactly that.
#ifndef CQADS_DB_EXEC_ROWSET_OPS_H_
#define CQADS_DB_EXEC_ROWSET_OPS_H_

#include <cstdint>
#include <vector>

#include "db/indexes.h"

namespace cqads::db::exec {

/// Fixed-universe bitmap over RowIds [0, universe).
class RowBitmap {
 public:
  explicit RowBitmap(std::size_t universe)
      : universe_(universe), words_((universe + 63) / 64, 0) {}

  static RowBitmap FromSet(const RowSet& set, std::size_t universe);

  std::size_t universe() const { return universe_; }

  void Set(RowId r) { words_[r / 64] |= std::uint64_t{1} << (r % 64); }
  bool Test(RowId r) const {
    return (words_[r / 64] >> (r % 64)) & std::uint64_t{1};
  }

  void UnionWith(const RowBitmap& other);
  void IntersectWith(const RowBitmap& other);
  /// this \ other.
  void SubtractWith(const RowBitmap& other);

  std::size_t Count() const;

  /// Sorted ascending RowSet of the set bits.
  RowSet ToSet() const;

 private:
  std::size_t universe_;
  std::vector<std::uint64_t> words_;
};

/// Inputs at least this dense (combined size * kDenseDivisor >= universe)
/// take the bitmap path; sparser inputs use the sorted-vector merge.
inline constexpr std::size_t kDenseDivisor = 4;

/// a ∪ b over universe [0, n). Sorted ascending, duplicate-free.
RowSet UnionSets(const RowSet& a, const RowSet& b, std::size_t universe);
/// a ∩ b.
RowSet IntersectSets(const RowSet& a, const RowSet& b, std::size_t universe);
/// a \ b.
RowSet DifferenceSets(const RowSet& a, const RowSet& b, std::size_t universe);

}  // namespace cqads::db::exec

#endif  // CQADS_DB_EXEC_ROWSET_OPS_H_
