// Density-adaptive row-set algebra for the plan evaluator. The seed
// executor's sorted-vector Intersect/Union/Difference (db/indexes.h) stays
// the representation of record sets between plan nodes, but set-operation
// nodes pick the cheaper physical algorithm per call: a sorted-vector merge
// for sparse inputs, a word-parallel bitmap pass for dense ones. Results are
// always sorted ascending and duplicate-free, so the two strategies are
// interchangeable answer-wise — the property tests assert exactly that.
#ifndef CQADS_DB_EXEC_ROWSET_OPS_H_
#define CQADS_DB_EXEC_ROWSET_OPS_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "db/indexes.h"
#include "db/query.h"

namespace cqads::db::exec {

/// §4.3 step 4, the SINGLE definition shared by every execution path (seed
/// executor, monolithic plan, partitioned plan, delta union): stable sort
/// of an ascending row set by the superlative attribute's cell value —
/// ties keep row order — then the answer cap. `cell_at(row, attr)` returns
/// the row's cell as `const Value&`; the caller binds whatever storage the
/// row ids live in (table, base∪delta, …). Centralizing this is what makes
/// the answer-identity invariant a property of ONE block of code instead
/// of four copies that must never drift.
template <typename CellAt>
void ApplySuperlativeAndCap(RowSet* rows,
                            const std::optional<Superlative>& superlative,
                            const CellAt& cell_at, std::size_t limit) {
  if (superlative) {
    const std::size_t attr = superlative->attr;
    const bool asc = superlative->ascending;
    std::stable_sort(rows->begin(), rows->end(), [&](RowId a, RowId b) {
      const Value& va = cell_at(a, attr);
      const Value& vb = cell_at(b, attr);
      return asc ? va < vb : vb < va;
    });
  }
  if (rows->size() > limit) rows->resize(limit);
}

/// Fixed-universe bitmap over RowIds [0, universe).
class RowBitmap {
 public:
  explicit RowBitmap(std::size_t universe)
      : universe_(universe), words_((universe + 63) / 64, 0) {}

  static RowBitmap FromSet(const RowSet& set, std::size_t universe);

  std::size_t universe() const { return universe_; }

  void Set(RowId r) { words_[r / 64] |= std::uint64_t{1} << (r % 64); }
  bool Test(RowId r) const {
    return (words_[r / 64] >> (r % 64)) & std::uint64_t{1};
  }

  void UnionWith(const RowBitmap& other);
  void IntersectWith(const RowBitmap& other);
  /// this \ other.
  void SubtractWith(const RowBitmap& other);
  /// this = [0, universe) \ this.
  void ComplementAll();

  std::size_t Count() const;

  /// Sorted ascending RowSet of the set bits.
  RowSet ToSet() const;

  /// Raw word access for the block-at-a-time executor: selection masks of
  /// 1024-row blocks are word-aligned views of this array (1024 % 64 == 0),
  /// so block results land with a word copy instead of per-row Set calls.
  std::uint64_t* word_data() { return words_.data(); }
  const std::uint64_t* word_data() const { return words_.data(); }
  std::size_t word_count() const { return words_.size(); }

 private:
  std::size_t universe_;
  std::vector<std::uint64_t> words_;
};

/// A row set flowing between plan nodes in whichever representation the
/// producer found natural: a sorted vector (sparse index results) or a
/// whole-universe bitmap (block-scan masks). The vectorized execution path
/// (PlanNode::ExecuteLazy) passes these across adjacent set-operation nodes
/// so a chain of Intersect/Union/Not stays word-parallel end to end instead
/// of round-tripping through sorted vectors at every node boundary; the set
/// denoted is identical either way, which is what keeps the vectorized path
/// byte-identical to the scalar one.
struct LazyRowSet {
  /// Engaged = dense (bitmap) representation; `rows` is meaningful
  /// otherwise.
  std::optional<RowBitmap> bitmap;
  RowSet rows;

  static LazyRowSet FromRows(RowSet r);
  static LazyRowSet FromBitmap(RowBitmap bm);

  bool is_bitmap() const { return bitmap.has_value(); }
  std::size_t Count() const;

  /// Materializes the sorted, duplicate-free vector form (consuming).
  RowSet ToRows() &&;

  /// In-place algebra over universe [0, n). A bitmap∩vector mix stays
  /// sparse (the result is a subset of the vector side); bitmap∪anything
  /// stays dense; vector∪vector promotes to a bitmap only past the
  /// kDenseDivisor density threshold.
  void IntersectWith(LazyRowSet other, std::size_t universe);
  void UnionWith(LazyRowSet other, std::size_t universe);
  void ComplementWithin(std::size_t universe);
};

/// Inputs at least this dense (combined size * kDenseDivisor >= universe)
/// take the bitmap path; sparser inputs use the sorted-vector merge.
inline constexpr std::size_t kDenseDivisor = 4;

/// a ∪ b over universe [0, n). Sorted ascending, duplicate-free.
RowSet UnionSets(const RowSet& a, const RowSet& b, std::size_t universe);
/// a ∩ b.
RowSet IntersectSets(const RowSet& a, const RowSet& b, std::size_t universe);
/// a \ b.
RowSet DifferenceSets(const RowSet& a, const RowSet& b, std::size_t universe);

}  // namespace cqads::db::exec

#endif  // CQADS_DB_EXEC_ROWSET_OPS_H_
