// Horizontal partitioning of one ads relation. The base table's rows are
// split into fixed-size contiguous RowId ranges; each partition is a full
// db::Table of its own — its own ColumnStore (dictionaries, element
// postings, null bitmaps), its own hash/sorted/n-gram indexes, and its own
// per-partition TableStats — so partition-local plan execution touches no
// shared structure and partitions scan independently across cores.
//
// RowId mapping is purely additive: partition p covers global rows
// [base_of(p), base_of(p) + partition(p).num_rows()), and a partition-local
// row r corresponds to global row base_of(p) + r. Because partitions tile
// the table in order, concatenating per-partition (sorted) row sets offset
// by their bases yields the globally sorted row set — the property the
// parallel plan executor's merge relies on.
//
// The base table remains the engine's row view (rankers, classifier corpus,
// superlative cell compares) and the seed executor's reference surface;
// partitions are the scan-side shards.
//
// Thread-safety: immutable after Build; all const methods are safe
// concurrently.
#ifndef CQADS_DB_EXEC_PARTITIONED_TABLE_H_
#define CQADS_DB_EXEC_PARTITIONED_TABLE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/status.h"
#include "db/table.h"

namespace cqads::snapshot {
struct SerdeAccess;
}

namespace cqads::db::exec {

class PartitionedTable {
 public:
  /// Splits `base` (indexes built) into ceil(num_rows / rows_per_partition)
  /// partitions of at most `rows_per_partition` rows each and builds every
  /// partition's indexes and statistics. An empty base yields zero
  /// partitions. The base table must outlive the result.
  static Result<std::shared_ptr<const PartitionedTable>> Build(
      const Table& base, std::size_t rows_per_partition);

  const Table& base() const { return *base_; }
  std::size_t rows_per_partition() const { return rows_per_partition_; }
  std::size_t num_partitions() const { return parts_.size(); }

  const Table& partition(std::size_t p) const { return *parts_[p]; }

  /// Global RowId of partition p's local row 0.
  RowId base_of(std::size_t p) const { return bases_[p]; }

 private:
  friend struct cqads::snapshot::SerdeAccess;

  PartitionedTable() = default;

  const Table* base_ = nullptr;
  std::size_t rows_per_partition_ = 0;
  std::vector<std::unique_ptr<Table>> parts_;
  std::vector<RowId> bases_;
};

using PartitionedTablePtr = std::shared_ptr<const PartitionedTable>;

}  // namespace cqads::db::exec

#endif  // CQADS_DB_EXEC_PARTITIONED_TABLE_H_
