#include "db/exec/table_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cqads::db::exec {

namespace {

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

Histogram Histogram::Build(const double* values, std::size_t count,
                           std::size_t buckets) {
  Histogram hist;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const double v = values[i];
    if (std::isnan(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    ++n;
  }
  if (n == 0) return hist;
  hist.lo = lo;
  hist.hi = hi;
  hist.total = n;
  hist.counts.assign(std::max<std::size_t>(1, buckets), 0);
  const double width = hi - lo;
  for (std::size_t i = 0; i < count; ++i) {
    const double v = values[i];
    if (std::isnan(v)) continue;
    std::size_t b = 0;
    if (width > 0.0) {
      b = static_cast<std::size_t>((v - lo) / width *
                                   static_cast<double>(hist.counts.size()));
      b = std::min(b, hist.counts.size() - 1);
    }
    ++hist.counts[b];
  }
  return hist;
}

double Histogram::EstimateRangeFraction(double range_lo,
                                        double range_hi) const {
  if (total == 0 || range_lo > range_hi) return 0.0;
  if (range_hi < lo || range_lo > hi) return 0.0;
  if (hi == lo) return 1.0;  // single-valued column inside the range

  const double width = (hi - lo) / static_cast<double>(counts.size());
  double covered = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double b_lo = lo + width * static_cast<double>(b);
    const double b_hi = b_lo + width;
    const double overlap =
        std::min(b_hi, range_hi) - std::max(b_lo, range_lo);
    if (overlap <= 0.0) continue;
    covered += static_cast<double>(counts[b]) *
               std::min(1.0, overlap / width);
  }
  return Clamp01(covered / static_cast<double>(total));
}

TableStats TableStats::Collect(const Schema& schema,
                               const ColumnStore& store) {
  TableStats stats;
  stats.row_count = store.num_rows();
  stats.columns.resize(schema.num_attributes());
  for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
    ColumnStats& col = stats.columns[a];
    col.row_count = store.num_rows();
    col.distinct_count = store.dictionary(a).size();
    std::size_t nulls = 0;
    for (RowId r = 0; r < store.num_rows(); ++r) {
      if (store.is_null(r, a)) ++nulls;
    }
    col.null_count = nulls;

    if (schema.attribute(a).data_kind == DataKind::kNumeric) {
      col.numeric = true;
      col.histogram = Histogram::Build(store.numeric_column(a));
      col.min = col.histogram.lo;
      col.max = col.histogram.hi;
    } else {
      col.element_distinct = store.element_dictionary(a).size();
      std::size_t postings = 0;
      for (RowId r = 0; r < store.num_rows(); ++r) {
        auto [begin, end] = store.ElementSpan(r, a);
        postings += static_cast<std::size_t>(end - begin);
      }
      col.element_postings = postings;
    }
  }
  return stats;
}

double TableStats::EstimateSelectivity(const Schema& schema,
                                       const Predicate& pred) const {
  if (pred.attr >= columns.size() || row_count == 0) return 1.0;
  const ColumnStats& col = columns[pred.attr];
  const double n = static_cast<double>(row_count);
  const double non_null = 1.0 - col.null_fraction();

  if (schema.attribute(pred.attr).data_kind == DataKind::kNumeric) {
    const double t = pred.value.AsDouble();
    switch (pred.op) {
      case CompareOp::kEq:
        return Clamp01(non_null /
                       static_cast<double>(std::max<std::size_t>(
                           1, col.distinct_count)));
      case CompareOp::kNe:
        return Clamp01(1.0 - non_null / static_cast<double>(std::max<
                                 std::size_t>(1, col.distinct_count)));
      case CompareOp::kLt:
      case CompareOp::kLe:
        return Clamp01(non_null * col.histogram.EstimateRangeFraction(
                                      -std::numeric_limits<double>::infinity(),
                                      t));
      case CompareOp::kGt:
      case CompareOp::kGe:
        return Clamp01(non_null *
                       col.histogram.EstimateRangeFraction(
                           t, std::numeric_limits<double>::infinity()));
      case CompareOp::kBetween:
        return Clamp01(non_null * col.histogram.EstimateRangeFraction(
                                      t, pred.value_hi.AsDouble()));
      case CompareOp::kContains:
        // Substring match over rendered numbers: rare, weakly selective
        // guess biased high so it is not chosen as the driving predicate.
        return Clamp01(0.1 * non_null);
    }
    return 1.0;
  }

  // Text column: equality hits one element key on average.
  const double avg_postings =
      col.element_distinct == 0
          ? 0.0
          : static_cast<double>(col.element_postings) /
                static_cast<double>(col.element_distinct);
  switch (pred.op) {
    case CompareOp::kEq:
      return Clamp01(avg_postings / n);
    case CompareOp::kNe:
      return Clamp01(1.0 - avg_postings / n);
    case CompareOp::kContains: {
      // Longer needles match fewer distinct keys; scale the per-key density
      // by an inverse-length factor.
      const std::size_t len = std::max<std::size_t>(1, pred.value.text().size());
      const double keys_matched =
          static_cast<double>(col.element_distinct) /
          static_cast<double>(len);
      return Clamp01(keys_matched * avg_postings / n);
    }
    default:
      // Range operators are undefined on text: they match nothing.
      return 0.0;
  }
}

}  // namespace cqads::db::exec
