// Cost-aware compilation of db::Query into a PhysicalPlan. For a
// conjunction the planner orders predicates by estimated selectivity
// (per-column distinct counts, min/max, and equi-width histograms frozen at
// BuildIndexes time), most selective first — the best available access path
// seeds the candidate set, the residue verifies row-by-row over the
// columnar store. The paper's §4.3 Type I/II/III rank is kept as the
// tie-break (equal estimates fall back to exactly the seed executor's
// order), so the planner is a strict generalization of the Type-rank
// strategy. Disjunctions, negations, and mixed trees compile to set-op
// nodes over recursively-planned children.
//
// Plans are answer-identical to db::Executor by construction: every node
// yields a sorted duplicate-free RowSet and the final superlative/limit
// step reuses the seed semantics, so only the amount of work differs. The
// planner-vs-seed differential property test pins this.
//
// Thread-safety: a Planner is immutable after construction; Compile() and
// Run() are const and safe from any thread over a frozen table.
#ifndef CQADS_DB_EXEC_PLANNER_H_
#define CQADS_DB_EXEC_PLANNER_H_

#include <vector>

#include "common/status.h"
#include "db/exec/plan.h"
#include "db/exec/table_stats.h"
#include "db/query.h"
#include "db/table.h"

namespace cqads::db::exec {

class Planner {
 public:
  /// The table must outlive the planner and every plan it compiles, and
  /// must have indexes built (stats collected). The planner freezes the
  /// table's stats at construction: estimates stay pinned to what the
  /// snapshot registered even if the table were re-indexed later.
  explicit Planner(const Table* table)
      : table_(table), stats_(table->stats_ptr()) {}

  /// Compiles a query into an immutable, shareable plan. Fails on
  /// out-of-range attributes or when the table's indexes are not built.
  Result<PlanPtr> Compile(const Query& query) const;

  /// Compile + Execute in one step (ad-hoc queries, e.g. N-1 relaxation).
  Result<QueryResult> Run(const Query& query) const;

 private:
  PlanNodePtr CompileExpr(const Expr& expr) const;
  PlanNodePtr CompileConjunction(std::vector<Predicate> preds) const;
  /// Best access path for an already-compiled predicate.
  PlanNodePtr AccessPath(CompiledPredicate cp) const;
  Status ValidateExpr(const Expr& expr) const;

  const Table* table_;
  std::shared_ptr<const TableStats> stats_;  ///< frozen at construction
};

}  // namespace cqads::db::exec

#endif  // CQADS_DB_EXEC_PLANNER_H_
