#include "db/exec/morsel.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

namespace cqads::db::exec {

namespace {

/// Shared state of one RunMorsels call. Helpers may outlive the call's
/// stack frame only in the sense that a queued-but-unstarted helper task
/// can run after the caller returned — hence shared_ptr ownership.
struct MorselBatch {
  MorselBatch(std::size_t n, std::function<void(std::size_t)> b,
              const ExecControl* c)
      : count(n), body(std::move(b)), control(c) {}

  const std::size_t count;
  /// Owned by the batch (not referenced from the caller's frame) so a
  /// helper task that starts only after the caller returned still holds
  /// valid state; it finds the dispenser exhausted and exits without ever
  /// invoking it.
  const std::function<void(std::size_t)> body;
  /// Cancellation context; the POINTEE lives on the caller's frame, which
  /// is safe: after cancellation every claimed index is still counted
  /// `done`, so the caller's completion wait covers every dereference.
  const ExecControl* const control;
  std::atomic<std::size_t> next{0};     ///< the work dispenser
  std::atomic<std::size_t> done{0};     ///< morsels claimed and retired
  std::atomic<bool> cancelled{false};   ///< some morsel was skipped
  std::mutex mu;
  std::condition_variable all_done;

  /// Steals morsels until the dispenser is exhausted. Once the control
  /// reports expiry, remaining claims retire WITHOUT running the body —
  /// that is the bounded-time worker-release guarantee: at most one
  /// in-flight morsel per participant runs to completion after expiry.
  void Drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      if (control != nullptr && control->Expired()) {
        cancelled.store(true, std::memory_order_relaxed);
      } else {
        body(i);
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard<std::mutex> lock(mu);
        all_done.notify_all();
      }
    }
  }
};

}  // namespace

bool RunMorsels(std::size_t count, std::size_t parallelism, TaskRunner* runner,
                const std::function<void(std::size_t)>& body,
                const ExecControl* control) {
  if (count == 0) return true;
  if (runner == nullptr || parallelism <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      if (ExecControl::Expired(control)) return false;
      body(i);
    }
    return true;
  }

  auto batch = std::make_shared<MorselBatch>(count, body, control);
  const std::size_t helpers = std::min(parallelism - 1, count - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    runner->Submit([batch] { batch->Drain(); });
  }
  batch->Drain();

  // The dispenser is empty, but helpers may still be executing their last
  // claimed morsel; wait for completion, not just exhaustion.
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->all_done.wait(lock, [&] {
    return batch->done.load(std::memory_order_acquire) == batch->count;
  });
  return !batch->cancelled.load(std::memory_order_relaxed);
}

}  // namespace cqads::db::exec
