#include "db/exec/morsel.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

namespace cqads::db::exec {

namespace {

/// Shared state of one RunMorsels call. Helpers may outlive the call's
/// stack frame only in the sense that a queued-but-unstarted helper task
/// can run after the caller returned — hence shared_ptr ownership.
struct MorselBatch {
  MorselBatch(std::size_t n, std::function<void(std::size_t)> b)
      : count(n), body(std::move(b)) {}

  const std::size_t count;
  /// Owned by the batch (not referenced from the caller's frame) so a
  /// helper task that starts only after the caller returned still holds
  /// valid state; it finds the dispenser exhausted and exits without ever
  /// invoking it.
  const std::function<void(std::size_t)> body;
  std::atomic<std::size_t> next{0};  ///< the work dispenser
  std::atomic<std::size_t> done{0};  ///< morsels fully executed
  std::mutex mu;
  std::condition_variable all_done;

  /// Steals morsels until the dispenser is exhausted.
  void Drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      body(i);
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard<std::mutex> lock(mu);
        all_done.notify_all();
      }
    }
  }
};

}  // namespace

void RunMorsels(std::size_t count, std::size_t parallelism, TaskRunner* runner,
                const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (runner == nullptr || parallelism <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  auto batch = std::make_shared<MorselBatch>(count, body);
  const std::size_t helpers = std::min(parallelism - 1, count - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    runner->Submit([batch] { batch->Drain(); });
  }
  batch->Drain();

  // The dispenser is empty, but helpers may still be executing their last
  // claimed morsel; wait for completion, not just exhaustion.
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->all_done.wait(lock, [&] {
    return batch->done.load(std::memory_order_acquire) == batch->count;
  });
}

}  // namespace cqads::db::exec
