// Bounded top-k selection for the rank stage. Replaces collect-all +
// std::sort with a size-k binary heap ordered by the rank stage's exact
// total order
//
//   better(a, b)  =  a.score > b.score  ||  (a.score == b.score && a.row < b.row)
//
// so the k entries kept are precisely the first k entries the full sort
// would emit — that identity (not approximation) is what lets the pruned
// path stay byte-identical to the serial oracle.
//
// Tie-safety: threshold() is the k-th BEST score once the heap is full. A
// candidate block may be skipped only when its score upper bound is
// STRICTLY below the threshold — a candidate scoring exactly threshold()
// can still displace the current k-th entry when its row id is smaller, so
// bound == threshold must be visited. WouldAccept encodes the full
// (score, row) rule for per-candidate checks.
//
// Determinism under parallel merge: each worker keeps its own TopK over the
// subset of candidates it scored. Any member of the global top-k is, within
// its worker's subset, competing against fewer candidates — so it survives
// into that worker's local top-k. The union of local top-ks therefore
// contains the global top-k, and sorting the union with the same total
// order reproduces it independent of morsel schedule.
//
// Not thread-safe; one instance per worker, merged by the caller.
#ifndef CQADS_DB_EXEC_TOPK_H_
#define CQADS_DB_EXEC_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "db/indexes.h"

namespace cqads::db::exec {

/// One kept candidate. `tag` is caller payload (the rank stage stores the
/// dropped-unit index so the Table 2 measure label can be rebuilt after the
/// merge without re-scoring).
struct TopKEntry {
  double score = 0.0;
  RowId row = 0;
  std::uint32_t tag = 0;
};

/// The rank order. True when `a` precedes `b` in the final answer list.
inline bool TopKBetter(const TopKEntry& a, const TopKEntry& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.row < b.row;
}

class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) { heap_.reserve(k); }

  std::size_t k() const { return k_; }
  std::size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() >= k_; }

  /// The k-th best score when full, -inf otherwise (+inf for the k == 0
  /// degenerate, where everything prunes). Valid pruning uses
  /// bound < threshold() STRICTLY (see header comment).
  double threshold() const {
    if (k_ == 0) return std::numeric_limits<double>::infinity();
    return full() ? heap_.front().score
                  : -std::numeric_limits<double>::infinity();
  }

  /// Whether a (score, row) candidate would enter the heap. Exact rule:
  /// when full, it must beat the current k-th entry under TopKBetter.
  bool WouldAccept(double score, RowId row) const {
    if (k_ == 0) return false;
    if (!full()) return true;
    const TopKEntry& worst = heap_.front();
    if (score != worst.score) return score > worst.score;
    return row < worst.row;
  }

  /// Inserts if the candidate belongs in the current top k. Returns true
  /// when the k-th threshold tightened (heap filled or worst evicted) —
  /// the caller's cue to publish a new shared pruning threshold.
  bool Push(double score, RowId row, std::uint32_t tag) {
    if (!WouldAccept(score, row)) return false;
    if (full()) {
      std::pop_heap(heap_.begin(), heap_.end(), TopKBetter);
      heap_.back() = TopKEntry{score, row, tag};
      std::push_heap(heap_.begin(), heap_.end(), TopKBetter);
      return true;
    }
    heap_.push_back(TopKEntry{score, row, tag});
    std::push_heap(heap_.begin(), heap_.end(), TopKBetter);
    return full();
  }

  /// Destructive extraction in answer order (best first).
  std::vector<TopKEntry> Take() {
    std::sort(heap_.begin(), heap_.end(), TopKBetter);
    return std::move(heap_);
  }

  /// Folds another accumulator's entries into this one (deterministic:
  /// the result depends only on the multiset of pushed entries).
  void Merge(TopK&& other) {
    for (const TopKEntry& e : other.heap_) Push(e.score, e.row, e.tag);
    other.heap_.clear();
  }

 private:
  std::size_t k_;
  /// Max-heap under TopKBetter: front() is the WORST kept entry (the one
  /// every later candidate must beat).
  std::vector<TopKEntry> heap_;
};

}  // namespace cqads::db::exec

#endif  // CQADS_DB_EXEC_TOPK_H_
