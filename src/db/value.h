// Typed cell values for ads records.
#ifndef CQADS_DB_VALUE_H_
#define CQADS_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace cqads::db {

/// A single attribute value in an ads record: null, integer, real, or text.
/// Text comparison is case-insensitive (ads data and questions are both
/// normalized to lower case before matching, §4.1).
class Value {
 public:
  Value() = default;
  static Value Null() { return Value(); }
  static Value Int(std::int64_t v) { return Value(Payload(v)); }
  static Value Real(double v) { return Value(Payload(v)); }
  static Value Text(std::string v);

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_real() const { return std::holds_alternative<double>(v_); }
  bool is_text() const { return std::holds_alternative<std::string>(v_); }
  bool is_numeric() const { return is_int() || is_real(); }

  /// Numeric view; null and text map to 0.0 (callers gate on is_numeric()).
  double AsDouble() const;

  /// Text view; numerics are formatted, null is "".
  std::string AsText() const;

  /// Lower-cased text payload ("" for non-text). Cheap accessor used by
  /// indexes.
  const std::string& text() const;

  /// SQL-literal rendering: NULL, 42, 3.5, or 'quoted text'.
  std::string ToSqlLiteral() const;

  /// Equality: numerics compare by value across int/real; text compares
  /// exactly (values are stored lower-cased); null == null.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Numeric ordering; non-numerics order by text. Null sorts first.
  bool operator<(const Value& other) const;

 private:
  using Payload = std::variant<std::monostate, std::int64_t, double,
                               std::string>;
  explicit Value(Payload v) : v_(std::move(v)) {}
  Payload v_;
};

}  // namespace cqads::db

#endif  // CQADS_DB_VALUE_H_
