#include "db/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "db/compare.h"
#include "db/exec/rowset_ops.h"
#include "db/row_match.h"
#include "text/shorthand.h"

namespace cqads::db {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Numeric predicates never read elements; share one empty vector instead of
// materializing the cell's element list just to ignore it.
const std::vector<std::string> kNoElements;

}  // namespace

bool Executor::Matches(RowId row, const Predicate& pred) const {
  const Value& cell = table_->cell(row, pred.attr);
  const bool numeric_attr =
      table_->schema().attribute(pred.attr).data_kind == DataKind::kNumeric;
  if (numeric_attr || cell.is_null()) {
    return MatchesCell(table_->schema(), pred, cell, kNoElements);
  }
  return MatchesCell(table_->schema(), pred, cell,
                     table_->CellElements(row, pred.attr));
}

bool Executor::MatchesExpr(RowId row, const Expr& expr) const {
  switch (expr.kind()) {
    case Expr::Kind::kPredicate:
      return Matches(row, expr.predicate());
    case Expr::Kind::kAnd:
      for (const auto& child : expr.children()) {
        if (!MatchesExpr(row, *child)) return false;
      }
      return true;
    case Expr::Kind::kOr:
      for (const auto& child : expr.children()) {
        if (MatchesExpr(row, *child)) return true;
      }
      return false;
    case Expr::Kind::kNot:
      return !MatchesExpr(row, *expr.children()[0]);
  }
  return false;
}

RowSet Executor::ScanPredicate(const Predicate& pred,
                               ExecStats* stats) const {
  ++stats->full_scans;
  RowSet out;
  const std::size_t n = table_->num_rows();
  stats->rows_verified += n;
  for (RowId row = 0; row < n; ++row) {
    if (Matches(row, pred)) out.push_back(row);
  }
  return out;
}

RowSet Executor::EvalPredicate(const Predicate& pred,
                               ExecStats* stats) const {
  const Attribute& attr = table_->schema().attribute(pred.attr);

  if (attr.data_kind == DataKind::kNumeric) {
    const SortedIndex* idx = table_->sorted_index(pred.attr);
    if (idx == nullptr) return ScanPredicate(pred, stats);
    ++stats->index_lookups;
    double t = pred.value.AsDouble();
    switch (pred.op) {
      case CompareOp::kEq:
        return idx->Range(t, t);
      case CompareOp::kNe:
        return Difference(table_->AllRows(), idx->Range(t, t));
      case CompareOp::kLt:
        return idx->Range(-kInf, std::nextafter(t, -kInf));
      case CompareOp::kLe:
        return idx->Range(-kInf, t);
      case CompareOp::kGt:
        return idx->Range(std::nextafter(t, kInf), kInf);
      case CompareOp::kGe:
        return idx->Range(t, kInf);
      case CompareOp::kBetween:
        return idx->Range(t, pred.value_hi.AsDouble());
      case CompareOp::kContains:
        return ScanPredicate(pred, stats);
    }
    return {};
  }

  const std::string needle = pred.value.AsText();
  if (pred.op == CompareOp::kEq || pred.op == CompareOp::kNe) {
    const HashIndex* idx = table_->hash_index(pred.attr);
    if (idx == nullptr) return ScanPredicate(pred, stats);
    ++stats->index_lookups;
    RowSet eq = idx->Lookup(needle);
    if (pred.allow_shorthand) {
      // Values whose stored form is a shorthand variant of the needle (or
      // vice versa) also match; the per-attribute key pool is small.
      for (const auto& key : idx->Keys()) {
        if (key == needle) continue;
        if (text::IsShorthandMatch(key, needle)) {
          eq = Union(eq, idx->Lookup(key));
        }
      }
    }
    if (pred.op == CompareOp::kEq) return eq;
    return Difference(table_->AllRows(), eq);
  }

  if (pred.op == CompareOp::kContains) {
    const NGramIndex* idx = table_->ngram_index(pred.attr);
    if (idx == nullptr || !NGramIndex::CanLookup(needle)) {
      return ScanPredicate(pred, stats);
    }
    ++stats->index_lookups;
    RowSet candidates = idx->Candidates(needle);
    RowSet out;
    stats->rows_verified += candidates.size();
    for (RowId row : candidates) {
      if (Matches(row, pred)) out.push_back(row);
    }
    return out;
  }

  return ScanPredicate(pred, stats);
}

RowSet Executor::EvalConjunction(std::vector<Predicate> preds,
                                 ExecStats* stats) const {
  if (preds.empty()) return table_->AllRows();
  // §4.3 steps 1-3: stable-order by attribute type.
  std::stable_sort(preds.begin(), preds.end(),
                   [this](const Predicate& a, const Predicate& b) {
                     return TypeRank(table_->schema(), a.attr) <
                            TypeRank(table_->schema(), b.attr);
                   });
  RowSet candidates = EvalPredicate(preds[0], stats);
  for (std::size_t i = 1; i < preds.size() && !candidates.empty(); ++i) {
    // Later conditions are "evaluated on the set of records extracted" by
    // earlier steps: verify row-by-row rather than re-probing indexes.
    RowSet next;
    stats->rows_verified += candidates.size();
    for (RowId row : candidates) {
      if (Matches(row, preds[i])) next.push_back(row);
    }
    candidates = std::move(next);
  }
  return candidates;
}

RowSet Executor::EvalExpr(const Expr& expr, ExecStats* stats) const {
  switch (expr.kind()) {
    case Expr::Kind::kPredicate:
      return EvalPredicate(expr.predicate(), stats);
    case Expr::Kind::kAnd: {
      if (expr.IsConjunctive()) {
        std::vector<Predicate> preds;
        expr.CollectPredicates(&preds);
        return EvalConjunction(std::move(preds), stats);
      }
      RowSet acc;
      bool first = true;
      for (const auto& child : expr.children()) {
        RowSet s = EvalExpr(*child, stats);
        acc = first ? std::move(s) : Intersect(acc, s);
        first = false;
        if (acc.empty()) break;
      }
      return acc;
    }
    case Expr::Kind::kOr: {
      RowSet acc;
      for (const auto& child : expr.children()) {
        acc = Union(acc, EvalExpr(*child, stats));
      }
      return acc;
    }
    case Expr::Kind::kNot:
      return Difference(table_->AllRows(), EvalExpr(*expr.children()[0], stats));
  }
  return {};
}

Status Executor::ValidateExpr(const Expr& expr) const {
  if (expr.kind() == Expr::Kind::kPredicate) {
    if (expr.predicate().attr >= table_->schema().num_attributes()) {
      return Status::OutOfRange("predicate attribute out of range");
    }
    return Status::OK();
  }
  for (const auto& child : expr.children()) {
    CQADS_RETURN_NOT_OK(ValidateExpr(*child));
  }
  return Status::OK();
}

Result<QueryResult> Executor::Execute(const Query& query) const {
  if (!table_->indexes_built()) {
    return Status::FailedPrecondition("table indexes not built");
  }
  if (query.where) {
    CQADS_RETURN_NOT_OK(ValidateExpr(*query.where));
  }
  if (query.superlative &&
      query.superlative->attr >= table_->schema().num_attributes()) {
    return Status::OutOfRange("superlative attribute out of range");
  }

  QueryResult result;
  RowSet rows = query.where ? EvalExpr(*query.where, &result.stats)
                            : table_->AllRows();

  // §4.3 step 4: superlatives run on the records produced by steps 1-3.
  exec::ApplySuperlativeAndCap(
      &rows, query.superlative,
      [&](RowId r, std::size_t a) -> const Value& { return table_->cell(r, a); },
      query.limit);
  result.rows = std::move(rows);
  return result;
}

Result<QueryResult> ExecuteQuery(const Table& table, const Query& query) {
  return Executor(&table).Execute(query);
}

}  // namespace cqads::db
