// Row-at-a-time predicate matching over a materialized cell, shared by the
// seed Executor (table rows read through the column store) and the
// DeltaStore scan (row-major Records that have no column store yet). One
// implementation of the §4.3 value semantics — NULL rule, shorthand
// equality, canonical kContains rendering, text-list membership — so the
// base-table and delta paths can never drift: a record answered from the
// delta matches a predicate iff the same record compacted into a table
// would.
#ifndef CQADS_DB_ROW_MATCH_H_
#define CQADS_DB_ROW_MATCH_H_

#include <string>
#include <vector>

#include "db/query.h"
#include "db/schema.h"
#include "db/storage/column_store.h"
#include "db/value.h"

namespace cqads::db {

/// Elements a text cell exposes to matching: a TextList cell yields its
/// trimmed non-empty ';'-members, a categorical cell its single verbatim
/// value, numeric/NULL cells nothing. Exactly the ColumnStore's
/// pre-tokenization rule, applied to a raw Value.
std::vector<std::string> ValueElements(const Schema& schema, std::size_t attr,
                                       const Value& v);

/// One cell vs one predicate: the single semantic definition behind
/// Executor::Matches. `elements` must be ValueElements-equivalent for text
/// attributes (ignored for numeric attributes).
bool MatchesCell(const Schema& schema, const Predicate& pred,
                 const Value& cell, const std::vector<std::string>& elements);

/// Record-level forms for rows that live outside a Table (delta rows).
bool RecordMatches(const Schema& schema, const Record& record,
                   const Predicate& pred);
bool RecordMatchesExpr(const Schema& schema, const Record& record,
                       const Expr& expr);

/// Schema validation shared by Table::Insert and DeltaStore::Insert.
Status ValidateRecord(const Schema& schema, const Record& record);

}  // namespace cqads::db

#endif  // CQADS_DB_ROW_MATCH_H_
