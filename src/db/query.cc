#include "db/query.h"

namespace cqads::db {

const char* CompareOpToSql(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kBetween:
      return "BETWEEN";
    case CompareOp::kContains:
      return "LIKE";
  }
  return "?";
}

bool Predicate::operator==(const Predicate& other) const {
  return attr == other.attr && op == other.op && value == other.value &&
         value_hi == other.value_hi &&
         allow_shorthand == other.allow_shorthand;
}

ExprPtr Expr::MakePredicate(Predicate p) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kPredicate;
  e->predicate_ = std::move(p);
  return e;
}

ExprPtr Expr::MakeAnd(std::vector<ExprPtr> children) {
  if (children.size() == 1) return children[0];
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kAnd;
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::MakeOr(std::vector<ExprPtr> children) {
  if (children.size() == 1) return children[0];
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kOr;
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::MakeNot(ExprPtr child) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kNot;
  e->children_.push_back(std::move(child));
  return e;
}

std::size_t Expr::LeafCount() const {
  if (kind_ == Kind::kPredicate) return 1;
  std::size_t n = 0;
  for (const auto& c : children_) n += c->LeafCount();
  return n;
}

void Expr::CollectPredicates(std::vector<Predicate>* out) const {
  if (kind_ == Kind::kPredicate) {
    out->push_back(predicate_);
    return;
  }
  for (const auto& c : children_) c->CollectPredicates(out);
}

bool Expr::IsConjunctive() const {
  if (kind_ == Kind::kPredicate) return true;
  if (kind_ != Kind::kAnd) return false;
  for (const auto& c : children_) {
    if (c->kind() != Kind::kPredicate) return false;
  }
  return true;
}

}  // namespace cqads::db
