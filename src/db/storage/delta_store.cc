#include "db/storage/delta_store.h"

#include <algorithm>

#include "db/row_match.h"
#include "db/table.h"

namespace cqads::db {

Result<RowId> DeltaStore::Insert(Record record) {
  CQADS_RETURN_NOT_OK(ValidateRecord(schema_, record));
  rows_.push_back(std::move(record));
  retired_delta_.push_back(0);
  ++live_delta_rows_;
  return static_cast<RowId>(base_rows_ + rows_.size() - 1);
}

Status DeltaStore::Retire(RowId global_row) {
  if (global_row < base_rows_) {
    auto it =
        std::lower_bound(retired_base_.begin(), retired_base_.end(), global_row);
    if (it != retired_base_.end() && *it == global_row) {
      return Status::NotFound("row already retired: " +
                              std::to_string(global_row));
    }
    retired_base_.insert(it, global_row);
    return Status::OK();
  }
  const std::size_t local = global_row - base_rows_;
  if (local >= rows_.size()) {
    return Status::OutOfRange("row id out of range: " +
                              std::to_string(global_row));
  }
  if (retired_delta_[local]) {
    return Status::NotFound("row already retired: " +
                            std::to_string(global_row));
  }
  retired_delta_[local] = 1;
  --live_delta_rows_;
  return Status::OK();
}

std::vector<Record> DeltaStore::MergedRecords(const Table& base) const {
  std::vector<Record> out;
  out.reserve(base.num_rows() - retired_base_.size() + live_delta_rows_);
  std::size_t next_retired = 0;
  for (RowId r = 0; r < base.num_rows(); ++r) {
    if (next_retired < retired_base_.size() &&
        retired_base_[next_retired] == r) {
      ++next_retired;
      continue;
    }
    out.push_back(base.row(r));
  }
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (!retired_delta_[i]) out.push_back(rows_[i]);
  }
  return out;
}

}  // namespace cqads::db
