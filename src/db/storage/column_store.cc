#include "db/storage/column_store.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/string_util.h"
#include "db/compare.h"
#include "text/shorthand.h"

namespace cqads::db {

namespace {

/// Exact interning key: payload kind tag + exact payload, so Int(5),
/// Real(5.0), and Text("5") intern as distinct dictionary entries, two
/// reals that round to the same display text do not collapse, and int64s
/// beyond double precision (>= 2^53) stay distinct.
std::string DictKey(const Value& v) {
  if (v.is_text()) return 't' + v.text();
  if (v.is_int()) return 'i' + v.AsText();  // exact decimal rendering
  double d = v.AsDouble();
  char bits[sizeof(double)];
  std::memcpy(bits, &d, sizeof(double));
  std::string key;
  key.reserve(1 + sizeof(double));
  key.push_back('r');
  key.append(bits, sizeof(double));
  return key;
}

}  // namespace

ColumnStore::ColumnStore(const Schema& schema)
    : cols_(schema.num_attributes()) {
  kinds_.reserve(schema.num_attributes());
  for (std::size_t a = 0; a < cols_.size(); ++a) {
    kinds_.push_back(schema.attribute(a).data_kind);
    cols_[a].elem_offsets.push_back(0);
  }
}

std::uint32_t ColumnStore::InternValue(Column* col, const Value& v,
                                       bool numeric) {
  std::string key = DictKey(v);
  auto it = col->dict_lookup.find(key);
  if (it != col->dict_lookup.end()) return it->second;
  const auto code = static_cast<std::uint32_t>(col->dict.size());
  col->dict.push_back(v);
  // Only numeric columns are probed through the canonical rendering
  // (kContains); text columns already expose their text via the element
  // dictionary, so caching a second copy would just double string memory.
  if (numeric) col->rendered.push_back(CanonicalContainsText(v));
  col->dict_lookup.emplace(std::move(key), code);
  return code;
}

std::uint32_t ColumnStore::InternElement(Column* col, std::string element) {
  auto it = col->elem_lookup.find(element);
  if (it != col->elem_lookup.end()) return it->second;
  const auto code = static_cast<std::uint32_t>(col->elem_dict.size());
  col->elem_dict.push_back(element);
  col->elem_norms.push_back(text::NormalizeForShorthand(element));
  col->elem_lookup.emplace(std::move(element), code);
  return code;
}

RowId ColumnStore::Append(const Record& record) {
  // A store restored from a mapped snapshot has view-mode columns and no
  // intern tables; Table::Insert guards this with a FailedPrecondition
  // before ever reaching here.
  assert(!frozen_ && "Append on a snapshot-loaded (frozen) ColumnStore");
  const RowId row = static_cast<RowId>(num_rows_);
  for (std::size_t a = 0; a < cols_.size(); ++a) {
    Column& col = cols_[a];
    const Value& v = record[a];
    const bool numeric = kinds_[a] == DataKind::kNumeric;

    auto& null_bits = col.null_bits.vec();
    if (null_bits.size() * 64 <= row) null_bits.push_back(0);
    if (v.is_null()) {
      col.codes.push_back(kNullCode);
      null_bits[row / 64] |= std::uint64_t{1} << (row % 64);
      if (numeric) {
        col.packed.push_back(std::numeric_limits<double>::quiet_NaN());
      }
    } else {
      col.codes.push_back(InternValue(&col, v, numeric));
      if (numeric) col.packed.push_back(v.AsDouble());
    }

    if (!numeric) {
      const auto span_begin = static_cast<std::uint32_t>(col.elem_codes.size());
      // Pre-tokenize: a TextList cell contributes its trimmed non-empty
      // ';'-members, a categorical cell its single verbatim value. This is
      // the one place list splitting happens; probes read code spans.
      if (!v.is_null() && v.is_text()) {
        if (kinds_[a] == DataKind::kTextList) {
          for (auto& part : Split(v.text(), ';')) {
            std::string trimmed = Trim(part);
            if (!trimmed.empty()) {
              col.elem_codes.push_back(InternElement(&col, std::move(trimmed)));
            }
          }
        } else {
          col.elem_codes.push_back(InternElement(&col, v.text()));
        }
      }
      col.elem_offsets.push_back(
          static_cast<std::uint32_t>(col.elem_codes.size()));
      // First intern of a distinct value (dict just grew): remember its
      // element span — every later row with this code repeats it exactly.
      if (col.dict_spans.size() < col.dict.size()) {
        col.dict_spans.push_back(DictSpan{
            span_begin, static_cast<std::uint32_t>(col.elem_codes.size())});
      }
    }
  }
  ++num_rows_;
  return row;
}

const Value& ColumnStore::cell(RowId row, std::size_t attr) const {
  static const Value kNull;
  const Column& col = cols_[attr];
  const std::uint32_t code = col.codes[row];
  return code == kNullCode ? kNull : col.dict[code];
}

Record ColumnStore::MaterializeRow(RowId row) const {
  Record out;
  out.reserve(cols_.size());
  for (std::size_t a = 0; a < cols_.size(); ++a) out.push_back(cell(row, a));
  return out;
}

std::pair<const std::uint32_t*, const std::uint32_t*> ColumnStore::ElementSpan(
    RowId row, std::size_t attr) const {
  const Column& col = cols_[attr];
  if (col.elem_offsets.size() <= row + 1) {  // numeric column: no elements
    return {nullptr, nullptr};
  }
  const std::uint32_t* base = col.elem_codes.data();
  return {base + col.elem_offsets[row], base + col.elem_offsets[row + 1]};
}

std::vector<std::string> ColumnStore::CellElements(RowId row,
                                                   std::size_t attr) const {
  auto [begin, end] = ElementSpan(row, attr);
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  const Column& col = cols_[attr];
  for (const std::uint32_t* it = begin; it != end; ++it) {
    out.push_back(col.elem_dict[*it]);
  }
  return out;
}

std::string ColumnStore::RowText(RowId row) const {
  std::string out;
  for (std::size_t a = 0; a < cols_.size(); ++a) {
    const Value& v = cell(row, a);
    if (v.is_null()) continue;
    if (!out.empty()) out.push_back(' ');
    if (kinds_[a] == DataKind::kTextList) {
      out += ReplaceAll(v.text(), ";", " ");
    } else {
      out += v.AsText();
    }
  }
  return ToLower(out);
}

}  // namespace cqads::db
