// Columnar storage for one ads relation — the physical layer under
// db::Table. Replaces the seed's row-major std::vector<Record>:
//
//   * every column is dictionary-encoded: a pool of distinct Values plus a
//     per-row u32 code (kNullCode for NULL), so categorical probes compare
//     integers instead of strings and repeated values are stored once;
//   * numeric columns additionally keep a packed double vector (NaN at NULL
//     positions) and a null bitmap, the layout range scans and histogram
//     collection stream over;
//   * text columns keep pre-tokenized element postings: a per-column element
//     dictionary (trimmed ';'-list members; a categorical cell is its own
//     single element) and a per-row span of element codes, so
//     CellElements/equality probes never re-split strings;
//   * a canonical rendered text per dictionary entry (the
//     db::CanonicalContainsText single formatting path) serves substring
//     matching without per-row re-formatting.
//
// The row-oriented view the classifier corpus and the TF-IDF baselines need
// (cell / MaterializeRow / CellElements / RowText) is materialized on demand
// from the columns; cell() hands out references into the dictionary pool, so
// it stays cheap and allocation-free.
//
// Thread-safety: append-only while loading; immutable afterwards. All const
// methods are safe to call concurrently once writes stop (the engine
// snapshot layer guarantees tables are frozen before queries run).
#ifndef CQADS_DB_STORAGE_COLUMN_STORE_H_
#define CQADS_DB_STORAGE_COLUMN_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/pod_vec.h"
#include "db/indexes.h"
#include "db/schema.h"
#include "db/value.h"

namespace cqads::snapshot {
struct SerdeAccess;
}

namespace cqads::db {

/// One ad: a tuple of attribute values in schema order (the thin row view).
using Record = std::vector<Value>;

class ColumnStore {
 public:
  /// Per-row dictionary code of a NULL cell.
  static constexpr std::uint32_t kNullCode = 0xFFFFFFFFu;

  /// Captures the per-column physical kinds; the schema itself need not
  /// outlive the store (Table stays freely movable).
  explicit ColumnStore(const Schema& schema);

  std::size_t num_rows() const { return num_rows_; }

  /// Appends a record (already validated against the schema by the caller).
  /// Returns the new RowId.
  RowId Append(const Record& record);

  // --- row view (materialized on demand) --------------------------------

  /// The cell value; a reference into the column's dictionary pool (or a
  /// shared NULL). Valid until the next Append that interns a new distinct
  /// value for the column (the pool may reallocate); stores are frozen
  /// before queries run, so query-time references never move.
  const Value& cell(RowId row, std::size_t attr) const;

  /// Materializes one full record in schema order.
  Record MaterializeRow(RowId row) const;

  /// Elements of a text cell from the pre-tokenized postings: a TextList
  /// cell yields its trimmed non-empty ';'-members, a categorical cell its
  /// single value. Numeric/NULL cells yield an empty list.
  std::vector<std::string> CellElements(RowId row, std::size_t attr) const;

  /// All text of a row joined with spaces, lower-cased (classifier corpus
  /// and TF-IDF baselines).
  std::string RowText(RowId row) const;

  // --- columnar access (the exec layer's surface) -----------------------

  /// Dictionary code of a cell (kNullCode for NULL).
  std::uint32_t dict_code(RowId row, std::size_t attr) const {
    return cols_[attr].codes[row];
  }

  /// The whole per-row code vector of a column (kNullCode at NULL rows) —
  /// the block kernels stream this directly instead of per-row dict_code
  /// calls.
  const common::PodVec<std::uint32_t>& code_column(std::size_t attr) const {
    return cols_[attr].codes;
  }

  /// Element-code span of one DISTINCT cell value: rows sharing a
  /// dictionary code share the exact element sequence (elements derive
  /// only from the cell's text), recorded once when the value is first
  /// interned. Lets predicate evaluation build per-distinct-cell match
  /// tables in O(dictionary) instead of walking per-row spans. Only text
  /// columns have spans; `code` must be a real code (not kNullCode).
  std::pair<const std::uint32_t*, const std::uint32_t*> DictElementSpan(
      std::size_t attr, std::uint32_t code) const {
    const Column& col = cols_[attr];
    const auto& span = col.dict_spans[code];
    const std::uint32_t* base = col.elem_codes.data();
    return {base + span.begin, base + span.end};
  }

  /// Distinct cell values of a column, in first-appearance order.
  const std::vector<Value>& dictionary(std::size_t attr) const {
    return cols_[attr].dict;
  }

  /// Canonical rendered text per dictionary entry of a NUMERIC column
  /// (single formatting path; what kContains matches against). Empty for
  /// text columns — their text is already exposed by the element
  /// dictionary.
  const std::vector<std::string>& rendered_dictionary(std::size_t attr) const {
    return cols_[attr].rendered;
  }

  /// Distinct text elements of a text column, in first-appearance order.
  /// Empty for numeric columns.
  const std::vector<std::string>& element_dictionary(std::size_t attr) const {
    return cols_[attr].elem_dict;
  }

  /// NormalizeForShorthand of each element, parallel to
  /// element_dictionary(): shorthand probes normalize the needle once and
  /// compare against these cached forms (§4.2.3 without per-probe
  /// re-normalization).
  const std::vector<std::string>& element_shorthand_norms(
      std::size_t attr) const {
    return cols_[attr].elem_norms;
  }

  /// The element-code span of a text cell: [begin, end) into the column's
  /// element pool. Empty for NULL cells and numeric columns.
  std::pair<const std::uint32_t*, const std::uint32_t*> ElementSpan(
      RowId row, std::size_t attr) const;

  /// Packed values of a numeric column (NaN at NULL rows). Empty for text
  /// columns.
  const common::PodVec<double>& numeric_column(std::size_t attr) const {
    return cols_[attr].packed;
  }

  bool is_null(RowId row, std::size_t attr) const {
    return cols_[attr].codes[row] == kNullCode;
  }

  /// Word of the column's null bitmap (bit r%64 of word r/64 set = NULL).
  const common::PodVec<std::uint64_t>& null_bitmap(std::size_t attr) const {
    return cols_[attr].null_bits;
  }

  /// True once the store has been restored from a mapped snapshot: the
  /// per-column intern tables (dict_lookup/elem_lookup) are not rebuilt, so
  /// Append is forbidden. Ingest goes through DeltaStore heap generations.
  bool frozen() const { return frozen_; }

  /// Element-code span of one distinct dictionary entry, as a POD struct
  /// (std::pair is not trivially copyable, so spans could not be written
  /// verbatim into snapshots).
  struct DictSpan {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };

 private:
  friend struct cqads::snapshot::SerdeAccess;

  struct Column {
    std::vector<Value> dict;              ///< distinct values, stable order
    std::vector<std::string> rendered;    ///< canonical text (numeric cols)
    std::unordered_map<std::string, std::uint32_t> dict_lookup;
    // PodVec members: heap-owned while appending, zero-copy views into a
    // mapped snapshot after a load.
    common::PodVec<std::uint32_t> codes;     ///< per row; kNullCode = NULL
    common::PodVec<std::uint64_t> null_bits; ///< 1 bit per row, 1 = NULL

    // Text columns: pre-tokenized elements.
    std::vector<std::string> elem_dict;
    std::vector<std::string> elem_norms;  ///< NormalizeForShorthand per entry
    std::unordered_map<std::string, std::uint32_t> elem_lookup;
    common::PodVec<std::uint32_t> elem_codes;    ///< pooled spans
    common::PodVec<std::uint32_t> elem_offsets;  ///< size num_rows+1
    /// Per DICTIONARY code: [begin, end) into elem_codes of the element
    /// sequence every row with that code shares (captured at first intern).
    common::PodVec<DictSpan> dict_spans;

    // Numeric columns: packed scan layout.
    common::PodVec<double> packed;  ///< NaN at NULL rows
  };

  std::uint32_t InternValue(Column* col, const Value& v, bool numeric);
  std::uint32_t InternElement(Column* col, std::string element);

  std::vector<DataKind> kinds_;  ///< per-column physical kind
  std::vector<Column> cols_;
  std::size_t num_rows_ = 0;
  bool frozen_ = false;
};

}  // namespace cqads::db

#endif  // CQADS_DB_STORAGE_COLUMN_STORE_H_
