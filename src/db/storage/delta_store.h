// Row-major delta store for incremental ad ingestion. Between engine
// snapshots, InsertAd appends row-major Records here and RetireAd sets
// tombstones — no index rebuild, no column-store re-encode. Queries union
// the base table's (index-driven) result with a row-at-a-time scan of the
// live delta rows (db/row_match.h — the seed executor's value semantics),
// masking tombstoned base rows; a background compaction later merges the
// survivors into a fresh partitioned table and the delta starts empty
// again.
//
// Global row ids: base-table rows keep their RowIds; delta row i is
// addressed as base_rows + i. Retired delta rows keep their slot (the ids
// of later delta rows stay stable); they are simply masked from scans.
//
// Thread-safety: a DeltaStore is mutable and externally synchronized (the
// engine's builder mutates it under the engine mutex). The hot path never
// sees this object — each snapshot publication freezes a copy
// (shared_ptr<const DeltaStore>) that is immutable thereafter, the same
// discipline as every other snapshot component.
#ifndef CQADS_DB_STORAGE_DELTA_STORE_H_
#define CQADS_DB_STORAGE_DELTA_STORE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "db/indexes.h"
#include "db/schema.h"
#include "db/storage/column_store.h"

namespace cqads::db {

class Table;

class DeltaStore {
 public:
  /// `base_rows` is the row count of the table this delta rides on; it
  /// fixes the global-id split point.
  DeltaStore(Schema schema, std::size_t base_rows)
      : schema_(std::move(schema)), base_rows_(base_rows) {}

  const Schema& schema() const { return schema_; }
  std::size_t base_rows() const { return base_rows_; }

  /// Delta rows appended so far, including retired slots.
  std::size_t num_rows() const { return rows_.size(); }

  /// Global row-id space the union query answers over.
  std::size_t total_rows() const { return base_rows_ + rows_.size(); }

  /// True when the delta changes nothing: no live or retired inserts, no
  /// masked base rows. Queries skip the hybrid path entirely.
  bool empty() const { return rows_.empty() && retired_base_.empty(); }

  /// Appends a record (validated against the schema). Returns the GLOBAL
  /// RowId (base_rows + local index).
  Result<RowId> Insert(Record record);

  /// Tombstones a global row id — a base row (masked from base results) or
  /// a delta row (masked from the delta scan). Retiring an already-retired
  /// row fails with NotFound.
  Status Retire(RowId global_row);

  /// The record of delta slot `i` (0-based local index).
  const Record& record(std::size_t i) const { return rows_[i]; }

  bool delta_retired(std::size_t i) const { return retired_delta_[i] != 0; }

  /// Cell of a GLOBAL row id >= base_rows.
  const Value& cell(RowId global_row, std::size_t attr) const {
    return rows_[global_row - base_rows_][attr];
  }

  /// Tombstoned base rows, sorted ascending (for DifferenceSets masking).
  const RowSet& retired_base() const { return retired_base_; }

  std::size_t live_delta_rows() const { return live_delta_rows_; }

  /// The merged record sequence a compaction (or a from-scratch rebuild)
  /// materializes: surviving base rows in RowId order, then surviving delta
  /// rows in insertion order. Appending exactly these records to an empty
  /// table reproduces the post-compaction RowIds — the answer-identity
  /// invariant the ingest tests pin.
  std::vector<Record> MergedRecords(const Table& base) const;

 private:
  Schema schema_;
  std::size_t base_rows_ = 0;
  std::vector<Record> rows_;
  std::vector<char> retired_delta_;  ///< parallel to rows_, 1 = tombstoned
  RowSet retired_base_;              ///< sorted ascending
  std::size_t live_delta_rows_ = 0;
};

}  // namespace cqads::db

#endif  // CQADS_DB_STORAGE_DELTA_STORE_H_
