#include "db/indexes.h"

#include <algorithm>
#include <limits>

namespace cqads::db {

RowSet Intersect(const RowSet& a, const RowSet& b) {
  RowSet out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

RowSet Union(const RowSet& a, const RowSet& b) {
  RowSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

RowSet Difference(const RowSet& a, const RowSet& b) {
  RowSet out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

namespace {
// Postings are appended in row order during load; queries require sorted
// unique sets, which appending in ascending row order already guarantees.
// Defensive normalization for out-of-order adds:
void NormalizeIfNeeded(RowSet* set) {
  if (!std::is_sorted(set->begin(), set->end())) {
    std::sort(set->begin(), set->end());
  }
  set->erase(std::unique(set->begin(), set->end()), set->end());
}
}  // namespace

void HashIndex::Add(std::string_view key, RowId row) {
  RowSet& set = postings_[std::string(key)];
  if (!set.empty() && set.back() == row) return;
  if (!set.empty() && set.back() > row) {
    set.push_back(row);
    NormalizeIfNeeded(&set);
    return;
  }
  set.push_back(row);
}

const RowSet& HashIndex::Lookup(std::string_view key) const {
  static const RowSet kEmpty;
  auto it = postings_.find(std::string(key));
  return it == postings_.end() ? kEmpty : it->second;
}

std::vector<std::string> HashIndex::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(postings_.size());
  for (const auto& [k, v] : postings_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

void SortedIndex::Add(double key, RowId row) {
  entries_.emplace_back(key, row);
  sealed_ = false;
}

void SortedIndex::Seal() {
  std::sort(entries_.begin(), entries_.end());
  sealed_ = true;
}

RowSet SortedIndex::Range(double lo, double hi) const {
  RowSet out;
  if (!sealed_ || lo > hi) return out;
  auto begin = std::lower_bound(
      entries_.begin(), entries_.end(), lo,
      [](const auto& e, double v) { return e.first < v; });
  auto end = std::upper_bound(
      entries_.begin(), entries_.end(), hi,
      [](double v, const auto& e) { return v < e.first; });
  for (auto it = begin; it != end; ++it) out.push_back(it->second);
  std::sort(out.begin(), out.end());
  return out;
}

RowSet SortedIndex::Extreme(bool ascending, std::size_t limit) const {
  RowSet out;
  if (!sealed_) return out;
  std::size_t n = std::min(limit, entries_.size());
  if (ascending) {
    for (std::size_t i = 0; i < n; ++i) out.push_back(entries_[i].second);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(entries_[entries_.size() - 1 - i].second);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

double SortedIndex::MinKey() const {
  return entries_.empty() ? std::numeric_limits<double>::quiet_NaN()
                          : entries_.front().first;
}

double SortedIndex::MaxKey() const {
  return entries_.empty() ? std::numeric_limits<double>::quiet_NaN()
                          : entries_.back().first;
}

void NGramIndex::Add(std::string_view text, RowId row) {
  if (text.size() < kGramLength) return;
  for (std::size_t i = 0; i + kGramLength <= text.size(); ++i) {
    RowSet& set = postings_[std::string(text.substr(i, kGramLength))];
    if (set.empty() || set.back() != row) set.push_back(row);
  }
}

RowSet NGramIndex::Candidates(std::string_view needle) const {
  RowSet result;
  if (!CanLookup(needle)) return result;
  bool first = true;
  for (std::size_t i = 0; i + kGramLength <= needle.size(); ++i) {
    auto it = postings_.find(std::string(needle.substr(i, kGramLength)));
    if (it == postings_.end()) return {};
    if (first) {
      result = it->second;
      first = false;
    } else {
      result = Intersect(result, it->second);
      if (result.empty()) return result;
    }
  }
  return result;
}

}  // namespace cqads::db
