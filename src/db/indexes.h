// Access-path structures for the ads store: hash indexes for Type I/II
// equality (the paper's primary/secondary indexed fields), sorted indexes
// for Type III ranges and superlatives, and a length-3 n-gram substring
// index reproducing the MySQL length-3 prefix/substring index of §4.5.
#ifndef CQADS_DB_INDEXES_H_
#define CQADS_DB_INDEXES_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cqads::snapshot {
struct SerdeAccess;
}

namespace cqads::db {

using RowId = std::uint32_t;
using RowSet = std::vector<RowId>;  // always sorted ascending, unique

/// Sorted-set algebra used throughout the executor.
RowSet Intersect(const RowSet& a, const RowSet& b);
RowSet Union(const RowSet& a, const RowSet& b);
/// a \ b.
RowSet Difference(const RowSet& a, const RowSet& b);

/// Equality index: normalized text value -> rows. TextList cells contribute
/// one posting per list element.
class HashIndex {
 public:
  void Add(std::string_view key, RowId row);
  /// Rows whose value equals `key` (empty set when absent).
  const RowSet& Lookup(std::string_view key) const;
  /// Distinct keys, lexicographic (deterministic iteration for tests).
  std::vector<std::string> Keys() const;
  std::size_t key_count() const { return postings_.size(); }

 private:
  friend struct cqads::snapshot::SerdeAccess;
  std::unordered_map<std::string, RowSet> postings_;
};

/// Order index over a numeric attribute.
class SortedIndex {
 public:
  void Add(double key, RowId row);
  /// Must be called after the last Add and before any query.
  void Seal();

  /// Rows with lo <= value <= hi.
  RowSet Range(double lo, double hi) const;
  /// Up to `limit` rows with the smallest (ascending) or largest values.
  RowSet Extreme(bool ascending, std::size_t limit) const;
  double MinKey() const;
  double MaxKey() const;
  bool empty() const { return entries_.empty(); }

 private:
  friend struct cqads::snapshot::SerdeAccess;
  std::vector<std::pair<double, RowId>> entries_;
  bool sealed_ = false;
};

/// Length-3 n-gram substring index. A substring query intersects the posting
/// lists of every 3-gram of the needle, then callers verify candidates.
/// Needles shorter than 3 characters cannot use the index (callers scan).
class NGramIndex {
 public:
  static constexpr std::size_t kGramLength = 3;

  void Add(std::string_view text, RowId row);

  /// True when `needle` is long enough for indexed lookup.
  static bool CanLookup(std::string_view needle) {
    return needle.size() >= kGramLength;
  }

  /// Candidate rows containing every 3-gram of `needle` (superset of the
  /// true answer; empty when any gram is absent).
  RowSet Candidates(std::string_view needle) const;

  std::size_t gram_count() const { return postings_.size(); }

 private:
  friend struct cqads::snapshot::SerdeAccess;
  std::unordered_map<std::string, RowSet> postings_;
};

}  // namespace cqads::db

#endif  // CQADS_DB_INDEXES_H_
