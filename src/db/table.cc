#include "db/table.h"

#include "db/row_match.h"

namespace cqads::db {

Result<RowId> Table::Insert(Record record) {
  if (store_.frozen()) {
    return Status::FailedPrecondition(
        "table was loaded from a mapped snapshot and is read-only; "
        "route new ads through DeltaStore ingest");
  }
  CQADS_RETURN_NOT_OK(ValidateRecord(schema_, record));
  const RowId id = store_.Append(record);
  indexes_built_ = false;
  stats_.reset();
  return id;
}

void Table::BuildIndexes() {
  const std::size_t n_attrs = schema_.num_attributes();
  hash_indexes_.assign(n_attrs, HashIndex());
  sorted_indexes_.assign(n_attrs, SortedIndex());
  ngram_indexes_.assign(n_attrs, NGramIndex());

  for (RowId row = 0; row < store_.num_rows(); ++row) {
    for (std::size_t a = 0; a < n_attrs; ++a) {
      if (store_.is_null(row, a)) continue;
      if (schema_.attribute(a).data_kind == DataKind::kNumeric) {
        sorted_indexes_[a].Add(store_.numeric_column(a)[row], row);
      } else {
        // Postings come straight from the store's pre-tokenized element
        // spans — no per-row re-splitting.
        auto [begin, end] = store_.ElementSpan(row, a);
        const auto& elem_dict = store_.element_dictionary(a);
        for (const std::uint32_t* it = begin; it != end; ++it) {
          hash_indexes_[a].Add(elem_dict[*it], row);
          ngram_indexes_[a].Add(elem_dict[*it], row);
        }
      }
    }
  }
  for (auto& idx : sorted_indexes_) idx.Seal();
  stats_ = std::make_shared<const exec::TableStats>(
      exec::TableStats::Collect(schema_, store_));
  indexes_built_ = true;
}

RowSet Table::AllRows() const {
  RowSet out(store_.num_rows());
  for (RowId i = 0; i < store_.num_rows(); ++i) out[i] = i;
  return out;
}

const HashIndex* Table::hash_index(std::size_t attr) const {
  if (!indexes_built_ || attr >= hash_indexes_.size()) return nullptr;
  if (schema_.attribute(attr).data_kind == DataKind::kNumeric) return nullptr;
  return &hash_indexes_[attr];
}

const SortedIndex* Table::sorted_index(std::size_t attr) const {
  if (!indexes_built_ || attr >= sorted_indexes_.size()) return nullptr;
  if (schema_.attribute(attr).data_kind != DataKind::kNumeric) return nullptr;
  return &sorted_indexes_[attr];
}

const NGramIndex* Table::ngram_index(std::size_t attr) const {
  if (!indexes_built_ || attr >= ngram_indexes_.size()) return nullptr;
  if (schema_.attribute(attr).data_kind == DataKind::kNumeric) return nullptr;
  return &ngram_indexes_[attr];
}

Result<std::pair<double, double>> Table::NumericRange(std::size_t attr) const {
  if (attr >= schema_.num_attributes()) {
    return Status::OutOfRange("attribute index out of range");
  }
  if (schema_.attribute(attr).data_kind != DataKind::kNumeric) {
    return Status::InvalidArgument("attribute is not numeric: " +
                                   schema_.attribute(attr).name);
  }
  if (!indexes_built_) {
    return Status::FailedPrecondition("indexes not built");
  }
  const SortedIndex& idx = sorted_indexes_[attr];
  if (idx.empty()) return Status::NotFound("no values for attribute");
  return std::make_pair(idx.MinKey(), idx.MaxKey());
}

}  // namespace cqads::db
