#include "db/table.h"

#include "common/string_util.h"

namespace cqads::db {

Result<RowId> Table::Insert(Record record) {
  if (record.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "record arity " + std::to_string(record.size()) + " != schema arity " +
        std::to_string(schema_.num_attributes()));
  }
  for (std::size_t i = 0; i < record.size(); ++i) {
    const Attribute& attr = schema_.attribute(i);
    const Value& v = record[i];
    if (v.is_null()) continue;
    if (attr.data_kind == DataKind::kNumeric && !v.is_numeric()) {
      return Status::InvalidArgument("non-numeric value for numeric attribute " +
                                     attr.name);
    }
    if (attr.data_kind != DataKind::kNumeric && !v.is_text()) {
      return Status::InvalidArgument("non-text value for text attribute " +
                                     attr.name);
    }
  }
  rows_.push_back(std::move(record));
  indexes_built_ = false;
  return static_cast<RowId>(rows_.size() - 1);
}

void Table::BuildIndexes() {
  const std::size_t n_attrs = schema_.num_attributes();
  hash_indexes_.assign(n_attrs, HashIndex());
  sorted_indexes_.assign(n_attrs, SortedIndex());
  ngram_indexes_.assign(n_attrs, NGramIndex());

  for (RowId row = 0; row < rows_.size(); ++row) {
    for (std::size_t a = 0; a < n_attrs; ++a) {
      const Attribute& attr = schema_.attribute(a);
      const Value& v = rows_[row][a];
      if (v.is_null()) continue;
      if (attr.data_kind == DataKind::kNumeric) {
        sorted_indexes_[a].Add(v.AsDouble(), row);
      } else {
        for (const auto& element : CellElements(row, a)) {
          hash_indexes_[a].Add(element, row);
          ngram_indexes_[a].Add(element, row);
        }
      }
    }
  }
  for (auto& idx : sorted_indexes_) idx.Seal();
  indexes_built_ = true;
}

std::vector<std::string> Table::CellElements(RowId id,
                                             std::size_t attr) const {
  const Value& v = rows_[id][attr];
  if (!v.is_text()) return {};
  if (schema_.attribute(attr).data_kind == DataKind::kTextList) {
    std::vector<std::string> out;
    for (auto& part : Split(v.text(), ';')) {
      std::string trimmed = Trim(part);
      if (!trimmed.empty()) out.push_back(std::move(trimmed));
    }
    return out;
  }
  return {v.text()};
}

std::string Table::RowText(RowId id) const {
  std::string out;
  for (std::size_t a = 0; a < schema_.num_attributes(); ++a) {
    const Value& v = rows_[id][a];
    if (v.is_null()) continue;
    if (!out.empty()) out.push_back(' ');
    if (schema_.attribute(a).data_kind == DataKind::kTextList) {
      out += ReplaceAll(v.text(), ";", " ");
    } else {
      out += v.AsText();
    }
  }
  return ToLower(out);
}

RowSet Table::AllRows() const {
  RowSet out(rows_.size());
  for (RowId i = 0; i < rows_.size(); ++i) out[i] = i;
  return out;
}

const HashIndex* Table::hash_index(std::size_t attr) const {
  if (!indexes_built_ || attr >= hash_indexes_.size()) return nullptr;
  if (schema_.attribute(attr).data_kind == DataKind::kNumeric) return nullptr;
  return &hash_indexes_[attr];
}

const SortedIndex* Table::sorted_index(std::size_t attr) const {
  if (!indexes_built_ || attr >= sorted_indexes_.size()) return nullptr;
  if (schema_.attribute(attr).data_kind != DataKind::kNumeric) return nullptr;
  return &sorted_indexes_[attr];
}

const NGramIndex* Table::ngram_index(std::size_t attr) const {
  if (!indexes_built_ || attr >= ngram_indexes_.size()) return nullptr;
  if (schema_.attribute(attr).data_kind == DataKind::kNumeric) return nullptr;
  return &ngram_indexes_[attr];
}

Result<std::pair<double, double>> Table::NumericRange(std::size_t attr) const {
  if (attr >= schema_.num_attributes()) {
    return Status::OutOfRange("attribute index out of range");
  }
  if (schema_.attribute(attr).data_kind != DataKind::kNumeric) {
    return Status::InvalidArgument("attribute is not numeric: " +
                                   schema_.attribute(attr).name);
  }
  if (!indexes_built_) {
    return Status::FailedPrecondition("indexes not built");
  }
  const SortedIndex& idx = sorted_indexes_[attr];
  if (idx.empty()) return Status::NotFound("no values for attribute");
  return std::make_pair(idx.MinKey(), idx.MaxKey());
}

}  // namespace cqads::db
