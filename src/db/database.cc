#include "db/database.h"

namespace cqads::db {

Status Database::AddTable(Table table) {
  CQADS_RETURN_NOT_OK(table.schema().Validate());
  std::string domain = table.schema().domain();
  if (tables_.count(domain) > 0) {
    return Status::AlreadyExists("domain already registered: " + domain);
  }
  tables_.emplace(std::move(domain),
                  std::make_unique<Table>(std::move(table)));
  return Status::OK();
}

const Table* Database::GetTable(std::string_view domain) const {
  auto it = tables_.find(domain);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Database::GetMutableTable(std::string_view domain) {
  auto it = tables_.find(domain);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::Domains() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

}  // namespace cqads::db
