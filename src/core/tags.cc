#include "core/tags.h"

#include "common/string_util.h"

namespace cqads::core {

const char* TagKindToString(TagKind kind) {
  switch (kind) {
    case TagKind::kTypeIValue:
      return "TI";
    case TagKind::kTypeIIValue:
      return "TII";
    case TagKind::kTypeIIIAttr:
      return "TIII-attr";
    case TagKind::kUnit:
      return "unit";
    case TagKind::kOpLess:
      return "op<";
    case TagKind::kOpGreater:
      return "op>";
    case TagKind::kOpEquals:
      return "op=";
    case TagKind::kOpBetween:
      return "op-between";
    case TagKind::kBoundaryComplete:
      return "TIII-CB";
    case TagKind::kSuperComplete:
      return "TIII-CS";
    case TagKind::kSuperPartial:
      return "TIII-PS";
    case TagKind::kNegation:
      return "neg";
    case TagKind::kAnd:
      return "AND";
    case TagKind::kOr:
      return "OR";
    case TagKind::kNumber:
      return "num";
  }
  return "?";
}

std::string ConditionToString(const Condition& c,
                              const std::vector<std::string>& attr_names) {
  std::string attr = c.attr == kNoAttr || c.attr >= attr_names.size()
                         ? std::string("?")
                         : attr_names[c.attr];
  std::string out = c.negated ? "NOT " : "";
  switch (c.kind) {
    case Condition::Kind::kTypeI:
    case Condition::Kind::kTypeII:
      return out + attr + " = '" + c.value + "'";
    case Condition::Kind::kTypeIIIBound:
      if (c.op == db::CompareOp::kBetween) {
        return out + attr + " BETWEEN " + FormatDouble(c.lo, 0) + " AND " +
               FormatDouble(c.hi, 0);
      }
      return out + attr + " " + db::CompareOpToSql(c.op) + " " +
             FormatDouble(c.lo, 0);
    case Condition::Kind::kSuperlative:
      return out + "ORDER BY " + attr + (c.ascending ? " ASC" : " DESC");
    case Condition::Kind::kAmbiguousNumber:
      return out + "? = " + FormatDouble(c.lo, 0) +
             (c.is_money ? " ($)" : "");
  }
  return out + "?";
}

}  // namespace cqads::core
