// Rank_Sim (§4.3.2, Eq. 5): scoring of partially-matched records. A record
// matching all but one unit of a question scores (N-1) plus the similarity
// of the mismatched unit's values:
//   Type I   TI_Sim from the query-log matrix (normalized by its maximum)
//   Type II  Feat_Sim from the WS word-correlation matrix (normalized)
//   Type III Num_Sim(T,V) = 1 - |T-V| / AttributeValueRange (Eq. 4)
//
// Two scoring paths coexist:
//   * the seed free functions below (string-keyed: every call re-stems and
//     re-tokenizes) — kept as the parity oracle;
//   * SimScorer, the id-keyed per-request scorer: question-side values are
//     tokenized and resolved to TermIds once per request, record-side
//     strings are memoized on first sight (dictionary-encoded stores repeat
//     them heavily), and every similarity probe is an id-to-id CSR lookup.
// Both produce byte-identical PartialScores; the differential tests and the
// fig6 substrate parity gate pin it.
#ifndef CQADS_CORE_RANK_SIM_H_
#define CQADS_CORE_RANK_SIM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/boolean_assembler.h"
#include "db/exec/rank_bounds.h"
#include "db/table.h"
#include "qlog/ti_matrix.h"
#include "text/term_dict.h"
#include "wordsim/ws_matrix.h"

namespace cqads::core {

/// Similarity resources shared by partial-match scoring.
struct SimilarityContext {
  const qlog::TiMatrix* ti = nullptr;     ///< per-domain (may be null)
  const wordsim::WsMatrix* ws = nullptr;  ///< shared (may be null)
  /// Eq. 4 normalization per numeric attribute: avg(10 highest values) -
  /// avg(10 lowest values), the paper's ebay.com statistic. Indexed by
  /// attribute; <= 0 means unknown (falls back to observed spread).
  std::vector<double> attr_ranges;
};

/// Computes the Eq. 4 AttributeValueRange vector for a table.
std::vector<double> ComputeAttrRanges(const db::Table& table);

/// Outcome of scoring one record against a question with one dropped unit.
struct PartialScore {
  double rank_sim = 0.0;   ///< (N-1) + unit similarity
  double unit_sim = 0.0;   ///< the similarity term alone, in [0, 1]
  std::string measure;     ///< e.g. "TI_Sim on Make and Model"
};

/// Similarity of the dropped unit's requested value(s) vs the record's.
double UnitSimilarity(const db::Table& table, db::RowId row,
                      const MatchUnit& unit, const SimilarityContext& ctx);

/// Record-level form for rows that live outside a Table (delta-store rows
/// awaiting compaction). Same semantics cell-for-cell: the same record
/// scores identically through either overload, which is what keeps partial
/// rankings stable across a compaction.
double UnitSimilarity(const db::Schema& schema, const db::Record& record,
                      const MatchUnit& unit, const SimilarityContext& ctx);

/// Full Eq. 5 score: (num_units - 1) + UnitSimilarity, with the measure
/// label used in Table 2.
PartialScore ScorePartialMatch(const db::Table& table, db::RowId row,
                               const std::vector<MatchUnit>& units,
                               std::size_t dropped_unit,
                               const SimilarityContext& ctx);

/// Record-level form (delta rows).
PartialScore ScorePartialMatch(const db::Schema& schema,
                               const db::Record& record,
                               const std::vector<MatchUnit>& units,
                               std::size_t dropped_unit,
                               const SimilarityContext& ctx);

/// Num_Sim (Eq. 4), clamped to [0, 1]. `range` <= 0 yields 0.
double NumSim(double t, double v, double range);

/// Id-keyed Eq. 5 scorer for one request's candidate loop. Construction
/// resolves everything question-side ONCE: each Type II condition value is
/// tokenized, stemmed, and mapped to WS vocabulary ids; each Type I value
/// to its TI id; each unit's Table 2 measure label is prebuilt. Scoring a
/// row then performs zero stemming and zero map-key materialization —
/// record-side strings resolve through per-request memo tables (misses
/// included, satisfying the "memoize unknown-word misses" contract).
///
/// NOT thread-safe (the memo tables mutate): one instance per request,
/// which is exactly how RankStage uses it. Byte-identical to the free
/// functions above on every input.
class SimScorer {
 public:
  SimScorer(const db::Schema& schema, const std::vector<MatchUnit>& units,
            const SimilarityContext& ctx);

  /// Eq. 5 for a column-store row.
  PartialScore Score(const db::Table& table, db::RowId row,
                     std::size_t dropped_unit);
  /// Eq. 5 for a row-major record (delta rows).
  PartialScore Score(const db::Schema& schema, const db::Record& record,
                     std::size_t dropped_unit);

  /// Batched Eq. 5 over BASE-table rows for one dropped unit: fills
  /// rank_sims[i] (and unit_sims[i] when non-null) for rows[i]. A unit's
  /// similarity is a pure function of the row's dictionary codes on the
  /// unit's read attributes (same codes → same cells → same elements), so
  /// scores are memoized per distinct code tuple when the unit reads at
  /// most two attributes — byte-identical to Score() row by row, with the
  /// RowRef adapter, memo probes, and measure-string composition hoisted
  /// out of the candidate loop. RankStage's full-table and relaxation
  /// sweeps use this under EngineOptions::use_vector_kernels.
  void ScoreBlock(const db::Table& table, const db::RowId* rows,
                  std::size_t n, std::size_t dropped_unit, double* rank_sims,
                  double* unit_sims);

  /// Per-1024-row-block upper bounds on one dropped unit's similarity
  /// (Eq. 5's unit term alone, in [0, 1]), for block-max top-k pruning.
  /// Fills out_bounds[b] for every block of `bounds` and returns true when
  /// the bounds are informative; returns false (out_bounds untouched) when
  /// this unit cannot be bounded better than the trivial 1.0 — it reads
  /// more than one attribute, or the attribute's dictionary is too large
  /// for the per-code sweep to pay for itself.
  ///
  /// Derivation (the byte-identity argument): a unit reading ONE attribute
  /// has a similarity that is a pure function of the row's dictionary code
  /// there (same code -> same cell -> same elements — the ScoreBlock memo
  /// invariant), so maxing the representative-row similarities over the
  /// block's [code_min, code_max] superset bounds every row in the block;
  /// NULL cells are bounded via the column's first-NULL representative.
  /// Numeric units are bounded exactly: Num_Sim (Eq. 4) is unimodal in the
  /// record value, peaking where the value equals the question's target, so
  /// the block's bound is Num_Sim at the target clamped into the block's
  /// [val_min, val_max]. Representative-row similarities are inserted into
  /// the ScoreBlock memo, so visited blocks never recompute them.
  bool ComputeBlockBounds(const db::Table& table,
                          const db::exec::RankBounds& bounds,
                          std::size_t dropped_unit,
                          std::vector<double>* out_bounds);

  /// The Table 2 measure label of one unit (identical for every row a
  /// ScoreBlock call scores).
  const std::string& unit_measure(std::size_t unit) const {
    return units_[unit].measure;
  }
  std::size_t num_units() const { return units_.size(); }

 private:
  /// One tokenized word with its resolved WS id; the stem is kept for the
  /// equal-stem rule when the id is out of vocabulary.
  struct TokenSim {
    std::string text;
    std::string stem;
    text::TermId ws_id = text::kInvalidTerm;
  };
  /// A tokenized value string: its tokens plus the concatenated numeric
  /// token signature (the "2 door" vs "4 door" exclusivity guard).
  struct ValueToks {
    std::vector<TokenSim> tokens;
    std::string digits;
  };
  /// Precomputed question-side state of one condition.
  struct CondSim {
    const Condition* cond = nullptr;
    ValueToks value_toks;               ///< Type II: tokenized c.value
    text::TermId ti_id = text::kInvalidTerm;  ///< Type I: resolved c.value
  };
  /// Precomputed question-side state of one unit.
  struct UnitSim {
    const MatchUnit* unit = nullptr;
    std::vector<CondSim> conds;
    std::vector<std::size_t> identity_attrs;  ///< sorted unique Type I attrs
    text::TermId value_ti_id = text::kInvalidTerm;  ///< unit.value in TI
    std::string measure;                      ///< Table 2 label
    /// Sorted unique attributes this unit's similarity reads — the code
    /// tuple over these is ScoreBlock's memo key.
    std::vector<std::size_t> read_attrs;
  };

  struct RowRef;  // table-or-record adapter (defined in the .cc)

  double UnitSimImpl(const RowRef& row, const UnitSim& unit);
  double IdentitySimIds(const RowRef& row, const UnitSim& unit);
  double FeatSimIds(const ValueToks& a, const std::string& a_raw,
                    const std::string& b_raw);

  const ValueToks& ElementToks(const std::string& element);
  text::TermId TiId(const std::string& value);

  const SimilarityContext* ctx_;
  std::vector<UnitSim> units_;
  /// Record-side memo tables (hits AND misses are cached).
  std::unordered_map<std::string, ValueToks> element_toks_;
  std::unordered_map<std::string, text::TermId> ti_ids_;
  /// Per unit: similarity by the code tuple of the unit's read attributes
  /// (ScoreBlock only; (c0 << 32) | c1, or c0 for single-attribute units).
  std::vector<std::unordered_map<std::uint64_t, double>> unit_memo_;
};

}  // namespace cqads::core

#endif  // CQADS_CORE_RANK_SIM_H_
