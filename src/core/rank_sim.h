// Rank_Sim (§4.3.2, Eq. 5): scoring of partially-matched records. A record
// matching all but one unit of a question scores (N-1) plus the similarity
// of the mismatched unit's values:
//   Type I   TI_Sim from the query-log matrix (normalized by its maximum)
//   Type II  Feat_Sim from the WS word-correlation matrix (normalized)
//   Type III Num_Sim(T,V) = 1 - |T-V| / AttributeValueRange (Eq. 4)
#ifndef CQADS_CORE_RANK_SIM_H_
#define CQADS_CORE_RANK_SIM_H_

#include <string>
#include <vector>

#include "core/boolean_assembler.h"
#include "db/table.h"
#include "qlog/ti_matrix.h"
#include "wordsim/ws_matrix.h"

namespace cqads::core {

/// Similarity resources shared by partial-match scoring.
struct SimilarityContext {
  const qlog::TiMatrix* ti = nullptr;     ///< per-domain (may be null)
  const wordsim::WsMatrix* ws = nullptr;  ///< shared (may be null)
  /// Eq. 4 normalization per numeric attribute: avg(10 highest values) -
  /// avg(10 lowest values), the paper's ebay.com statistic. Indexed by
  /// attribute; <= 0 means unknown (falls back to observed spread).
  std::vector<double> attr_ranges;
};

/// Computes the Eq. 4 AttributeValueRange vector for a table.
std::vector<double> ComputeAttrRanges(const db::Table& table);

/// Outcome of scoring one record against a question with one dropped unit.
struct PartialScore {
  double rank_sim = 0.0;   ///< (N-1) + unit similarity
  double unit_sim = 0.0;   ///< the similarity term alone, in [0, 1]
  std::string measure;     ///< e.g. "TI_Sim on Make and Model"
};

/// Similarity of the dropped unit's requested value(s) vs the record's.
double UnitSimilarity(const db::Table& table, db::RowId row,
                      const MatchUnit& unit, const SimilarityContext& ctx);

/// Record-level form for rows that live outside a Table (delta-store rows
/// awaiting compaction). Same semantics cell-for-cell: the same record
/// scores identically through either overload, which is what keeps partial
/// rankings stable across a compaction.
double UnitSimilarity(const db::Schema& schema, const db::Record& record,
                      const MatchUnit& unit, const SimilarityContext& ctx);

/// Full Eq. 5 score: (num_units - 1) + UnitSimilarity, with the measure
/// label used in Table 2.
PartialScore ScorePartialMatch(const db::Table& table, db::RowId row,
                               const std::vector<MatchUnit>& units,
                               std::size_t dropped_unit,
                               const SimilarityContext& ctx);

/// Record-level form (delta rows).
PartialScore ScorePartialMatch(const db::Schema& schema,
                               const db::Record& record,
                               const std::vector<MatchUnit>& units,
                               std::size_t dropped_unit,
                               const SimilarityContext& ctx);

/// Num_Sim (Eq. 4), clamped to [0, 1]. `range` <= 0 yields 0.
double NumSim(double t, double v, double range);

}  // namespace cqads::core

#endif  // CQADS_CORE_RANK_SIM_H_
