// Boolean question assembly (§4.4). Applies the paper's combination rules to
// an ordered condition sequence:
//   Rule 1  per-attribute merging of quantitative conditions (complement
//           negated quantifiers; intersect repeated less-than/more-than;
//           combine a lower and an upper bound into a range, detecting
//           non-overlapping contradictions -> "search retrieved no results");
//   Rule 2  consecutive Type II values: negated ones AND together, mutually
//           exclusive non-negated ones OR together;
//   Rule 2b/3 descriptive runs right-associate with the closest Type I
//           anchor;
//   Rule 4  subexpressions anchored by distinct Type I identities OR
//           together.
// Explicit Boolean questions (§4.4.2) reuse these rules: ANDs are dropped
// (conjunction is the default), ORs act as segment boundaries, and a
// trailing descriptor run after a bare-identity disjunction distributes over
// the whole disjunction ("Focus, Corolla, or Civic. Show only black and grey
// cars" -> (Focus OR Corolla OR Civic) AND (black OR grey)).
#ifndef CQADS_CORE_BOOLEAN_ASSEMBLER_H_
#define CQADS_CORE_BOOLEAN_ASSEMBLER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/condition_builder.h"
#include "db/exec/table_stats.h"
#include "db/query.h"
#include "db/schema.h"

namespace cqads::core {

/// Resolves an ambiguous bare number (§4.2.2): returns the numeric
/// attributes whose observed value range contains `value`. `is_money`
/// restricts candidates to money-denominated attributes.
using AmbiguousResolver =
    std::function<std::vector<std::size_t>(double value, bool is_money)>;

/// The §4.2.2 resolver backed by frozen column statistics: a candidate
/// attribute's observed [min, max] must contain the number. Equivalent to
/// probing the table's sorted indexes (the seed behavior) but reads the
/// min/max the snapshot froze at BuildIndexes time — no index access on the
/// parse path. `schema` and `stats` must outlive the resolver.
AmbiguousResolver MakeStatsResolver(
    const db::Schema* schema,
    std::shared_ptr<const db::exec::TableStats> stats);

/// A droppable unit for the N-1 partial-match strategy (§4.3.1). The Type I
/// identity (make+model) counts as ONE unit — Table 2 ranks a Chevy Malibu
/// against "Honda Accord" by TI_Sim over the whole identity.
struct MatchUnit {
  enum class Kind { kIdentity, kTypeII, kTypeIII, kAmbiguous };
  Kind kind = Kind::kTypeII;
  std::vector<Condition> conds;  ///< constituent conditions
  db::ExprPtr expr;              ///< fragment this unit contributes
  /// Identity: space-joined Type I values in schema order ("honda accord").
  /// Type II: the value. Type III/ambiguous: unused.
  std::string value;
  std::size_t attr = kNoAttr;    ///< representative attribute (not identity)
};

struct AssembledQuery {
  db::ExprPtr where;  ///< null means no constraint
  std::optional<db::Superlative> superlative;
  /// Rule 1c detected non-overlapping bounds: the paper's CQAds reports
  /// "search retrieved no results" and stops.
  bool contradiction = false;
  /// Units for N-1 relaxation; empty when the question is not a single
  /// conjunctive segment (multi-identity OR questions are not relaxed).
  std::vector<MatchUnit> units;
  /// Always-kept fragments (negated conditions are never dropped by N-1).
  std::vector<db::ExprPtr> fixed;
  /// Canonical Boolean interpretation, for the Fig. 4 accuracy experiment.
  std::string interpretation;
};

/// Runs rules 1-4. `resolver` may be null when the question can contain no
/// ambiguous numbers (tests); ambiguous conditions then become
/// contradictions.
Result<AssembledQuery> AssembleQuery(const BuiltConditions& built,
                                     const db::Schema& schema,
                                     const AmbiguousResolver& resolver);

/// Canonical human-readable rendering of an expression tree (stable across
/// runs; used to compare interpretations in the Boolean surveys).
std::string InterpretationString(const db::Schema& schema,
                                 const db::ExprPtr& expr);

/// EXTENSION (§6 future work #1): a precedence-based evaluator for explicit
/// Boolean questions. Conditions become operands; adjacency is implicit
/// AND; explicit AND binds tighter than explicit OR; NOT was already folded
/// into the conditions. Unlike AssembleQuery it uses no mutual-exclusion or
/// right-association knowledge — it reads the operators literally. The
/// ablate_explicit_rules bench compares both on explicit questions; the
/// paper's §4.4.2 decision (reuse the implicit rules) is borne out.
Result<AssembledQuery> AssembleExplicitPrecedence(
    const BuiltConditions& built, const db::Schema& schema,
    const AmbiguousResolver& resolver);

}  // namespace cqads::core

#endif  // CQADS_CORE_BOOLEAN_ASSEMBLER_H_
