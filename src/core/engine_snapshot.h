// Immutable read-side state of the CQAds engine, separated from the request
// path so queries can fan out across cores without locks.
//
// An EngineSnapshot freezes everything a question needs to be answered:
// per-domain lexicons/tries, taggers, executors, partitioned stores and
// planners, the domain's frozen ingest delta, TI-matrices, and Eq. 4
// attribute ranges (DomainRuntime), plus the trained §3 classifier and the
// shared WS word-correlation matrix. Snapshots are built by an
// EngineBuilder and handed out as std::shared_ptr<const EngineSnapshot>:
// the hot path takes a reference, never a lock, and a snapshot can be
// atomically swapped when a domain is added, an ad ingested or retired, a
// delta compacted, or the classifier retrained, while in-flight queries
// keep the old one alive.
//
// Every DomainRuntime component is held by shared_ptr so a runtime
// GENERATION is cheap: ingesting one ad publishes a new DomainRuntime that
// shares the lexicon, tagger, planner, stats, and partitions of the old one
// and differs only in the frozen delta. Compaction is the expensive
// generation: it rebuilds everything from the merged table.
//
// Thread-safety: every const method of EngineSnapshot and DomainRuntime is
// safe to call concurrently — all contained state is immutable after Build.
// EngineBuilder itself is not thread-safe; callers serialize mutations
// (CqadsEngine does so behind its mutex).
#ifndef CQADS_CORE_ENGINE_SNAPSHOT_H_
#define CQADS_CORE_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "classify/question_classifier.h"
#include "common/status.h"
#include "core/ask_types.h"
#include "core/domain_lexicon.h"
#include "core/question_tagger.h"
#include "core/rank_sim.h"
#include "db/exec/parallel_plan.h"
#include "db/exec/partitioned_table.h"
#include "db/exec/planner.h"
#include "db/exec/rank_bounds.h"
#include "db/exec/table_stats.h"
#include "db/executor.h"
#include "db/storage/delta_store.h"
#include "db/table.h"
#include "qlog/ti_matrix.h"
#include "text/term_dict.h"
#include "text/token.h"
#include "wordsim/ws_matrix.h"

namespace cqads::snapshot {
struct SerdeAccess;
}

namespace cqads::core {

/// Everything the engine keeps per registered domain. Immutable once the
/// owning snapshot is built; components are shared (never copied) across
/// snapshot generations, so adding domain B does not rebuild domain A's
/// trie, and ingesting an ad republishes the runtime without rebuilding
/// anything.
struct DomainRuntime {
  /// The domain's CURRENT base table: the registered table, or the merged
  /// table of the latest compaction.
  const db::Table* table = nullptr;
  /// Set when `table` is a compaction product the engine owns (registered
  /// tables are caller-owned); keeps it alive for snapshots that pin this
  /// runtime generation.
  std::shared_ptr<const db::Table> owned_table;
  std::shared_ptr<const DomainLexicon> lexicon;
  /// The domain's interned-term dictionary (trie keywords + categorical
  /// values with cached stems/stopword flags/shorthand norms). Aliases the
  /// lexicon's dict — one instance per lexicon generation, shared across
  /// snapshots; ingest republishes runtimes WITHOUT rebuilding it, and
  /// compaction swaps in the fresh lexicon's copy.
  std::shared_ptr<const text::TermDict> terms;
  std::shared_ptr<const QuestionTagger> tagger;
  /// Seed §4.3 Type-rank reference path (rankers, parity checks,
  /// use_planner=false).
  std::shared_ptr<const db::Executor> executor;
  /// Column statistics frozen at registration: the planner below estimates
  /// against exactly these even if the table were re-indexed later.
  std::shared_ptr<const db::exec::TableStats> stats;
  /// Cost-aware plan compiler over the domain's monolithic column store.
  std::shared_ptr<const db::exec::Planner> planner;
  /// Fixed-size row partitions of the store (EngineOptions::partition_rows
  /// > 0 only) and the per-partition plan compiler. Null when monolithic.
  std::shared_ptr<const db::exec::PartitionedTable> partitions;
  std::shared_ptr<const db::exec::ParallelPlanner> parallel_planner;
  /// Frozen ingest delta riding on `table`: rows inserted/retired since the
  /// last compaction. Null or empty() when the domain has no pending delta;
  /// queries then skip the hybrid union path entirely.
  std::shared_ptr<const db::DeltaStore> delta;
  std::shared_ptr<const qlog::TiMatrix> ti_matrix;
  std::vector<double> attr_ranges;  ///< Eq. 4 normalization
  /// Per-block code/value summaries of `table` for top-k rank pruning
  /// (EngineOptions::use_topk_rank). Rebuilt whenever the base table
  /// changes (registration, compaction, snapshot load); never serialized.
  std::shared_ptr<const db::exec::RankBounds> rank_bounds;

  /// The delta when it actually changes answers, nullptr otherwise.
  const db::DeltaStore* live_delta() const {
    return (delta != nullptr && !delta->empty()) ? delta.get() : nullptr;
  }
};

class EngineSnapshot {
 public:
  using Ptr = std::shared_ptr<const EngineSnapshot>;

  const EngineOptions& options() const { return options_; }

  /// Monotonically increasing across Build() calls of one builder. The
  /// prepared-query cache keys on it so entries parsed against a stale
  /// snapshot never serve a new one.
  std::uint64_t version() const { return version_; }

  /// Per-domain state; nullptr when the domain is unregistered.
  const DomainRuntime* runtime(const std::string& domain) const;
  std::vector<std::string> Domains() const;

  const classify::QuestionClassifier& classifier() const {
    return classifier_;
  }
  bool classifier_trained() const { return classifier_trained_; }
  const wordsim::WsMatrix* word_similarity() const { return ws_; }

  /// The shared-corpus term dictionary (the WS matrix's interned stem
  /// vocabulary); nullptr when no WS matrix is installed.
  const text::TermDict* shared_terms() const {
    return ws_ == nullptr ? nullptr : &ws_->term_dict();
  }

  /// §3: the ads domain of a question. Fails when untrained.
  Result<std::string> ClassifyDomain(const std::string& question) const;
  /// Token-stream form (the pipeline's tokenize-once path).
  Result<std::string> ClassifyDomainTokens(const text::TokenList& tokens) const;

  /// Similarity resources for Rank_Sim scoring within one domain.
  SimilarityContext MakeSimilarityContext(const DomainRuntime& rt) const;

 private:
  friend class EngineBuilder;
  EngineSnapshot() = default;

  EngineOptions options_;
  std::uint64_t version_ = 0;
  std::map<std::string, std::shared_ptr<const DomainRuntime>> runtimes_;
  classify::QuestionClassifier classifier_;
  bool classifier_trained_ = false;
  const wordsim::WsMatrix* ws_ = nullptr;
  /// Set when the WS matrix is engine-owned (loaded from a persistent
  /// snapshot) rather than caller-owned: keeps ws_ alive for this
  /// snapshot's lifetime.
  std::shared_ptr<const wordsim::WsMatrix> owned_ws_;
};

/// Accumulates domains, classifier training, and the ingest deltas, then
/// freezes the state into snapshots. Successive Build() calls share
/// unchanged DomainRuntimes.
class EngineBuilder {
 public:
  EngineBuilder() : EngineBuilder(EngineOptions()) {}
  explicit EngineBuilder(EngineOptions options) : options_(options) {}

  /// Registers a domain: the ads table (indexes built) and its query-log-
  /// derived TI-matrix. Builds the trie lexicon, tagger, executor,
  /// partitions (when partition_rows > 0), and attribute ranges.
  /// Invalidates classifier training (corpus changed).
  Status AddDomain(const db::Table* table, qlog::TiMatrix ti_matrix);

  /// Incremental ingestion: appends the record to the domain's delta store
  /// and republishes the runtime generation — no index, lexicon, or
  /// partition rebuild. Returns the ad's global RowId (stable until the
  /// next compaction). Note: the delta rides on the registration-time
  /// lexicon, so genuinely NEW vocabulary in the record becomes taggable
  /// only after CompactDomain.
  Result<db::RowId> IngestAd(const std::string& domain, db::Record record);

  /// Tombstones an ad by global RowId (a base row or a delta row). The row
  /// stops matching queries immediately; storage is reclaimed at
  /// compaction.
  Status RetireAd(const std::string& domain, db::RowId row);

  /// Merges the domain's delta into a fresh base table (surviving base rows
  /// in RowId order, then surviving delta rows in insertion order), rebuilds
  /// indexes, stats, lexicon, tagger, planner, and partitions from it, and
  /// clears the delta. After this, answers are byte-identical to an engine
  /// rebuilt from scratch on the merged rows — the ingest differential
  /// tests pin exactly that. No-op (OK) when the domain has no delta.
  /// Classifier training is NOT invalidated (the stale classifier keeps
  /// serving); callers may retrain when corpus drift matters.
  Status CompactDomain(const std::string& domain);

  /// True when the domain has pending delta rows or tombstones.
  bool HasPendingDelta(const std::string& domain) const;

  /// Shared word-correlation matrix for Feat_Sim. Must outlive every
  /// snapshot built afterwards.
  void SetWordSimilarity(const wordsim::WsMatrix* ws) {
    ws_ = ws;
    owned_ws_.reset();
  }

  /// Owned variant: the builder (and every snapshot built afterwards) keeps
  /// the matrix alive. Used by the persistent-snapshot load path, where
  /// there is no caller-owned matrix to point at.
  void SetWordSimilarityOwned(std::shared_ptr<const wordsim::WsMatrix> ws) {
    owned_ws_ = std::move(ws);
    ws_ = owned_ws_.get();
  }

  // --- persistent snapshots (src/snapshot/engine_io.cc) ------------------

  /// Serializes the complete built state (domains, classifier, WS matrix,
  /// options) into one relocatable mmap-format file. Fails with
  /// FailedPrecondition when any domain has a pending ingest delta —
  /// compact first; a snapshot always represents a fully-merged base.
  Status SaveSnapshot(const std::string& path) const;

  /// Reloads a SaveSnapshot file via mmap: large POD arrays (trie nodes,
  /// CSR rows, column codes/doubles/bitmaps/postings) are adopted zero-copy
  /// out of the shared read-only mapping; string dictionaries are
  /// materialized once per open. The returned builder owns everything it
  /// serves from (tables, lexicons, WS matrix) plus the mapping itself.
  static Result<EngineBuilder> OpenSnapshot(const std::string& path);

  /// Labelled ad texts of every registered domain (exposed so benches can
  /// train alternative classifiers on identical data).
  std::vector<classify::LabelledDoc> MakeTrainingDocs() const;

  /// Trains the domain classifier on the registered tables' ad texts.
  Status TrainClassifier(
      classify::QuestionClassifier::Options classifier_options = {});

  /// Trains on the registered tables' ad texts plus caller-supplied extra
  /// documents (e.g. domain-keyword texts real ads would contain).
  Status TrainClassifierWithExtra(
      const std::vector<classify::LabelledDoc>& extra_docs,
      classify::QuestionClassifier::Options classifier_options = {});

  /// Freezes the current state into a new immutable snapshot. Cheap:
  /// domain runtimes are shared by pointer; only the classifier is copied.
  EngineSnapshot::Ptr Build();

  const EngineOptions& options() const { return options_; }

  /// Replaces the engine-wide knobs (answer caps, planner on/off, explain
  /// recording, partitioning); takes effect in the next Build(). Changing
  /// partition_rows re-shards every registered domain's store (sharing all
  /// other runtime components).
  void set_options(const EngineOptions& options);

  bool HasDomain(const std::string& domain) const {
    return runtimes_.count(domain) > 0;
  }

 private:
  friend struct cqads::snapshot::SerdeAccess;

  /// Builds a full runtime around `table` (every component fresh).
  Result<std::shared_ptr<DomainRuntime>> MakeRuntime(
      const db::Table* table, std::shared_ptr<const db::Table> owned,
      std::shared_ptr<const qlog::TiMatrix> ti) const;

  /// The domain's mutable pending delta, created on first use.
  Result<db::DeltaStore*> PendingDelta(const std::string& domain);

  /// Republishes `domain`'s runtime with the current pending delta frozen
  /// in (all other components shared).
  void RefreshDeltaRuntime(const std::string& domain);

  EngineOptions options_;
  std::uint64_t next_version_ = 1;
  std::map<std::string, std::shared_ptr<const DomainRuntime>> runtimes_;
  /// Mutable ingest state per domain; frozen copies go into runtimes.
  std::map<std::string, std::unique_ptr<db::DeltaStore>> pending_deltas_;
  classify::QuestionClassifier classifier_;
  bool classifier_trained_ = false;
  const wordsim::WsMatrix* ws_ = nullptr;
  /// Engine-owned WS matrix (persistent-snapshot load path); null when the
  /// caller owns the matrix via SetWordSimilarity.
  std::shared_ptr<const wordsim::WsMatrix> owned_ws_;
};

}  // namespace cqads::core

#endif  // CQADS_CORE_ENGINE_SNAPSHOT_H_
