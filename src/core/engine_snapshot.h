// Immutable read-side state of the CQAds engine, separated from the request
// path so queries can fan out across cores without locks.
//
// An EngineSnapshot freezes everything a question needs to be answered:
// per-domain lexicons/tries, taggers, executors, TI-matrices, and Eq. 4
// attribute ranges (DomainRuntime), plus the trained §3 classifier and the
// shared WS word-correlation matrix. Snapshots are built by an
// EngineBuilder and handed out as std::shared_ptr<const EngineSnapshot>:
// the hot path takes a reference, never a lock, and a snapshot can be
// atomically swapped when a domain is added or the classifier retrained
// while in-flight queries keep the old one alive.
//
// Thread-safety: every const method of EngineSnapshot and DomainRuntime is
// safe to call concurrently — all contained state is immutable after Build.
// EngineBuilder itself is not thread-safe; callers serialize mutations
// (CqadsEngine does so behind its mutex).
#ifndef CQADS_CORE_ENGINE_SNAPSHOT_H_
#define CQADS_CORE_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "classify/question_classifier.h"
#include "common/status.h"
#include "core/ask_types.h"
#include "core/domain_lexicon.h"
#include "core/question_tagger.h"
#include "core/rank_sim.h"
#include "db/exec/planner.h"
#include "db/exec/table_stats.h"
#include "db/executor.h"
#include "db/table.h"
#include "qlog/ti_matrix.h"
#include "wordsim/ws_matrix.h"

namespace cqads::core {

/// Everything the engine keeps per registered domain. Immutable once the
/// owning snapshot is built; shared (never copied) across snapshot
/// generations, so adding domain B does not rebuild domain A's trie.
struct DomainRuntime {
  const db::Table* table = nullptr;
  std::unique_ptr<DomainLexicon> lexicon;
  std::unique_ptr<QuestionTagger> tagger;
  /// Seed §4.3 Type-rank reference path (rankers, parity checks,
  /// use_planner=false).
  std::unique_ptr<db::Executor> executor;
  /// Column statistics frozen at registration: the planner below estimates
  /// against exactly these even if the table were re-indexed later.
  std::shared_ptr<const db::exec::TableStats> stats;
  /// Cost-aware plan compiler over the domain's column store.
  std::unique_ptr<db::exec::Planner> planner;
  qlog::TiMatrix ti_matrix;
  std::vector<double> attr_ranges;  ///< Eq. 4 normalization
};

class EngineSnapshot {
 public:
  using Ptr = std::shared_ptr<const EngineSnapshot>;

  const EngineOptions& options() const { return options_; }

  /// Monotonically increasing across Build() calls of one builder. The
  /// prepared-query cache keys on it so entries parsed against a stale
  /// snapshot never serve a new one.
  std::uint64_t version() const { return version_; }

  /// Per-domain state; nullptr when the domain is unregistered.
  const DomainRuntime* runtime(const std::string& domain) const;
  std::vector<std::string> Domains() const;

  const classify::QuestionClassifier& classifier() const {
    return classifier_;
  }
  bool classifier_trained() const { return classifier_trained_; }
  const wordsim::WsMatrix* word_similarity() const { return ws_; }

  /// §3: the ads domain of a question. Fails when untrained.
  Result<std::string> ClassifyDomain(const std::string& question) const;

  /// Similarity resources for Rank_Sim scoring within one domain.
  SimilarityContext MakeSimilarityContext(const DomainRuntime& rt) const;

 private:
  friend class EngineBuilder;
  EngineSnapshot() = default;

  EngineOptions options_;
  std::uint64_t version_ = 0;
  std::map<std::string, std::shared_ptr<const DomainRuntime>> runtimes_;
  classify::QuestionClassifier classifier_;
  bool classifier_trained_ = false;
  const wordsim::WsMatrix* ws_ = nullptr;
};

/// Accumulates domains and classifier training, then freezes the state into
/// snapshots. Successive Build() calls share unchanged DomainRuntimes.
class EngineBuilder {
 public:
  EngineBuilder() : EngineBuilder(EngineOptions()) {}
  explicit EngineBuilder(EngineOptions options) : options_(options) {}

  /// Registers a domain: the ads table (indexes built) and its query-log-
  /// derived TI-matrix. Builds the trie lexicon, tagger, executor, and
  /// attribute ranges. Invalidates classifier training (corpus changed).
  Status AddDomain(const db::Table* table, qlog::TiMatrix ti_matrix);

  /// Shared word-correlation matrix for Feat_Sim. Must outlive every
  /// snapshot built afterwards.
  void SetWordSimilarity(const wordsim::WsMatrix* ws) { ws_ = ws; }

  /// Labelled ad texts of every registered domain (exposed so benches can
  /// train alternative classifiers on identical data).
  std::vector<classify::LabelledDoc> MakeTrainingDocs() const;

  /// Trains the domain classifier on the registered tables' ad texts.
  Status TrainClassifier(
      classify::QuestionClassifier::Options classifier_options = {});

  /// Trains on the registered tables' ad texts plus caller-supplied extra
  /// documents (e.g. domain-keyword texts real ads would contain).
  Status TrainClassifierWithExtra(
      const std::vector<classify::LabelledDoc>& extra_docs,
      classify::QuestionClassifier::Options classifier_options = {});

  /// Freezes the current state into a new immutable snapshot. Cheap:
  /// domain runtimes are shared by pointer; only the classifier is copied.
  EngineSnapshot::Ptr Build();

  const EngineOptions& options() const { return options_; }

  /// Replaces the engine-wide knobs (answer caps, planner on/off, explain
  /// recording); takes effect in the next Build().
  void set_options(const EngineOptions& options) { options_ = options; }

  bool HasDomain(const std::string& domain) const {
    return runtimes_.count(domain) > 0;
  }

 private:
  EngineOptions options_;
  std::uint64_t next_version_ = 1;
  std::map<std::string, std::shared_ptr<const DomainRuntime>> runtimes_;
  classify::QuestionClassifier classifier_;
  bool classifier_trained_ = false;
  const wordsim::WsMatrix* ws_ = nullptr;
};

}  // namespace cqads::core

#endif  // CQADS_CORE_ENGINE_SNAPSHOT_H_
