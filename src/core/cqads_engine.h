// The CQAds engine: the paper's end-to-end pipeline behind one call.
//   Ask(question):
//     1. classify the question's ads domain (Naive Bayes / JBBSM, §3)
//     2. tag keywords with the domain trie, repairing spelling, missing
//        spaces, and shorthand notations (§4.1-4.2)
//     3. build conditions via context-switching analysis (§4.1.2)
//     4. assemble the (Boolean) query with rules 1-4 (§4.4)
//     5. render SQL and execute with the §4.3 evaluation order (§4.5)
//     6. when exact answers are scarce, retrieve N-1 partially-matched
//        answers and rank them by Rank_Sim (§4.3.1-4.3.2), capping the
//        total at 30
#ifndef CQADS_CORE_CQADS_ENGINE_H_
#define CQADS_CORE_CQADS_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "classify/question_classifier.h"
#include "common/status.h"
#include "core/boolean_assembler.h"
#include "core/domain_lexicon.h"
#include "core/question_tagger.h"
#include "core/rank_sim.h"
#include "db/database.h"
#include "db/executor.h"
#include "qlog/ti_matrix.h"
#include "wordsim/ws_matrix.h"

namespace cqads::core {

/// Everything the engine keeps per registered domain.
struct DomainRuntime {
  const db::Table* table = nullptr;
  std::unique_ptr<DomainLexicon> lexicon;
  std::unique_ptr<QuestionTagger> tagger;
  std::unique_ptr<db::Executor> executor;
  qlog::TiMatrix ti_matrix;
  std::vector<double> attr_ranges;  ///< Eq. 4 normalization
};

class CqadsEngine {
 public:
  struct Options {
    /// §4.3.1: at most 30 answers per question.
    std::size_t answer_cap = 30;
    /// Partial (N-1) answers are fetched when exact answers number fewer
    /// than this.
    std::size_t partial_trigger = 30;
    bool enable_partial = true;
  };

  CqadsEngine() : CqadsEngine(Options()) {}
  explicit CqadsEngine(Options options) : options_(options) {}

  // Movable, not copyable.
  CqadsEngine(CqadsEngine&&) = default;
  CqadsEngine& operator=(CqadsEngine&&) = default;

  /// Registers a domain: the ads table (indexes built) and its query-log-
  /// derived TI-matrix. Builds the trie lexicon, tagger, executor, and
  /// attribute ranges.
  Status AddDomain(const db::Table* table, qlog::TiMatrix ti_matrix);

  /// Shared word-correlation matrix for Feat_Sim. Must outlive the engine.
  void SetWordSimilarity(const wordsim::WsMatrix* ws) { ws_ = ws; }

  /// Trains the domain classifier on the registered tables' ad texts.
  Status TrainClassifier(
      classify::QuestionClassifier::Options classifier_options = {});

  /// Trains on the registered tables' ad texts plus caller-supplied extra
  /// documents (e.g. domain-keyword texts real ads would contain).
  Status TrainClassifierWithExtra(
      const std::vector<classify::LabelledDoc>& extra_docs,
      classify::QuestionClassifier::Options classifier_options = {});

  /// Labelled ad texts of every registered domain (exposed so benches can
  /// train alternative classifiers on identical data).
  std::vector<classify::LabelledDoc> MakeTrainingDocs() const;

  /// §3: the ads domain of a question. Fails when untrained.
  Result<std::string> ClassifyDomain(const std::string& question) const;

  /// Full analysis of a question within a known domain.
  struct ParsedQuestion {
    TaggingResult tags;
    BuiltConditions conditions;
    AssembledQuery assembled;
    db::Query query;      ///< executable form
    std::string sql;      ///< §4.5 nested-subquery SQL text
  };
  Result<ParsedQuestion> Parse(const std::string& domain,
                               const std::string& question) const;

  /// One retrieved answer.
  struct Answer {
    db::RowId row = 0;
    bool exact = true;
    double rank_sim = 0.0;     ///< Eq. 5 (exact answers: number of units)
    std::string measure;       ///< similarity measure used (partial only)
  };

  struct AskResult {
    std::string domain;
    std::string sql;
    std::string interpretation;
    bool contradiction = false;  ///< "search retrieved no results"
    std::vector<Answer> answers;
    std::size_t exact_count = 0;
    db::ExecStats stats;
  };

  /// Classifies, then answers.
  Result<AskResult> Ask(const std::string& question) const;

  /// Answers within a known domain (skips classification).
  Result<AskResult> AskInDomain(const std::string& domain,
                                const std::string& question) const;

  /// Runtime lookup for tests and benches; nullptr when unregistered.
  const DomainRuntime* runtime(const std::string& domain) const;

  const classify::QuestionClassifier& classifier() const {
    return classifier_;
  }
  std::vector<std::string> Domains() const;

 private:
  SimilarityContext MakeSimilarityContext(const DomainRuntime& rt) const;

  Options options_;
  std::map<std::string, std::unique_ptr<DomainRuntime>> runtimes_;
  classify::QuestionClassifier classifier_;
  bool classifier_trained_ = false;
  const wordsim::WsMatrix* ws_ = nullptr;
};

}  // namespace cqads::core

#endif  // CQADS_CORE_CQADS_ENGINE_H_
