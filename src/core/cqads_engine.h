// The CQAds engine facade: the paper's end-to-end pipeline behind one call.
//   Ask(question):
//     1. classify the question's ads domain (Naive Bayes / JBBSM, §3)
//     2. tag keywords with the domain trie, repairing spelling, missing
//        spaces, and shorthand notations (§4.1-4.2)
//     3. build conditions via context-switching analysis (§4.1.2)
//     4. assemble the (Boolean) query with rules 1-4 (§4.4)
//     5. render SQL and execute with the §4.3 evaluation order (§4.5)
//     6. when exact answers are scarce, retrieve N-1 partially-matched
//        answers and rank them by Rank_Sim (§4.3.1-4.3.2), capping the
//        total at 30
//
// Internally the engine is a thin shell over three layers:
//   * EngineBuilder accumulates mutable registration state (domains,
//     classifier training) — core/engine_snapshot.h;
//   * every mutation freezes an immutable EngineSnapshot that is atomically
//     swapped in; in-flight queries keep the snapshot they started with;
//   * Ask/AskInDomain/Parse run the staged QueryPipeline over a snapshot —
//     core/pipeline.h.
// Reads (Ask, Parse, ClassifyDomain, ...) are safe from any number of
// threads, concurrently with writes (AddDomain, TrainClassifier), which are
// serialized behind an internal mutex. serve/ConcurrentServer builds on
// this to fan a query stream out across a worker pool.
#ifndef CQADS_CORE_CQADS_ENGINE_H_
#define CQADS_CORE_CQADS_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "classify/question_classifier.h"
#include "common/status.h"
#include "core/ask_types.h"
#include "core/engine_snapshot.h"
#include "core/pipeline.h"
#include "db/database.h"
#include "qlog/ti_matrix.h"
#include "wordsim/ws_matrix.h"

namespace cqads::core {

class CqadsEngine {
 public:
  using Options = EngineOptions;
  using ParsedQuestion = core::ParsedQuestion;
  using Answer = core::Answer;
  using AskResult = core::AskResult;

  CqadsEngine() : CqadsEngine(Options()) {}
  explicit CqadsEngine(Options options)
      : builder_(options), snapshot_(builder_.Build()) {}

  // Neither copyable nor movable: readers may hold references concurrently.
  CqadsEngine(const CqadsEngine&) = delete;
  CqadsEngine& operator=(const CqadsEngine&) = delete;

  /// Registers a domain: the ads table (indexes built) and its query-log-
  /// derived TI-matrix. Builds the trie lexicon, tagger, executor, and
  /// attribute ranges, then swaps in a fresh snapshot.
  Status AddDomain(const db::Table* table, qlog::TiMatrix ti_matrix);

  /// Incremental ingestion: appends an ad to the domain's delta store and
  /// publishes a new snapshot — no index, lexicon, or partition rebuild.
  /// Queries transparently union the delta (tombstones masked) until
  /// CompactDomain folds it into a fresh base table. Returns the ad's
  /// global RowId (stable until the next compaction).
  Result<db::RowId> IngestAd(const std::string& domain, db::Record record);

  /// Tombstones an ad by global RowId and publishes a new snapshot. The
  /// row stops matching queries immediately.
  Status RetireAd(const std::string& domain, db::RowId row);

  /// Merges the domain's delta into a fresh (re-partitioned) base table and
  /// publishes a new version-stamped snapshot. Heavy, but safe to run from
  /// a background thread: in-flight queries keep the snapshot they pinned
  /// and are never blocked — only other writers serialize. Post-compaction
  /// answers are byte-identical to an engine rebuilt from scratch on the
  /// merged rows. No-op when the domain has no pending delta.
  Status CompactDomain(const std::string& domain);

  /// Shared word-correlation matrix for Feat_Sim. Must outlive the engine.
  void SetWordSimilarity(const wordsim::WsMatrix* ws);

  // --- persistent snapshots ----------------------------------------------

  /// Serializes the complete built state into one relocatable mmap-format
  /// file (EngineBuilder::SaveSnapshot). Fails with FailedPrecondition when
  /// any domain has a pending ingest delta — CompactDomain first.
  Status SaveSnapshot(const std::string& path) const;

  /// Boots an engine from a SaveSnapshot file in near O(1): large POD
  /// arrays are adopted zero-copy out of a shared read-only mapping. N
  /// processes opening the same file share its page-cache pages. Answers
  /// are byte-identical to the engine that saved the file.
  static Result<std::unique_ptr<CqadsEngine>> OpenSnapshot(
      const std::string& path);

  /// Replaces the engine-wide knobs and swaps in a fresh snapshot (cheap:
  /// domain runtimes are shared). The version bump means prepared-cache
  /// entries — including memoized plans — parsed under the old options are
  /// never replayed. Used by the parity/efficiency benches to compare the
  /// cost-aware planner against the seed Type-rank executor on one engine.
  void SetOptions(Options options);

  /// Trains the domain classifier on the registered tables' ad texts.
  Status TrainClassifier(
      classify::QuestionClassifier::Options classifier_options = {});

  /// Trains on the registered tables' ad texts plus caller-supplied extra
  /// documents (e.g. domain-keyword texts real ads would contain).
  Status TrainClassifierWithExtra(
      const std::vector<classify::LabelledDoc>& extra_docs,
      classify::QuestionClassifier::Options classifier_options = {});

  /// Labelled ad texts of every registered domain (exposed so benches can
  /// train alternative classifiers on identical data).
  std::vector<classify::LabelledDoc> MakeTrainingDocs() const;

  /// §3: the ads domain of a question. Fails when untrained.
  Result<std::string> ClassifyDomain(const std::string& question) const;

  /// Full analysis of a question within a known domain (the parse-side
  /// pipeline stages only).
  Result<ParsedQuestion> Parse(const std::string& domain,
                               const std::string& question) const;

  /// Classifies, then answers: the full pipeline.
  Result<AskResult> Ask(const std::string& question) const;

  /// Answers within a known domain (skips classification).
  Result<AskResult> AskInDomain(const std::string& domain,
                                const std::string& question) const;

  /// The current immutable snapshot: one atomic shared_ptr load, no lock
  /// (writers may hold the mutex for a whole retrain). Callers run
  /// pipelines against it without further coordination and keep it alive
  /// across concurrent AddDomain/TrainClassifier swaps.
  EngineSnapshot::Ptr snapshot() const;

  /// Runtime lookup for tests and benches; nullptr when unregistered.
  /// LIFETIME: the pointer is valid only until the next engine mutation —
  /// IngestAd, RetireAd, CompactDomain, SetOptions, and retraining all
  /// publish a REPLACEMENT runtime generation, after which the old one dies
  /// with its last snapshot. Callers that must hold domain state across
  /// mutations should pin snapshot() and read runtime() off it instead.
  const DomainRuntime* runtime(const std::string& domain) const;

  // The classifier lives on the snapshot: use snapshot()->classifier(),
  // holding the returned Ptr, so the reference cannot dangle across a
  // concurrent retrain. (There is intentionally no classifier() accessor
  // here for that reason.)

  std::vector<std::string> Domains() const;

 private:
  /// Adopts a loaded builder (the OpenSnapshot path).
  explicit CqadsEngine(EngineBuilder builder)
      : builder_(std::move(builder)), snapshot_(builder_.Build()) {}

  /// Rebuilds the snapshot from the builder. Caller holds mu_.
  void SwapSnapshotLocked();

  mutable std::mutex mu_;
  EngineBuilder builder_;  ///< guarded by mu_
  /// Written via std::atomic_store under mu_, read via std::atomic_load
  /// with no lock. The pointee is immutable.
  EngineSnapshot::Ptr snapshot_;
};

}  // namespace cqads::core

#endif  // CQADS_CORE_CQADS_ENGINE_H_
