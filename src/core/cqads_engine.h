// The CQAds engine facade: the paper's end-to-end pipeline behind one call.
//   Ask(question):
//     1. classify the question's ads domain (Naive Bayes / JBBSM, §3)
//     2. tag keywords with the domain trie, repairing spelling, missing
//        spaces, and shorthand notations (§4.1-4.2)
//     3. build conditions via context-switching analysis (§4.1.2)
//     4. assemble the (Boolean) query with rules 1-4 (§4.4)
//     5. render SQL and execute with the §4.3 evaluation order (§4.5)
//     6. when exact answers are scarce, retrieve N-1 partially-matched
//        answers and rank them by Rank_Sim (§4.3.1-4.3.2), capping the
//        total at 30
//
// Internally the engine is a thin shell over three layers:
//   * EngineBuilder accumulates mutable registration state (domains,
//     classifier training) — core/engine_snapshot.h;
//   * every mutation freezes an immutable EngineSnapshot that is atomically
//     swapped in; in-flight queries keep the snapshot they started with;
//   * Ask/AskInDomain/Parse run the staged QueryPipeline over a snapshot —
//     core/pipeline.h.
// Reads (Ask, Parse, ClassifyDomain, ...) are safe from any number of
// threads, concurrently with writes (AddDomain, TrainClassifier), which are
// serialized behind an internal mutex. serve/ConcurrentServer builds on
// this to fan a query stream out across a worker pool.
#ifndef CQADS_CORE_CQADS_ENGINE_H_
#define CQADS_CORE_CQADS_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "classify/question_classifier.h"
#include "common/status.h"
#include "core/ask_types.h"
#include "core/engine_snapshot.h"
#include "core/pipeline.h"
#include "db/database.h"
#include "qlog/ti_matrix.h"
#include "wordsim/ws_matrix.h"

namespace cqads::core {

class CqadsEngine {
 public:
  using Options = EngineOptions;
  using ParsedQuestion = core::ParsedQuestion;
  using Answer = core::Answer;
  using AskResult = core::AskResult;

  CqadsEngine() : CqadsEngine(Options()) {}
  explicit CqadsEngine(Options options)
      : builder_(options), snapshot_(builder_.Build()) {}

  // Neither copyable nor movable: readers may hold references concurrently.
  CqadsEngine(const CqadsEngine&) = delete;
  CqadsEngine& operator=(const CqadsEngine&) = delete;

  /// Registers a domain: the ads table (indexes built) and its query-log-
  /// derived TI-matrix. Builds the trie lexicon, tagger, executor, and
  /// attribute ranges, then swaps in a fresh snapshot.
  Status AddDomain(const db::Table* table, qlog::TiMatrix ti_matrix);

  /// Shared word-correlation matrix for Feat_Sim. Must outlive the engine.
  void SetWordSimilarity(const wordsim::WsMatrix* ws);

  /// Replaces the engine-wide knobs and swaps in a fresh snapshot (cheap:
  /// domain runtimes are shared). The version bump means prepared-cache
  /// entries — including memoized plans — parsed under the old options are
  /// never replayed. Used by the parity/efficiency benches to compare the
  /// cost-aware planner against the seed Type-rank executor on one engine.
  void SetOptions(Options options);

  /// Trains the domain classifier on the registered tables' ad texts.
  Status TrainClassifier(
      classify::QuestionClassifier::Options classifier_options = {});

  /// Trains on the registered tables' ad texts plus caller-supplied extra
  /// documents (e.g. domain-keyword texts real ads would contain).
  Status TrainClassifierWithExtra(
      const std::vector<classify::LabelledDoc>& extra_docs,
      classify::QuestionClassifier::Options classifier_options = {});

  /// Labelled ad texts of every registered domain (exposed so benches can
  /// train alternative classifiers on identical data).
  std::vector<classify::LabelledDoc> MakeTrainingDocs() const;

  /// §3: the ads domain of a question. Fails when untrained.
  Result<std::string> ClassifyDomain(const std::string& question) const;

  /// Full analysis of a question within a known domain (the parse-side
  /// pipeline stages only).
  Result<ParsedQuestion> Parse(const std::string& domain,
                               const std::string& question) const;

  /// Classifies, then answers: the full pipeline.
  Result<AskResult> Ask(const std::string& question) const;

  /// Answers within a known domain (skips classification).
  Result<AskResult> AskInDomain(const std::string& domain,
                                const std::string& question) const;

  /// The current immutable snapshot: one atomic shared_ptr load, no lock
  /// (writers may hold the mutex for a whole retrain). Callers run
  /// pipelines against it without further coordination and keep it alive
  /// across concurrent AddDomain/TrainClassifier swaps.
  EngineSnapshot::Ptr snapshot() const;

  /// Runtime lookup for tests and benches; nullptr when unregistered. The
  /// pointer stays valid for the engine's lifetime (domains are never
  /// removed, only added).
  const DomainRuntime* runtime(const std::string& domain) const;

  // The classifier lives on the snapshot: use snapshot()->classifier(),
  // holding the returned Ptr, so the reference cannot dangle across a
  // concurrent retrain. (There is intentionally no classifier() accessor
  // here for that reason.)

  std::vector<std::string> Domains() const;

 private:
  /// Rebuilds the snapshot from the builder. Caller holds mu_.
  void SwapSnapshotLocked();

  mutable std::mutex mu_;
  EngineBuilder builder_;  ///< guarded by mu_
  /// Written via std::atomic_store under mu_, read via std::atomic_load
  /// with no lock. The pointee is immutable.
  EngineSnapshot::Ptr snapshot_;
};

}  // namespace cqads::core

#endif  // CQADS_CORE_CQADS_ENGINE_H_
