// The staged ask pipeline. The paper's monolithic Ask flow —
//   classify (§3) -> tag/repair (§4.1-4.2) -> build conditions (§4.1.2)
//   -> assemble Boolean query (§4.4) -> render SQL (§4.5)
//   -> execute (§4.3/§4.5) -> Rank_Sim partial ranking (§4.3.1-4.3.2)
// — decomposed into composable PipelineStages that operate on an immutable
// EngineSnapshot and a per-request QueryContext. Stages never touch shared
// mutable state: everything request-scoped (intermediate artifacts, the
// answer under construction, timings, the request RNG) lives in the
// context, so one snapshot serves any number of concurrent contexts.
#ifndef CQADS_CORE_PIPELINE_H_
#define CQADS_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/ask_types.h"
#include "core/engine_snapshot.h"
#include "text/term_dict.h"
#include "text/token.h"

namespace cqads::core {

/// Per-request scratch state threaded through the stages.
struct QueryContext {
  /// `domain` empty: the classify stage runs. Non-empty: classification is
  /// skipped (the AskInDomain path, or a cache hit that already knows it).
  explicit QueryContext(std::string question_text, std::string domain_name = "");

  std::string question;
  std::string domain;

  /// The question's token stream, produced ONCE on first use and shared by
  /// every stage (§3 classification features, §4.1 tagging). Before the
  /// term substrate, classify and tag each re-tokenized the raw string.
  const text::TokenList& tokens();

  /// Parse-side artifacts (tag -> conditions -> assembly -> SQL), filled
  /// by the parse stages. Unused when `cached_parsed` is set.
  ParsedQuestion parsed;

  /// A memoized parse injected by the prepared-query cache. When set, the
  /// parse stages are skipped and the execution stages read through it —
  /// no copy: the immutable ParsedQuestion is shared across all concurrent
  /// requests that hit the same entry.
  std::shared_ptr<const ParsedQuestion> cached_parsed;

  bool parsed_from_cache() const { return cached_parsed != nullptr; }

  /// The parse the execution stages should read: the cached one when
  /// present, this request's own otherwise.
  const ParsedQuestion& parsed_view() const {
    return cached_parsed ? *cached_parsed : parsed;
  }

  /// The answer under construction; stages fill it incrementally.
  AskResult result;

  /// Set by a stage to short-circuit the rest of the pipeline (e.g. a rule
  /// 1c contradiction: "search retrieved no results").
  bool done = false;

  /// The request's budget. Default-infinite: the no-deadline path never
  /// reads the clock and behaves byte-identically to the pre-deadline
  /// engine. The pipeline checks it at stage boundaries; the execution
  /// layers at morsel/chunk boundaries through control().
  Deadline deadline;

  /// Request-scoped cancellation flag shared by every thread cooperating
  /// on this request (partition morsel helpers). Raised by the first
  /// deadline observer; never reset.
  CancelToken cancel;

  /// The (deadline, token) pair the execution layers thread through
  /// db/exec. Valid while this context is alive.
  ExecControl control() { return ExecControl{deadline, &cancel}; }

  /// Per-request deterministic RNG (seeded from the question text), so any
  /// stochastic stage draws from request-local state instead of a shared
  /// generator — a shared Rng would race under the concurrent server.
  Rng rng;

 private:
  bool tokens_ready_ = false;
  text::TokenList tokens_;
};

/// One stage of the ask pipeline. Implementations must be stateless (or
/// immutable after construction): a single stage instance runs concurrent
/// requests.
class PipelineStage {
 public:
  virtual ~PipelineStage() = default;
  virtual const char* name() const = 0;
  /// May read anything from the snapshot, mutates only the context.
  virtual Status Run(const EngineSnapshot& snapshot,
                     QueryContext* ctx) const = 0;
  /// True when the stage only IMPROVES an answer that is already complete
  /// and correct without it (RankStage's partial retrieval). When the
  /// deadline expires before such a stage, the pipeline skips it and marks
  /// the result degraded instead of failing the whole request.
  virtual bool degradable() const { return false; }
};

/// An ordered stage sequence. Run() executes stages in order, records a
/// per-stage wall-clock timing into ctx->result.timings, and stops early
/// when a stage fails or sets ctx->done.
class QueryPipeline {
 public:
  explicit QueryPipeline(std::vector<std::unique_ptr<PipelineStage>> stages)
      : stages_(std::move(stages)) {}

  Status Run(const EngineSnapshot& snapshot, QueryContext* ctx) const;

  const std::vector<std::unique_ptr<PipelineStage>>& stages() const {
    return stages_;
  }

  /// The full ask pipeline: classify, tag, conditions, assemble, render,
  /// plan, execute, rank. Shared immutable instance.
  static const QueryPipeline& Full();

  /// Parse-side only (tag -> render -> plan); what CqadsEngine::Parse and
  /// the prepared-query cache's fill path run.
  static const QueryPipeline& ParseOnly();

 private:
  std::vector<std::unique_ptr<PipelineStage>> stages_;
};

// --- concrete stages (exposed for tests and custom pipelines) -----------

/// §3: classify the question's ads domain; skipped when ctx->domain preset.
class ClassifyStage : public PipelineStage {
 public:
  const char* name() const override { return "classify"; }
  Status Run(const EngineSnapshot& s, QueryContext* ctx) const override;
};

/// §4.1-4.2: trie tagging with spelling/segmentation/shorthand repair.
class TagStage : public PipelineStage {
 public:
  const char* name() const override { return "tag"; }
  Status Run(const EngineSnapshot& s, QueryContext* ctx) const override;
};

/// §4.1.2: context-switching analysis merging tags into conditions.
class ConditionStage : public PipelineStage {
 public:
  const char* name() const override { return "conditions"; }
  Status Run(const EngineSnapshot& s, QueryContext* ctx) const override;
};

/// §4.4 rules 1-4 plus §4.2.2 ambiguous-number resolution.
class AssembleStage : public PipelineStage {
 public:
  const char* name() const override { return "assemble"; }
  Status Run(const EngineSnapshot& s, QueryContext* ctx) const override;
};

/// §4.5: executable query + nested-subquery SQL text.
class RenderSqlStage : public PipelineStage {
 public:
  const char* name() const override { return "render_sql"; }
  Status Run(const EngineSnapshot& s, QueryContext* ctx) const override;
};

/// Compiles the executable query into a cost-aware physical plan
/// (db/exec/planner.h) over the domain's column store. Part of the
/// parse-side pipeline, so the prepared-query cache memoizes compiled plans
/// per snapshot version along with the rest of the ParsedQuestion. No-op
/// when EngineOptions::use_planner is off.
class PlanStage : public PipelineStage {
 public:
  const char* name() const override { return "plan"; }
  Status Run(const EngineSnapshot& s, QueryContext* ctx) const override;
};

/// §4.3/§4.5 exact evaluation — through the compiled plan (or the seed
/// Type-rank executor when planning is off); short-circuits on a
/// contradiction.
class ExecuteStage : public PipelineStage {
 public:
  const char* name() const override { return "execute"; }
  Status Run(const EngineSnapshot& s, QueryContext* ctx) const override;
};

/// §4.3.1-4.3.2: N-1 partial retrieval ranked by Rank_Sim, capped at 30.
/// Degradable: under deadline pressure it stops after the best-so-far
/// relaxation pass (the partials collected so far are still sorted and
/// appended) and marks the result degraded rather than returning nothing.
class RankStage : public PipelineStage {
 public:
  const char* name() const override { return "rank"; }
  Status Run(const EngineSnapshot& s, QueryContext* ctx) const override;
  bool degradable() const override { return true; }
};

}  // namespace cqads::core

#endif  // CQADS_CORE_PIPELINE_H_
