// Answer presentation (§4.5: "The answers are displayed on an HTML
// interface in a tabular manner"). Formats an AskResult as a fixed-width
// text table or a minimal HTML table, with the exact/partial flag and the
// similarity measure used for partial answers (Table 2's last column).
#ifndef CQADS_CORE_ANSWER_TABLE_H_
#define CQADS_CORE_ANSWER_TABLE_H_

#include <string>

#include "core/cqads_engine.h"
#include "db/storage/delta_store.h"
#include "db/table.h"

namespace cqads::core {

struct AnswerTableOptions {
  std::size_t max_rows = 10;
  /// Columns beyond this many attributes are elided (feature lists tend to
  /// dominate otherwise). 0 = all.
  std::size_t max_attributes = 6;
  bool show_rank_sim = true;
  /// Append the physical-plan dump (AskResult::explain) as a footer when
  /// the engine recorded one (EngineOptions::explain_plans).
  bool show_explain = false;
};

/// Fixed-width text rendering (monospace-aligned, one header row).
/// `delta` renders answers whose global RowId lies past the base table
/// (ads ingested since the last compaction) from their delta records; pass
/// the asked snapshot's DomainRuntime::delta. With delta omitted such rows
/// render a placeholder.
std::string FormatAnswersText(const db::Table& table,
                              const CqadsEngine::AskResult& result,
                              const AnswerTableOptions& options =
                                  AnswerTableOptions(),
                              const db::DeltaStore* delta = nullptr);

/// Minimal, well-formed HTML <table> rendering with escaped cell text.
std::string FormatAnswersHtml(const db::Table& table,
                              const CqadsEngine::AskResult& result,
                              const AnswerTableOptions& options =
                                  AnswerTableOptions(),
                              const db::DeltaStore* delta = nullptr);

/// Escapes &, <, >, and double quotes for HTML output.
std::string HtmlEscape(std::string_view text);

}  // namespace cqads::core

#endif  // CQADS_CORE_ANSWER_TABLE_H_
