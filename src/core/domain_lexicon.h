// Per-domain lexicon: the domain trie (§4.1.4) plus the side table of tag
// prototypes its handles point at. Built from the domain's relational schema
// and the distinct attribute values observed in its ads table, plus the
// shared identifiers table — exactly the ingredients §4.1.4 lists.
//
// Two trie representations coexist deliberately: the pointer KeywordTrie is
// the mutable build-side structure (and the oracle the differential suite
// checks against); Build() compiles it into an immutable FlatTrie whose
// contiguous node/edge arrays the serve-time tagger walks. Every keyword is
// also interned into the per-domain TermDict, which caches each term's
// Porter stem, stopword flag, and normalized shorthand form — shorthand
// probes read the cached norms instead of re-normalizing every categorical
// value per unknown token.
#ifndef CQADS_CORE_DOMAIN_LEXICON_H_
#define CQADS_CORE_DOMAIN_LEXICON_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/tags.h"
#include "db/table.h"
#include "text/term_dict.h"
#include "text/token.h"
#include "trie/flat_trie.h"
#include "trie/keyword_trie.h"

namespace cqads::snapshot {
struct SerdeAccess;
}

namespace cqads::core {

class DomainLexicon {
 public:
  /// Builds a lexicon from a table whose indexes are built (distinct
  /// categorical values are read from the hash indexes, mirroring the
  /// paper's extraction of attribute values from collected ads).
  static Result<DomainLexicon> Build(const db::Table* table);

  const db::Schema& schema() const { return *schema_; }
  /// Mutable-representation trie (build side; differential oracle).
  const trie::KeywordTrie& trie() const { return trie_; }
  /// Frozen flat compile of trie() — the serve-time representation.
  const trie::FlatTrie& flat_trie() const { return flat_trie_; }
  /// Interned keywords/values with cached stems, stopword flags, and
  /// shorthand norms. Frozen; snapshots publish it per domain.
  const text::TermDict& terms() const { return terms_; }

  /// Tag prototype behind a trie handle.
  const TaggedItem& entry(std::int32_t handle) const {
    return entries_[static_cast<std::size_t>(handle)];
  }
  std::size_t entry_count() const { return entries_.size(); }

  /// Longest multi-token phrase match starting at tokens[i] (phrases are
  /// stored space-joined in the trie: "less than", "4 wheel drive").
  struct PhraseMatch {
    std::size_t token_count = 0;
    std::vector<std::int32_t> handles;
  };
  std::optional<PhraseMatch> LongestPhraseMatch(
      const text::TokenList& tokens, std::size_t i,
      std::size_t max_tokens = 5) const;
  /// Identical semantics over the flat trie (serve-time path).
  std::optional<PhraseMatch> LongestPhraseMatchFlat(
      const text::TokenList& tokens, std::size_t i,
      std::size_t max_tokens = 5) const;

  /// Shorthand-notation resolution (§4.2.3): finds a categorical value of
  /// which `token` is a shorthand ("2dr" -> "2 door"). Longest value wins.
  /// Value norms come precomputed from the TermDict; only the probe token
  /// is normalized per call.
  std::optional<TaggedItem> FindShorthand(const std::string& token) const;

  /// All categorical values of one attribute (sorted), for generators and
  /// tests.
  std::vector<std::string> ValuesOf(std::size_t attr) const;

 private:
  /// Snapshot serde restores terms_/flat_trie_/entries_/categorical_values_
  /// directly, rewires schema_ to the loaded table, and rebuilds the
  /// pointer trie_ from the flat trie (FindShorthand walks trie_ at serve
  /// time, so it cannot stay empty).
  friend struct cqads::snapshot::SerdeAccess;

  DomainLexicon() = default;

  std::int32_t AddEntry(TaggedItem item);
  void InsertKeyword(const std::string& keyword, TaggedItem item);

  const db::Schema* schema_ = nullptr;
  trie::KeywordTrie trie_;
  trie::FlatTrie flat_trie_;
  text::TermDict terms_;
  std::vector<TaggedItem> entries_;
  /// One categorical value: its attribute, surface form, and interned id
  /// (the id indexes the cached shorthand norm). Sorted by (attr, value).
  struct CatValue {
    std::size_t attr = 0;
    std::string value;
    text::TermId id = text::kInvalidTerm;
  };
  std::vector<CatValue> categorical_values_;
};

}  // namespace cqads::core

#endif  // CQADS_CORE_DOMAIN_LEXICON_H_
