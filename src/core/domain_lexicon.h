// Per-domain lexicon: the domain trie (§4.1.4) plus the side table of tag
// prototypes its handles point at. Built from the domain's relational schema
// and the distinct attribute values observed in its ads table, plus the
// shared identifiers table — exactly the ingredients §4.1.4 lists.
#ifndef CQADS_CORE_DOMAIN_LEXICON_H_
#define CQADS_CORE_DOMAIN_LEXICON_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/tags.h"
#include "db/table.h"
#include "text/token.h"
#include "trie/keyword_trie.h"

namespace cqads::core {

class DomainLexicon {
 public:
  /// Builds a lexicon from a table whose indexes are built (distinct
  /// categorical values are read from the hash indexes, mirroring the
  /// paper's extraction of attribute values from collected ads).
  static Result<DomainLexicon> Build(const db::Table* table);

  const db::Schema& schema() const { return *schema_; }
  const trie::KeywordTrie& trie() const { return trie_; }

  /// Tag prototype behind a trie handle.
  const TaggedItem& entry(std::int32_t handle) const {
    return entries_[static_cast<std::size_t>(handle)];
  }
  std::size_t entry_count() const { return entries_.size(); }

  /// Longest multi-token phrase match starting at tokens[i] (phrases are
  /// stored space-joined in the trie: "less than", "4 wheel drive").
  struct PhraseMatch {
    std::size_t token_count = 0;
    std::vector<std::int32_t> handles;
  };
  std::optional<PhraseMatch> LongestPhraseMatch(
      const text::TokenList& tokens, std::size_t i,
      std::size_t max_tokens = 5) const;

  /// Shorthand-notation resolution (§4.2.3): finds a categorical value of
  /// which `token` is a shorthand ("2dr" -> "2 door"). Longest value wins.
  std::optional<TaggedItem> FindShorthand(const std::string& token) const;

  /// All categorical values of one attribute (sorted), for generators and
  /// tests.
  std::vector<std::string> ValuesOf(std::size_t attr) const;

 private:
  DomainLexicon() = default;

  std::int32_t AddEntry(TaggedItem item);
  void InsertKeyword(const std::string& keyword, TaggedItem item);

  const db::Schema* schema_ = nullptr;
  trie::KeywordTrie trie_;
  std::vector<TaggedItem> entries_;
  /// (attr, value) pairs of categorical values, for shorthand scans.
  std::vector<std::pair<std::size_t, std::string>> categorical_values_;
};

}  // namespace cqads::core

#endif  // CQADS_CORE_DOMAIN_LEXICON_H_
