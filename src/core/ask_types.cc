#include "core/ask_types.h"

#include <sstream>

namespace cqads::core {

std::string CanonicalAskResultString(const AskResult& result) {
  std::ostringstream os;
  os.precision(17);
  os << "domain=" << result.domain << '\n'
     << "sql=" << result.sql << '\n'
     << "interpretation=" << result.interpretation << '\n'
     << "contradiction=" << (result.contradiction ? 1 : 0) << '\n'
     << "exact_count=" << result.exact_count << '\n';
  for (const Answer& a : result.answers) {
    os << "row=" << a.row << " exact=" << (a.exact ? 1 : 0)
       << " rank_sim=" << a.rank_sim << " measure=" << a.measure << '\n';
  }
  return os.str();
}

}  // namespace cqads::core
