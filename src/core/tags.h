// Tag and condition model for question analysis (§4.1). The tagger labels
// every essential keyword of a question with an identifier (Table 1); the
// condition builder then merges partial pieces (operators, numbers, units,
// attribute mentions) into complete selection conditions via the paper's
// context-switching analysis.
#ifndef CQADS_CORE_TAGS_H_
#define CQADS_CORE_TAGS_H_

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "db/query.h"

namespace cqads::core {

/// Sentinel for "attribute not resolved yet".
inline constexpr std::size_t kNoAttr = std::numeric_limits<std::size_t>::max();

/// Identifier kinds assignable to keywords (Table 1) plus the literal kinds
/// the tagger recognizes outside the trie.
enum class TagKind {
  kTypeIValue,        ///< "honda" -> Make = honda
  kTypeIIValue,       ///< "automatic" -> Transmission = automatic
  kTypeIIIAttr,       ///< "price", "mileage": a quantitative attribute name
  kUnit,              ///< "dollars", "miles": unit identifying an attribute
  kOpLess,            ///< partial boundary: below/under/less than/...
  kOpGreater,         ///< partial boundary: above/over/greater than/...
  kOpEquals,          ///< equal(s)/exactly
  kOpBetween,         ///< between/range/within
  kBoundaryComplete,  ///< "cheaper"/"newer (than)": attribute implied
  kSuperComplete,     ///< "cheapest"/"newest": attribute + direction implied
  kSuperPartial,      ///< "lowest"/"max": direction only, needs an attribute
  kNegation,          ///< not/no/without/except/...
  kAnd,               ///< explicit Boolean AND
  kOr,                ///< explicit Boolean OR
  kNumber,            ///< numeric literal (not a trie keyword)
};

const char* TagKindToString(TagKind kind);

/// One tagged question element.
struct TaggedItem {
  TagKind kind = TagKind::kNumber;
  std::size_t attr = kNoAttr;  ///< schema attribute, when implied/resolved
  std::string value;           ///< surface value for Type I/II, keyword text
  double number = 0.0;         ///< numeric payload for kNumber
  bool is_money = false;       ///< number carried '$'
  bool ascending = true;       ///< superlative direction (true = min-seeking)
  db::CompareOp op = db::CompareOp::kEq;  ///< for operator-ish kinds
  std::size_t token_begin = 0;  ///< first source-token index
  std::size_t token_end = 0;    ///< one past the last source-token index
};

/// A complete selection condition after context-switching analysis.
struct Condition {
  enum class Kind {
    kTypeI,        ///< equality on a Type I attribute
    kTypeII,       ///< equality on a Type II attribute
    kTypeIIIBound, ///< comparison/range on a numeric attribute
    kSuperlative,  ///< order-by + take-extreme
    kAmbiguousNumber,  ///< bare number: attribute to be guessed (§4.2.2)
  };

  Kind kind = Kind::kTypeII;
  std::size_t attr = kNoAttr;
  std::string value;            ///< Type I/II value text
  db::CompareOp op = db::CompareOp::kEq;  ///< Type III operator
  double lo = 0.0;              ///< Type III operand (lo for between)
  double hi = 0.0;              ///< Type III hi operand (between only)
  bool ascending = true;        ///< superlative direction
  bool negated = false;         ///< negation applied (implicit NOT)
  bool is_money = false;        ///< ambiguous number carried '$'
  std::size_t order = 0;        ///< position in the question (for rules)

  bool IsBound() const { return kind == Kind::kTypeIIIBound; }
};

/// Human-readable one-line rendering, for debugging and golden tests.
std::string ConditionToString(const Condition& c,
                              const std::vector<std::string>& attr_names);

}  // namespace cqads::core

#endif  // CQADS_CORE_TAGS_H_
