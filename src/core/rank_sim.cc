#include "core/rank_sim.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/string_util.h"
#include "db/row_match.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"

namespace cqads::core {

namespace {

/// One row behind either representation: a table row read through the
/// column store, or a row-major delta Record. Scoring below goes through
/// this adapter only, so the two paths cannot drift.
struct RowAccess {
  const db::Schema* schema = nullptr;
  const db::Table* table = nullptr;  ///< table path when non-null
  db::RowId row = 0;
  const db::Record* record = nullptr;  ///< record path otherwise

  const db::Value& cell(std::size_t attr) const {
    return table != nullptr ? table->cell(row, attr) : (*record)[attr];
  }
  std::vector<std::string> elements(std::size_t attr) const {
    return table != nullptr
               ? table->CellElements(row, attr)
               : db::ValueElements(*schema, attr, (*record)[attr]);
  }
};

std::string Capitalize(const std::string& s) {
  std::string out = s;
  if (!out.empty()) out[0] = static_cast<char>(std::toupper(out[0]));
  return out;
}

/// Sorted unique attributes of a unit's conditions (the identity shape).
std::vector<std::size_t> UniqueCondAttrs(const MatchUnit& unit) {
  std::vector<std::size_t> attrs;
  for (const auto& c : unit.conds) attrs.push_back(c.attr);
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  return attrs;
}

/// The Table 2 measure label of a unit (shared by both scoring paths).
std::string MakeMeasure(const db::Schema& schema, const MatchUnit& unit) {
  switch (unit.kind) {
    case MatchUnit::Kind::kIdentity: {
      std::vector<std::string> names;
      for (std::size_t a : UniqueCondAttrs(unit)) {
        names.push_back(Capitalize(schema.attribute(a).name));
      }
      return "TI_Sim on " + Join(names, " and ");
    }
    case MatchUnit::Kind::kTypeII:
      return "Feat_Sim on " + Capitalize(schema.attribute(unit.attr).name);
    case MatchUnit::Kind::kTypeIII:
    case MatchUnit::Kind::kAmbiguous:
      return "Num_Sim on " + Capitalize(schema.attribute(unit.attr).name);
  }
  return std::string();
}

/// Word-level Feat_Sim between two possibly multi-word values: each word of
/// the requested value is aligned with its best WS match in the record's
/// value and the alignment scores are averaged, so "2 door" vs "4 door"
/// scores 0.5, not 1.0. Identical words contribute 1; everything is
/// normalized by the matrix maximum per Eq. 5.
double FeatSim(const wordsim::WsMatrix* ws, const std::string& a,
               const std::string& b) {
  if (a == b) return 1.0;
  if (ws == nullptr || ws->MaxSim() <= 0.0) return 0.0;
  auto ta = text::Tokenize(a);
  auto tb = text::Tokenize(b);
  if (ta.empty() || tb.empty()) return 0.0;
  // Conflicting numeric qualifiers are exclusive, not similar: "2 door" and
  // "4 door" share a word but denote incompatible properties.
  std::string digits_a, digits_b;
  for (const auto& t : ta) {
    if (t.kind == text::TokenKind::kNumber) digits_a += t.text + " ";
  }
  for (const auto& t : tb) {
    if (t.kind == text::TokenKind::kNumber) digits_b += t.text + " ";
  }
  if (!digits_a.empty() && !digits_b.empty() && digits_a != digits_b) {
    return 0.0;
  }
  double sum = 0.0;
  for (const auto& wa : ta) {
    double best = 0.0;
    for (const auto& wb : tb) {
      double s = wa.text == wb.text ? ws->MaxSim() : ws->Sim(wa.text, wb.text);
      best = std::max(best, s);
    }
    sum += best;
  }
  double mean = sum / static_cast<double>(ta.size());
  return std::min(1.0, mean / ws->MaxSim());
}

/// Identity-level TI_Sim with a part-wise fallback: the combined identity
/// strings are tried first; unknown pairs fall back to the best similarity
/// among the individual Type I values.
double IdentitySim(const qlog::TiMatrix* ti, const RowAccess& access,
                   const MatchUnit& unit) {
  if (ti == nullptr || ti->MaxSim() <= 0.0) return 0.0;

  // Record identity: the row's values of the unit's Type I attributes, in
  // schema order.
  std::string record_identity;
  std::vector<std::string> record_parts;
  for (std::size_t a : UniqueCondAttrs(unit)) {
    const db::Value& v = access.cell(a);
    if (!v.is_text()) continue;
    if (!record_identity.empty()) record_identity += " ";
    record_identity += v.text();
    record_parts.push_back(v.text());
  }
  if (record_identity == unit.value) return 1.0;

  double sim = ti->Sim(unit.value, record_identity);
  if (sim <= 0.0) {
    for (const auto& c : unit.conds) {
      for (const auto& rp : record_parts) {
        sim = std::max(sim, ti->Sim(c.value, rp));
      }
      sim = std::max(sim, ti->Sim(c.value, record_identity));
      sim = std::max(sim, ti->Sim(unit.value, c.value.empty() ? "" : record_identity));
    }
  }
  return std::min(1.0, sim / ti->MaxSim());
}

double UnitSimilarityImpl(const RowAccess& access, const MatchUnit& unit,
                          const SimilarityContext& ctx) {
  switch (unit.kind) {
    case MatchUnit::Kind::kIdentity:
      return IdentitySim(ctx.ti, access, unit);

    case MatchUnit::Kind::kTypeII: {
      // Best Feat_Sim between the requested value(s) and the record's
      // value/elements for the attribute.
      double best = 0.0;
      for (const auto& c : unit.conds) {
        for (const auto& element : access.elements(c.attr)) {
          best = std::max(best, FeatSim(ctx.ws, c.value, element));
        }
      }
      return best;
    }

    case MatchUnit::Kind::kTypeIII:
    case MatchUnit::Kind::kAmbiguous: {
      // Target scalar: an equality's value, a bound's threshold, or a
      // range's midpoint.
      double best = 0.0;
      for (const auto& c : unit.conds) {
        std::size_t attr = c.attr == kNoAttr ? unit.attr : c.attr;
        const db::Value& v = access.cell(attr);
        if (!v.is_numeric()) continue;
        double target =
            c.op == db::CompareOp::kBetween ? (c.lo + c.hi) / 2.0 : c.lo;
        double range =
            attr < ctx.attr_ranges.size() ? ctx.attr_ranges[attr] : 0.0;
        best = std::max(best, NumSim(target, v.AsDouble(), range));
      }
      return best;
    }
  }
  return 0.0;
}

PartialScore ScorePartialMatchImpl(const RowAccess& access,
                                   const std::vector<MatchUnit>& units,
                                   std::size_t dropped_unit,
                                   const SimilarityContext& ctx) {
  PartialScore out;
  const MatchUnit& unit = units[dropped_unit];
  out.unit_sim = UnitSimilarityImpl(access, unit, ctx);
  out.rank_sim = static_cast<double>(units.size()) - 1.0 + out.unit_sim;
  out.measure = MakeMeasure(*access.schema, unit);
  return out;
}

RowAccess TableRow(const db::Table& table, db::RowId row) {
  RowAccess access;
  access.schema = &table.schema();
  access.table = &table;
  access.row = row;
  return access;
}

RowAccess RecordRow(const db::Schema& schema, const db::Record& record) {
  RowAccess access;
  access.schema = &schema;
  access.record = &record;
  return access;
}

}  // namespace

double NumSim(double t, double v, double range) {
  if (range <= 0.0) return 0.0;
  double sim = 1.0 - std::abs(t - v) / range;
  return std::clamp(sim, 0.0, 1.0);
}

std::vector<double> ComputeAttrRanges(const db::Table& table) {
  const db::Schema& schema = table.schema();
  std::vector<double> ranges(schema.num_attributes(), 0.0);
  for (std::size_t a : schema.NumericAttrs()) {
    std::vector<double> values;
    values.reserve(table.num_rows());
    for (db::RowId r = 0; r < table.num_rows(); ++r) {
      const db::Value& v = table.cell(r, a);
      if (v.is_numeric()) values.push_back(v.AsDouble());
    }
    if (values.size() < 2) continue;
    std::sort(values.begin(), values.end());
    // Eq. 4's normalization: avg of the 10 highest minus avg of the 10
    // lowest values (the paper pulls these statistics from ebay.com).
    const std::size_t k = std::min<std::size_t>(10, values.size());
    double low = 0.0, high = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      low += values[i];
      high += values[values.size() - 1 - i];
    }
    ranges[a] = (high - low) / static_cast<double>(k);
  }
  return ranges;
}

double UnitSimilarity(const db::Table& table, db::RowId row,
                      const MatchUnit& unit, const SimilarityContext& ctx) {
  return UnitSimilarityImpl(TableRow(table, row), unit, ctx);
}

double UnitSimilarity(const db::Schema& schema, const db::Record& record,
                      const MatchUnit& unit, const SimilarityContext& ctx) {
  return UnitSimilarityImpl(RecordRow(schema, record), unit, ctx);
}

PartialScore ScorePartialMatch(const db::Table& table, db::RowId row,
                               const std::vector<MatchUnit>& units,
                               std::size_t dropped_unit,
                               const SimilarityContext& ctx) {
  return ScorePartialMatchImpl(TableRow(table, row), units, dropped_unit, ctx);
}

PartialScore ScorePartialMatch(const db::Schema& schema,
                               const db::Record& record,
                               const std::vector<MatchUnit>& units,
                               std::size_t dropped_unit,
                               const SimilarityContext& ctx) {
  return ScorePartialMatchImpl(RecordRow(schema, record), units, dropped_unit,
                               ctx);
}

// ---------------------------------------------------------------------------
// SimScorer: the id-keyed per-request path.
// ---------------------------------------------------------------------------

/// Table-or-record adapter for the scorer (mirrors RowAccess; private type
/// so the header stays free of scoring internals).
struct SimScorer::RowRef {
  const db::Schema* schema = nullptr;
  const db::Table* table = nullptr;
  db::RowId row = 0;
  const db::Record* record = nullptr;

  const db::Value& cell(std::size_t attr) const {
    return table != nullptr ? table->cell(row, attr) : (*record)[attr];
  }
  std::vector<std::string> elements(std::size_t attr) const {
    return table != nullptr
               ? table->CellElements(row, attr)
               : db::ValueElements(*schema, attr, (*record)[attr]);
  }
};

// Tokenizes a value and resolves each word against the WS vocabulary:
// stemming happens HERE, once per distinct string per request, never inside
// the row loop. The stem string is kept for the equal-stem rule when the id
// is out of vocabulary.
const SimScorer::ValueToks& SimScorer::ElementToks(const std::string& element) {
  auto it = element_toks_.find(element);
  if (it != element_toks_.end()) return it->second;
  ValueToks toks;
  for (const auto& tok : text::Tokenize(element)) {
    TokenSim t;
    t.text = tok.text;
    t.stem = text::PorterStem(tok.text);
    if (ctx_->ws != nullptr) t.ws_id = ctx_->ws->ResolveStem(t.stem);
    if (tok.kind == text::TokenKind::kNumber) {
      toks.digits += tok.text;
      toks.digits += " ";
    }
    toks.tokens.push_back(std::move(t));
  }
  return element_toks_.emplace(element, std::move(toks)).first->second;
}

text::TermId SimScorer::TiId(const std::string& value) {
  auto it = ti_ids_.find(value);
  if (it != ti_ids_.end()) return it->second;
  const text::TermId id =
      ctx_->ti != nullptr ? ctx_->ti->Resolve(value) : text::kInvalidTerm;
  ti_ids_.emplace(value, id);
  return id;
}

SimScorer::SimScorer(const db::Schema& schema,
                     const std::vector<MatchUnit>& units,
                     const SimilarityContext& ctx)
    : ctx_(&ctx) {
  units_.reserve(units.size());
  for (const MatchUnit& unit : units) {
    UnitSim u;
    u.unit = &unit;
    u.measure = MakeMeasure(schema, unit);
    if (unit.kind == MatchUnit::Kind::kIdentity) {
      u.identity_attrs = UniqueCondAttrs(unit);
      u.value_ti_id = TiId(unit.value);
    }
    for (const Condition& cond : unit.conds) {
      CondSim cs;
      cs.cond = &cond;
      switch (unit.kind) {
        case MatchUnit::Kind::kIdentity:
          cs.ti_id = TiId(cond.value);
          break;
        case MatchUnit::Kind::kTypeII:
          // Seed the memo with the question-side value; the row loop then
          // reuses the same tokenization machinery for both sides.
          cs.value_toks = ElementToks(cond.value);
          break;
        case MatchUnit::Kind::kTypeIII:
        case MatchUnit::Kind::kAmbiguous:
          break;  // numeric: no string state
      }
      u.conds.push_back(std::move(cs));
    }
    // ScoreBlock memo key: the sorted unique attributes the unit's
    // similarity reads (kNoAttr placeholders resolve to the unit's own
    // attribute, mirroring UnitSimImpl's numeric case).
    switch (unit.kind) {
      case MatchUnit::Kind::kIdentity:
        u.read_attrs = u.identity_attrs;
        break;
      case MatchUnit::Kind::kTypeII:
        u.read_attrs = UniqueCondAttrs(unit);
        break;
      case MatchUnit::Kind::kTypeIII:
      case MatchUnit::Kind::kAmbiguous:
        for (const Condition& c : unit.conds) {
          u.read_attrs.push_back(c.attr == kNoAttr ? unit.attr : c.attr);
        }
        std::sort(u.read_attrs.begin(), u.read_attrs.end());
        u.read_attrs.erase(
            std::unique(u.read_attrs.begin(), u.read_attrs.end()),
            u.read_attrs.end());
        break;
    }
    units_.push_back(std::move(u));
  }
  unit_memo_.resize(units_.size());
}

double SimScorer::FeatSimIds(const ValueToks& a, const std::string& a_raw,
                             const std::string& b_raw) {
  if (a_raw == b_raw) return 1.0;
  const wordsim::WsMatrix* ws = ctx_->ws;
  if (ws == nullptr || ws->MaxSim() <= 0.0) return 0.0;
  if (a.tokens.empty()) return 0.0;
  const ValueToks& b = ElementToks(b_raw);
  if (b.tokens.empty()) return 0.0;
  // Conflicting numeric qualifiers are exclusive, not similar (the seed
  // FeatSim's digit-signature guard, signatures precomputed here).
  if (!a.digits.empty() && !b.digits.empty() && a.digits != b.digits) {
    return 0.0;
  }
  double sum = 0.0;
  for (const TokenSim& wa : a.tokens) {
    double best = 0.0;
    for (const TokenSim& wb : b.tokens) {
      double s;
      if (wa.text == wb.text) {
        s = ws->MaxSim();
      } else if (wa.stem == wb.stem) {
        s = 1.0;  // equal stems score 1.0 even out of vocabulary
      } else {
        s = ws->SimById(wa.ws_id, wb.ws_id);
      }
      best = std::max(best, s);
    }
    sum += best;
  }
  double mean = sum / static_cast<double>(a.tokens.size());
  return std::min(1.0, mean / ws->MaxSim());
}

double SimScorer::IdentitySimIds(const RowRef& row, const UnitSim& unit) {
  const qlog::TiMatrix* ti = ctx_->ti;
  if (ti == nullptr || ti->MaxSim() <= 0.0) return 0.0;

  // Record identity: the row's values of the unit's Type I attributes, in
  // schema order (attrs were deduped and sorted at construction).
  std::string record_identity;
  std::vector<const std::string*> record_parts;
  for (std::size_t a : unit.identity_attrs) {
    const db::Value& v = row.cell(a);
    if (!v.is_text()) continue;
    if (!record_identity.empty()) record_identity += " ";
    record_identity += v.text();
    record_parts.push_back(&v.text());
  }
  if (record_identity == unit.unit->value) return 1.0;

  const text::TermId rid = TiId(record_identity);
  double sim = ti->SimById(unit.value_ti_id, rid);
  if (sim <= 0.0) {
    for (const CondSim& cs : unit.conds) {
      for (const std::string* rp : record_parts) {
        sim = std::max(sim, ti->SimById(cs.ti_id, TiId(*rp)));
      }
      sim = std::max(sim, ti->SimById(cs.ti_id, rid));
      if (!cs.cond->value.empty()) {
        sim = std::max(sim, ti->SimById(unit.value_ti_id, rid));
      }
    }
  }
  return std::min(1.0, sim / ti->MaxSim());
}

double SimScorer::UnitSimImpl(const RowRef& row, const UnitSim& unit) {
  switch (unit.unit->kind) {
    case MatchUnit::Kind::kIdentity:
      return IdentitySimIds(row, unit);

    case MatchUnit::Kind::kTypeII: {
      double best = 0.0;
      for (const CondSim& cs : unit.conds) {
        for (const auto& element : row.elements(cs.cond->attr)) {
          best = std::max(best,
                          FeatSimIds(cs.value_toks, cs.cond->value, element));
        }
      }
      return best;
    }

    case MatchUnit::Kind::kTypeIII:
    case MatchUnit::Kind::kAmbiguous: {
      double best = 0.0;
      for (const CondSim& cs : unit.conds) {
        const Condition& c = *cs.cond;
        std::size_t attr = c.attr == kNoAttr ? unit.unit->attr : c.attr;
        const db::Value& v = row.cell(attr);
        if (!v.is_numeric()) continue;
        double target =
            c.op == db::CompareOp::kBetween ? (c.lo + c.hi) / 2.0 : c.lo;
        double range =
            attr < ctx_->attr_ranges.size() ? ctx_->attr_ranges[attr] : 0.0;
        best = std::max(best, NumSim(target, v.AsDouble(), range));
      }
      return best;
    }
  }
  return 0.0;
}

PartialScore SimScorer::Score(const db::Table& table, db::RowId row,
                              std::size_t dropped_unit) {
  RowRef ref;
  ref.schema = &table.schema();
  ref.table = &table;
  ref.row = row;
  PartialScore out;
  const UnitSim& unit = units_[dropped_unit];
  out.unit_sim = UnitSimImpl(ref, unit);
  out.rank_sim = static_cast<double>(units_.size()) - 1.0 + out.unit_sim;
  out.measure = unit.measure;
  return out;
}

void SimScorer::ScoreBlock(const db::Table& table, const db::RowId* rows,
                           std::size_t n, std::size_t dropped_unit,
                           double* rank_sims, double* unit_sims) {
  const UnitSim& unit = units_[dropped_unit];
  const double exact_part = static_cast<double>(units_.size()) - 1.0;
  RowRef ref;
  ref.schema = &table.schema();
  ref.table = &table;

  const std::size_t num_attrs = unit.read_attrs.size();
  if (num_attrs == 0 || num_attrs > 2) {
    // No cells read, or too wide for the u64 code-tuple key: score row by
    // row (question shapes never get here in practice — units read one or
    // two attributes).
    for (std::size_t i = 0; i < n; ++i) {
      ref.row = rows[i];
      const double s = UnitSimImpl(ref, unit);
      rank_sims[i] = exact_part + s;
      if (unit_sims != nullptr) unit_sims[i] = s;
    }
    return;
  }

  // Dictionary codes determine cells, cells determine elements, so the
  // code tuple over read_attrs determines the similarity. kNullCode keys
  // like any other code (the null cell's similarity is memoized too).
  const std::uint32_t* c0 = table.store().code_column(unit.read_attrs[0]).data();
  const std::uint32_t* c1 =
      num_attrs == 2 ? table.store().code_column(unit.read_attrs[1]).data()
                     : nullptr;
  auto& memo = unit_memo_[dropped_unit];
  for (std::size_t i = 0; i < n; ++i) {
    const db::RowId r = rows[i];
    std::uint64_t key = c0[r];
    if (c1 != nullptr) key = (key << 32) | c1[r];
    auto it = memo.find(key);
    if (it == memo.end()) {
      ref.row = r;
      it = memo.emplace(key, UnitSimImpl(ref, unit)).first;
    }
    rank_sims[i] = exact_part + it->second;
    if (unit_sims != nullptr) unit_sims[i] = it->second;
  }
}

namespace {

/// How large a single-attribute dictionary may be before per-code bound
/// computation stops paying for itself (each code costs one representative-
/// row scoring call plus a slot in the range-max table).
constexpr std::size_t kMaxDictForRankBounds = 4096;

/// O(1) range-max over a fixed double array (sparse table, power-of-two
/// jumps). Built once per (request, unit); queried once per block.
class RangeMax {
 public:
  explicit RangeMax(std::vector<double> base) {
    levels_.push_back(std::move(base));
    for (std::size_t span = 1; span * 2 <= levels_[0].size(); span *= 2) {
      const std::vector<double>& prev = levels_.back();
      std::vector<double> next(prev.size() - span);
      for (std::size_t i = 0; i < next.size(); ++i) {
        next[i] = std::max(prev[i], prev[i + span]);
      }
      levels_.push_back(std::move(next));
    }
  }

  /// Max over [lo, hi] inclusive; lo <= hi < size.
  double Query(std::size_t lo, std::size_t hi) const {
    std::size_t level = 0, span = 1;
    while (span * 2 <= hi - lo + 1) {
      span *= 2;
      ++level;
    }
    return std::max(levels_[level][lo], levels_[level][hi + 1 - span]);
  }

 private:
  std::vector<std::vector<double>> levels_;
};

}  // namespace

bool SimScorer::ComputeBlockBounds(const db::Table& table,
                                   const db::exec::RankBounds& bounds,
                                   std::size_t dropped_unit,
                                   std::vector<double>* out_bounds) {
  const UnitSim& unit = units_[dropped_unit];
  const std::size_t nb = bounds.num_blocks();

  const MatchUnit::Kind kind = unit.unit->kind;
  if (kind == MatchUnit::Kind::kTypeIII ||
      kind == MatchUnit::Kind::kAmbiguous) {
    // Numeric: per-cond exact bound at the target clamped into the block's
    // value range; non-numeric cells contribute 0 (UnitSimImpl skips them),
    // so value-less blocks bound at 0.
    out_bounds->assign(nb, 0.0);
    for (const CondSim& cs : unit.conds) {
      const Condition& c = *cs.cond;
      const std::size_t attr = c.attr == kNoAttr ? unit.unit->attr : c.attr;
      const auto& ab = bounds.attr(attr);
      if (ab.val_min.empty()) continue;  // text column: never numeric
      const double target =
          c.op == db::CompareOp::kBetween ? (c.lo + c.hi) / 2.0 : c.lo;
      const double range =
          attr < ctx_->attr_ranges.size() ? ctx_->attr_ranges[attr] : 0.0;
      for (std::size_t b = 0; b < nb; ++b) {
        if (ab.val_min[b] > ab.val_max[b]) continue;  // no numeric values
        const double peak = std::clamp(target, ab.val_min[b], ab.val_max[b]);
        (*out_bounds)[b] =
            std::max((*out_bounds)[b], NumSim(target, peak, range));
      }
    }
    return true;
  }

  // Identity / Type II: pure function of the code on the single read
  // attribute. Wider units (composite identities) are not decomposable
  // into per-code bounds — no pruning for them.
  if (unit.read_attrs.size() != 1) return false;
  const std::size_t attr = unit.read_attrs[0];
  const auto& ab = bounds.attr(attr);
  const std::size_t dict_size = ab.first_row_of_code.size();
  if (dict_size > kMaxDictForRankBounds) return false;

  RowRef ref;
  ref.schema = &table.schema();
  ref.table = &table;
  auto& memo = unit_memo_[dropped_unit];

  std::vector<double> code_sims(dict_size, 0.0);
  for (std::size_t c = 0; c < dict_size; ++c) {
    const db::RowId rep = ab.first_row_of_code[c];
    if (rep == db::exec::kNoRankRow) continue;  // code in no row: unreachable
    auto it = memo.find(c);
    if (it == memo.end()) {
      ref.row = rep;
      it = memo.emplace(c, UnitSimImpl(ref, unit)).first;
    }
    code_sims[c] = it->second;
  }
  double null_sim = 0.0;
  if (ab.first_null_row != db::exec::kNoRankRow) {
    const std::uint64_t null_key = db::ColumnStore::kNullCode;
    auto it = memo.find(null_key);
    if (it == memo.end()) {
      ref.row = ab.first_null_row;
      it = memo.emplace(null_key, UnitSimImpl(ref, unit)).first;
    }
    null_sim = it->second;
  }

  const RangeMax range_max(std::move(code_sims));
  out_bounds->assign(nb, 0.0);
  for (std::size_t b = 0; b < nb; ++b) {
    double bound = ab.has_null[b] ? null_sim : 0.0;
    if (ab.code_min[b] <= ab.code_max[b]) {
      bound = std::max(bound, range_max.Query(ab.code_min[b], ab.code_max[b]));
    }
    (*out_bounds)[b] = bound;
  }
  return true;
}

PartialScore SimScorer::Score(const db::Schema& schema,
                              const db::Record& record,
                              std::size_t dropped_unit) {
  RowRef ref;
  ref.schema = &schema;
  ref.record = &record;
  PartialScore out;
  const UnitSim& unit = units_[dropped_unit];
  out.unit_sim = UnitSimImpl(ref, unit);
  out.rank_sim = static_cast<double>(units_.size()) - 1.0 + out.unit_sim;
  out.measure = unit.measure;
  return out;
}

}  // namespace cqads::core
