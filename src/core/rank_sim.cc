#include "core/rank_sim.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "db/row_match.h"
#include "text/tokenizer.h"

namespace cqads::core {

namespace {

/// One row behind either representation: a table row read through the
/// column store, or a row-major delta Record. Scoring below goes through
/// this adapter only, so the two paths cannot drift.
struct RowAccess {
  const db::Schema* schema = nullptr;
  const db::Table* table = nullptr;  ///< table path when non-null
  db::RowId row = 0;
  const db::Record* record = nullptr;  ///< record path otherwise

  const db::Value& cell(std::size_t attr) const {
    return table != nullptr ? table->cell(row, attr) : (*record)[attr];
  }
  std::vector<std::string> elements(std::size_t attr) const {
    return table != nullptr
               ? table->CellElements(row, attr)
               : db::ValueElements(*schema, attr, (*record)[attr]);
  }
};

std::string Capitalize(const std::string& s) {
  std::string out = s;
  if (!out.empty()) out[0] = static_cast<char>(std::toupper(out[0]));
  return out;
}

/// Word-level Feat_Sim between two possibly multi-word values: each word of
/// the requested value is aligned with its best WS match in the record's
/// value and the alignment scores are averaged, so "2 door" vs "4 door"
/// scores 0.5, not 1.0. Identical words contribute 1; everything is
/// normalized by the matrix maximum per Eq. 5.
double FeatSim(const wordsim::WsMatrix* ws, const std::string& a,
               const std::string& b) {
  if (a == b) return 1.0;
  if (ws == nullptr || ws->MaxSim() <= 0.0) return 0.0;
  auto ta = text::Tokenize(a);
  auto tb = text::Tokenize(b);
  if (ta.empty() || tb.empty()) return 0.0;
  // Conflicting numeric qualifiers are exclusive, not similar: "2 door" and
  // "4 door" share a word but denote incompatible properties.
  std::string digits_a, digits_b;
  for (const auto& t : ta) {
    if (t.kind == text::TokenKind::kNumber) digits_a += t.text + " ";
  }
  for (const auto& t : tb) {
    if (t.kind == text::TokenKind::kNumber) digits_b += t.text + " ";
  }
  if (!digits_a.empty() && !digits_b.empty() && digits_a != digits_b) {
    return 0.0;
  }
  double sum = 0.0;
  for (const auto& wa : ta) {
    double best = 0.0;
    for (const auto& wb : tb) {
      double s = wa.text == wb.text ? ws->MaxSim() : ws->Sim(wa.text, wb.text);
      best = std::max(best, s);
    }
    sum += best;
  }
  double mean = sum / static_cast<double>(ta.size());
  return std::min(1.0, mean / ws->MaxSim());
}

/// Identity-level TI_Sim with a part-wise fallback: the combined identity
/// strings are tried first; unknown pairs fall back to the best similarity
/// among the individual Type I values.
double IdentitySim(const qlog::TiMatrix* ti, const RowAccess& access,
                   const MatchUnit& unit) {
  if (ti == nullptr || ti->MaxSim() <= 0.0) return 0.0;

  // Record identity: the row's values of the unit's Type I attributes, in
  // schema order.
  std::vector<std::size_t> attrs;
  for (const auto& c : unit.conds) attrs.push_back(c.attr);
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  std::string record_identity;
  std::vector<std::string> record_parts;
  for (std::size_t a : attrs) {
    const db::Value& v = access.cell(a);
    if (!v.is_text()) continue;
    if (!record_identity.empty()) record_identity += " ";
    record_identity += v.text();
    record_parts.push_back(v.text());
  }
  if (record_identity == unit.value) return 1.0;

  double sim = ti->Sim(unit.value, record_identity);
  if (sim <= 0.0) {
    for (const auto& c : unit.conds) {
      for (const auto& rp : record_parts) {
        sim = std::max(sim, ti->Sim(c.value, rp));
      }
      sim = std::max(sim, ti->Sim(c.value, record_identity));
      sim = std::max(sim, ti->Sim(unit.value, c.value.empty() ? "" : record_identity));
    }
  }
  return std::min(1.0, sim / ti->MaxSim());
}

double UnitSimilarityImpl(const RowAccess& access, const MatchUnit& unit,
                          const SimilarityContext& ctx) {
  switch (unit.kind) {
    case MatchUnit::Kind::kIdentity:
      return IdentitySim(ctx.ti, access, unit);

    case MatchUnit::Kind::kTypeII: {
      // Best Feat_Sim between the requested value(s) and the record's
      // value/elements for the attribute.
      double best = 0.0;
      for (const auto& c : unit.conds) {
        for (const auto& element : access.elements(c.attr)) {
          best = std::max(best, FeatSim(ctx.ws, c.value, element));
        }
      }
      return best;
    }

    case MatchUnit::Kind::kTypeIII:
    case MatchUnit::Kind::kAmbiguous: {
      // Target scalar: an equality's value, a bound's threshold, or a
      // range's midpoint.
      double best = 0.0;
      for (const auto& c : unit.conds) {
        std::size_t attr = c.attr == kNoAttr ? unit.attr : c.attr;
        const db::Value& v = access.cell(attr);
        if (!v.is_numeric()) continue;
        double target =
            c.op == db::CompareOp::kBetween ? (c.lo + c.hi) / 2.0 : c.lo;
        double range =
            attr < ctx.attr_ranges.size() ? ctx.attr_ranges[attr] : 0.0;
        best = std::max(best, NumSim(target, v.AsDouble(), range));
      }
      return best;
    }
  }
  return 0.0;
}

PartialScore ScorePartialMatchImpl(const RowAccess& access,
                                   const std::vector<MatchUnit>& units,
                                   std::size_t dropped_unit,
                                   const SimilarityContext& ctx) {
  PartialScore out;
  const MatchUnit& unit = units[dropped_unit];
  out.unit_sim = UnitSimilarityImpl(access, unit, ctx);
  out.rank_sim = static_cast<double>(units.size()) - 1.0 + out.unit_sim;

  const db::Schema& schema = *access.schema;
  switch (unit.kind) {
    case MatchUnit::Kind::kIdentity: {
      std::vector<std::string> names;
      std::vector<std::size_t> attrs;
      for (const auto& c : unit.conds) attrs.push_back(c.attr);
      std::sort(attrs.begin(), attrs.end());
      attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
      for (std::size_t a : attrs) {
        names.push_back(Capitalize(schema.attribute(a).name));
      }
      out.measure = "TI_Sim on " + Join(names, " and ");
      break;
    }
    case MatchUnit::Kind::kTypeII:
      out.measure =
          "Feat_Sim on " + Capitalize(schema.attribute(unit.attr).name);
      break;
    case MatchUnit::Kind::kTypeIII:
    case MatchUnit::Kind::kAmbiguous:
      out.measure =
          "Num_Sim on " + Capitalize(schema.attribute(unit.attr).name);
      break;
  }
  return out;
}

RowAccess TableRow(const db::Table& table, db::RowId row) {
  RowAccess access;
  access.schema = &table.schema();
  access.table = &table;
  access.row = row;
  return access;
}

RowAccess RecordRow(const db::Schema& schema, const db::Record& record) {
  RowAccess access;
  access.schema = &schema;
  access.record = &record;
  return access;
}

}  // namespace

double NumSim(double t, double v, double range) {
  if (range <= 0.0) return 0.0;
  double sim = 1.0 - std::abs(t - v) / range;
  return std::clamp(sim, 0.0, 1.0);
}

std::vector<double> ComputeAttrRanges(const db::Table& table) {
  const db::Schema& schema = table.schema();
  std::vector<double> ranges(schema.num_attributes(), 0.0);
  for (std::size_t a : schema.NumericAttrs()) {
    std::vector<double> values;
    values.reserve(table.num_rows());
    for (db::RowId r = 0; r < table.num_rows(); ++r) {
      const db::Value& v = table.cell(r, a);
      if (v.is_numeric()) values.push_back(v.AsDouble());
    }
    if (values.size() < 2) continue;
    std::sort(values.begin(), values.end());
    // Eq. 4's normalization: avg of the 10 highest minus avg of the 10
    // lowest values (the paper pulls these statistics from ebay.com).
    const std::size_t k = std::min<std::size_t>(10, values.size());
    double low = 0.0, high = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      low += values[i];
      high += values[values.size() - 1 - i];
    }
    ranges[a] = (high - low) / static_cast<double>(k);
  }
  return ranges;
}

double UnitSimilarity(const db::Table& table, db::RowId row,
                      const MatchUnit& unit, const SimilarityContext& ctx) {
  return UnitSimilarityImpl(TableRow(table, row), unit, ctx);
}

double UnitSimilarity(const db::Schema& schema, const db::Record& record,
                      const MatchUnit& unit, const SimilarityContext& ctx) {
  return UnitSimilarityImpl(RecordRow(schema, record), unit, ctx);
}

PartialScore ScorePartialMatch(const db::Table& table, db::RowId row,
                               const std::vector<MatchUnit>& units,
                               std::size_t dropped_unit,
                               const SimilarityContext& ctx) {
  return ScorePartialMatchImpl(TableRow(table, row), units, dropped_unit, ctx);
}

PartialScore ScorePartialMatch(const db::Schema& schema,
                               const db::Record& record,
                               const std::vector<MatchUnit>& units,
                               std::size_t dropped_unit,
                               const SimilarityContext& ctx) {
  return ScorePartialMatchImpl(RecordRow(schema, record), units, dropped_unit,
                               ctx);
}

}  // namespace cqads::core
