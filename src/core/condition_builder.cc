#include "core/condition_builder.h"

#include <optional>

namespace cqads::core {

db::CompareOp ComplementOp(db::CompareOp op) {
  using Op = db::CompareOp;
  switch (op) {
    case Op::kLt:
      return Op::kGe;
    case Op::kLe:
      return Op::kGt;
    case Op::kGt:
      return Op::kLe;
    case Op::kGe:
      return Op::kLt;
    case Op::kEq:
      return Op::kNe;
    case Op::kNe:
      return Op::kEq;
    default:
      return op;  // kBetween/kContains have no single-op complement
  }
}

bool IsMoneyAttribute(const db::Attribute& attr) {
  for (const auto& unit : attr.unit_keywords) {
    if (unit == "usd" || unit == "dollars" || unit == "dollar" ||
        unit == "$" || unit == "bucks") {
      return true;
    }
  }
  return false;
}

namespace {

/// Mutable analysis state ("context" in the paper's context-switching).
struct BuilderState {
  // Explicit flag+value pairs instead of std::optional: deterministic
  // payload bytes keep GCC's -Wmaybe-uninitialized quiet at -O2 (the
  // engaged-byte analysis false-positives on optionals in -Werror builds).
  bool has_pending_op = false;
  db::CompareOp pending_op = db::CompareOp::kEq;
  bool pending_negation = false;
  std::size_t pending_attr = kNoAttr;   // from kTypeIIIAttr / kUnit / CB
  bool has_pending_super = false;       // a partial superlative is waiting
  bool pending_super_asc = true;        // its direction
  // An open BETWEEN waiting for its second operand.
  bool between_open = false;
  std::size_t between_cond = 0;  // index into out->conditions
};

/// The attribute bare money amounts most plausibly quantify: the first
/// money-unit numeric attribute of the schema.
std::size_t MoneyAttr(const db::Schema& schema) {
  for (std::size_t a : schema.NumericAttrs()) {
    if (IsMoneyAttribute(schema.attribute(a))) return a;
  }
  return kNoAttr;
}

/// Default attribute for a dangling partial superlative: "price" when the
/// schema has one (the dominant usage in ads questions), else the first
/// numeric attribute.
std::size_t DefaultSuperlativeAttr(const db::Schema& schema) {
  if (auto price = schema.Resolve("price")) return *price;
  auto numerics = schema.NumericAttrs();
  return numerics.empty() ? kNoAttr : numerics.front();
}

}  // namespace

BuiltConditions BuildConditions(const std::vector<TaggedItem>& items,
                                const db::Schema& schema) {
  BuiltConditions out;
  BuilderState st;

  auto emit = [&](Condition c) {
    c.order = out.conditions.size();
    out.conditions.push_back(std::move(c));
  };

  auto resolve_super = [&](std::size_t attr, bool ascending) {
    Condition c;
    c.kind = Condition::Kind::kSuperlative;
    c.attr = attr;
    c.ascending = ascending;
    emit(std::move(c));
  };

  // Finalizes a number into a bound (or ambiguous) condition.
  auto emit_number = [&](const TaggedItem& item) {
    if (st.between_open) {
      Condition& open = out.conditions[st.between_cond];
      open.hi = item.number;
      if (open.hi < open.lo) std::swap(open.lo, open.hi);
      st.between_open = false;
      return;
    }
    Condition c;
    c.lo = item.number;
    c.is_money = item.is_money;
    std::size_t attr = st.pending_attr;
    if (attr == kNoAttr && item.is_money) attr = MoneyAttr(schema);

    if (st.has_pending_op && st.pending_op == db::CompareOp::kBetween) {
      c.op = db::CompareOp::kBetween;
      c.hi = c.lo;  // until the second operand arrives
      c.kind = attr == kNoAttr ? Condition::Kind::kAmbiguousNumber
                               : Condition::Kind::kTypeIIIBound;
      c.attr = attr;
      if (st.pending_negation) {
        c.negated = true;  // negated BETWEEN: assembler complements the range
        st.pending_negation = false;
      }
      emit(std::move(c));
      st.between_open = true;
      st.between_cond = out.conditions.size() - 1;
    } else {
      c.op = st.has_pending_op ? st.pending_op : db::CompareOp::kEq;
      if (st.pending_negation) {
        c.op = ComplementOp(c.op);  // rule 1a: complement the quantifier
        st.pending_negation = false;
      }
      c.kind = attr == kNoAttr ? Condition::Kind::kAmbiguousNumber
                               : Condition::Kind::kTypeIIIBound;
      c.attr = attr;
      emit(std::move(c));
    }
    st.has_pending_op = false;
    st.pending_attr = kNoAttr;
  };

  // Attribute mention arriving *after* a number: "20k miles", "2000 dollars".
  auto try_assign_attr_backward = [&](std::size_t attr,
                                      std::size_t item_begin) -> bool {
    if (out.conditions.empty()) return false;
    Condition& last = out.conditions.back();
    if (last.kind != Condition::Kind::kAmbiguousNumber) return false;
    // Adjacency check is positional: the attribute keyword must directly
    // follow the number's tokens.
    (void)item_begin;
    last.kind = Condition::Kind::kTypeIIIBound;
    last.attr = attr;
    return true;
  };

  for (const TaggedItem& item : items) {
    switch (item.kind) {
      case TagKind::kTypeIValue:
      case TagKind::kTypeIIValue: {
        Condition c;
        c.kind = item.kind == TagKind::kTypeIValue ? Condition::Kind::kTypeI
                                                   : Condition::Kind::kTypeII;
        c.attr = item.attr;
        c.value = item.value;
        c.negated = st.pending_negation;
        st.pending_negation = false;
        emit(std::move(c));
        break;
      }

      case TagKind::kTypeIIIAttr:
      case TagKind::kUnit: {
        if (st.has_pending_super) {
          resolve_super(item.attr, st.pending_super_asc);
          st.has_pending_super = false;
          break;
        }
        if (try_assign_attr_backward(item.attr, item.token_begin)) break;
        st.pending_attr = item.attr;
        break;
      }

      case TagKind::kOpLess:
      case TagKind::kOpGreater:
      case TagKind::kOpEquals: {
        db::CompareOp op = item.op;
        if (st.pending_negation) {
          op = ComplementOp(op);
          st.pending_negation = false;
        }
        st.pending_op = op;
        st.has_pending_op = true;
        break;
      }

      case TagKind::kOpBetween:
        st.pending_op = db::CompareOp::kBetween;
        st.has_pending_op = true;
        break;

      case TagKind::kBoundaryComplete: {
        db::CompareOp op = item.op;
        if (st.pending_negation) {
          op = ComplementOp(op);
          st.pending_negation = false;
        }
        st.pending_op = op;
        st.has_pending_op = true;
        st.pending_attr = item.attr;
        break;
      }

      case TagKind::kSuperComplete:
        resolve_super(item.attr, item.ascending);
        break;

      case TagKind::kSuperPartial:
        if (st.pending_attr != kNoAttr) {
          resolve_super(st.pending_attr, item.ascending);
          st.pending_attr = kNoAttr;
        } else {
          st.pending_super_asc = item.ascending;
          st.has_pending_super = true;
        }
        break;

      case TagKind::kNegation:
        st.pending_negation = true;
        break;

      case TagKind::kAnd:
        // "between 2000 and 5000": the AND separates the two operands.
        if (st.between_open) break;
        out.operators.push_back({TagKind::kAnd, out.conditions.size()});
        out.has_explicit_and = true;
        break;

      case TagKind::kOr:
        out.operators.push_back({TagKind::kOr, out.conditions.size()});
        out.has_explicit_or = true;
        break;

      case TagKind::kNumber:
        emit_number(item);
        break;
    }
  }

  // Dangling partial superlative: fall back to the domain's dominant
  // quantitative attribute ("cheapest"-style intent is by far the most
  // common in ads questions).
  if (st.has_pending_super) {
    std::size_t attr = DefaultSuperlativeAttr(schema);
    if (attr != kNoAttr) resolve_super(attr, st.pending_super_asc);
  }

  // An unfinished BETWEEN ("between 2000"): degrade to >= lo.
  if (st.between_open) {
    Condition& open = out.conditions[st.between_cond];
    if (open.hi == open.lo) {
      open.op = db::CompareOp::kGe;
    }
  }

  return out;
}

}  // namespace cqads::core
