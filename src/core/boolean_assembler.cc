#include "core/boolean_assembler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

namespace cqads::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

db::Value NumValue(double d) {
  if (d == std::floor(d) && std::abs(d) < 9e15) {
    return db::Value::Int(static_cast<std::int64_t>(d));
  }
  return db::Value::Real(d);
}

db::ExprPtr NumPred(std::size_t attr, db::CompareOp op, double lo,
                    double hi = 0.0) {
  db::Predicate p;
  p.attr = attr;
  p.op = op;
  p.value = NumValue(lo);
  if (op == db::CompareOp::kBetween) p.value_hi = NumValue(hi);
  return db::Expr::MakePredicate(std::move(p));
}

db::ExprPtr TextPred(std::size_t attr, db::CompareOp op,
                     const std::string& value) {
  db::Predicate p;
  p.attr = attr;
  p.op = op;
  p.value = db::Value::Text(value);
  return db::Expr::MakePredicate(std::move(p));
}

/// Output of assembling one segment.
struct SegmentBuild {
  std::vector<MatchUnit> units;
  std::vector<db::ExprPtr> fixed;
  bool contradiction = false;

  db::ExprPtr ToExpr() const {
    std::vector<db::ExprPtr> parts;
    for (const auto& u : units) parts.push_back(u.expr);
    for (const auto& f : fixed) parts.push_back(f);
    if (parts.empty()) return nullptr;
    return db::Expr::MakeAnd(std::move(parts));
  }
};

/// Applies rules 1-3 within one segment.
SegmentBuild BuildSegment(const std::vector<Condition>& conds,
                          const db::Schema& schema,
                          const AmbiguousResolver& resolver) {
  SegmentBuild out;

  // --- Type I identity (rule 2b/3b anchor) ---
  std::map<std::size_t, std::vector<std::string>> identity_values;
  for (const auto& c : conds) {
    if (c.kind != Condition::Kind::kTypeI) continue;
    if (c.negated) {
      out.fixed.push_back(db::Expr::MakeNot(
          TextPred(c.attr, db::CompareOp::kEq, c.value)));
      continue;
    }
    identity_values[c.attr].push_back(c.value);
  }
  if (!identity_values.empty()) {
    MatchUnit unit;
    unit.kind = MatchUnit::Kind::kIdentity;
    std::vector<db::ExprPtr> attr_parts;
    std::string joined;
    for (const auto& [attr, values] : identity_values) {
      std::vector<db::ExprPtr> eqs;
      for (const auto& v : values) {
        eqs.push_back(TextPred(attr, db::CompareOp::kEq, v));
        if (!joined.empty()) joined += " ";
        joined += v;
        Condition c;
        c.kind = Condition::Kind::kTypeI;
        c.attr = attr;
        c.value = v;
        unit.conds.push_back(std::move(c));
      }
      attr_parts.push_back(db::Expr::MakeOr(std::move(eqs)));
      unit.attr = attr;
    }
    unit.expr = db::Expr::MakeAnd(std::move(attr_parts));
    unit.value = joined;
    out.units.push_back(std::move(unit));
  }

  // --- Type II (rule 2a) ---
  // Group by attribute, preserving first-appearance order.
  std::vector<std::size_t> t2_order;
  std::map<std::size_t, std::vector<Condition>> t2_groups;
  for (const auto& c : conds) {
    if (c.kind != Condition::Kind::kTypeII) continue;
    if (t2_groups.find(c.attr) == t2_groups.end()) t2_order.push_back(c.attr);
    t2_groups[c.attr].push_back(c);
  }
  for (std::size_t attr : t2_order) {
    const bool mutually_exclusive =
        schema.attribute(attr).data_kind == db::DataKind::kCategorical;
    std::vector<Condition> positive;
    for (const auto& c : t2_groups[attr]) {
      if (c.negated) {
        // Rule 2a: negated attribute values are ANDed together.
        out.fixed.push_back(db::Expr::MakeNot(
            TextPred(c.attr, db::CompareOp::kEq, c.value)));
      } else {
        positive.push_back(c);
      }
    }
    if (positive.empty()) continue;
    if (mutually_exclusive && positive.size() > 1) {
      // Mutually-exclusive values cannot co-exist: OR them (rule 2a).
      MatchUnit unit;
      unit.kind = MatchUnit::Kind::kTypeII;
      unit.attr = attr;
      std::vector<db::ExprPtr> eqs;
      std::string joined;
      for (const auto& c : positive) {
        eqs.push_back(TextPred(c.attr, db::CompareOp::kEq, c.value));
        if (!joined.empty()) joined += " or ";
        joined += c.value;
        unit.conds.push_back(c);
      }
      unit.expr = db::Expr::MakeOr(std::move(eqs));
      unit.value = joined;
      out.units.push_back(std::move(unit));
    } else {
      // Compatible values (multi-valued attributes like feature lists, or a
      // single value): each is its own ANDed unit.
      for (const auto& c : positive) {
        MatchUnit unit;
        unit.kind = MatchUnit::Kind::kTypeII;
        unit.attr = attr;
        unit.value = c.value;
        unit.expr = TextPred(c.attr, db::CompareOp::kEq, c.value);
        unit.conds.push_back(c);
        out.units.push_back(std::move(unit));
      }
    }
  }

  // --- Type III (rule 1) ---
  std::vector<std::size_t> t3_order;
  std::map<std::size_t, std::vector<Condition>> t3_groups;
  for (const auto& c : conds) {
    if (c.kind != Condition::Kind::kTypeIIIBound) continue;
    if (t3_groups.find(c.attr) == t3_groups.end()) t3_order.push_back(c.attr);
    t3_groups[c.attr].push_back(c);
  }
  for (std::size_t attr : t3_order) {
    double lower = -kInf, upper = kInf;
    bool lower_strict = false, upper_strict = false;
    std::vector<double> eqs;
    std::vector<Condition> merged_conds;
    for (const auto& c : t3_groups[attr]) {
      merged_conds.push_back(c);
      if (c.negated && c.op == db::CompareOp::kBetween) {
        // Rule 1a on a range: complement = outside the range.
        out.fixed.push_back(db::Expr::MakeOr(
            {NumPred(attr, db::CompareOp::kLt, c.lo),
             NumPred(attr, db::CompareOp::kGt, c.hi)}));
        merged_conds.pop_back();
        continue;
      }
      switch (c.op) {
        case db::CompareOp::kLt:
        case db::CompareOp::kLe:
          // Rule 1b: repeated upper bounds retain the lower value.
          if (c.lo < upper ||
              (c.lo == upper && c.op == db::CompareOp::kLt)) {
            upper = c.lo;
            upper_strict = c.op == db::CompareOp::kLt;
          }
          break;
        case db::CompareOp::kGt:
        case db::CompareOp::kGe:
          // Rule 1b: repeated lower bounds retain the higher value.
          if (c.lo > lower ||
              (c.lo == lower && c.op == db::CompareOp::kGt)) {
            lower = c.lo;
            lower_strict = c.op == db::CompareOp::kGt;
          }
          break;
        case db::CompareOp::kEq:
          eqs.push_back(c.lo);
          break;
        case db::CompareOp::kNe:
          out.fixed.push_back(db::Expr::MakeNot(
              NumPred(attr, db::CompareOp::kEq, c.lo)));
          merged_conds.pop_back();
          break;
        case db::CompareOp::kBetween:
          if (c.lo > lower) {
            lower = c.lo;
            lower_strict = false;
          }
          if (c.hi < upper) {
            upper = c.hi;
            upper_strict = false;
          }
          break;
        case db::CompareOp::kContains:
          break;  // not produced for numeric attributes
      }
    }
    // Rule 1c: combine a lower and an upper bound; empty ranges are the
    // paper's "search retrieved no results" case.
    if (lower > upper ||
        (lower == upper && (lower_strict || upper_strict))) {
      out.contradiction = true;
      return out;
    }
    std::vector<db::ExprPtr> parts;
    if (lower > -kInf) {
      parts.push_back(NumPred(
          attr, lower_strict ? db::CompareOp::kGt : db::CompareOp::kGe,
          lower));
    }
    if (upper < kInf) {
      parts.push_back(NumPred(
          attr, upper_strict ? db::CompareOp::kLt : db::CompareOp::kLe,
          upper));
    }
    if (!eqs.empty()) {
      std::vector<db::ExprPtr> eq_parts;
      for (double v : eqs) {
        eq_parts.push_back(NumPred(attr, db::CompareOp::kEq, v));
      }
      parts.push_back(db::Expr::MakeOr(std::move(eq_parts)));
    }
    if (parts.empty()) continue;
    MatchUnit unit;
    unit.kind = MatchUnit::Kind::kTypeIII;
    unit.attr = attr;
    unit.conds = std::move(merged_conds);
    unit.expr = db::Expr::MakeAnd(std::move(parts));
    out.units.push_back(std::move(unit));
  }

  // --- ambiguous bare numbers (§4.2.2) ---
  for (const auto& c : conds) {
    if (c.kind != Condition::Kind::kAmbiguousNumber) continue;
    std::vector<std::size_t> candidates =
        resolver ? resolver(c.lo, c.is_money) : std::vector<std::size_t>{};
    if (candidates.empty()) {
      // The value fits no Type III attribute's valid range: no record can
      // satisfy the condition.
      out.contradiction = true;
      return out;
    }
    std::vector<db::ExprPtr> alts;
    for (std::size_t attr : candidates) {
      alts.push_back(NumPred(attr, c.op, c.lo, c.hi));
    }
    MatchUnit unit;
    unit.kind = MatchUnit::Kind::kAmbiguous;
    unit.attr = candidates.front();
    unit.conds.push_back(c);
    unit.expr = db::Expr::MakeOr(std::move(alts));
    out.units.push_back(std::move(unit));
  }

  return out;
}

}  // namespace

AmbiguousResolver MakeStatsResolver(
    const db::Schema* schema,
    std::shared_ptr<const db::exec::TableStats> stats) {
  return [schema, stats = std::move(stats)](
             double value, bool is_money) -> std::vector<std::size_t> {
    std::vector<std::size_t> out;
    if (stats == nullptr) return out;
    for (std::size_t a : schema->NumericAttrs()) {
      if (is_money && !IsMoneyAttribute(schema->attribute(a))) continue;
      if (a >= stats->columns.size()) continue;
      const db::exec::ColumnStats& col = stats->columns[a];
      // No observed values: the attribute cannot vouch for any number
      // (mirrors the seed's NumericRange NotFound).
      if (col.histogram.total == 0) continue;
      if (value >= col.min && value <= col.max) out.push_back(a);
    }
    return out;
  };
}

Result<AssembledQuery> AssembleQuery(const BuiltConditions& built,
                                     const db::Schema& schema,
                                     const AmbiguousResolver& resolver) {
  AssembledQuery out;

  // Superlatives are applied last (§4.3); the first one in the question wins.
  std::vector<Condition> selection;
  for (const auto& c : built.conditions) {
    if (c.kind == Condition::Kind::kSuperlative) {
      if (!out.superlative && c.attr != kNoAttr) {
        out.superlative = db::Superlative{c.attr, c.ascending};
      }
      continue;
    }
    selection.push_back(c);
  }

  // OR positions act as segment boundaries (§4.4.2 special case).
  std::set<std::size_t> or_before;
  for (const auto& op : built.operators) {
    if (op.kind == TagKind::kOr) or_before.insert(op.order);
  }

  // Segmentation with the implicit mutually-exclusive-identity boundary.
  std::vector<std::vector<Condition>> segments;
  std::vector<Condition> cur;
  std::set<std::size_t> cur_anchor_attrs;
  auto flush = [&]() {
    if (!cur.empty()) segments.push_back(std::move(cur));
    cur.clear();
    cur_anchor_attrs.clear();
  };
  // A value directly continuing a run of the same attribute ("focus,
  // corolla, or civic"; "black or silver") is a mutually-exclusive
  // alternative: it stays in the segment and rule 2a ORs it, rather than
  // opening a new subexpression.
  auto continues_same_attr_run = [&](const Condition& c) {
    if (cur.empty() || c.negated) return false;
    const Condition& prev = cur.back();
    if (prev.negated || prev.attr != c.attr) return false;
    return (prev.kind == Condition::Kind::kTypeI &&
            c.kind == Condition::Kind::kTypeI) ||
           (prev.kind == Condition::Kind::kTypeII &&
            c.kind == Condition::Kind::kTypeII);
  };
  for (const auto& c : selection) {
    if (or_before.count(c.order) > 0 && !continues_same_attr_run(c)) {
      flush();
    }
    if (c.kind == Condition::Kind::kTypeI && !c.negated &&
        cur_anchor_attrs.count(c.attr) > 0 && !continues_same_attr_run(c)) {
      // A second value of an anchored Type I attribute starts a new
      // subexpression; the descriptive run right before it (which
      // right-associates per rule 2b) moves along.
      std::size_t k = cur.size();
      while (k > 0 && cur[k - 1].kind != Condition::Kind::kTypeI) --k;
      std::vector<Condition> carried(cur.begin() + static_cast<std::ptrdiff_t>(k),
                                     cur.end());
      cur.resize(k);
      flush();
      cur = std::move(carried);
    }
    if (c.kind == Condition::Kind::kTypeI && !c.negated) {
      cur_anchor_attrs.insert(c.attr);
    }
    cur.push_back(c);
  }
  flush();

  // Trailing global descriptors over a bare-identity disjunction.
  std::vector<Condition> global_conds;
  if (segments.size() >= 2) {
    auto& last = segments.back();
    std::size_t k = last.size();
    while (k > 0 && last[k - 1].kind != Condition::Kind::kTypeI) --k;
    if (k < last.size()) {
      bool others_bare = true;
      for (std::size_t s = 0; s + 1 < segments.size() && others_bare; ++s) {
        for (const auto& c : segments[s]) {
          if (c.kind != Condition::Kind::kTypeI) others_bare = false;
        }
      }
      for (std::size_t j = 0; j < k && others_bare; ++j) {
        if (last[j].kind != Condition::Kind::kTypeI) others_bare = false;
      }
      if (others_bare) {
        global_conds.assign(last.begin() + static_cast<std::ptrdiff_t>(k),
                            last.end());
        last.resize(k);
        if (last.empty()) segments.pop_back();
      }
    }
  }

  // Build each segment.
  std::vector<db::ExprPtr> segment_exprs;
  std::vector<SegmentBuild> builds;
  for (const auto& seg : segments) {
    SegmentBuild b = BuildSegment(seg, schema, resolver);
    if (b.contradiction) {
      out.contradiction = true;
      out.interpretation = "search retrieved no results";
      return out;
    }
    db::ExprPtr e = b.ToExpr();
    if (e) segment_exprs.push_back(e);
    builds.push_back(std::move(b));
  }

  db::ExprPtr where;
  if (!segment_exprs.empty()) {
    // Rule 4: identity-anchored subexpressions are ORed together.
    where = db::Expr::MakeOr(std::move(segment_exprs));
  }

  if (!global_conds.empty()) {
    SegmentBuild g = BuildSegment(global_conds, schema, resolver);
    if (g.contradiction) {
      out.contradiction = true;
      out.interpretation = "search retrieved no results";
      return out;
    }
    db::ExprPtr ge = g.ToExpr();
    if (ge) {
      where = where ? db::Expr::MakeAnd({where, ge}) : ge;
    }
  }

  out.where = where;

  // N-1 units only for single-segment (conjunctive) questions.
  if (builds.size() == 1 && global_conds.empty()) {
    out.units = builds[0].units;
    out.fixed = builds[0].fixed;
  }

  out.interpretation = InterpretationString(schema, out.where);
  return out;
}

Result<AssembledQuery> AssembleExplicitPrecedence(
    const BuiltConditions& built, const db::Schema& schema,
    const AmbiguousResolver& resolver) {
  AssembledQuery out;

  // Operands: every selection condition, each assembled individually (rule
  // 1's per-attribute merging is intentionally NOT applied across operands
  // — the operators are read literally).
  std::vector<Condition> selection;
  for (const auto& c : built.conditions) {
    if (c.kind == Condition::Kind::kSuperlative) {
      if (!out.superlative && c.attr != kNoAttr) {
        out.superlative = db::Superlative{c.attr, c.ascending};
      }
      continue;
    }
    selection.push_back(c);
  }
  if (selection.empty()) {
    out.interpretation = "";
    return out;
  }

  std::set<std::size_t> or_before;
  for (const auto& op : built.operators) {
    if (op.kind == TagKind::kOr) or_before.insert(op.order);
  }

  // Parse with precedence: OR terms are maximal AND-runs of operands.
  std::vector<db::ExprPtr> or_terms;
  std::vector<db::ExprPtr> current_and;
  for (const auto& c : selection) {
    if (or_before.count(c.order) > 0 && !current_and.empty()) {
      or_terms.push_back(db::Expr::MakeAnd(current_and));
      current_and.clear();
    }
    SegmentBuild one = BuildSegment({c}, schema, resolver);
    if (one.contradiction) {
      out.contradiction = true;
      out.interpretation = "search retrieved no results";
      return out;
    }
    db::ExprPtr e = one.ToExpr();
    if (e) current_and.push_back(e);
  }
  if (!current_and.empty()) {
    or_terms.push_back(db::Expr::MakeAnd(current_and));
  }
  if (!or_terms.empty()) out.where = db::Expr::MakeOr(std::move(or_terms));
  out.interpretation = InterpretationString(schema, out.where);
  return out;
}

namespace {

std::string RenderInterp(const db::Schema& schema, const db::Expr& expr) {
  switch (expr.kind()) {
    case db::Expr::Kind::kPredicate: {
      const db::Predicate& p = expr.predicate();
      const std::string& name = schema.attribute(p.attr).name;
      if (p.op == db::CompareOp::kBetween) {
        return name + " between " + p.value.AsText() + " and " +
               p.value_hi.AsText();
      }
      std::string rhs = p.value.is_text() ? "'" + p.value.AsText() + "'"
                                          : p.value.AsText();
      return name + " " + db::CompareOpToSql(p.op) + " " + rhs;
    }
    case db::Expr::Kind::kNot:
      return "NOT (" + RenderInterp(schema, *expr.children()[0]) + ")";
    case db::Expr::Kind::kAnd:
    case db::Expr::Kind::kOr: {
      const char* joiner = expr.kind() == db::Expr::Kind::kAnd ? " AND "
                                                               : " OR ";
      std::string s;
      for (std::size_t i = 0; i < expr.children().size(); ++i) {
        if (i > 0) s += joiner;
        const db::Expr& child = *expr.children()[i];
        bool parens = child.kind() == db::Expr::Kind::kAnd ||
                      child.kind() == db::Expr::Kind::kOr;
        if (parens) s += "(";
        s += RenderInterp(schema, child);
        if (parens) s += ")";
      }
      return s;
    }
  }
  return "";
}

}  // namespace

std::string InterpretationString(const db::Schema& schema,
                                 const db::ExprPtr& expr) {
  if (!expr) return "";
  return RenderInterp(schema, *expr);
}

}  // namespace cqads::core
