#include "core/domain_lexicon.h"

#include <algorithm>

#include "core/identifiers_table.h"
#include "text/shorthand.h"

namespace cqads::core {

namespace {

/// One phrase-match scan, generic over the trie representation (both expose
/// the same Cursor/Step/Walk/IsTerminal/Handles API and return identical
/// results).
template <typename TrieT>
std::optional<DomainLexicon::PhraseMatch> PhraseMatchIn(
    const TrieT& trie, const text::TokenList& tokens, std::size_t i,
    std::size_t max_tokens) {
  if (i >= tokens.size()) return std::nullopt;
  typename TrieT::Cursor cursor = trie.Root();
  std::optional<DomainLexicon::PhraseMatch> best;
  const std::size_t end = std::min(tokens.size(), i + max_tokens);
  for (std::size_t j = i; j < end; ++j) {
    if (j > i) {
      cursor = trie.Step(cursor, ' ');
      if (!cursor.valid()) break;
    }
    cursor = trie.Walk(cursor, tokens[j].text);
    if (!cursor.valid()) break;
    if (trie.IsTerminal(cursor)) {
      DomainLexicon::PhraseMatch m;
      m.token_count = j - i + 1;
      const auto& handles = trie.Handles(cursor);
      m.handles.assign(handles.begin(), handles.end());
      best = std::move(m);
    }
  }
  return best;
}

}  // namespace

std::int32_t DomainLexicon::AddEntry(TaggedItem item) {
  entries_.push_back(std::move(item));
  return static_cast<std::int32_t>(entries_.size() - 1);
}

void DomainLexicon::InsertKeyword(const std::string& keyword,
                                  TaggedItem item) {
  if (keyword.empty()) return;
  terms_.Intern(keyword);
  trie_.Insert(keyword, AddEntry(std::move(item)));
}

Result<DomainLexicon> DomainLexicon::Build(const db::Table* table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (!table->indexes_built()) {
    return Status::FailedPrecondition(
        "table indexes must be built before lexicon construction");
  }
  DomainLexicon lex;
  lex.schema_ = &table->schema();
  const db::Schema& schema = *lex.schema_;

  // 1. Attribute values from the ads themselves (the domain-specific table
  //    of §4.1.4): every distinct categorical value becomes a keyword whose
  //    identifier is '"attr" = value'.
  for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
    const db::Attribute& attr = schema.attribute(a);
    if (attr.data_kind == db::DataKind::kNumeric) continue;
    const db::HashIndex* idx = table->hash_index(a);
    if (idx == nullptr) continue;
    for (const auto& value : idx->Keys()) {
      TaggedItem item;
      item.kind = attr.attr_type == db::AttrType::kTypeI
                      ? TagKind::kTypeIValue
                      : TagKind::kTypeIIValue;
      item.attr = a;
      item.value = value;
      lex.categorical_values_.push_back(
          CatValue{a, value, lex.terms_.Intern(value)});
      lex.InsertKeyword(value, std::move(item));
    }
  }

  // 2. Quantitative attribute names, aliases, and unit keywords.
  for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
    const db::Attribute& attr = schema.attribute(a);
    if (attr.data_kind != db::DataKind::kNumeric) continue;
    TaggedItem name_item;
    name_item.kind = TagKind::kTypeIIIAttr;
    name_item.attr = a;
    name_item.value = attr.name;
    lex.InsertKeyword(attr.name, name_item);
    for (const auto& alias : attr.aliases) {
      TaggedItem it = name_item;
      it.value = alias;
      lex.InsertKeyword(alias, std::move(it));
    }
    for (const auto& unit : attr.unit_keywords) {
      TaggedItem it;
      it.kind = TagKind::kUnit;
      it.attr = a;
      it.value = unit;
      lex.InsertKeyword(unit, std::move(it));
    }
  }

  // 3. The shared identifiers table (Table 1). Rules bound to an attribute
  //    alias are skipped when this schema has no such attribute.
  for (const IdentifierRule& rule : BuiltinIdentifierRules()) {
    TaggedItem item;
    item.kind = rule.kind;
    item.ascending = rule.ascending;
    item.op = rule.op;
    item.value = rule.keyword;
    if (!rule.attr_alias.empty()) {
      auto resolved = schema.Resolve(rule.attr_alias);
      if (!resolved) continue;
      item.attr = *resolved;
    }
    lex.InsertKeyword(rule.keyword, std::move(item));
  }

  std::sort(lex.categorical_values_.begin(), lex.categorical_values_.end(),
            [](const CatValue& x, const CatValue& y) {
              if (x.attr != y.attr) return x.attr < y.attr;
              return x.value < y.value;
            });

  // Freeze the term substrate: compile the pointer trie into its flat
  // serve-time form and seal the dict (resolving stem links).
  lex.flat_trie_ = trie::FlatTrie::Compile(lex.trie_);
  lex.terms_.Freeze();
  return lex;
}

std::optional<DomainLexicon::PhraseMatch> DomainLexicon::LongestPhraseMatch(
    const text::TokenList& tokens, std::size_t i,
    std::size_t max_tokens) const {
  return PhraseMatchIn(trie_, tokens, i, max_tokens);
}

std::optional<DomainLexicon::PhraseMatch>
DomainLexicon::LongestPhraseMatchFlat(const text::TokenList& tokens,
                                      std::size_t i,
                                      std::size_t max_tokens) const {
  return PhraseMatchIn(flat_trie_, tokens, i, max_tokens);
}

std::optional<TaggedItem> DomainLexicon::FindShorthand(
    const std::string& token) const {
  const TaggedItem* best = nullptr;
  std::size_t best_len = 0;
  const std::string norm_token = text::NormalizeForShorthand(token);
  for (const CatValue& cat : categorical_values_) {
    const std::string& value = cat.value;
    if (value == token) continue;
    // Cached norm: the per-value NormalizeForShorthand the seed recomputed
    // on every probe.
    const std::string& norm_value = terms_.shorthand_norm(cat.id);
    // A shorthand abbreviates: the token must not be longer than the value
    // it stands for (longer unknown tokens are missing-space or misspelling
    // cases, handled elsewhere).
    if (norm_token.size() > norm_value.size()) continue;
    if (!text::IsShorthandMatchNormalized(norm_token, token, norm_value,
                                          value)) {
      continue;
    }
    if (value.size() > best_len) {
      const auto* handles = trie_.Find(value);
      if (handles == nullptr || handles->empty()) continue;
      best = &entries_[static_cast<std::size_t>((*handles)[0])];
      best_len = value.size();
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::vector<std::string> DomainLexicon::ValuesOf(std::size_t attr) const {
  std::vector<std::string> out;
  for (const CatValue& cat : categorical_values_) {
    if (cat.attr == attr) out.push_back(cat.value);
  }
  return out;
}

}  // namespace cqads::core
