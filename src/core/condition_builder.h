// Context-switching analysis (§4.1.2, Table 1): merges tagged items into
// complete selection conditions. Partial boundaries ("less than") combine
// with numbers and with the attribute identified by a name, unit keyword, or
// complete-boundary keyword; partial superlatives ("lowest") combine with a
// quantitative attribute mention; bare numbers become ambiguous conditions
// the engine later resolves against table value ranges (§4.2.2).
#ifndef CQADS_CORE_CONDITION_BUILDER_H_
#define CQADS_CORE_CONDITION_BUILDER_H_

#include <vector>

#include "core/tags.h"
#include "db/schema.h"

namespace cqads::core {

/// Position-stamped explicit Boolean operator, kept aside for the Boolean
/// assembler (§4.4).
struct OpMarker {
  TagKind kind = TagKind::kAnd;  ///< kAnd or kOr
  std::size_t order = 0;  ///< index into the condition sequence *before*
                          ///< which the operator occurred
};

struct BuiltConditions {
  std::vector<Condition> conditions;  ///< question order, `order` stamped
  std::vector<OpMarker> operators;    ///< explicit ANDs / ORs
  bool has_explicit_and = false;
  bool has_explicit_or = false;
};

/// Runs the condition state machine over tagged items.
BuiltConditions BuildConditions(const std::vector<TaggedItem>& items,
                                const db::Schema& schema);

/// Complements a comparison under negation (rule 1a): NOT < is >=, etc.
db::CompareOp ComplementOp(db::CompareOp op);

/// True when the attribute is denominated in money (its unit keywords
/// include a currency word). Used to bind '$'-marked numbers (§4.2.2).
bool IsMoneyAttribute(const db::Attribute& attr);

}  // namespace cqads::core

#endif  // CQADS_CORE_CONDITION_BUILDER_H_
