#include "core/question_tagger.h"

#include <algorithm>

#include "common/string_util.h"
#include "text/number_parser.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "trie/segmenter.h"

namespace cqads::core {

namespace {

int KindPriority(TagKind kind) {
  switch (kind) {
    case TagKind::kTypeIValue:
      return 0;
    case TagKind::kTypeIIValue:
      return 1;
    default:
      return 2;
  }
}

/// Phrase-match dispatch per trie representation (the two lexicon methods
/// are separate names, not overloads, so the template impl routes here).
std::optional<DomainLexicon::PhraseMatch> PhraseMatch(
    const DomainLexicon& lexicon, const trie::KeywordTrie&,
    const text::TokenList& tokens, std::size_t i) {
  return lexicon.LongestPhraseMatch(tokens, i);
}
std::optional<DomainLexicon::PhraseMatch> PhraseMatch(
    const DomainLexicon& lexicon, const trie::FlatTrie&,
    const text::TokenList& tokens, std::size_t i) {
  return lexicon.LongestPhraseMatchFlat(tokens, i);
}

/// Uniform handle lookup: KeywordTrie::Find returns vector* (nullable),
/// FlatTrie::Find a span by value.
trie::HandleSpan FindHandles(const trie::KeywordTrie& trie,
                             const std::string& keyword) {
  const auto* v = trie.Find(keyword);
  if (v == nullptr) return trie::HandleSpan{};
  return trie::HandleSpan{v->data(), v->size()};
}
trie::HandleSpan FindHandles(const trie::FlatTrie& trie,
                             const std::string& keyword) {
  return trie.Find(keyword);
}

}  // namespace

QuestionTagger::QuestionTagger(const DomainLexicon* lexicon, Options options)
    : lexicon_(lexicon),
      options_(options),
      corrector_(&lexicon->trie(),
                 trie::SpellCorrectorOptions{options.min_correction_percent,
                                             512}),
      flat_corrector_(
          &lexicon->flat_trie(),
          trie::SpellCorrectorOptions{options.min_correction_percent, 512}) {}

const TaggedItem& QuestionTagger::PreferredEntry(const std::int32_t* handles,
                                                 std::size_t count) const {
  const TaggedItem* best = &lexicon_->entry(handles[0]);
  for (std::size_t i = 0; i < count; ++i) {
    const TaggedItem& e = lexicon_->entry(handles[i]);
    if (KindPriority(e.kind) < KindPriority(best->kind)) best = &e;
  }
  return *best;
}

template <typename TrieT, typename CorrectorT>
TaggingResult QuestionTagger::TagImpl(text::TokenList tokens,
                                      const TrieT& trie,
                                      const CorrectorT& corrector) const {
  TaggingResult result;

  std::size_t i = 0;
  while (i < tokens.size()) {
    // 1. Longest trie phrase starting here (values, operators, attr names).
    if (auto match = PhraseMatch(*lexicon_, trie, tokens, i)) {
      TaggedItem item =
          PreferredEntry(match->handles.data(), match->handles.size());
      item.token_begin = i;
      item.token_end = i + match->token_count;
      result.items.push_back(std::move(item));
      i += match->token_count;
      continue;
    }

    const text::Token& tok = tokens[i];

    // 2. Stopword: non-essential, drop silently. This precedes number
    //    parsing so pronoun-like number words ("a blue one") don't become
    //    quantities.
    if (tok.kind == text::TokenKind::kWord && text::IsStopword(tok.text)) {
      ++i;
      continue;
    }

    // 3. Numeric literal — but first check whether the number plus the next
    //    token abbreviate a categorical value ("2 dr" -> "2 door", "four
    //    door" -> "4 door").
    if (auto num = text::ParseNumberToken(tok)) {
      if (i + 1 < tokens.size()) {
        if (auto joined =
                lexicon_->FindShorthand(tok.text + tokens[i + 1].text)) {
          TaggedItem item = *joined;
          item.token_begin = i;
          item.token_end = i + 2;
          result.shorthands.push_back(tok.text + " " + tokens[i + 1].text +
                                      " -> " + joined->value);
          result.items.push_back(std::move(item));
          i += 2;
          continue;
        }
      }
      TaggedItem item;
      item.kind = TagKind::kNumber;
      item.number = num->value;
      item.is_money = num->is_money;
      item.token_begin = i;
      item.token_end = i + 1;
      result.items.push_back(std::move(item));
      ++i;
      continue;
    }

    // 4. Missing-space repair: splice the segments back into the stream and
    //    reprocess from the same position. This runs before shorthand
    //    resolution: "hondaaccord" is a missing space, not an abbreviation,
    //    and segmentation demands a full keyword decomposition (higher
    //    precision than subsequence matching).
    auto segments = trie::SegmentWord(trie, tok.text);
    if (!segments.empty()) {
      result.segmentations.push_back(tok.text + " -> " +
                                     Join(segments, " "));
      text::TokenList spliced;
      spliced.reserve(tokens.size() + segments.size() - 1);
      spliced.insert(spliced.end(), tokens.begin(),
                     tokens.begin() + static_cast<std::ptrdiff_t>(i));
      for (const auto& seg : segments) {
        text::Token t;
        t.text = seg;
        t.kind = IsDigits(seg) ? text::TokenKind::kNumber
                               : text::TokenKind::kWord;
        t.offset = tok.offset;
        spliced.push_back(std::move(t));
      }
      spliced.insert(spliced.end(),
                     tokens.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                     tokens.end());
      tokens = std::move(spliced);
      continue;  // reprocess at position i
    }

    // 5. Shorthand notation of a known categorical value ("2dr").
    if (auto shorthand = lexicon_->FindShorthand(tok.text)) {
      TaggedItem item = *shorthand;
      item.token_begin = i;
      item.token_end = i + 1;
      result.shorthands.push_back(tok.text + " -> " + shorthand->value);
      result.items.push_back(std::move(item));
      ++i;
      continue;
    }

    // 6. Spelling correction against the trie.
    if (tok.text.size() >= options_.min_correction_length) {
      if (auto corrected = corrector.Correct(tok.text)) {
        result.corrections.push_back(
            tok.text + " -> " + corrected->keyword + " (" +
            FormatDouble(corrected->percent, 0) + "%)");
        const trie::HandleSpan handles = FindHandles(trie, corrected->keyword);
        if (!handles.empty()) {
          TaggedItem item = PreferredEntry(handles.begin(), handles.size());
          item.token_begin = i;
          item.token_end = i + 1;
          result.items.push_back(std::move(item));
          ++i;
          continue;
        }
      }
    }

    // 7. Unknown and unrepairable: a non-essential keyword (§4.1.4).
    result.dropped.push_back(tok.text);
    ++i;
  }
  return result;
}

TaggingResult QuestionTagger::Tag(const std::string& question) const {
  return TagImpl(text::Tokenize(question), lexicon_->trie(), corrector_);
}

TaggingResult QuestionTagger::TagTokens(const text::TokenList& tokens,
                                        bool use_flat) const {
  if (use_flat) {
    return TagImpl(tokens, lexicon_->flat_trie(), flat_corrector_);
  }
  return TagImpl(tokens, lexicon_->trie(), corrector_);
}

}  // namespace cqads::core
