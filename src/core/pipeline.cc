#include "core/pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>

#include "common/failpoint.h"
#include "db/exec/delta_exec.h"
#include "db/exec/morsel.h"
#include "db/exec/rank_bounds.h"
#include "db/exec/rowset_ops.h"
#include "db/exec/topk.h"
#include "db/sql_writer.h"
#include "text/tokenizer.h"

namespace cqads::core {
namespace {

/// Stages after classification all need the domain runtime; resolve it once
/// per call with a uniform error.
Result<const DomainRuntime*> RequireRuntime(const EngineSnapshot& s,
                                            const QueryContext& ctx) {
  const DomainRuntime* rt = s.runtime(ctx.domain);
  if (rt == nullptr) return Status::NotFound("unknown domain: " + ctx.domain);
  return rt;
}

/// The §4.3.1 N-1 relaxation of a parsed question: all units except
/// `dropped`, plus the never-dropped fixed fragments, uncapped (ranking
/// happens before the answer cap). One definition shared by the plan stage
/// (precompilation) and the rank stage (seed path).
db::Query MakeRelaxedQuery(const ParsedQuestion& parsed, std::size_t dropped,
                           std::size_t table_rows) {
  const auto& units = parsed.assembled.units;
  std::vector<db::ExprPtr> parts;
  for (std::size_t u = 0; u < units.size(); ++u) {
    if (u != dropped) parts.push_back(units[u].expr);
  }
  for (const auto& f : parsed.assembled.fixed) parts.push_back(f);
  db::Query relaxed;
  relaxed.where = parts.empty() ? nullptr : db::Expr::MakeAnd(parts);
  relaxed.limit = table_rows;
  return relaxed;
}

/// True when RankStage's N-1 loop can run for this parse (the conditions
/// knowable before execution; the exact-answer count is checked at rank
/// time).
bool IsRelaxable(const ParsedQuestion& parsed) {
  return parsed.assembled.units.size() >= 2 &&
         !parsed.query.superlative.has_value() &&
         !parsed.assembled.contradiction;
}

/// The partitioned execution path applies iff the runtime is sharded (the
/// prepared cache keys on the snapshot version, so cached plans always
/// match the runtime's layout).
bool UsePartitions(const DomainRuntime& rt) {
  return rt.partitions != nullptr && rt.parallel_planner != nullptr;
}

/// Executes `query` over the runtime through the fastest applicable path:
/// the given precompiled plans when present (compiling is the caller's
/// defensive fallback), the delta-union path when a live delta rides on the
/// table, the seed executor when planning is off.
Result<db::QueryResult> RunQuery(const EngineSnapshot& s,
                                 const DomainRuntime& rt,
                                 const db::Query& query,
                                 const db::exec::PartitionedPlan* part_plan,
                                 const db::exec::PhysicalPlan* plan,
                                 std::string* explain_out,
                                 const ExecControl* control) {
  const EngineOptions& options = s.options();
  db::exec::BaseRowSource src;
  src.runner = options.exec_runner;
  src.parallelism = options.exec_parallelism;
  src.control = control;
  src.vectorize = options.use_vector_kernels;
  // Morsel-sizing rule: tiny stores execute their shards inline — the
  // enqueue + completion-latch cost of fanning out exceeds the scan.
  if (rt.table->num_rows() < db::exec::kMinRowsForParallelExec) {
    src.runner = nullptr;
  }
  // Keep defensively-compiled plans alive through execution.
  db::exec::PartitionedPlanPtr compiled_part;
  db::exec::PlanPtr compiled_mono;
  if (options.use_planner) {
    if (UsePartitions(rt)) {
      if (part_plan == nullptr) {
        auto compiled = rt.parallel_planner->Compile(query);
        if (!compiled.ok()) return compiled.status();
        compiled_part = std::move(compiled).value();
        part_plan = compiled_part.get();
      }
      src.part_plan = part_plan;
    } else {
      if (plan == nullptr) {
        auto compiled = rt.planner->Compile(query);
        if (!compiled.ok()) return compiled.status();
        compiled_mono = std::move(compiled).value();
        plan = compiled_mono.get();
      }
      src.plan = plan;
    }
    if (explain_out != nullptr) {
      *explain_out = src.part_plan != nullptr ? src.part_plan->Explain()
                                              : src.plan->Explain();
    }
  }

  const db::DeltaStore* delta = rt.live_delta();
  if (delta != nullptr) {
    return db::exec::ExecuteHybrid(*rt.table, *delta, query, src);
  }
  if (src.part_plan != nullptr) {
    return src.part_plan->Execute(src.runner, src.parallelism, control,
                                  src.vectorize);
  }
  if (src.plan != nullptr) return src.plan->Execute(src.vectorize);
  return db::ExecuteQuery(*rt.table, query);
}

// ---------------------------------------------------------------------------
// Top-k rank machinery (EngineOptions::use_topk_rank). The serial
// collect-all + sort path below stays frozen as the differential oracle.
// ---------------------------------------------------------------------------

/// Below this many rows to score, computing per-block bounds (a per-code
/// representative sweep over the attribute dictionary) can cost more than
/// the scoring it would save, so the sweep runs unpruned.
constexpr std::size_t kMinRankRowsForBounds = 1024;

/// Raises the shared pruning threshold to at least `v` (lock-free CAS-max).
/// Monotone: the threshold only grows, and every published value is some
/// worker's local k-th-best — a lower bound on the global k-th-best (the
/// global top-k draws from MORE candidates, so its k-th entry scores at
/// least as high). A stale read therefore only prunes less, never more;
/// correctness never depends on propagation timing, so relaxed ordering
/// suffices.
inline void RaiseThreshold(std::atomic<double>* threshold, double v,
                           std::size_t* updates) {
  double cur = threshold->load(std::memory_order_relaxed);
  while (v > cur) {
    if (threshold->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
      ++*updates;
      return;
    }
  }
}

/// Per-worker scoring state for the parallel rank sweeps. SimScorer is not
/// thread-safe (its memo tables mutate), so each concurrently-running morsel
/// body borrows a slot — scorer, top-k accumulator, scratch buffers, local
/// counters — through a lock-free free-bitmask. At most `parallelism` bodies
/// run at once (the caller plus the helpers it enlisted each drain morsels
/// sequentially), so with `parallelism` slots Acquire always finds one free
/// after a bounded retry. Slot 0 aliases the request's own scorer: its memo
/// is pre-warmed by ComputeBlockBounds and serves the serial portions
/// (delta rows, inline execution) without a second instance.
class RankSlots {
 public:
  struct Slot {
    explicit Slot(std::size_t k) : topk(k) {}
    SimScorer* scorer = nullptr;
    std::unique_ptr<SimScorer> owned;  ///< slots past 0 own their scorer
    db::exec::TopK topk;
    std::vector<db::RowId> rows;       ///< gather scratch
    std::vector<double> rank, unit;    ///< ScoreBlock outputs
    std::size_t blocks_visited = 0;
    std::size_t blocks_skipped = 0;
    std::size_t rows_pruned = 0;
    std::size_t threshold_updates = 0;
  };

  RankSlots(std::size_t n, const db::Schema& schema,
            const std::vector<MatchUnit>& units, const SimilarityContext& sim,
            SimScorer* request_scorer, std::size_t k)
      : free_mask_(n >= 64 ? ~std::uint64_t{0}
                           : (std::uint64_t{1} << n) - 1) {
    slots_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      slots_.push_back(std::make_unique<Slot>(k));
      if (i == 0) {
        slots_[i]->scorer = request_scorer;
      } else {
        slots_[i]->owned = std::make_unique<SimScorer>(schema, units, sim);
        slots_[i]->scorer = slots_[i]->owned.get();
      }
    }
  }

  std::size_t size() const { return slots_.size(); }
  Slot& slot(std::size_t i) { return *slots_[i]; }

  /// Borrows a free slot. Acquire ordering pairs with Release so the
  /// previous holder's memo writes are visible to the new one.
  std::size_t Acquire() {
    for (;;) {
      std::uint64_t m = free_mask_.load(std::memory_order_relaxed);
      if (m == 0) continue;  // transient: some holder is about to release
      std::size_t i = 0;
      while ((m & (std::uint64_t{1} << i)) == 0) ++i;
      if (free_mask_.compare_exchange_weak(m, m & ~(std::uint64_t{1} << i),
                                           std::memory_order_acquire)) {
        return i;
      }
    }
  }
  void Release(std::size_t i) {
    free_mask_.fetch_or(std::uint64_t{1} << i, std::memory_order_release);
  }

 private:
  std::atomic<std::uint64_t> free_mask_;
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace

QueryContext::QueryContext(std::string question_text, std::string domain_name)
    : question(std::move(question_text)),
      domain(std::move(domain_name)),
      rng(std::hash<std::string>{}(question)) {
  result.domain = domain;
}

const text::TokenList& QueryContext::tokens() {
  if (!tokens_ready_) {
    tokens_ = text::Tokenize(question);
    tokens_ready_ = true;
  }
  return tokens_;
}

Status QueryPipeline::Run(const EngineSnapshot& snapshot,
                          QueryContext* ctx) const {
  using Clock = std::chrono::steady_clock;
  for (const auto& stage : stages_) {
    // Chaos hook: tests arm "pipeline.<stage>" to inject latency (widening
    // the window a deadline can expire in) or an error. One relaxed load
    // when nothing is armed; the site string is only built when armed.
    if (FailPoints::AnyArmed()) {
      Status fp = FailPoints::Evaluate(
          (std::string("pipeline.") + stage->name()).c_str());
      if (!fp.ok()) return fp;
    }
    // Deadline check at the stage boundary. An expired budget fails the
    // request — unless the remaining work only improves an already-complete
    // answer (RankStage), in which case the answer ships as degraded.
    if (ctx->deadline.expired()) {
      ctx->cancel.Cancel();
      if (stage->degradable()) {
        ctx->result.degraded = true;
        continue;
      }
      return Status::DeadlineExceeded(std::string("budget exhausted before ") +
                                      stage->name() + " stage");
    }
    const auto start = Clock::now();
    Status st = stage->Run(snapshot, ctx);
    const auto elapsed =
        std::chrono::duration<double, std::micro>(Clock::now() - start);
    ctx->result.timings.push_back(StageTiming{stage->name(), elapsed.count()});
    if (!st.ok()) return st;
    if (ctx->done) break;
  }
  return Status::OK();
}

const QueryPipeline& QueryPipeline::Full() {
  static const QueryPipeline* kPipeline = [] {
    std::vector<std::unique_ptr<PipelineStage>> stages;
    stages.push_back(std::make_unique<ClassifyStage>());
    stages.push_back(std::make_unique<TagStage>());
    stages.push_back(std::make_unique<ConditionStage>());
    stages.push_back(std::make_unique<AssembleStage>());
    stages.push_back(std::make_unique<RenderSqlStage>());
    stages.push_back(std::make_unique<PlanStage>());
    stages.push_back(std::make_unique<ExecuteStage>());
    stages.push_back(std::make_unique<RankStage>());
    return new QueryPipeline(std::move(stages));
  }();
  return *kPipeline;
}

const QueryPipeline& QueryPipeline::ParseOnly() {
  static const QueryPipeline* kPipeline = [] {
    std::vector<std::unique_ptr<PipelineStage>> stages;
    stages.push_back(std::make_unique<TagStage>());
    stages.push_back(std::make_unique<ConditionStage>());
    stages.push_back(std::make_unique<AssembleStage>());
    stages.push_back(std::make_unique<RenderSqlStage>());
    stages.push_back(std::make_unique<PlanStage>());
    return new QueryPipeline(std::move(stages));
  }();
  return *kPipeline;
}

Status ClassifyStage::Run(const EngineSnapshot& s, QueryContext* ctx) const {
  if (!ctx->domain.empty()) {
    ctx->result.domain = ctx->domain;
    return Status::OK();
  }
  // The shared once-per-request token stream feeds classification; the tag
  // stage reuses it instead of re-tokenizing the raw question.
  auto domain = s.ClassifyDomainTokens(ctx->tokens());
  if (!domain.ok()) return domain.status();
  ctx->domain = domain.value();
  ctx->result.domain = ctx->domain;
  return Status::OK();
}

Status TagStage::Run(const EngineSnapshot& s, QueryContext* ctx) const {
  auto rt = RequireRuntime(s, *ctx);
  if (!rt.ok()) return rt.status();
  if (ctx->parsed_from_cache()) return Status::OK();
  ctx->parsed.tags = rt.value()->tagger->TagTokens(
      ctx->tokens(), s.options().use_term_substrate);
  return Status::OK();
}

Status ConditionStage::Run(const EngineSnapshot& s, QueryContext* ctx) const {
  if (ctx->parsed_from_cache()) return Status::OK();
  auto rt = RequireRuntime(s, *ctx);
  if (!rt.ok()) return rt.status();
  ctx->parsed.conditions =
      BuildConditions(ctx->parsed.tags.items, rt.value()->table->schema());
  return Status::OK();
}

Status AssembleStage::Run(const EngineSnapshot& s, QueryContext* ctx) const {
  if (ctx->parsed_from_cache()) return Status::OK();
  auto rt = RequireRuntime(s, *ctx);
  if (!rt.ok()) return rt.status();
  const db::Table* table = rt.value()->table;

  // §4.2.2 resolver over the column statistics frozen into the snapshot:
  // candidate attributes are those whose observed [min, max] contains the
  // bare number; '$' restricts to money attributes.
  AmbiguousResolver resolver =
      MakeStatsResolver(&table->schema(), rt.value()->stats);

  auto assembled =
      AssembleQuery(ctx->parsed.conditions, table->schema(), resolver);
  if (!assembled.ok()) return assembled.status();
  ctx->parsed.assembled = std::move(assembled).value();
  return Status::OK();
}

Status RenderSqlStage::Run(const EngineSnapshot& s, QueryContext* ctx) const {
  if (ctx->parsed_from_cache()) return Status::OK();
  auto rt = RequireRuntime(s, *ctx);
  if (!rt.ok()) return rt.status();
  ctx->parsed.query.where = ctx->parsed.assembled.where;
  ctx->parsed.query.superlative = ctx->parsed.assembled.superlative;
  ctx->parsed.query.limit = s.options().answer_cap;
  ctx->parsed.sql =
      db::WriteSql(rt.value()->table->schema(), ctx->parsed.query);
  return Status::OK();
}

Status PlanStage::Run(const EngineSnapshot& s, QueryContext* ctx) const {
  if (ctx->parsed_from_cache()) return Status::OK();  // plan memoized
  if (!s.options().use_planner) return Status::OK();
  // A rule-1c contradiction never executes: don't compile (or cache) a
  // plan that cannot run.
  if (ctx->parsed.assembled.contradiction) return Status::OK();
  auto rt_result = RequireRuntime(s, *ctx);
  if (!rt_result.ok()) return rt_result.status();
  const DomainRuntime& rt = *rt_result.value();

  // Sharded runtimes compile the partition-parallel plan form; monolithic
  // runtimes the single-store form. Either way the compiled artifacts ride
  // on ParsedQuestion, so the prepared cache memoizes them per snapshot
  // version.
  const bool partitioned = UsePartitions(rt);
  if (partitioned) {
    auto plan = rt.parallel_planner->Compile(ctx->parsed.query);
    if (!plan.ok()) return plan.status();
    ctx->parsed.part_plan = std::move(plan).value();
  } else {
    auto plan = rt.planner->Compile(ctx->parsed.query);
    if (!plan.ok()) return plan.status();
    ctx->parsed.plan = std::move(plan).value();
  }

  // Precompile the N-1 relaxations too, so a prepared-cache hit replays
  // partial retrieval without any per-request compilation. Eager by
  // design: a cached ParsedQuestion is immutable and shared across
  // threads, so lazy fill-at-rank-time would need synchronization on the
  // hot path; and on the paper workload most questions do trigger partial
  // retrieval, so the compile is rarely wasted (the parity benches show a
  // net speedup even on uncached unique-question streams).
  if (s.options().enable_partial && IsRelaxable(ctx->parsed)) {
    const std::size_t n_units = ctx->parsed.assembled.units.size();
    for (std::size_t dropped = 0; dropped < n_units; ++dropped) {
      db::Query relaxed_query =
          MakeRelaxedQuery(ctx->parsed, dropped, rt.table->num_rows());
      if (partitioned) {
        auto relaxed = rt.parallel_planner->Compile(relaxed_query);
        if (!relaxed.ok()) return relaxed.status();
        ctx->parsed.relaxed_part_plans.push_back(std::move(relaxed).value());
      } else {
        auto relaxed = rt.planner->Compile(relaxed_query);
        if (!relaxed.ok()) return relaxed.status();
        ctx->parsed.relaxed_plans.push_back(std::move(relaxed).value());
      }
    }
  }
  return Status::OK();
}

Status ExecuteStage::Run(const EngineSnapshot& s, QueryContext* ctx) const {
  auto rt_result = RequireRuntime(s, *ctx);
  if (!rt_result.ok()) return rt_result.status();
  const DomainRuntime& rt = *rt_result.value();

  const ParsedQuestion& parsed = ctx->parsed_view();
  ctx->result.sql = parsed.sql;
  ctx->result.interpretation = parsed.assembled.interpretation;
  if (parsed.assembled.contradiction) {
    ctx->result.contradiction = true;
    ctx->done = true;
    return Status::OK();
  }

  // Compiled (possibly partition-parallel) plan when planning is on, the
  // seed Type-rank executor otherwise; both union a live ingest delta when
  // one rides on the table. RunQuery recompiles defensively for
  // externally-built ParsedQuestions injected through the prepared cache's
  // public Put() without plans. The request's cancellation context rides
  // along so partition morsels and delta scans stop mid-flight when the
  // deadline passes.
  const ExecControl control = ctx->control();
  Result<db::QueryResult> exec =
      RunQuery(s, rt, parsed.query, parsed.part_plan.get(), parsed.plan.get(),
               s.options().explain_plans ? &ctx->result.explain : nullptr,
               &control);
  if (!exec.ok()) return exec.status();
  ctx->result.stats = exec.value().stats;
  // The plan dump above is static; append the run's block-level work so an
  // Explain reader sees how much the vectorized path actually touched
  // (never part of the canonical result string).
  if (!ctx->result.explain.empty()) {
    const db::ExecStats& st = ctx->result.stats;
    ctx->result.explain +=
        "exec: rows_visited=" + std::to_string(st.rows_visited) +
        " blocks_visited=" + std::to_string(st.blocks_visited) + "\n";
  }
  const double exact_score =
      static_cast<double>(parsed.assembled.units.size());
  for (db::RowId row : exec.value().rows) {
    ctx->result.answers.push_back(Answer{row, true, exact_score, ""});
  }
  ctx->result.exact_count = ctx->result.answers.size();
  return Status::OK();
}

Status RankStage::Run(const EngineSnapshot& s, QueryContext* ctx) const {
  auto rt_result = RequireRuntime(s, *ctx);
  if (!rt_result.ok()) return rt_result.status();
  const DomainRuntime& rt = *rt_result.value();
  const EngineOptions& options = s.options();
  AskResult& out = ctx->result;
  const ParsedQuestion& parsed = ctx->parsed_view();
  const auto& units = parsed.assembled.units;

  // Partial matching (§4.3.1): trigger when exact answers are lacking.
  if (!options.enable_partial || out.answers.size() >= options.partial_trigger ||
      units.empty() || parsed.query.superlative.has_value()) {
    return Status::OK();
  }

  const SimilarityContext sim = s.MakeSimilarityContext(rt);
  const db::DeltaStore* delta = rt.live_delta();
  const std::size_t base_rows = rt.table->num_rows();
  const std::size_t total_rows =
      base_rows + (delta != nullptr ? delta->num_rows() : 0);
  db::exec::RowBitmap already(total_rows);
  for (const auto& a : out.answers) already.Set(a.row);

  // Scoring over the global id space: base rows read the column store,
  // delta rows their row-major record — identical semantics either way
  // (core/rank_sim.h record overloads). On the term substrate, a
  // per-request SimScorer resolves the question side to TermIds once and
  // memoizes record-side strings, so the per-candidate loop below performs
  // no stemming and builds no string-pair keys; the legacy free functions
  // remain the parity oracle.
  std::optional<SimScorer> scorer;
  if (options.use_term_substrate) {
    scorer.emplace(rt.table->schema(), units, sim);
  }
  auto score_row = [&](db::RowId row, std::size_t dropped) {
    if (scorer.has_value()) {
      if (row < base_rows) return scorer->Score(*rt.table, row, dropped);
      return scorer->Score(rt.table->schema(),
                           delta->record(row - base_rows), dropped);
    }
    if (row < base_rows) {
      return ScorePartialMatch(*rt.table, row, units, dropped, sim);
    }
    return ScorePartialMatch(rt.table->schema(),
                             delta->record(row - base_rows), units, dropped,
                             sim);
  };
  // Tombstoned rows never rank (the exact path masks them already; the
  // similarity sweep below must too).
  auto is_live = [&](db::RowId row) {
    if (delta == nullptr) return true;
    if (row >= base_rows) return !delta->delta_retired(row - base_rows);
    const auto& retired = delta->retired_base();
    return !std::binary_search(retired.begin(), retired.end(), row);
  };

  // Graceful degradation: each N-1 relaxation pass (and each chunk of the
  // single-condition sweep) re-checks the deadline. On expiry the stage
  // keeps whatever passes completed — the best-so-far partials still rank
  // and ship below — and marks the result degraded instead of failing a
  // request whose exact answers are already correct.
  const ExecControl control = ctx->control();

  // ---- Pruned, morsel-parallel top-k selection ----------------------------
  // Only the first (answer_cap - exact) partials can ship, so ranking is a
  // bounded top-k selection, not a full sort. Per-worker TopK accumulators
  // (db/exec/topk.h) merge deterministically; per-block score upper bounds
  // (db/exec/rank_bounds.h + SimScorer::ComputeBlockBounds) let whole 1024-
  // row blocks be skipped once the shared threshold rises above their best
  // possible score; both sweeps fan out on the exec morsel scheduler.
  // Requires the id-keyed SimScorer; the string-keyed oracle path keeps the
  // serial shape below.
  if (options.use_topk_rank && scorer.has_value()) {
    const std::size_t cap = options.answer_cap;
    const std::size_t k =
        out.answers.size() < cap ? cap - out.answers.size() : 0;
    const db::exec::RankBounds* rb = rt.rank_bounds.get();

    db::exec::TaskRunner* runner = options.exec_runner;
    std::size_t par = options.exec_parallelism;
    if (runner == nullptr || par <= 1) {
      runner = nullptr;
      par = 1;
    }
    RankSlots slots(std::min<std::size_t>(par, 64), rt.table->schema(), units,
                    sim, &*scorer, k);
    std::atomic<double> shared_threshold{slots.slot(0).topk.threshold()};
    const double exact_part = static_cast<double>(units.size()) - 1.0;
    std::vector<double> ub;  // per-block unit-similarity upper bounds
    bool degraded = false;

    auto score_and_push = [&](RankSlots::Slot& sl, std::size_t dropped,
                              bool require_positive) {
      const std::size_t n = sl.rows.size();
      if (n == 0) return;
      sl.rank.resize(n);
      sl.unit.resize(n);
      if (options.use_vector_kernels) {
        sl.scorer->ScoreBlock(*rt.table, sl.rows.data(), n, dropped,
                              sl.rank.data(), sl.unit.data());
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          PartialScore p = sl.scorer->Score(*rt.table, sl.rows[i], dropped);
          sl.rank[i] = p.rank_sim;
          sl.unit[i] = p.unit_sim;
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (require_positive && sl.unit[i] <= 0.0) continue;
        if (sl.topk.Push(sl.rank[i], sl.rows[i],
                         static_cast<std::uint32_t>(dropped)) &&
            sl.topk.full()) {
          RaiseThreshold(&shared_threshold, sl.topk.threshold(),
                         &sl.threshold_updates);
        }
      }
      sl.rows.clear();
    };
    // Delta rows are row-major; scored serially on the caller after the
    // parallel base sweep finished (slot 0 is then free, and its scorer is
    // the request scorer).
    auto push_delta_row = [&](db::RowId row, std::size_t dropped,
                              bool require_positive) {
      PartialScore p = scorer->Score(rt.table->schema(),
                                     delta->record(row - base_rows), dropped);
      if (require_positive && p.unit_sim <= 0.0) return;
      RankSlots::Slot& sl = slots.slot(0);
      if (sl.topk.Push(p.rank_sim, row, static_cast<std::uint32_t>(dropped)) &&
          sl.topk.full()) {
        RaiseThreshold(&shared_threshold, sl.topk.threshold(),
                       &sl.threshold_updates);
      }
    };

    if (units.size() >= 2) {
      // N-1 relaxation passes stay SEQUENTIAL and dedup in row order — the
      // first pass that reaches a row owns its measure label, exactly like
      // the serial path. Only the scoring inside a pass fans out.
      std::vector<db::RowId> cand_base, cand_delta;
      for (std::size_t dropped = 0; dropped < units.size(); ++dropped) {
        if (control.Expired()) {
          degraded = true;
          break;
        }
        const db::exec::PartitionedPlan* part_plan =
            dropped < parsed.relaxed_part_plans.size()
                ? parsed.relaxed_part_plans[dropped].get()
                : nullptr;
        const db::exec::PhysicalPlan* plan =
            dropped < parsed.relaxed_plans.size()
                ? parsed.relaxed_plans[dropped].get()
                : nullptr;
        auto rel =
            RunQuery(s, rt, MakeRelaxedQuery(parsed, dropped, total_rows),
                     part_plan, plan, nullptr, &control);
        if (!rel.ok()) {
          if (rel.status().code() == StatusCode::kDeadlineExceeded) {
            degraded = true;
            break;
          }
          continue;
        }
        out.stats += rel.value().stats;
        cand_base.clear();
        cand_delta.clear();
        for (db::RowId row : rel.value().rows) {
          if (already.Test(row)) continue;
          already.Set(row);
          (row < base_rows ? cand_base : cand_delta).push_back(row);
        }
        const bool prunable =
            rb != nullptr && cand_base.size() >= kMinRankRowsForBounds &&
            scorer->ComputeBlockBounds(*rt.table, *rb, dropped, &ub);
        constexpr std::size_t kChunkRows = 2048;
        const std::size_t n_chunks =
            (cand_base.size() + kChunkRows - 1) / kChunkRows;
        const bool par_pass = runner != nullptr &&
                              cand_base.size() >=
                                  db::exec::kMinRowsForParallelExec;
        auto body = [&, dropped](std::size_t c) {
          const std::size_t s_idx = slots.Acquire();
          RankSlots::Slot& sl = slots.slot(s_idx);
          sl.rows.clear();
          const std::size_t lo = c * kChunkRows;
          const std::size_t hi =
              std::min(lo + kChunkRows, cand_base.size());
          std::size_t i = lo;
          while (i < hi) {
            // Candidates arrive in row order, so same-block runs are
            // contiguous; prune run-at-a-time against the shared threshold.
            const std::size_t b = cand_base[i] / db::exec::kRankBlockRows;
            std::size_t j = i + 1;
            while (j < hi && cand_base[j] / db::exec::kRankBlockRows == b) {
              ++j;
            }
            if (prunable &&
                exact_part + ub[b] <
                    shared_threshold.load(std::memory_order_relaxed)) {
              ++sl.blocks_skipped;
              sl.rows_pruned += j - i;
            } else {
              ++sl.blocks_visited;
              sl.rows.insert(sl.rows.end(), cand_base.begin() + i,
                             cand_base.begin() + j);
            }
            i = j;
          }
          score_and_push(sl, dropped, /*require_positive=*/false);
          slots.Release(s_idx);
        };
        if (!db::exec::RunMorsels(n_chunks, par_pass ? par : 1,
                                  par_pass ? runner : nullptr, body,
                                  &control)) {
          degraded = true;
          break;
        }
        for (db::RowId row : cand_delta) {
          push_delta_row(row, dropped, /*require_positive=*/false);
        }
      }
    } else {
      // Single-condition full-table sweep, block-at-a-time. A block whose
      // bound cannot reach the threshold (STRICT compare — an equal-score
      // smaller-row candidate can still displace the k-th entry) or cannot
      // produce a positive similarity is skipped without gathering a row.
      const bool prunable = rb != nullptr &&
                            base_rows >= kMinRankRowsForBounds &&
                            scorer->ComputeBlockBounds(*rt.table, *rb, 0, &ub);
      const std::size_t nb =
          (base_rows + db::exec::kRankBlockRows - 1) /
          db::exec::kRankBlockRows;
      constexpr std::size_t kBlocksPerMorsel = 4;
      const std::size_t n_morsels =
          (nb + kBlocksPerMorsel - 1) / kBlocksPerMorsel;
      const bool par_sweep =
          runner != nullptr &&
          base_rows >= db::exec::kMinRowsForParallelExec;
      auto body = [&](std::size_t m) {
        const std::size_t s_idx = slots.Acquire();
        RankSlots::Slot& sl = slots.slot(s_idx);
        const std::size_t b_lo = m * kBlocksPerMorsel;
        const std::size_t b_hi = std::min(b_lo + kBlocksPerMorsel, nb);
        for (std::size_t b = b_lo; b < b_hi; ++b) {
          const db::RowId r_lo =
              static_cast<db::RowId>(b * db::exec::kRankBlockRows);
          const db::RowId r_hi = static_cast<db::RowId>(
              std::min((b + 1) * db::exec::kRankBlockRows, base_rows));
          if (prunable) {
            const double t =
                shared_threshold.load(std::memory_order_relaxed);
            if (ub[b] <= 0.0 || ub[b] < t) {
              ++sl.blocks_skipped;
              sl.rows_pruned += r_hi - r_lo;
              continue;
            }
          }
          ++sl.blocks_visited;
          sl.rows.clear();
          for (db::RowId r = r_lo; r < r_hi; ++r) {
            if (!already.Test(r) && is_live(r)) sl.rows.push_back(r);
          }
          score_and_push(sl, 0, /*require_positive=*/true);
        }
        slots.Release(s_idx);
      };
      if (!db::exec::RunMorsels(n_morsels, par_sweep ? par : 1,
                                par_sweep ? runner : nullptr, body,
                                &control)) {
        degraded = true;
      }
      if (delta != nullptr && !degraded) {
        for (db::RowId row = base_rows; row < total_rows; ++row) {
          if ((row - base_rows) % 512 == 0 && control.Expired()) {
            degraded = true;
            break;
          }
          if (already.Test(row) || !is_live(row)) continue;
          push_delta_row(row, 0, /*require_positive=*/true);
        }
      }
    }

    // Deterministic merge: the union of per-worker top-ks contains the
    // global top-k (see db/exec/topk.h), so re-selecting over the union
    // reproduces the serial answer regardless of morsel schedule.
    db::exec::TopK merged(k);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      RankSlots::Slot& sl = slots.slot(i);
      merged.Merge(std::move(sl.topk));
      out.stats.rank_blocks_visited += sl.blocks_visited;
      out.stats.rank_blocks_skipped += sl.blocks_skipped;
      out.stats.rank_rows_pruned += sl.rows_pruned;
      out.stats.rank_threshold_updates += sl.threshold_updates;
    }
    for (const auto& e : merged.Take()) {
      out.answers.push_back(
          Answer{e.row, false, e.score, scorer->unit_measure(e.tag)});
    }
    if (degraded) out.degraded = true;
    if (!out.explain.empty()) {
      const db::ExecStats& st = out.stats;
      out.explain +=
          "rank: blocks_visited=" + std::to_string(st.rank_blocks_visited) +
          " blocks_skipped=" + std::to_string(st.rank_blocks_skipped) +
          " rows_pruned=" + std::to_string(st.rank_rows_pruned) +
          " threshold_updates=" +
          std::to_string(st.rank_threshold_updates) + "\n";
    }
    return Status::OK();
  }

  std::vector<Answer> partials;
  // Batched Eq. 5 (SimScorer::ScoreBlock) for base-table candidates: the
  // RowRef adapter, code-tuple memo, and measure string are hoisted out of
  // the per-row loop. Reordering pushes into `partials` is safe — the final
  // sort's (rank_sim, row) key is a total order over the unique rows. Delta
  // rows are row-major and keep the per-row path.
  const bool batch_scoring =
      scorer.has_value() && options.use_vector_kernels;
  std::vector<db::RowId> batch;
  std::vector<double> batch_rank, batch_unit;
  auto flush_batch = [&](std::size_t dropped, bool require_positive) {
    if (batch.empty()) return;
    batch_rank.resize(batch.size());
    batch_unit.resize(batch.size());
    scorer->ScoreBlock(*rt.table, batch.data(), batch.size(), dropped,
                       batch_rank.data(), batch_unit.data());
    const std::string& measure = scorer->unit_measure(dropped);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (require_positive && batch_unit[i] <= 0.0) continue;
      partials.push_back(Answer{batch[i], false, batch_rank[i], measure});
    }
    batch.clear();
  };
  if (units.size() >= 2) {
    // N-1: drop each unit in turn and evaluate the remaining conditions —
    // through the relaxation plans PlanStage precompiled (and the cache
    // memoized) when available; RunQuery unions the delta when one is live.
    for (std::size_t dropped = 0; dropped < units.size(); ++dropped) {
      if (control.Expired()) {
        out.degraded = true;
        break;
      }
      const db::exec::PartitionedPlan* part_plan =
          dropped < parsed.relaxed_part_plans.size()
              ? parsed.relaxed_part_plans[dropped].get()
              : nullptr;
      const db::exec::PhysicalPlan* plan =
          dropped < parsed.relaxed_plans.size()
              ? parsed.relaxed_plans[dropped].get()
              : nullptr;
      auto rel = RunQuery(s, rt, MakeRelaxedQuery(parsed, dropped, total_rows),
                          part_plan, plan, nullptr, &control);
      if (!rel.ok()) {
        if (rel.status().code() == StatusCode::kDeadlineExceeded) {
          out.degraded = true;
          break;
        }
        continue;
      }
      out.stats += rel.value().stats;
      for (db::RowId row : rel.value().rows) {
        if (already.Test(row)) continue;
        already.Set(row);
        if (batch_scoring && row < base_rows) {
          batch.push_back(row);
          continue;
        }
        PartialScore score = score_row(row, dropped);
        partials.push_back(Answer{row, false, score.rank_sim, score.measure});
      }
      flush_batch(dropped, /*require_positive=*/false);
    }
  } else {
    // Single-condition questions: similarity-match every record against the
    // lone condition (§4.3.1 last paragraph).
    constexpr db::RowId kCancelCheckRows = 512;
    constexpr std::size_t kScoreBatchRows = 1024;
    for (db::RowId row = 0; row < total_rows; ++row) {
      if (row % kCancelCheckRows == 0 && control.Expired()) {
        out.degraded = true;
        break;
      }
      if (already.Test(row) || !is_live(row)) continue;
      if (batch_scoring && row < base_rows) {
        batch.push_back(row);
        if (batch.size() >= kScoreBatchRows) {
          flush_batch(0, /*require_positive=*/true);
        }
        continue;
      }
      PartialScore score = score_row(row, 0);
      if (score.unit_sim <= 0.0) continue;
      partials.push_back(Answer{row, false, score.rank_sim, score.measure});
    }
    // Rows gathered before a deadline break were already visited: score
    // them (the scalar path would have, too, before reaching the break).
    flush_batch(0, /*require_positive=*/true);
  }

  std::sort(partials.begin(), partials.end(),
            [](const Answer& a, const Answer& b) {
              if (a.rank_sim != b.rank_sim) return a.rank_sim > b.rank_sim;
              return a.row < b.row;
            });
  for (const auto& p : partials) {
    if (out.answers.size() >= options.answer_cap) break;
    out.answers.push_back(p);
  }
  return Status::OK();
}

}  // namespace cqads::core
