#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <functional>

#include "db/sql_writer.h"

namespace cqads::core {
namespace {

/// Stages after classification all need the domain runtime; resolve it once
/// per call with a uniform error.
Result<const DomainRuntime*> RequireRuntime(const EngineSnapshot& s,
                                            const QueryContext& ctx) {
  const DomainRuntime* rt = s.runtime(ctx.domain);
  if (rt == nullptr) return Status::NotFound("unknown domain: " + ctx.domain);
  return rt;
}

/// The §4.3.1 N-1 relaxation of a parsed question: all units except
/// `dropped`, plus the never-dropped fixed fragments, uncapped (ranking
/// happens before the answer cap). One definition shared by the plan stage
/// (precompilation) and the rank stage (seed path).
db::Query MakeRelaxedQuery(const ParsedQuestion& parsed, std::size_t dropped,
                           std::size_t table_rows) {
  const auto& units = parsed.assembled.units;
  std::vector<db::ExprPtr> parts;
  for (std::size_t u = 0; u < units.size(); ++u) {
    if (u != dropped) parts.push_back(units[u].expr);
  }
  for (const auto& f : parsed.assembled.fixed) parts.push_back(f);
  db::Query relaxed;
  relaxed.where = parts.empty() ? nullptr : db::Expr::MakeAnd(parts);
  relaxed.limit = table_rows;
  return relaxed;
}

/// True when RankStage's N-1 loop can run for this parse (the conditions
/// knowable before execution; the exact-answer count is checked at rank
/// time).
bool IsRelaxable(const ParsedQuestion& parsed) {
  return parsed.assembled.units.size() >= 2 &&
         !parsed.query.superlative.has_value() &&
         !parsed.assembled.contradiction;
}

}  // namespace

QueryContext::QueryContext(std::string question_text, std::string domain_name)
    : question(std::move(question_text)),
      domain(std::move(domain_name)),
      rng(std::hash<std::string>{}(question)) {
  result.domain = domain;
}

Status QueryPipeline::Run(const EngineSnapshot& snapshot,
                          QueryContext* ctx) const {
  using Clock = std::chrono::steady_clock;
  for (const auto& stage : stages_) {
    const auto start = Clock::now();
    Status st = stage->Run(snapshot, ctx);
    const auto elapsed =
        std::chrono::duration<double, std::micro>(Clock::now() - start);
    ctx->result.timings.push_back(StageTiming{stage->name(), elapsed.count()});
    if (!st.ok()) return st;
    if (ctx->done) break;
  }
  return Status::OK();
}

const QueryPipeline& QueryPipeline::Full() {
  static const QueryPipeline* kPipeline = [] {
    std::vector<std::unique_ptr<PipelineStage>> stages;
    stages.push_back(std::make_unique<ClassifyStage>());
    stages.push_back(std::make_unique<TagStage>());
    stages.push_back(std::make_unique<ConditionStage>());
    stages.push_back(std::make_unique<AssembleStage>());
    stages.push_back(std::make_unique<RenderSqlStage>());
    stages.push_back(std::make_unique<PlanStage>());
    stages.push_back(std::make_unique<ExecuteStage>());
    stages.push_back(std::make_unique<RankStage>());
    return new QueryPipeline(std::move(stages));
  }();
  return *kPipeline;
}

const QueryPipeline& QueryPipeline::ParseOnly() {
  static const QueryPipeline* kPipeline = [] {
    std::vector<std::unique_ptr<PipelineStage>> stages;
    stages.push_back(std::make_unique<TagStage>());
    stages.push_back(std::make_unique<ConditionStage>());
    stages.push_back(std::make_unique<AssembleStage>());
    stages.push_back(std::make_unique<RenderSqlStage>());
    stages.push_back(std::make_unique<PlanStage>());
    return new QueryPipeline(std::move(stages));
  }();
  return *kPipeline;
}

Status ClassifyStage::Run(const EngineSnapshot& s, QueryContext* ctx) const {
  if (!ctx->domain.empty()) {
    ctx->result.domain = ctx->domain;
    return Status::OK();
  }
  auto domain = s.ClassifyDomain(ctx->question);
  if (!domain.ok()) return domain.status();
  ctx->domain = domain.value();
  ctx->result.domain = ctx->domain;
  return Status::OK();
}

Status TagStage::Run(const EngineSnapshot& s, QueryContext* ctx) const {
  auto rt = RequireRuntime(s, *ctx);
  if (!rt.ok()) return rt.status();
  if (ctx->parsed_from_cache()) return Status::OK();
  ctx->parsed.tags = rt.value()->tagger->Tag(ctx->question);
  return Status::OK();
}

Status ConditionStage::Run(const EngineSnapshot& s, QueryContext* ctx) const {
  if (ctx->parsed_from_cache()) return Status::OK();
  auto rt = RequireRuntime(s, *ctx);
  if (!rt.ok()) return rt.status();
  ctx->parsed.conditions =
      BuildConditions(ctx->parsed.tags.items, rt.value()->table->schema());
  return Status::OK();
}

Status AssembleStage::Run(const EngineSnapshot& s, QueryContext* ctx) const {
  if (ctx->parsed_from_cache()) return Status::OK();
  auto rt = RequireRuntime(s, *ctx);
  if (!rt.ok()) return rt.status();
  const db::Table* table = rt.value()->table;

  // §4.2.2 resolver over the column statistics frozen into the snapshot:
  // candidate attributes are those whose observed [min, max] contains the
  // bare number; '$' restricts to money attributes.
  AmbiguousResolver resolver =
      MakeStatsResolver(&table->schema(), rt.value()->stats);

  auto assembled =
      AssembleQuery(ctx->parsed.conditions, table->schema(), resolver);
  if (!assembled.ok()) return assembled.status();
  ctx->parsed.assembled = std::move(assembled).value();
  return Status::OK();
}

Status RenderSqlStage::Run(const EngineSnapshot& s, QueryContext* ctx) const {
  if (ctx->parsed_from_cache()) return Status::OK();
  auto rt = RequireRuntime(s, *ctx);
  if (!rt.ok()) return rt.status();
  ctx->parsed.query.where = ctx->parsed.assembled.where;
  ctx->parsed.query.superlative = ctx->parsed.assembled.superlative;
  ctx->parsed.query.limit = s.options().answer_cap;
  ctx->parsed.sql =
      db::WriteSql(rt.value()->table->schema(), ctx->parsed.query);
  return Status::OK();
}

Status PlanStage::Run(const EngineSnapshot& s, QueryContext* ctx) const {
  if (ctx->parsed_from_cache()) return Status::OK();  // plan memoized
  if (!s.options().use_planner) return Status::OK();
  // A rule-1c contradiction never executes: don't compile (or cache) a
  // plan that cannot run.
  if (ctx->parsed.assembled.contradiction) return Status::OK();
  auto rt = RequireRuntime(s, *ctx);
  if (!rt.ok()) return rt.status();
  auto plan = rt.value()->planner->Compile(ctx->parsed.query);
  if (!plan.ok()) return plan.status();
  ctx->parsed.plan = std::move(plan).value();

  // Precompile the N-1 relaxations too, so a prepared-cache hit replays
  // partial retrieval without any per-request compilation. Eager by
  // design: a cached ParsedQuestion is immutable and shared across
  // threads, so lazy fill-at-rank-time would need synchronization on the
  // hot path; and on the paper workload most questions do trigger partial
  // retrieval, so the compile is rarely wasted (the parity benches show a
  // net speedup even on uncached unique-question streams).
  if (s.options().enable_partial && IsRelaxable(ctx->parsed)) {
    const std::size_t n_units = ctx->parsed.assembled.units.size();
    ctx->parsed.relaxed_plans.reserve(n_units);
    for (std::size_t dropped = 0; dropped < n_units; ++dropped) {
      auto relaxed = rt.value()->planner->Compile(MakeRelaxedQuery(
          ctx->parsed, dropped, rt.value()->table->num_rows()));
      if (!relaxed.ok()) return relaxed.status();
      ctx->parsed.relaxed_plans.push_back(std::move(relaxed).value());
    }
  }
  return Status::OK();
}

Status ExecuteStage::Run(const EngineSnapshot& s, QueryContext* ctx) const {
  auto rt_result = RequireRuntime(s, *ctx);
  if (!rt_result.ok()) return rt_result.status();
  const DomainRuntime& rt = *rt_result.value();

  const ParsedQuestion& parsed = ctx->parsed_view();
  ctx->result.sql = parsed.sql;
  ctx->result.interpretation = parsed.assembled.interpretation;
  if (parsed.assembled.contradiction) {
    ctx->result.contradiction = true;
    ctx->done = true;
    return Status::OK();
  }

  // Compiled plan when planning is on, seed Type-rank executor otherwise.
  // The pipeline always compiles in PlanStage; the compile-here branch is a
  // defensive fallback for externally-built ParsedQuestions injected
  // through the prepared cache's public Put() without a plan.
  Result<db::QueryResult> exec = [&]() -> Result<db::QueryResult> {
    if (!s.options().use_planner) {
      return db::ExecuteQuery(*rt.table, parsed.query);
    }
    if (parsed.plan != nullptr) {
      if (s.options().explain_plans) {
        ctx->result.explain = parsed.plan->Explain();
      }
      return parsed.plan->Execute();
    }
    auto plan = rt.planner->Compile(parsed.query);
    if (!plan.ok()) return plan.status();
    if (s.options().explain_plans) {
      ctx->result.explain = plan.value()->Explain();
    }
    return plan.value()->Execute();
  }();
  if (!exec.ok()) return exec.status();
  ctx->result.stats = exec.value().stats;
  const double exact_score =
      static_cast<double>(parsed.assembled.units.size());
  for (db::RowId row : exec.value().rows) {
    ctx->result.answers.push_back(Answer{row, true, exact_score, ""});
  }
  ctx->result.exact_count = ctx->result.answers.size();
  return Status::OK();
}

Status RankStage::Run(const EngineSnapshot& s, QueryContext* ctx) const {
  auto rt_result = RequireRuntime(s, *ctx);
  if (!rt_result.ok()) return rt_result.status();
  const DomainRuntime& rt = *rt_result.value();
  const EngineOptions& options = s.options();
  AskResult& out = ctx->result;
  const ParsedQuestion& parsed = ctx->parsed_view();
  const auto& units = parsed.assembled.units;

  // Partial matching (§4.3.1): trigger when exact answers are lacking.
  if (!options.enable_partial || out.answers.size() >= options.partial_trigger ||
      units.empty() || parsed.query.superlative.has_value()) {
    return Status::OK();
  }

  const SimilarityContext sim = s.MakeSimilarityContext(rt);
  std::vector<bool> already(rt.table->num_rows(), false);
  for (const auto& a : out.answers) already[a.row] = true;

  std::vector<Answer> partials;
  if (units.size() >= 2) {
    // N-1: drop each unit in turn and evaluate the remaining conditions —
    // through the relaxation plans PlanStage precompiled (and the cache
    // memoized) when available.
    for (std::size_t dropped = 0; dropped < units.size(); ++dropped) {
      auto rel = [&]() -> Result<db::QueryResult> {
        if (s.options().use_planner) {
          if (dropped < parsed.relaxed_plans.size() &&
              parsed.relaxed_plans[dropped] != nullptr) {
            return parsed.relaxed_plans[dropped]->Execute();
          }
          return rt.planner->Run(
              MakeRelaxedQuery(parsed, dropped, rt.table->num_rows()));
        }
        return db::ExecuteQuery(
            *rt.table, MakeRelaxedQuery(parsed, dropped, rt.table->num_rows()));
      }();
      if (!rel.ok()) continue;
      out.stats += rel.value().stats;
      for (db::RowId row : rel.value().rows) {
        if (already[row]) continue;
        already[row] = true;
        PartialScore score =
            ScorePartialMatch(*rt.table, row, units, dropped, sim);
        partials.push_back(Answer{row, false, score.rank_sim, score.measure});
      }
    }
  } else {
    // Single-condition questions: similarity-match every record against the
    // lone condition (§4.3.1 last paragraph).
    for (db::RowId row = 0; row < rt.table->num_rows(); ++row) {
      if (already[row]) continue;
      PartialScore score = ScorePartialMatch(*rt.table, row, units, 0, sim);
      if (score.unit_sim <= 0.0) continue;
      partials.push_back(Answer{row, false, score.rank_sim, score.measure});
    }
  }

  std::sort(partials.begin(), partials.end(),
            [](const Answer& a, const Answer& b) {
              if (a.rank_sim != b.rank_sim) return a.rank_sim > b.rank_sim;
              return a.row < b.row;
            });
  for (const auto& p : partials) {
    if (out.answers.size() >= options.answer_cap) break;
    out.answers.push_back(p);
  }
  return Status::OK();
}

}  // namespace cqads::core
