#include "core/answer_table.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"

namespace cqads::core {

namespace {

struct Grid {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

Grid BuildGrid(const db::Table& table, const CqadsEngine::AskResult& result,
               const AnswerTableOptions& options,
               const db::DeltaStore* delta) {
  Grid grid;
  const db::Schema& schema = table.schema();
  const std::size_t n_attrs =
      options.max_attributes == 0
          ? schema.num_attributes()
          : std::min(options.max_attributes, schema.num_attributes());

  grid.header.push_back("#");
  grid.header.push_back("match");
  for (std::size_t a = 0; a < n_attrs; ++a) {
    grid.header.push_back(schema.attribute(a).name);
  }
  if (options.show_rank_sim) {
    grid.header.push_back("rank_sim");
    grid.header.push_back("measure");
  }

  std::size_t shown = 0;
  for (const auto& answer : result.answers) {
    if (shown >= options.max_rows) break;
    ++shown;
    std::vector<std::string> row;
    row.push_back(std::to_string(shown));
    row.push_back(answer.exact ? "exact" : "partial");
    for (std::size_t a = 0; a < n_attrs; ++a) {
      // Delta-store answers (global ids past the base table) read their
      // row-major record when the caller passed the snapshot's delta; a
      // placeholder otherwise (never an out-of-range table read).
      if (answer.row < table.num_rows()) {
        row.push_back(table.cell(answer.row, a).AsText());
      } else if (delta != nullptr &&
                 answer.row < delta->total_rows()) {
        row.push_back(delta->cell(answer.row, a).AsText());
      } else {
        row.push_back("(delta row)");
      }
    }
    if (options.show_rank_sim) {
      row.push_back(answer.exact ? "-" : FormatDouble(answer.rank_sim, 2));
      row.push_back(answer.exact ? "-" : answer.measure);
    }
    grid.rows.push_back(std::move(row));
  }
  return grid;
}

}  // namespace

std::string FormatAnswersText(const db::Table& table,
                              const CqadsEngine::AskResult& result,
                              const AnswerTableOptions& options,
                              const db::DeltaStore* delta) {
  if (result.contradiction) return "search retrieved no results\n";
  Grid grid = BuildGrid(table, result, options, delta);

  std::vector<std::size_t> widths(grid.header.size());
  for (std::size_t c = 0; c < grid.header.size(); ++c) {
    widths[c] = grid.header[c].size();
  }
  for (const auto& row : grid.rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = emit_row(grid.header);
  std::size_t total_width = 0;
  for (std::size_t w : widths) total_width += w + 2;
  out.append(total_width > 2 ? total_width - 2 : 0, '-');
  out += "\n";
  for (const auto& row : grid.rows) out += emit_row(row);
  if (result.answers.size() > grid.rows.size()) {
    out += "... " +
           std::to_string(result.answers.size() - grid.rows.size()) +
           " more\n";
  }
  if (options.show_explain && !result.explain.empty()) {
    out += "\n" + result.explain;
  }
  return out;
}

std::string HtmlEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string FormatAnswersHtml(const db::Table& table,
                              const CqadsEngine::AskResult& result,
                              const AnswerTableOptions& options,
                              const db::DeltaStore* delta) {
  if (result.contradiction) {
    return "<p>search retrieved no results</p>\n";
  }
  Grid grid = BuildGrid(table, result, options, delta);
  std::string out = "<table>\n  <tr>";
  for (const auto& h : grid.header) {
    out += "<th>" + HtmlEscape(h) + "</th>";
  }
  out += "</tr>\n";
  for (const auto& row : grid.rows) {
    out += "  <tr>";
    for (const auto& cell : row) {
      out += "<td>" + HtmlEscape(cell) + "</td>";
    }
    out += "</tr>\n";
  }
  out += "</table>\n";
  if (options.show_explain && !result.explain.empty()) {
    out += "<pre>" + HtmlEscape(result.explain) + "</pre>\n";
  }
  return out;
}

}  // namespace cqads::core
