#include "core/identifiers_table.h"

#include <unordered_set>

#include "text/porter_stemmer.h"

namespace cqads::core {

const std::vector<IdentifierRule>& BuiltinIdentifierRules() {
  using K = TagKind;
  using Op = db::CompareOp;
  static const auto* kRules = new std::vector<IdentifierRule>{
      // --- partial boundaries: comparison operators (Table 1 rows 4-7) ---
      {"less than", K::kOpLess, "", true, Op::kLt},
      {"lower than", K::kOpLess, "", true, Op::kLt},
      {"fewer than", K::kOpLess, "", true, Op::kLt},
      {"smaller than", K::kOpLess, "", true, Op::kLt},
      {"below", K::kOpLess, "", true, Op::kLt},
      {"under", K::kOpLess, "", true, Op::kLt},
      {"at most", K::kOpLess, "", true, Op::kLe},
      {"no more than", K::kOpLess, "", true, Op::kLe},
      {"up to", K::kOpLess, "", true, Op::kLe},
      {"maximum of", K::kOpLess, "", true, Op::kLe},
      {"more than", K::kOpGreater, "", true, Op::kGt},
      {"greater than", K::kOpGreater, "", true, Op::kGt},
      {"higher than", K::kOpGreater, "", true, Op::kGt},
      {"larger than", K::kOpGreater, "", true, Op::kGt},
      {"bigger than", K::kOpGreater, "", true, Op::kGt},
      {"above", K::kOpGreater, "", true, Op::kGt},
      {"over", K::kOpGreater, "", true, Op::kGt},
      {"at least", K::kOpGreater, "", true, Op::kGe},
      {"no less than", K::kOpGreater, "", true, Op::kGe},
      {"minimum of", K::kOpGreater, "", true, Op::kGe},
      {"equal", K::kOpEquals, "", true, Op::kEq},
      {"equals", K::kOpEquals, "", true, Op::kEq},
      {"equal to", K::kOpEquals, "", true, Op::kEq},
      {"exactly", K::kOpEquals, "", true, Op::kEq},
      {"between", K::kOpBetween, "", true, Op::kBetween},
      {"in the range", K::kOpBetween, "", true, Op::kBetween},
      {"range", K::kOpBetween, "", true, Op::kBetween},
      {"within", K::kOpBetween, "", true, Op::kBetween},

      // --- complete boundaries: attribute implied (§4.1.2 "cheaper/less
      //     expensive than", "newer/older than") ---
      {"cheaper than", K::kBoundaryComplete, "price", true, Op::kLt},
      {"cheaper", K::kBoundaryComplete, "price", true, Op::kLt},
      {"less expensive than", K::kBoundaryComplete, "price", true, Op::kLt},
      {"more expensive than", K::kBoundaryComplete, "price", true, Op::kGt},
      {"pricier than", K::kBoundaryComplete, "price", true, Op::kGt},
      {"newer than", K::kBoundaryComplete, "year", false, Op::kGt},
      {"older than", K::kBoundaryComplete, "year", true, Op::kLt},

      // --- complete superlatives: attribute + direction implied (Table 1
      //     rows for newest/oldest/cheapest) ---
      {"cheapest", K::kSuperComplete, "price", true, Op::kEq},
      {"most inexpensive", K::kSuperComplete, "price", true, Op::kEq},
      {"least expensive", K::kSuperComplete, "price", true, Op::kEq},
      {"most expensive", K::kSuperComplete, "price", false, Op::kEq},
      {"priciest", K::kSuperComplete, "price", false, Op::kEq},
      {"newest", K::kSuperComplete, "year", false, Op::kEq},
      {"latest", K::kSuperComplete, "year", false, Op::kEq},
      {"oldest", K::kSuperComplete, "year", true, Op::kEq},
      {"earliest", K::kSuperComplete, "year", true, Op::kEq},
      {"best paying", K::kSuperComplete, "salary", false, Op::kEq},
      {"highest paying", K::kSuperComplete, "salary", false, Op::kEq},

      // --- partial superlatives: direction only (§4.1.2 P-superlatives) ---
      {"lowest", K::kSuperPartial, "", true, Op::kEq},
      {"least", K::kSuperPartial, "", true, Op::kEq},
      {"fewest", K::kSuperPartial, "", true, Op::kEq},
      {"min", K::kSuperPartial, "", true, Op::kEq},
      {"smallest", K::kSuperPartial, "", true, Op::kEq},
      {"highest", K::kSuperPartial, "", false, Op::kEq},
      {"greatest", K::kSuperPartial, "", false, Op::kEq},
      {"max", K::kSuperPartial, "", false, Op::kEq},
      {"most", K::kSuperPartial, "", false, Op::kEq},
      {"largest", K::kSuperPartial, "", false, Op::kEq},
      {"biggest", K::kSuperPartial, "", false, Op::kEq},

      // --- Boolean operators ---
      {"and", K::kAnd, "", true, Op::kEq},
      {"or", K::kOr, "", true, Op::kEq},

      // --- negations (§4.4.1 footnote) ---
      {"not", K::kNegation, "", true, Op::kEq},
      {"no", K::kNegation, "", true, Op::kEq},
      {"without", K::kNegation, "", true, Op::kEq},
      {"except", K::kNegation, "", true, Op::kEq},
      {"excluding", K::kNegation, "", true, Op::kEq},
      {"exclude", K::kNegation, "", true, Op::kEq},
      {"remove", K::kNegation, "", true, Op::kEq},
      {"nothing", K::kNegation, "", true, Op::kEq},
      {"leave out", K::kNegation, "", true, Op::kEq},
      {"dont want", K::kNegation, "", true, Op::kEq},
  };
  return *kRules;
}

bool IsNegationKeyword(const std::string& word) {
  static const auto* kSet = new std::unordered_set<std::string>{
      "not", "no", "without", "except", "excluding", "exclude",
      "remove", "nothing",
  };
  if (kSet->count(word) > 0) return true;
  return kSet->count(text::PorterStem(word)) > 0;
}

}  // namespace cqads::core
