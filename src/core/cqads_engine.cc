#include "core/cqads_engine.h"

#include "common/failpoint.h"

namespace cqads::core {

void CqadsEngine::SwapSnapshotLocked() {
  // Chaos hook: delay between building the new snapshot's state and
  // publishing it — the widest window for readers racing a swap.
  CQADS_FAILPOINT_HIT("engine.snapshot_swap");
  std::atomic_store(&snapshot_, builder_.Build());
}

Status CqadsEngine::AddDomain(const db::Table* table,
                              qlog::TiMatrix ti_matrix) {
  std::lock_guard<std::mutex> lock(mu_);
  CQADS_RETURN_NOT_OK(builder_.AddDomain(table, std::move(ti_matrix)));
  SwapSnapshotLocked();
  return Status::OK();
}

Result<db::RowId> CqadsEngine::IngestAd(const std::string& domain,
                                        db::Record record) {
  std::lock_guard<std::mutex> lock(mu_);
  CQADS_RETURN_NOT_OK(CQADS_FAILPOINT("engine.ingest"));
  auto row = builder_.IngestAd(domain, std::move(record));
  if (!row.ok()) return row.status();
  SwapSnapshotLocked();
  return row;
}

Status CqadsEngine::RetireAd(const std::string& domain, db::RowId row) {
  std::lock_guard<std::mutex> lock(mu_);
  CQADS_RETURN_NOT_OK(CQADS_FAILPOINT("engine.retire"));
  CQADS_RETURN_NOT_OK(builder_.RetireAd(domain, row));
  SwapSnapshotLocked();
  return Status::OK();
}

Status CqadsEngine::CompactDomain(const std::string& domain) {
  // The merge + index/lexicon/partition rebuild runs under mu_ — writers
  // (ingest, retrain, other compactions) serialize, exactly like AddDomain.
  // READERS never block: they run on the snapshot they pinned, and the new
  // generation becomes visible only at the final atomic swap.
  std::lock_guard<std::mutex> lock(mu_);
  CQADS_RETURN_NOT_OK(CQADS_FAILPOINT("engine.compact"));
  CQADS_RETURN_NOT_OK(builder_.CompactDomain(domain));
  SwapSnapshotLocked();
  return Status::OK();
}

void CqadsEngine::SetWordSimilarity(const wordsim::WsMatrix* ws) {
  std::lock_guard<std::mutex> lock(mu_);
  builder_.SetWordSimilarity(ws);
  SwapSnapshotLocked();
}

Status CqadsEngine::SaveSnapshot(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return builder_.SaveSnapshot(path);
}

Result<std::unique_ptr<CqadsEngine>> CqadsEngine::OpenSnapshot(
    const std::string& path) {
  auto builder = EngineBuilder::OpenSnapshot(path);
  if (!builder.ok()) return builder.status();
  return std::unique_ptr<CqadsEngine>(
      new CqadsEngine(std::move(builder).value()));
}

void CqadsEngine::SetOptions(Options options) {
  std::lock_guard<std::mutex> lock(mu_);
  builder_.set_options(options);
  SwapSnapshotLocked();
}

Status CqadsEngine::TrainClassifier(
    classify::QuestionClassifier::Options classifier_options) {
  return TrainClassifierWithExtra({}, classifier_options);
}

Status CqadsEngine::TrainClassifierWithExtra(
    const std::vector<classify::LabelledDoc>& extra_docs,
    classify::QuestionClassifier::Options classifier_options) {
  std::lock_guard<std::mutex> lock(mu_);
  CQADS_RETURN_NOT_OK(
      builder_.TrainClassifierWithExtra(extra_docs, classifier_options));
  SwapSnapshotLocked();
  return Status::OK();
}

std::vector<classify::LabelledDoc> CqadsEngine::MakeTrainingDocs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return builder_.MakeTrainingDocs();
}

EngineSnapshot::Ptr CqadsEngine::snapshot() const {
  // Readers never take mu_: a retrain holds it for the whole rebuild, and
  // blocking every Ask on that would defeat the snapshot design.
  return std::atomic_load(&snapshot_);
}

Result<std::string> CqadsEngine::ClassifyDomain(
    const std::string& question) const {
  return snapshot()->ClassifyDomain(question);
}

const DomainRuntime* CqadsEngine::runtime(const std::string& domain) const {
  return snapshot()->runtime(domain);
}

std::vector<std::string> CqadsEngine::Domains() const {
  return snapshot()->Domains();
}

Result<CqadsEngine::ParsedQuestion> CqadsEngine::Parse(
    const std::string& domain, const std::string& question) const {
  EngineSnapshot::Ptr snap = snapshot();
  QueryContext ctx(question, domain);
  Status st = QueryPipeline::ParseOnly().Run(*snap, &ctx);
  if (!st.ok()) return st;
  return std::move(ctx.parsed);
}

Result<CqadsEngine::AskResult> CqadsEngine::AskInDomain(
    const std::string& domain, const std::string& question) const {
  EngineSnapshot::Ptr snap = snapshot();
  QueryContext ctx(question, domain);
  Status st = QueryPipeline::Full().Run(*snap, &ctx);
  if (!st.ok()) return st;
  return std::move(ctx.result);
}

Result<CqadsEngine::AskResult> CqadsEngine::Ask(
    const std::string& question) const {
  EngineSnapshot::Ptr snap = snapshot();
  QueryContext ctx(question);
  Status st = QueryPipeline::Full().Run(*snap, &ctx);
  if (!st.ok()) return st;
  return std::move(ctx.result);
}

}  // namespace cqads::core
