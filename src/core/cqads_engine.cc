#include "core/cqads_engine.h"

#include <algorithm>

#include "db/sql_writer.h"

namespace cqads::core {

Status CqadsEngine::AddDomain(const db::Table* table,
                              qlog::TiMatrix ti_matrix) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  CQADS_RETURN_NOT_OK(table->schema().Validate());
  if (!table->indexes_built()) {
    return Status::FailedPrecondition("table indexes not built: " +
                                      table->schema().domain());
  }
  const std::string domain = table->schema().domain();
  if (runtimes_.count(domain) > 0) {
    return Status::AlreadyExists("domain already registered: " + domain);
  }

  auto rt = std::make_unique<DomainRuntime>();
  rt->table = table;
  auto lexicon = DomainLexicon::Build(table);
  if (!lexicon.ok()) return lexicon.status();
  rt->lexicon =
      std::make_unique<DomainLexicon>(std::move(lexicon).value());
  rt->tagger = std::make_unique<QuestionTagger>(rt->lexicon.get());
  rt->executor = std::make_unique<db::Executor>(table);
  rt->ti_matrix = std::move(ti_matrix);
  rt->attr_ranges = ComputeAttrRanges(*table);
  runtimes_.emplace(domain, std::move(rt));
  classifier_trained_ = false;  // corpus changed
  return Status::OK();
}

std::vector<classify::LabelledDoc> CqadsEngine::MakeTrainingDocs() const {
  std::vector<classify::LabelledDoc> docs;
  for (const auto& [domain, rt] : runtimes_) {
    for (db::RowId r = 0; r < rt->table->num_rows(); ++r) {
      docs.push_back({rt->table->RowText(r), domain});
    }
  }
  return docs;
}

Status CqadsEngine::TrainClassifier(
    classify::QuestionClassifier::Options classifier_options) {
  return TrainClassifierWithExtra({}, classifier_options);
}

Status CqadsEngine::TrainClassifierWithExtra(
    const std::vector<classify::LabelledDoc>& extra_docs,
    classify::QuestionClassifier::Options classifier_options) {
  if (runtimes_.empty()) {
    return Status::FailedPrecondition("no domains registered");
  }
  classifier_ = classify::QuestionClassifier(classifier_options);
  auto docs = MakeTrainingDocs();
  docs.insert(docs.end(), extra_docs.begin(), extra_docs.end());
  CQADS_RETURN_NOT_OK(classifier_.Train(docs));
  classifier_trained_ = true;
  return Status::OK();
}

Result<std::string> CqadsEngine::ClassifyDomain(
    const std::string& question) const {
  if (!classifier_trained_) {
    return Status::FailedPrecondition("classifier not trained");
  }
  std::string domain = classifier_.Classify(question);
  if (domain.empty()) return Status::Internal("classifier returned no class");
  return domain;
}

const DomainRuntime* CqadsEngine::runtime(const std::string& domain) const {
  auto it = runtimes_.find(domain);
  return it == runtimes_.end() ? nullptr : it->second.get();
}

std::vector<std::string> CqadsEngine::Domains() const {
  std::vector<std::string> out;
  for (const auto& [d, rt] : runtimes_) out.push_back(d);
  return out;
}

SimilarityContext CqadsEngine::MakeSimilarityContext(
    const DomainRuntime& rt) const {
  SimilarityContext ctx;
  ctx.ti = &rt.ti_matrix;
  ctx.ws = ws_;
  ctx.attr_ranges = rt.attr_ranges;
  return ctx;
}

Result<CqadsEngine::ParsedQuestion> CqadsEngine::Parse(
    const std::string& domain, const std::string& question) const {
  const DomainRuntime* rt = runtime(domain);
  if (rt == nullptr) return Status::NotFound("unknown domain: " + domain);

  ParsedQuestion parsed;
  parsed.tags = rt->tagger->Tag(question);
  parsed.conditions =
      BuildConditions(parsed.tags.items, rt->table->schema());

  // §4.2.2 resolver: candidate attributes are those whose observed value
  // range contains the bare number; '$' restricts to money attributes.
  const db::Table* table = rt->table;
  AmbiguousResolver resolver = [table](double value,
                                       bool is_money) -> std::vector<std::size_t> {
    std::vector<std::size_t> out;
    const db::Schema& schema = table->schema();
    for (std::size_t a : schema.NumericAttrs()) {
      if (is_money && !IsMoneyAttribute(schema.attribute(a))) continue;
      auto range = table->NumericRange(a);
      if (!range.ok()) continue;
      if (value >= range.value().first && value <= range.value().second) {
        out.push_back(a);
      }
    }
    return out;
  };

  auto assembled =
      AssembleQuery(parsed.conditions, rt->table->schema(), resolver);
  if (!assembled.ok()) return assembled.status();
  parsed.assembled = std::move(assembled).value();

  parsed.query.where = parsed.assembled.where;
  parsed.query.superlative = parsed.assembled.superlative;
  parsed.query.limit = options_.answer_cap;
  parsed.sql = db::WriteSql(rt->table->schema(), parsed.query);
  return parsed;
}

Result<CqadsEngine::AskResult> CqadsEngine::AskInDomain(
    const std::string& domain, const std::string& question) const {
  const DomainRuntime* rt = runtime(domain);
  if (rt == nullptr) return Status::NotFound("unknown domain: " + domain);

  auto parsed_result = Parse(domain, question);
  if (!parsed_result.ok()) return parsed_result.status();
  ParsedQuestion parsed = std::move(parsed_result).value();

  AskResult out;
  out.domain = domain;
  out.sql = parsed.sql;
  out.interpretation = parsed.assembled.interpretation;
  if (parsed.assembled.contradiction) {
    out.contradiction = true;
    return out;
  }

  // Exact evaluation (§4.3/§4.5).
  auto exec = rt->executor->Execute(parsed.query);
  if (!exec.ok()) return exec.status();
  out.stats = exec.value().stats;
  const auto& units = parsed.assembled.units;
  const double exact_score = static_cast<double>(units.size());
  for (db::RowId row : exec.value().rows) {
    out.answers.push_back(Answer{row, true, exact_score, ""});
  }
  out.exact_count = out.answers.size();

  // Partial matching (§4.3.1): trigger when exact answers are lacking.
  if (!options_.enable_partial ||
      out.answers.size() >= options_.partial_trigger || units.empty() ||
      parsed.query.superlative.has_value()) {
    return out;
  }

  const SimilarityContext ctx = MakeSimilarityContext(*rt);
  std::vector<bool> already(rt->table->num_rows(), false);
  for (const auto& a : out.answers) already[a.row] = true;

  std::vector<Answer> partials;
  if (units.size() >= 2) {
    // N-1: drop each unit in turn and evaluate the remaining conditions.
    for (std::size_t dropped = 0; dropped < units.size(); ++dropped) {
      std::vector<db::ExprPtr> parts;
      for (std::size_t u = 0; u < units.size(); ++u) {
        if (u != dropped) parts.push_back(units[u].expr);
      }
      for (const auto& f : parsed.assembled.fixed) parts.push_back(f);
      db::Query relaxed;
      relaxed.where = parts.empty() ? nullptr : db::Expr::MakeAnd(parts);
      relaxed.limit = rt->table->num_rows();  // rank before capping
      auto rel = rt->executor->Execute(relaxed);
      if (!rel.ok()) continue;
      out.stats += rel.value().stats;
      for (db::RowId row : rel.value().rows) {
        if (already[row]) continue;
        already[row] = true;
        PartialScore score =
            ScorePartialMatch(*rt->table, row, units, dropped, ctx);
        partials.push_back(
            Answer{row, false, score.rank_sim, score.measure});
      }
    }
  } else {
    // Single-condition questions: similarity-match every record against the
    // lone condition (§4.3.1 last paragraph).
    for (db::RowId row = 0; row < rt->table->num_rows(); ++row) {
      if (already[row]) continue;
      PartialScore score = ScorePartialMatch(*rt->table, row, units, 0, ctx);
      if (score.unit_sim <= 0.0) continue;
      partials.push_back(Answer{row, false, score.rank_sim, score.measure});
    }
  }

  std::sort(partials.begin(), partials.end(),
            [](const Answer& a, const Answer& b) {
              if (a.rank_sim != b.rank_sim) return a.rank_sim > b.rank_sim;
              return a.row < b.row;
            });
  for (const auto& p : partials) {
    if (out.answers.size() >= options_.answer_cap) break;
    out.answers.push_back(p);
  }
  return out;
}

Result<CqadsEngine::AskResult> CqadsEngine::Ask(
    const std::string& question) const {
  auto domain = ClassifyDomain(question);
  if (!domain.ok()) return domain.status();
  return AskInDomain(domain.value(), question);
}

}  // namespace cqads::core
