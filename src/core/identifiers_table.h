// The identifiers table (Table 1): the single manually-created rule table
// shared by every domain trie. Each rule maps a keyword (possibly a multi-
// word phrase, stored with single spaces) to the identifier the tagger
// assigns. Domain-specific attribute bindings use attribute *aliases*
// ("price", "year") that each DomainLexicon resolves against its schema —
// rules whose alias is absent from a schema are simply skipped, which is
// what makes adding a new ads domain schema-plus-lexicon only (§4.6).
#ifndef CQADS_CORE_IDENTIFIERS_TABLE_H_
#define CQADS_CORE_IDENTIFIERS_TABLE_H_

#include <string>
#include <vector>

#include "core/tags.h"

namespace cqads::core {

/// One row of the identifiers table.
struct IdentifierRule {
  std::string keyword;   ///< lower-case keyword or space-joined phrase
  TagKind kind = TagKind::kOpEquals;
  /// Attribute alias for kBoundaryComplete / kSuperComplete ("" otherwise).
  std::string attr_alias;
  /// Direction for superlatives (true = min-seeking) and comparison
  /// direction for complete boundaries (kOpLess/kOpGreater via `op`).
  bool ascending = true;
  db::CompareOp op = db::CompareOp::kEq;
};

/// The built-in rules. Deterministic order; no duplicates.
const std::vector<IdentifierRule>& BuiltinIdentifierRules();

/// Negation keywords (§4.4.1 footnote): matched against raw or stemmed
/// question words.
bool IsNegationKeyword(const std::string& word);

}  // namespace cqads::core

#endif  // CQADS_CORE_IDENTIFIERS_TABLE_H_
