#include "core/engine_snapshot.h"

namespace cqads::core {

const DomainRuntime* EngineSnapshot::runtime(const std::string& domain) const {
  auto it = runtimes_.find(domain);
  return it == runtimes_.end() ? nullptr : it->second.get();
}

std::vector<std::string> EngineSnapshot::Domains() const {
  std::vector<std::string> out;
  out.reserve(runtimes_.size());
  for (const auto& [d, rt] : runtimes_) out.push_back(d);
  return out;
}

Result<std::string> EngineSnapshot::ClassifyDomain(
    const std::string& question) const {
  if (!classifier_trained_) {
    return Status::FailedPrecondition("classifier not trained");
  }
  std::string domain = classifier_.Classify(question);
  if (domain.empty()) return Status::Internal("classifier returned no class");
  return domain;
}

SimilarityContext EngineSnapshot::MakeSimilarityContext(
    const DomainRuntime& rt) const {
  SimilarityContext ctx;
  ctx.ti = &rt.ti_matrix;
  ctx.ws = ws_;
  ctx.attr_ranges = rt.attr_ranges;
  return ctx;
}

Status EngineBuilder::AddDomain(const db::Table* table,
                                qlog::TiMatrix ti_matrix) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  CQADS_RETURN_NOT_OK(table->schema().Validate());
  if (!table->indexes_built()) {
    return Status::FailedPrecondition("table indexes not built: " +
                                      table->schema().domain());
  }
  const std::string domain = table->schema().domain();
  if (runtimes_.count(domain) > 0) {
    return Status::AlreadyExists("domain already registered: " + domain);
  }

  auto rt = std::make_shared<DomainRuntime>();
  rt->table = table;
  auto lexicon = DomainLexicon::Build(table);
  if (!lexicon.ok()) return lexicon.status();
  rt->lexicon = std::make_unique<DomainLexicon>(std::move(lexicon).value());
  rt->tagger = std::make_unique<QuestionTagger>(rt->lexicon.get());
  rt->executor = std::make_unique<db::Executor>(table);
  rt->stats = table->stats_ptr();
  rt->planner = std::make_unique<db::exec::Planner>(table);
  rt->ti_matrix = std::move(ti_matrix);
  rt->attr_ranges = ComputeAttrRanges(*table);
  runtimes_.emplace(domain, std::move(rt));
  classifier_trained_ = false;  // corpus changed
  return Status::OK();
}

std::vector<classify::LabelledDoc> EngineBuilder::MakeTrainingDocs() const {
  std::vector<classify::LabelledDoc> docs;
  for (const auto& [domain, rt] : runtimes_) {
    for (db::RowId r = 0; r < rt->table->num_rows(); ++r) {
      docs.push_back({rt->table->RowText(r), domain});
    }
  }
  return docs;
}

Status EngineBuilder::TrainClassifier(
    classify::QuestionClassifier::Options classifier_options) {
  return TrainClassifierWithExtra({}, classifier_options);
}

Status EngineBuilder::TrainClassifierWithExtra(
    const std::vector<classify::LabelledDoc>& extra_docs,
    classify::QuestionClassifier::Options classifier_options) {
  if (runtimes_.empty()) {
    return Status::FailedPrecondition("no domains registered");
  }
  classifier_ = classify::QuestionClassifier(classifier_options);
  auto docs = MakeTrainingDocs();
  docs.insert(docs.end(), extra_docs.begin(), extra_docs.end());
  CQADS_RETURN_NOT_OK(classifier_.Train(docs));
  classifier_trained_ = true;
  return Status::OK();
}

EngineSnapshot::Ptr EngineBuilder::Build() {
  auto snap = std::shared_ptr<EngineSnapshot>(new EngineSnapshot());
  snap->options_ = options_;
  snap->version_ = next_version_++;
  snap->runtimes_ = runtimes_;  // shares DomainRuntimes, no rebuild
  snap->classifier_ = classifier_;
  snap->classifier_trained_ = classifier_trained_;
  snap->ws_ = ws_;
  return snap;
}

}  // namespace cqads::core
