#include "core/engine_snapshot.h"

#include <utility>

namespace cqads::core {

const DomainRuntime* EngineSnapshot::runtime(const std::string& domain) const {
  auto it = runtimes_.find(domain);
  return it == runtimes_.end() ? nullptr : it->second.get();
}

std::vector<std::string> EngineSnapshot::Domains() const {
  std::vector<std::string> out;
  out.reserve(runtimes_.size());
  for (const auto& [d, rt] : runtimes_) out.push_back(d);
  return out;
}

Result<std::string> EngineSnapshot::ClassifyDomain(
    const std::string& question) const {
  if (!classifier_trained_) {
    return Status::FailedPrecondition("classifier not trained");
  }
  std::string domain = classifier_.Classify(question);
  if (domain.empty()) return Status::Internal("classifier returned no class");
  return domain;
}

Result<std::string> EngineSnapshot::ClassifyDomainTokens(
    const text::TokenList& tokens) const {
  if (!classifier_trained_) {
    return Status::FailedPrecondition("classifier not trained");
  }
  std::string domain = classifier_.Classify(tokens);
  if (domain.empty()) return Status::Internal("classifier returned no class");
  return domain;
}

SimilarityContext EngineSnapshot::MakeSimilarityContext(
    const DomainRuntime& rt) const {
  SimilarityContext ctx;
  ctx.ti = rt.ti_matrix.get();
  ctx.ws = ws_;
  ctx.attr_ranges = rt.attr_ranges;
  return ctx;
}

Result<std::shared_ptr<DomainRuntime>> EngineBuilder::MakeRuntime(
    const db::Table* table, std::shared_ptr<const db::Table> owned,
    std::shared_ptr<const qlog::TiMatrix> ti) const {
  auto rt = std::make_shared<DomainRuntime>();
  rt->table = table;
  rt->owned_table = std::move(owned);
  auto lexicon = DomainLexicon::Build(table);
  if (!lexicon.ok()) return lexicon.status();
  rt->lexicon =
      std::make_shared<const DomainLexicon>(std::move(lexicon).value());
  // Aliasing: the published dict IS the lexicon's member — one frozen
  // instance per lexicon generation, no copy.
  rt->terms = std::shared_ptr<const text::TermDict>(rt->lexicon,
                                                    &rt->lexicon->terms());
  rt->tagger = std::make_shared<const QuestionTagger>(rt->lexicon.get());
  rt->executor = std::make_shared<const db::Executor>(table);
  rt->stats = table->stats_ptr();
  rt->planner = std::make_shared<const db::exec::Planner>(table);
  if (options_.partition_rows > 0) {
    auto parts = db::exec::PartitionedTable::Build(*table,
                                                   options_.partition_rows);
    if (!parts.ok()) return parts.status();
    rt->partitions = std::move(parts).value();
    rt->parallel_planner =
        std::make_shared<const db::exec::ParallelPlanner>(rt->partitions);
  }
  rt->ti_matrix = std::move(ti);
  rt->attr_ranges = ComputeAttrRanges(*table);
  rt->rank_bounds = db::exec::RankBounds::Build(*table);
  return rt;
}

Status EngineBuilder::AddDomain(const db::Table* table,
                                qlog::TiMatrix ti_matrix) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  CQADS_RETURN_NOT_OK(table->schema().Validate());
  if (!table->indexes_built()) {
    return Status::FailedPrecondition("table indexes not built: " +
                                      table->schema().domain());
  }
  const std::string domain = table->schema().domain();
  if (runtimes_.count(domain) > 0) {
    return Status::AlreadyExists("domain already registered: " + domain);
  }

  auto rt = MakeRuntime(
      table, nullptr,
      std::make_shared<const qlog::TiMatrix>(std::move(ti_matrix)));
  if (!rt.ok()) return rt.status();
  runtimes_.emplace(domain, std::move(rt).value());
  classifier_trained_ = false;  // corpus changed
  return Status::OK();
}

Result<db::DeltaStore*> EngineBuilder::PendingDelta(
    const std::string& domain) {
  auto rt_it = runtimes_.find(domain);
  if (rt_it == runtimes_.end()) {
    return Status::NotFound("unknown domain: " + domain);
  }
  auto it = pending_deltas_.find(domain);
  if (it == pending_deltas_.end()) {
    const db::Table* table = rt_it->second->table;
    it = pending_deltas_
             .emplace(domain, std::make_unique<db::DeltaStore>(
                                  table->schema(), table->num_rows()))
             .first;
  }
  return it->second.get();
}

void EngineBuilder::RefreshDeltaRuntime(const std::string& domain) {
  // A new runtime generation: every heavy component shared, only the frozen
  // delta copy differs. The copy is what keeps the hot path lock-free — the
  // pending delta stays mutable here, snapshots only ever see immutable
  // copies. Each publication costs O(pending delta) record copies, so a
  // stream of N ingests between compactions is O(N^2) total; compaction
  // cadence bounds N by design (bulk loads should go through
  // Table::Insert + AddDomain/CompactDomain, not row-at-a-time IngestAd).
  auto& slot = runtimes_[domain];
  auto rt = std::make_shared<DomainRuntime>(*slot);
  rt->delta =
      std::make_shared<const db::DeltaStore>(*pending_deltas_[domain]);
  slot = std::move(rt);
}

Result<db::RowId> EngineBuilder::IngestAd(const std::string& domain,
                                          db::Record record) {
  auto delta = PendingDelta(domain);
  if (!delta.ok()) return delta.status();
  auto row = delta.value()->Insert(std::move(record));
  if (!row.ok()) return row.status();
  RefreshDeltaRuntime(domain);
  return row;
}

Status EngineBuilder::RetireAd(const std::string& domain, db::RowId row) {
  auto delta = PendingDelta(domain);
  if (!delta.ok()) return delta.status();
  CQADS_RETURN_NOT_OK(delta.value()->Retire(row));
  RefreshDeltaRuntime(domain);
  return Status::OK();
}

bool EngineBuilder::HasPendingDelta(const std::string& domain) const {
  auto it = pending_deltas_.find(domain);
  return it != pending_deltas_.end() && !it->second->empty();
}

Status EngineBuilder::CompactDomain(const std::string& domain) {
  auto rt_it = runtimes_.find(domain);
  if (rt_it == runtimes_.end()) {
    return Status::NotFound("unknown domain: " + domain);
  }
  auto delta_it = pending_deltas_.find(domain);
  if (delta_it == pending_deltas_.end() || delta_it->second->empty()) {
    pending_deltas_.erase(domain);
    return Status::OK();  // nothing to merge
  }

  const DomainRuntime& old = *rt_it->second;
  // Merge order = surviving base rows in RowId order, then surviving delta
  // rows in insertion order: exactly the sequence a from-scratch rebuild
  // would insert, which is what makes post-compaction answers byte-
  // identical to that rebuild.
  auto merged = std::make_shared<db::Table>(old.table->schema());
  for (auto& rec : delta_it->second->MergedRecords(*old.table)) {
    auto inserted = merged->Insert(std::move(rec));
    if (!inserted.ok()) return inserted.status();
  }
  merged->BuildIndexes();

  auto rt = MakeRuntime(merged.get(), merged, old.ti_matrix);
  if (!rt.ok()) return rt.status();
  rt_it->second = std::move(rt).value();
  pending_deltas_.erase(domain);
  return Status::OK();
}

void EngineBuilder::set_options(const EngineOptions& options) {
  const bool reshard = options.partition_rows != options_.partition_rows;
  options_ = options;
  if (!reshard) return;
  // Re-shard every registered domain around the new partition size, sharing
  // everything else of the current generation. A shard-build failure (only
  // possible when a caller-owned table was mutated without re-indexing)
  // degrades THAT domain to the always-correct monolithic layout — never a
  // stale differently-sized sharding.
  for (auto& [domain, slot] : runtimes_) {
    auto rt = std::make_shared<DomainRuntime>(*slot);
    rt->partitions = nullptr;
    rt->parallel_planner = nullptr;
    if (options_.partition_rows > 0) {
      auto parts = db::exec::PartitionedTable::Build(*rt->table,
                                                     options_.partition_rows);
      if (parts.ok()) {
        rt->partitions = std::move(parts).value();
        rt->parallel_planner =
            std::make_shared<const db::exec::ParallelPlanner>(rt->partitions);
      }
    }
    slot = std::move(rt);
  }
}

std::vector<classify::LabelledDoc> EngineBuilder::MakeTrainingDocs() const {
  std::vector<classify::LabelledDoc> docs;
  for (const auto& [domain, rt] : runtimes_) {
    for (db::RowId r = 0; r < rt->table->num_rows(); ++r) {
      docs.push_back({rt->table->RowText(r), domain});
    }
  }
  return docs;
}

Status EngineBuilder::TrainClassifier(
    classify::QuestionClassifier::Options classifier_options) {
  return TrainClassifierWithExtra({}, classifier_options);
}

Status EngineBuilder::TrainClassifierWithExtra(
    const std::vector<classify::LabelledDoc>& extra_docs,
    classify::QuestionClassifier::Options classifier_options) {
  if (runtimes_.empty()) {
    return Status::FailedPrecondition("no domains registered");
  }
  classifier_ = classify::QuestionClassifier(classifier_options);
  auto docs = MakeTrainingDocs();
  docs.insert(docs.end(), extra_docs.begin(), extra_docs.end());
  CQADS_RETURN_NOT_OK(classifier_.Train(docs));
  classifier_trained_ = true;
  return Status::OK();
}

EngineSnapshot::Ptr EngineBuilder::Build() {
  auto snap = std::shared_ptr<EngineSnapshot>(new EngineSnapshot());
  snap->options_ = options_;
  snap->version_ = next_version_++;
  snap->runtimes_ = runtimes_;  // shares DomainRuntimes, no rebuild
  snap->classifier_ = classifier_;
  snap->classifier_trained_ = classifier_trained_;
  snap->ws_ = ws_;
  snap->owned_ws_ = owned_ws_;
  return snap;
}

}  // namespace cqads::core
