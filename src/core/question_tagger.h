// Question tagging (§4.1.3, §4.2.1): tokenizes a question, removes
// non-essential keywords, repairs missing spaces and misspellings with the
// domain trie, resolves shorthand notations, and emits the tagged items the
// condition builder consumes.
#ifndef CQADS_CORE_QUESTION_TAGGER_H_
#define CQADS_CORE_QUESTION_TAGGER_H_

#include <string>
#include <vector>

#include "core/domain_lexicon.h"
#include "core/tags.h"
#include "trie/spell_corrector.h"

namespace cqads::core {

/// Tagging outcome plus a trace of the repairs performed (for tests, the
/// HTML-style result explanation, and debugging).
struct TaggingResult {
  std::vector<TaggedItem> items;
  std::vector<std::string> corrections;   ///< "hnda -> honda (83%)"
  std::vector<std::string> segmentations; ///< "hondaaccord -> honda accord"
  std::vector<std::string> shorthands;    ///< "2dr -> 2 door"
  std::vector<std::string> dropped;       ///< removed non-essential keywords
};

class QuestionTagger {
 public:
  struct Options {
    /// Minimum word length eligible for spelling correction. Three-letter
    /// words ("car") coincide too easily with value keywords ("camry").
    std::size_t min_correction_length = 4;
    /// similar_text acceptance threshold (percent).
    double min_correction_percent = 70.0;
  };

  explicit QuestionTagger(const DomainLexicon* lexicon)
      : QuestionTagger(lexicon, Options()) {}
  QuestionTagger(const DomainLexicon* lexicon, Options options);

  /// Tags a raw question.
  TaggingResult Tag(const std::string& question) const;

 private:
  /// Picks the preferred handle when a keyword is ambiguous: Type I beats
  /// Type II beats everything else (identity is the stronger signal).
  const TaggedItem& PreferredEntry(
      const std::vector<std::int32_t>& handles) const;

  const DomainLexicon* lexicon_;
  Options options_;
  trie::SpellCorrector corrector_;
};

}  // namespace cqads::core

#endif  // CQADS_CORE_QUESTION_TAGGER_H_
