// Question tagging (§4.1.3, §4.2.1): tokenizes a question, removes
// non-essential keywords, repairs missing spaces and misspellings with the
// domain trie, resolves shorthand notations, and emits the tagged items the
// condition builder consumes.
//
// The tagger runs over either trie representation: the frozen FlatTrie
// (serve-time default, EngineOptions::use_term_substrate) or the seed's
// pointer KeywordTrie (the legacy path the parity gates compare against).
// Both produce byte-identical TaggingResults.
#ifndef CQADS_CORE_QUESTION_TAGGER_H_
#define CQADS_CORE_QUESTION_TAGGER_H_

#include <string>
#include <vector>

#include "core/domain_lexicon.h"
#include "core/tags.h"
#include "trie/spell_corrector.h"

namespace cqads::core {

/// Tagging outcome plus a trace of the repairs performed (for tests, the
/// HTML-style result explanation, and debugging).
struct TaggingResult {
  std::vector<TaggedItem> items;
  std::vector<std::string> corrections;   ///< "hnda -> honda (83%)"
  std::vector<std::string> segmentations; ///< "hondaaccord -> honda accord"
  std::vector<std::string> shorthands;    ///< "2dr -> 2 door"
  std::vector<std::string> dropped;       ///< removed non-essential keywords
};

class QuestionTagger {
 public:
  struct Options {
    /// Minimum word length eligible for spelling correction. Three-letter
    /// words ("car") coincide too easily with value keywords ("camry").
    std::size_t min_correction_length = 4;
    /// similar_text acceptance threshold (percent).
    double min_correction_percent = 70.0;
  };

  explicit QuestionTagger(const DomainLexicon* lexicon)
      : QuestionTagger(lexicon, Options()) {}
  QuestionTagger(const DomainLexicon* lexicon, Options options);

  /// Tags a raw question (legacy pointer-trie path; tokenizes internally).
  TaggingResult Tag(const std::string& question) const;

  /// Tags pre-tokenized input — the pipeline tokenizes each question ONCE
  /// into QueryContext and hands the tokens here. `use_flat` selects the
  /// frozen flat trie (serve default) or the pointer-trie oracle.
  TaggingResult TagTokens(const text::TokenList& tokens,
                          bool use_flat) const;

 private:
  template <typename TrieT, typename CorrectorT>
  TaggingResult TagImpl(text::TokenList tokens, const TrieT& trie,
                        const CorrectorT& corrector) const;

  /// Picks the preferred handle when a keyword is ambiguous: Type I beats
  /// Type II beats everything else (identity is the stronger signal).
  const TaggedItem& PreferredEntry(const std::int32_t* handles,
                                   std::size_t count) const;

  const DomainLexicon* lexicon_;
  Options options_;
  trie::SpellCorrector corrector_;           ///< pointer-trie (oracle) path
  trie::FlatSpellCorrector flat_corrector_;  ///< serve-time path
};

}  // namespace cqads::core

#endif  // CQADS_CORE_QUESTION_TAGGER_H_
