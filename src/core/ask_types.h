// Request/response value types of the ask path, shared by the staged
// pipeline (core/pipeline.h), the engine facade (core/cqads_engine.h), and
// the serving layer (serve/). Hoisted out of CqadsEngine so the pipeline,
// the prepared-query cache, and the server can name them without pulling in
// the engine.
#ifndef CQADS_CORE_ASK_TYPES_H_
#define CQADS_CORE_ASK_TYPES_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/boolean_assembler.h"
#include "core/condition_builder.h"
#include "core/question_tagger.h"
#include "db/executor.h"
#include "db/query.h"

// ParsedQuestion only carries shared_ptrs to compiled plans; the plan
// vocabulary (db/exec/plan.h, db/exec/parallel_plan.h) stays out of this
// widely-included header.
namespace cqads::db::exec {
class PhysicalPlan;
using PlanPtr = std::shared_ptr<const PhysicalPlan>;
class PartitionedPlan;
using PartitionedPlanPtr = std::shared_ptr<const PartitionedPlan>;
class TaskRunner;
}  // namespace cqads::db::exec

namespace cqads::core {

/// Engine-wide knobs (formerly CqadsEngine::Options).
struct EngineOptions {
  /// §4.3.1: at most 30 answers per question.
  std::size_t answer_cap = 30;
  /// Partial (N-1) answers are fetched when exact answers number fewer
  /// than this.
  std::size_t partial_trigger = 30;
  bool enable_partial = true;
  /// Execute through compiled cost-aware plans over the column store
  /// (db/exec). When false, the seed row-at-a-time Executor with the §4.3
  /// Type-rank order runs instead — answers are identical either way (the
  /// parity benches and property tests assert it); only the work differs.
  bool use_planner = true;
  /// Record the plan dump (PhysicalPlan::Explain) in AskResult::explain.
  /// Off by default: the hot path should not build strings nobody reads.
  bool explain_plans = false;
  /// Parse/rank on the interned-term substrate: the tagger walks the frozen
  /// FlatTrie and Eq. 5 partial scoring runs id-to-id through a per-request
  /// SimScorer (no per-candidate stemming or string-pair keys). When false,
  /// the seed string paths run instead — answers are byte-identical either
  /// way (the fig6 substrate parity gate and the differential tests pin
  /// it); only the work differs.
  bool use_term_substrate = true;
  /// Execute plans block-at-a-time through the branch-free selection-mask
  /// kernels (db/exec/vector_kernels.h) and score rank candidates in
  /// batches (SimScorer::ScoreBlock). When false, the scalar row-at-a-time
  /// loops run instead — answers are byte-identical either way (the fig6
  /// vector parity gate and the differential tests pin it); only the work
  /// differs.
  bool use_vector_kernels = true;
  /// Rank partial answers through the bounded top-k path: a size-answer_cap
  /// accumulator with block-max score pruning (per-1024-row-block upper
  /// bounds from RankBounds) and morsel-parallel sweeps on exec_runner,
  /// replacing collect-all + full sort. Requires use_term_substrate (the
  /// id-keyed SimScorer); with the substrate off the serial full-sort path
  /// runs regardless. When false, the serial path runs — answers are
  /// byte-identical either way (the fig6 top-k parity gate and
  /// tests/test_topk_rank.cc pin it); only the work differs.
  bool use_topk_rank = true;
  /// Horizontal partitioning: rows per ColumnStore partition. Each domain's
  /// store is sharded into fixed-size row partitions (own dictionaries,
  /// postings, null bitmaps, per-partition stats) and compiled plans run
  /// per-partition, merged answer-identically. 0 = one monolithic store
  /// (the seed layout). Requires use_planner.
  std::size_t partition_rows = 0;
  /// Threads one query's plan may fan partition morsels across (the calling
  /// thread included). <= 1 = serial partition execution.
  std::size_t exec_parallelism = 1;
  /// Where partition morsels run (e.g. a serve::WorkerPool). Non-owning:
  /// must outlive the engine. nullptr = morsels run inline on the caller,
  /// which is also the graceful degradation when the pool is saturated.
  db::exec::TaskRunner* exec_runner = nullptr;
};

/// Full analysis of a question within a known domain: everything the
/// parse-side stages (tag -> conditions -> assembly -> SQL) produce.
/// Immutable once built (the expression trees are shared_ptr<const Expr>),
/// so a ParsedQuestion can be memoized by the prepared-query cache and
/// replayed concurrently.
struct ParsedQuestion {
  TaggingResult tags;
  BuiltConditions conditions;
  AssembledQuery assembled;
  db::Query query;      ///< executable form
  std::string sql;      ///< §4.5 nested-subquery SQL text
  /// Compiled cost-aware plan for `query` (null when planning is disabled).
  /// Compiled against one snapshot's table/stats; riding on ParsedQuestion
  /// is what lets the prepared-query cache memoize plans per snapshot
  /// version for free.
  db::exec::PlanPtr plan;
  /// Compiled plans for the §4.3.1 N-1 relaxations (entry d drops unit d),
  /// precompiled when the question is relaxable (>= 2 units, no
  /// superlative) so cache hits skip per-request recompilation. Empty
  /// otherwise.
  std::vector<db::exec::PlanPtr> relaxed_plans;
  /// Partition-parallel forms of `plan` / `relaxed_plans`, compiled instead
  /// of the monolithic forms when the domain's store is partitioned
  /// (EngineOptions::partition_rows > 0). Null/empty otherwise.
  db::exec::PartitionedPlanPtr part_plan;
  std::vector<db::exec::PartitionedPlanPtr> relaxed_part_plans;
};

/// One retrieved answer.
struct Answer {
  db::RowId row = 0;
  bool exact = true;
  double rank_sim = 0.0;     ///< Eq. 5 (exact answers: number of units)
  std::string measure;       ///< similarity measure used (partial only)
};

/// Wall-clock spent inside one pipeline stage of one request.
struct StageTiming {
  std::string stage;
  double micros = 0.0;
};

struct AskResult {
  std::string domain;
  std::string sql;
  std::string interpretation;
  bool contradiction = false;  ///< "search retrieved no results"
  /// True when the request's deadline forced graceful degradation: the
  /// exact answers are complete and correct, but partial (N-1) retrieval
  /// stopped at the best-so-far pass (or was skipped) instead of running
  /// all relaxations. Never set without a deadline, so deadline-free
  /// serving stays byte-identical to the pre-deadline engine. Deliberately
  /// NOT part of CanonicalAskResultString: it describes how much work ran,
  /// not which rows match.
  bool degraded = false;
  std::vector<Answer> answers;
  std::size_t exact_count = 0;
  db::ExecStats stats;
  /// Per-stage timings in pipeline order (empty for cached parse stages).
  std::vector<StageTiming> timings;
  /// Physical plan dump (EngineOptions::explain_plans only; not part of the
  /// canonical result string).
  std::string explain;
};

/// Canonical serialization of everything deterministic in an AskResult
/// (domain, SQL, interpretation, contradiction flag, answer rows with exact
/// flags, rank scores, and measures — not timings or work counters). Two
/// serving paths answered identically iff the strings are byte-identical;
/// the concurrency tests and the throughput bench compare with this.
std::string CanonicalAskResultString(const AskResult& result);

}  // namespace cqads::core

#endif  // CQADS_CORE_ASK_TYPES_H_
