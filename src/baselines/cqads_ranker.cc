#include "baselines/cqads_ranker.h"

#include <algorithm>

namespace cqads::baselines {

double CqadsRanker::Score(const RankInput& input, db::RowId row) const {
  db::Executor exec(input.table);
  double satisfied = 0.0;
  double best_unsat_sim = 0.0;
  bool any_unsat = false;
  for (const auto& unit : input.units) {
    if (unit.expr && exec.MatchesExpr(row, *unit.expr)) {
      satisfied += 1.0;
    } else {
      any_unsat = true;
      best_unsat_sim = std::max(
          best_unsat_sim,
          core::UnitSimilarity(*input.table, row, unit, *ctx_));
    }
  }
  return satisfied + (any_unsat ? best_unsat_sim : 0.0);
}

std::vector<db::RowId> CqadsRanker::Rank(const RankInput& input,
                                         std::size_t k) {
  std::vector<std::pair<double, db::RowId>> scored;
  scored.reserve(input.candidates.size());
  for (db::RowId row : input.candidates) {
    scored.emplace_back(Score(input, row), row);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first > b.first;
                     return a.second < b.second;
                   });
  std::vector<db::RowId> out;
  for (const auto& [score, row] : scored) {
    if (out.size() >= k) break;
    out.push_back(row);
  }
  return out;
}

}  // namespace cqads::baselines
