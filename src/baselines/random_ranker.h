// Random ranking (§5.5.2, citing Meng et al.): the no-information baseline
// that presents partially-matched answers in random order.
#ifndef CQADS_BASELINES_RANDOM_RANKER_H_
#define CQADS_BASELINES_RANDOM_RANKER_H_

#include "baselines/ranker.h"
#include "common/rng.h"

namespace cqads::baselines {

class RandomRanker : public Ranker {
 public:
  explicit RandomRanker(std::uint64_t seed) : rng_(seed) {}

  std::string name() const override { return "Random"; }

  std::vector<db::RowId> Rank(const RankInput& input,
                              std::size_t k) override {
    std::vector<db::RowId> out = input.candidates;
    rng_.Shuffle(&out);
    if (out.size() > k) out.resize(k);
    return out;
  }

 private:
  Rng rng_;
};

}  // namespace cqads::baselines

#endif  // CQADS_BASELINES_RANDOM_RANKER_H_
