#include "baselines/ranker.h"

namespace cqads::baselines {

std::size_t SatisfiedUnits(const RankInput& input, db::RowId row) {
  db::Executor exec(input.table);
  std::size_t n = 0;
  for (const auto& unit : input.units) {
    if (unit.expr && exec.MatchesExpr(row, *unit.expr)) ++n;
  }
  return n;
}

}  // namespace cqads::baselines
