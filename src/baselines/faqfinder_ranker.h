// FAQFinder ranking (§5.5.2, Burke et al. 1997, as the paper re-implements
// it): every ads record is treated as a document, the question as a query,
// and candidates are ordered by TF-IDF cosine similarity. The method does
// not compare numerical attributes — the weakness the paper observes.
#ifndef CQADS_BASELINES_FAQFINDER_RANKER_H_
#define CQADS_BASELINES_FAQFINDER_RANKER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/ranker.h"

namespace cqads::baselines {

class FaqFinderRanker : public Ranker {
 public:
  /// Precomputes IDF weights and per-record TF-IDF vectors from the table.
  explicit FaqFinderRanker(const db::Table* table);

  std::string name() const override { return "FAQFinder"; }

  std::vector<db::RowId> Rank(const RankInput& input,
                              std::size_t k) override;

  /// TF-IDF cosine of the question text against a record.
  double Score(const std::string& question_text, db::RowId row) const;

 private:
  using SparseVec = std::unordered_map<std::string, double>;

  SparseVec Vectorize(const std::string& raw_text) const;
  static double CosineSparse(const SparseVec& a, const SparseVec& b);

  const db::Table* table_;
  std::unordered_map<std::string, double> idf_;
  std::vector<SparseVec> record_vectors_;
};

}  // namespace cqads::baselines

#endif  // CQADS_BASELINES_FAQFINDER_RANKER_H_
