// AIMQ ranking (§5.5.2, Nambiar & Kambhampati, ICDE 2006; Eq. 9-10). Each
// categorical attribute value owns a *supertuple*: the bag of values that
// co-occur with it in the other categorical columns across the table.
// Categorical similarity is the Jaccard coefficient of two supertuples;
// numeric similarity is 1 - |Q.Ai - A.Ai| / Q.Ai; attribute importance
// weights are uniform (1/n), matching the paper's implementation.
#ifndef CQADS_BASELINES_AIMQ_RANKER_H_
#define CQADS_BASELINES_AIMQ_RANKER_H_

#include <map>
#include <set>
#include <string>

#include "baselines/ranker.h"

namespace cqads::baselines {

class AimqRanker : public Ranker {
 public:
  /// Precomputes supertuples from the table.
  explicit AimqRanker(const db::Table* table);

  std::string name() const override { return "AIMQ"; }

  std::vector<db::RowId> Rank(const RankInput& input,
                              std::size_t k) override;

  /// Jaccard similarity of the supertuples of two values of `attr`.
  double VSim(std::size_t attr, const std::string& a,
              const std::string& b) const;

  /// Eq. 9 for one candidate row.
  double Score(const RankInput& input, db::RowId row) const;

 private:
  using ValueKey = std::pair<std::size_t, std::string>;
  const db::Table* table_;
  std::map<ValueKey, std::set<std::string>> supertuples_;
};

}  // namespace cqads::baselines

#endif  // CQADS_BASELINES_AIMQ_RANKER_H_
