// Cosine-similarity ranking (§5.5.2): the vector-space baseline with binary
// weights. For each selection constraint C of the question, a candidate's
// vector holds 1 when it satisfies C and 0 otherwise; the question vector is
// all ones; candidates are ordered by the cosine of the angle between them.
#ifndef CQADS_BASELINES_COSINE_RANKER_H_
#define CQADS_BASELINES_COSINE_RANKER_H_

#include "baselines/ranker.h"

namespace cqads::baselines {

class CosineRanker : public Ranker {
 public:
  std::string name() const override { return "Cosine"; }

  std::vector<db::RowId> Rank(const RankInput& input,
                              std::size_t k) override;

  /// Binary-weight cosine between the all-ones question vector and the
  /// row's satisfaction vector: satisfied / (sqrt(N) * sqrt(satisfied)).
  static double Score(const RankInput& input, db::RowId row);
};

}  // namespace cqads::baselines

#endif  // CQADS_BASELINES_COSINE_RANKER_H_
