#include "baselines/aimq_ranker.h"

#include <algorithm>
#include <cmath>

namespace cqads::baselines {

AimqRanker::AimqRanker(const db::Table* table) : table_(table) {
  const db::Schema& schema = table->schema();
  for (db::RowId row = 0; row < table->num_rows(); ++row) {
    // Gather the row's categorical elements once.
    std::vector<std::pair<std::size_t, std::string>> elements;
    for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
      if (schema.attribute(a).data_kind == db::DataKind::kNumeric) continue;
      for (const auto& e : table->CellElements(row, a)) {
        elements.emplace_back(a, e);
      }
    }
    // Each value's supertuple accumulates the co-occurring values of the
    // OTHER attributes.
    for (const auto& [attr, value] : elements) {
      auto& st = supertuples_[{attr, value}];
      for (const auto& [other_attr, other_value] : elements) {
        if (other_attr == attr) continue;
        st.insert(other_value);
      }
    }
  }
}

double AimqRanker::VSim(std::size_t attr, const std::string& a,
                        const std::string& b) const {
  if (a == b) return 1.0;
  auto ita = supertuples_.find({attr, a});
  auto itb = supertuples_.find({attr, b});
  if (ita == supertuples_.end() || itb == supertuples_.end()) return 0.0;
  const auto& sa = ita->second;
  const auto& sb = itb->second;
  std::size_t inter = 0;
  for (const auto& v : sa) {
    if (sb.count(v) > 0) ++inter;
  }
  std::size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) /
                              static_cast<double>(uni);
}

double AimqRanker::Score(const RankInput& input, db::RowId row) const {
  // Flatten the units into (attr, requested value) pairs.
  struct QueryAttr {
    std::size_t attr;
    bool numeric;
    std::string value;
    double number;
  };
  std::vector<QueryAttr> query_attrs;
  const db::Schema& schema = table_->schema();
  for (const auto& unit : input.units) {
    for (const auto& c : unit.conds) {
      std::size_t attr = c.attr == core::kNoAttr ? unit.attr : c.attr;
      if (attr == core::kNoAttr) continue;
      QueryAttr qa;
      qa.attr = attr;
      qa.numeric = schema.attribute(attr).data_kind == db::DataKind::kNumeric;
      if (qa.numeric) {
        qa.number = c.op == db::CompareOp::kBetween ? (c.lo + c.hi) / 2.0
                                                    : c.lo;
      } else {
        qa.value = c.value;
      }
      query_attrs.push_back(std::move(qa));
    }
  }
  if (query_attrs.empty()) return 0.0;

  const double weight = 1.0 / static_cast<double>(query_attrs.size());
  double score = 0.0;
  for (const auto& qa : query_attrs) {
    if (qa.numeric) {
      const db::Value& v = table_->cell(row, qa.attr);
      if (!v.is_numeric() || qa.number == 0.0) continue;
      double sim = 1.0 - std::abs(qa.number - v.AsDouble()) /
                             std::abs(qa.number);
      score += weight * std::max(0.0, sim);
    } else {
      double best = 0.0;
      for (const auto& e : table_->CellElements(row, qa.attr)) {
        best = std::max(best, VSim(qa.attr, qa.value, e));
      }
      score += weight * best;
    }
  }
  return score;
}

std::vector<db::RowId> AimqRanker::Rank(const RankInput& input,
                                        std::size_t k) {
  std::vector<std::pair<double, db::RowId>> scored;
  scored.reserve(input.candidates.size());
  for (db::RowId row : input.candidates) {
    scored.emplace_back(Score(input, row), row);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first > b.first;
                     return a.second < b.second;
                   });
  std::vector<db::RowId> out;
  for (const auto& [score, row] : scored) {
    if (out.size() >= k) break;
    out.push_back(row);
  }
  return out;
}

}  // namespace cqads::baselines
