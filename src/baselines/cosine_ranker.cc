#include "baselines/cosine_ranker.h"

#include <algorithm>
#include <cmath>

namespace cqads::baselines {

double CosineRanker::Score(const RankInput& input, db::RowId row) {
  const std::size_t n = input.units.size();
  if (n == 0) return 0.0;
  const std::size_t satisfied = SatisfiedUnits(input, row);
  if (satisfied == 0) return 0.0;
  return static_cast<double>(satisfied) /
         (std::sqrt(static_cast<double>(n)) *
          std::sqrt(static_cast<double>(satisfied)));
}

std::vector<db::RowId> CosineRanker::Rank(const RankInput& input,
                                          std::size_t k) {
  std::vector<std::pair<double, db::RowId>> scored;
  scored.reserve(input.candidates.size());
  for (db::RowId row : input.candidates) {
    scored.emplace_back(Score(input, row), row);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first > b.first;
                     return a.second < b.second;
                   });
  std::vector<db::RowId> out;
  for (const auto& [score, row] : scored) {
    if (out.size() >= k) break;
    out.push_back(row);
  }
  return out;
}

}  // namespace cqads::baselines
