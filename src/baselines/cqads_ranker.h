// CQAds' own ranking strategy exposed through the shared Ranker interface,
// so the §5.5 comparison treats all five approaches identically. Candidates
// are ordered by Rank_Sim (Eq. 5): satisfied units count 1 each and the
// best-scoring unsatisfied unit contributes its domain similarity.
#ifndef CQADS_BASELINES_CQADS_RANKER_H_
#define CQADS_BASELINES_CQADS_RANKER_H_

#include "baselines/ranker.h"
#include "core/rank_sim.h"

namespace cqads::baselines {

class CqadsRanker : public Ranker {
 public:
  /// `ctx` must outlive the ranker.
  explicit CqadsRanker(const core::SimilarityContext* ctx) : ctx_(ctx) {}

  std::string name() const override { return "CQAds"; }

  std::vector<db::RowId> Rank(const RankInput& input,
                              std::size_t k) override;

  /// Rank_Sim for one candidate: #satisfied units + the maximum similarity
  /// among unsatisfied units.
  double Score(const RankInput& input, db::RowId row) const;

 private:
  const core::SimilarityContext* ctx_;
};

}  // namespace cqads::baselines

#endif  // CQADS_BASELINES_CQADS_RANKER_H_
