// Ranker interface for the §5.5 comparison. Every approach receives the SAME
// inputs — the question text, the parsed condition units, and the candidate
// pool of partially-matched records — and differs only in how it orders them,
// mirroring the paper's setup where all five approaches rank the same
// retrieved partial answers.
#ifndef CQADS_BASELINES_RANKER_H_
#define CQADS_BASELINES_RANKER_H_

#include <string>
#include <vector>

#include "core/boolean_assembler.h"
#include "db/executor.h"
#include "db/table.h"

namespace cqads::baselines {

struct RankInput {
  const db::Table* table = nullptr;
  std::string question_text;
  /// Parsed condition units (shared across rankers; produced by the CQAds
  /// parser so no approach gets a parsing advantage).
  std::vector<core::MatchUnit> units;
  /// Candidate partially-matched rows to order.
  std::vector<db::RowId> candidates;
};

class Ranker {
 public:
  virtual ~Ranker() = default;
  virtual std::string name() const = 0;
  /// Returns the top-k candidates, best first.
  virtual std::vector<db::RowId> Rank(const RankInput& input,
                                      std::size_t k) = 0;
};

/// Number of units of `input` that row satisfies (used by several rankers).
std::size_t SatisfiedUnits(const RankInput& input, db::RowId row);

}  // namespace cqads::baselines

#endif  // CQADS_BASELINES_RANKER_H_
