#include "baselines/faqfinder_ranker.h"

#include <algorithm>
#include <cmath>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace cqads::baselines {

namespace {

std::vector<std::string> Terms(const std::string& raw) {
  std::vector<std::string> out;
  for (const auto& tok : text::Tokenize(raw)) {
    if (tok.kind == text::TokenKind::kWord && text::IsStopword(tok.text)) {
      continue;
    }
    out.push_back(tok.kind == text::TokenKind::kWord
                      ? text::PorterStem(tok.text)
                      : tok.text);
  }
  return out;
}

}  // namespace

FaqFinderRanker::FaqFinderRanker(const db::Table* table) : table_(table) {
  const std::size_t n = table->num_rows();
  std::unordered_map<std::string, std::size_t> doc_freq;
  std::vector<std::vector<std::string>> docs(n);
  for (db::RowId row = 0; row < n; ++row) {
    docs[row] = Terms(table->RowText(row));
    std::vector<std::string> uniq = docs[row];
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    for (const auto& t : uniq) ++doc_freq[t];
  }
  for (const auto& [term, df] : doc_freq) {
    idf_[term] = std::log((1.0 + static_cast<double>(n)) /
                          (1.0 + static_cast<double>(df))) +
                 1.0;
  }
  record_vectors_.resize(n);
  for (db::RowId row = 0; row < n; ++row) {
    SparseVec& v = record_vectors_[row];
    for (const auto& t : docs[row]) v[t] += 1.0;
    for (auto& [term, tf] : v) {
      auto it = idf_.find(term);
      tf *= it == idf_.end() ? 1.0 : it->second;
    }
  }
}

FaqFinderRanker::SparseVec FaqFinderRanker::Vectorize(
    const std::string& raw_text) const {
  SparseVec v;
  for (const auto& t : Terms(raw_text)) v[t] += 1.0;
  for (auto& [term, tf] : v) {
    auto it = idf_.find(term);
    tf *= it == idf_.end() ? 1.0 : it->second;
  }
  return v;
}

double FaqFinderRanker::CosineSparse(const SparseVec& a, const SparseVec& b) {
  const SparseVec& small = a.size() <= b.size() ? a : b;
  const SparseVec& large = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [term, w] : small) {
    auto it = large.find(term);
    if (it != large.end()) dot += w * it->second;
  }
  if (dot == 0.0) return 0.0;
  double na = 0.0, nb = 0.0;
  for (const auto& [t, w] : a) na += w * w;
  for (const auto& [t, w] : b) nb += w * w;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double FaqFinderRanker::Score(const std::string& question_text,
                              db::RowId row) const {
  return CosineSparse(Vectorize(question_text), record_vectors_[row]);
}

std::vector<db::RowId> FaqFinderRanker::Rank(const RankInput& input,
                                             std::size_t k) {
  SparseVec qv = Vectorize(input.question_text);
  std::vector<std::pair<double, db::RowId>> scored;
  scored.reserve(input.candidates.size());
  for (db::RowId row : input.candidates) {
    scored.emplace_back(CosineSparse(qv, record_vectors_[row]), row);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first > b.first;
                     return a.second < b.second;
                   });
  std::vector<db::RowId> out;
  for (const auto& [score, row] : scored) {
    if (out.size() >= k) break;
    out.push_back(row);
  }
  return out;
}

}  // namespace cqads::baselines
