// Ablation A1 (§4.1.3's data-structure claim): keyword lookup cost of the
// trie vs a binary search tree (std::map / sorted vector) vs a hash table.
// The paper argues O(m) trie lookups beat O(m log n) tree searches and are
// competitive with hashing for small static keyword sets.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "core/domain_lexicon.h"
#include "datagen/ads_generator.h"
#include "datagen/domain_spec.h"
#include "trie/keyword_trie.h"

namespace {

using namespace cqads;

struct LexiconFixture {
  std::vector<std::string> keywords;
  std::vector<std::string> probes;  // half hits, half misses
  trie::KeywordTrie trie;
  std::map<std::string, int> tree;
  std::unordered_set<std::string> hash;
  std::vector<std::string> sorted;

  LexiconFixture() {
    Rng rng(17);
    auto table =
        datagen::GenerateAds(*datagen::FindDomainSpec("cars"), 500, &rng);
    auto lexicon = core::DomainLexicon::Build(&table.value());
    auto completions =
        lexicon.value().trie().Completions(lexicon.value().trie().Root(),
                                           "", 100000);
    for (auto& [kw, handle] : completions) keywords.push_back(kw);
    std::sort(keywords.begin(), keywords.end());
    keywords.erase(std::unique(keywords.begin(), keywords.end()),
                   keywords.end());
    int i = 0;
    for (const auto& kw : keywords) {
      trie.Insert(kw, i);
      tree.emplace(kw, i);
      hash.insert(kw);
      ++i;
    }
    sorted = keywords;
    for (std::size_t p = 0; p < keywords.size(); ++p) {
      probes.push_back(p % 2 == 0 ? keywords[p]
                                  : keywords[p] + "zz");  // miss
    }
  }
};

LexiconFixture& Fixture() {
  static auto* f = new LexiconFixture();
  return *f;
}

void BM_TrieLookup(benchmark::State& state) {
  auto& f = Fixture();
  std::size_t i = 0, hits = 0;
  for (auto _ : state) {
    hits += f.trie.Contains(f.probes[i++ % f.probes.size()]) ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
  state.SetLabel(std::to_string(f.keywords.size()) + " keywords");
}
BENCHMARK(BM_TrieLookup);

void BM_TreeLookup(benchmark::State& state) {
  auto& f = Fixture();
  std::size_t i = 0, hits = 0;
  for (auto _ : state) {
    hits += f.tree.count(f.probes[i++ % f.probes.size()]);
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_TreeLookup);

void BM_SortedVectorBinarySearch(benchmark::State& state) {
  auto& f = Fixture();
  std::size_t i = 0, hits = 0;
  for (auto _ : state) {
    hits += std::binary_search(f.sorted.begin(), f.sorted.end(),
                               f.probes[i++ % f.probes.size()])
                ? 1
                : 0;
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_SortedVectorBinarySearch);

void BM_HashLookup(benchmark::State& state) {
  auto& f = Fixture();
  std::size_t i = 0, hits = 0;
  for (auto _ : state) {
    hits += f.hash.count(f.probes[i++ % f.probes.size()]);
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_HashLookup);

// Longest-prefix scanning (the tagger's workload): only the trie supports
// it natively; the tree alternative must probe every prefix length.
void BM_TrieLongestMatch(benchmark::State& state) {
  auto& f = Fixture();
  const std::string haystack = "hondaaccord less than 20000";
  std::size_t total = 0;
  for (auto _ : state) {
    total += f.trie.LongestMatchLength(haystack, 0);
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_TrieLongestMatch);

void BM_TreeLongestMatchByPrefixProbes(benchmark::State& state) {
  auto& f = Fixture();
  const std::string haystack = "hondaaccord less than 20000";
  std::size_t total = 0;
  for (auto _ : state) {
    std::size_t best = 0;
    for (std::size_t len = 1; len <= haystack.size(); ++len) {
      if (f.tree.count(haystack.substr(0, len)) > 0) best = len;
    }
    total += best;
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_TreeLongestMatchByPrefixProbes);

}  // namespace

BENCHMARK_MAIN();
