// Shared helpers for the bench binaries: the paper-scale world (500 ads per
// domain, §4.1.4), table-formatted printing, and the machine-readable
// BENCH_*.json emitter CI uploads as per-commit perf artifacts.
#ifndef CQADS_BENCH_BENCH_UTIL_H_
#define CQADS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "datagen/world.h"

namespace cqads::bench {

/// The evaluation world used by every figure/table bench: eight domains,
/// 500 ads each, deterministic seed.
inline std::unique_ptr<datagen::World> BuildPaperWorld() {
  datagen::WorldOptions options;
  options.seed = 20111130;
  options.ads_per_domain = 500;
  options.sessions_per_domain = 1500;
  options.corpus_docs_per_domain = 150;
  auto world = datagen::World::Build(options);
  if (!world.ok()) {
    std::fprintf(stderr, "world build failed: %s\n",
                 world.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(world).value();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule() {
  std::printf("---------------------------------------------------------------\n");
}

/// Schema version of the BENCH_*.json artifacts. Bump when a field is
/// renamed or its meaning changes, so downstream perf-trajectory tooling
/// can tell incompatible artifacts apart instead of silently misreading.
inline constexpr int kBenchJsonSchemaVersion = 2;

/// The `git describe` of the sources these benches were configured from
/// (stamped by CMake; "unknown" outside a git checkout).
inline const char* BenchGitDescribe() {
#ifdef CQADS_GIT_DESCRIBE
  return CQADS_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

/// Flat-object JSON emitter for the CI perf artifacts: every bench writes
/// one BENCH_<name>.json into the working directory so the workflow can
/// upload the perf trajectory per commit. Numbers print with enough
/// precision to diff; strings are assumed not to need escaping (bench
/// labels only).
///
/// Every artifact is stamped with `bench`, `bench_schema_version`, and
/// `git_describe` up front — benches only add their measurements, so the
/// provenance fields cannot drift apart across bench binaries.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    Add("bench", name_);
    Add("bench_schema_version", static_cast<std::size_t>(
                                    kBenchJsonSchemaVersion));
    Add("git_describe", std::string(BenchGitDescribe()));
  }

  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
  }
  void Add(const std::string& key, std::size_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, '"' + value + '"');
  }

  /// Writes BENCH_<name>.json; prints where. Best-effort: a read-only CWD
  /// only costs the artifact, never the bench run.
  void Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    std::fputs("{\n", f);
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", fields_[i].first.c_str(),
                   fields_[i].second.c_str(),
                   i + 1 < fields_.size() ? "," : "");
    }
    std::fputs("}\n", f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace cqads::bench

#endif  // CQADS_BENCH_BENCH_UTIL_H_
