// Shared helpers for the bench binaries: the paper-scale world (500 ads per
// domain, §4.1.4) and table-formatted printing.
#ifndef CQADS_BENCH_BENCH_UTIL_H_
#define CQADS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "datagen/world.h"

namespace cqads::bench {

/// The evaluation world used by every figure/table bench: eight domains,
/// 500 ads each, deterministic seed.
inline std::unique_ptr<datagen::World> BuildPaperWorld() {
  datagen::WorldOptions options;
  options.seed = 20111130;
  options.ads_per_domain = 500;
  options.sessions_per_domain = 1500;
  options.corpus_docs_per_domain = 150;
  auto world = datagen::World::Build(options);
  if (!world.ok()) {
    std::fprintf(stderr, "world build failed: %s\n",
                 world.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(world).value();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule() {
  std::printf("---------------------------------------------------------------\n");
}

}  // namespace cqads::bench

#endif  // CQADS_BENCH_BENCH_UTIL_H_
