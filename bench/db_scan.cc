// Microbench: columnar predicate evaluation (db/exec CompiledPredicate over
// the ColumnStore) vs the seed row-at-a-time Executor::Matches, the
// vectorized block kernels (db/exec/vector_kernels.h) vs both, and the
// cost-aware planned conjunction vs the seed §4.3 Type-rank conjunction —
// scalar and block-at-a-time. Same table, same predicates, answers asserted
// identical before timing. The dense-conjunction vectorized speedup is a
// GATE: below kVectorSpeedupFloor the bench exits nonzero.
//
// Usage: db_scan [rows] [iterations]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "datagen/ads_generator.h"
#include "datagen/domain_spec.h"
#include "db/exec/parallel_plan.h"
#include "db/exec/partitioned_table.h"
#include "db/exec/plan.h"
#include "db/exec/planner.h"
#include "db/exec/vector_kernels.h"
#include "db/executor.h"
#include "serve/worker_pool.h"

namespace {

using Clock = std::chrono::steady_clock;
using namespace cqads;

double Secs(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

db::Predicate TextPred(std::size_t attr, const char* v,
                       db::CompareOp op = db::CompareOp::kEq) {
  db::Predicate p;
  p.attr = attr;
  p.op = op;
  p.value = db::Value::Text(v);
  return p;
}

db::Predicate NumPred(std::size_t attr, db::CompareOp op, double v) {
  db::Predicate p;
  p.attr = attr;
  p.op = op;
  p.value = db::Value::Real(v);
  return p;
}

/// Minimum vectorized-over-scalar speedup on the dense planned conjunction
/// below; regressing past this fails the bench (and CI's smoke run).
constexpr double kVectorSpeedupFloor = 1.5;

const char* SimdLevelName(db::exec::SimdLevel l) {
  switch (l) {
    case db::exec::SimdLevel::kAvx2:
      return "avx2";
    case db::exec::SimdLevel::kSse2:
      return "sse2";
    case db::exec::SimdLevel::kScalar:
      return "scalar";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rows =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 20000;
  const std::size_t iters =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 30;

  Rng rng(20111130);
  auto table_result =
      datagen::GenerateAds(*datagen::FindDomainSpec("cars"), rows, &rng);
  if (!table_result.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 table_result.status().ToString().c_str());
    return 1;
  }
  const db::Table& table = table_result.value();
  db::Executor executor(&table);
  db::exec::Planner planner(&table);

  // The scan matrix: categorical equality, shorthand equality, text-list
  // equality, substring, numeric range.
  struct Case {
    const char* name;
    db::Predicate pred;
  };
  const Case cases[] = {
      {"categorical eq", TextPred(0, "honda")},
      {"shorthand eq", TextPred(7, "4dr")},
      {"textlist eq", TextPred(9, "cd player")},
      {"substring", TextPred(9, "player", db::CompareOp::kContains)},
      {"numeric range", NumPred(3, db::CompareOp::kLt, 9000)},
  };

  bench::PrintHeader("db_scan: columnar vs row-at-a-time predicate scan");
  std::printf("rows: %zu, iterations per case: %zu, simd: %s\n",
              table.num_rows(), iters,
              SimdLevelName(db::exec::ActiveSimdLevel()));
  bench::PrintRule();
  std::printf("%-16s %13s %13s %13s %9s\n", "predicate", "row Mrows/s",
              "col Mrows/s", "vec Mrows/s", "vec/col");
  bench::PrintRule();

  bench::BenchJson json("db_scan");
  json.Add("rows", table.num_rows());
  json.Add("iterations", iters);
  json.Add("simd_level", std::string(SimdLevelName(db::exec::ActiveSimdLevel())));

  bool mismatch = false;
  for (const Case& c : cases) {
    const db::exec::CompiledPredicate cp =
        db::exec::CompilePredicate(table, c.pred);
    const db::exec::BlockPredicate bp(table.store(), cp);

    // Answer parity first: seed row path, compiled column path, and the
    // block-kernel mask must agree bit-for-bit on every row.
    std::size_t row_hits = 0;
    for (db::RowId r = 0; r < table.num_rows(); ++r) {
      row_hits += executor.Matches(r, c.pred);
      if (executor.Matches(r, c.pred) != cp.Matches(table.store(), r)) {
        mismatch = true;
      }
    }
    for (std::size_t base = 0; base < table.num_rows();
         base += db::exec::kBlockRows) {
      const std::size_t n =
          std::min(db::exec::kBlockRows, table.num_rows() - base);
      db::exec::SelMask mask;
      bp.EvalBlock(base, n, &mask);
      for (std::size_t i = 0; i < n; ++i) {
        const bool bit = (mask.words[i / 64] >> (i % 64)) & 1u;
        if (bit != cp.Matches(table.store(), base + i)) mismatch = true;
      }
    }

    auto time_scan = [&](auto&& probe) {
      std::size_t sink = 0;
      auto start = Clock::now();
      for (std::size_t i = 0; i < iters; ++i) {
        for (db::RowId r = 0; r < table.num_rows(); ++r) sink += probe(r);
      }
      double secs = Secs(Clock::now() - start);
      // Keep the optimizer honest.
      if (sink == std::size_t(-1)) std::printf("!");
      return secs;
    };
    // The block-kernel pass counts selected rows per block mask instead of
    // probing row-by-row; same work unit (rows scanned per iteration).
    auto time_blocks = [&] {
      std::size_t sink = 0;
      auto start = Clock::now();
      for (std::size_t i = 0; i < iters; ++i) {
        for (std::size_t base = 0; base < table.num_rows();
             base += db::exec::kBlockRows) {
          const std::size_t n =
              std::min(db::exec::kBlockRows, table.num_rows() - base);
          db::exec::SelMask mask;
          bp.EvalBlock(base, n, &mask);
          sink += mask.Count();
        }
      }
      double secs = Secs(Clock::now() - start);
      if (sink == std::size_t(-1)) std::printf("!");
      return secs;
    };

    double row_secs =
        time_scan([&](db::RowId r) { return executor.Matches(r, c.pred); });
    double col_secs =
        time_scan([&](db::RowId r) { return cp.Matches(table.store(), r); });
    double vec_secs = time_blocks();
    const double total =
        static_cast<double>(table.num_rows() * iters) / 1e6;
    std::printf("%-16s %13.2f %13.2f %13.2f %8.2fx   (hits=%zu)\n", c.name,
                total / row_secs, total / col_secs, total / vec_secs,
                col_secs / vec_secs, row_hits);
    const double scans = static_cast<double>(table.num_rows() * iters);
    std::string key(c.name);
    for (char& ch : key) {
      if (ch == ' ') ch = '_';
    }
    json.Add("row_scan_ns_per_row_" + key, row_secs * 1e9 / scans);
    json.Add("col_scan_ns_per_row_" + key, col_secs * 1e9 / scans);
    json.Add("vec_scan_ns_per_row_" + key, vec_secs * 1e9 / scans);
  }

  // Conjunction: planner order vs seed Type-rank order.
  db::Query q;
  q.where = db::Expr::MakeAnd(
      {db::Expr::MakePredicate(TextPred(0, "honda")),
       db::Expr::MakePredicate(TextPred(5, "blue")),
       db::Expr::MakePredicate(NumPred(3, db::CompareOp::kLt, 7000))});
  q.limit = table.num_rows();

  auto seed_res = executor.Execute(q);
  auto plan_res = planner.Run(q);
  if (!seed_res.ok() || !plan_res.ok() ||
      seed_res.value().rows != plan_res.value().rows) {
    mismatch = true;
  }

  auto time_exec = [&](auto&& run) {
    auto start = Clock::now();
    std::size_t sink = 0;
    for (std::size_t i = 0; i < iters * 4; ++i) sink += run().value().rows.size();
    if (sink == std::size_t(-1)) std::printf("!");
    return Secs(Clock::now() - start);
  };
  double seed_secs = time_exec([&] { return executor.Execute(q); });
  auto plan = planner.Compile(q).value();
  double plan_secs = time_exec([&] { return plan->Execute(); });

  // Dense numeric conjunction: low-selectivity ranges drive the planner
  // into the block-at-a-time path end to end (dense RangeScan bitmap +
  // mask-folded residual filter), which is where the vector kernels must
  // earn their keep against the PR 4 scalar loops. Row sets asserted
  // identical before timing; the speedup is gated.
  db::Query dense;
  dense.where = db::Expr::MakeAnd(
      {db::Expr::MakePredicate(NumPred(3, db::CompareOp::kLt, 1e9)),
       db::Expr::MakePredicate(NumPred(2, db::CompareOp::kGt, 1900)),
       db::Expr::MakePredicate(NumPred(4, db::CompareOp::kLt, 1e9))});
  dense.limit = table.num_rows();
  auto dense_plan = planner.Compile(dense).value();
  db::ExecStats dense_stats;
  auto dense_vec = dense_plan->ExecuteRowSet(&dense_stats, true);
  auto dense_scalar = dense_plan->ExecuteRowSet(&dense_stats, false);
  if (!dense_vec.ok() || !dense_scalar.ok() ||
      dense_vec.value() != dense_scalar.value()) {
    mismatch = true;
  }
  auto time_rowset = [&](bool vectorize) {
    auto start = Clock::now();
    std::size_t sink = 0;
    for (std::size_t i = 0; i < iters * 4; ++i) {
      db::ExecStats stats;
      sink += dense_plan->ExecuteRowSet(&stats, vectorize).value().size();
    }
    if (sink == std::size_t(-1)) std::printf("!");
    return Secs(Clock::now() - start);
  };
  const double dense_scalar_secs = time_rowset(false);
  const double dense_vec_secs = time_rowset(true);
  const double vector_speedup = dense_scalar_secs / dense_vec_secs;

  // Partition-sharded execution of the same conjunction: serial morsels and
  // pool-stolen morsels, answers asserted identical first.
  const std::size_t partition_rows = std::max<std::size_t>(1, rows / 8);
  auto pt = db::exec::PartitionedTable::Build(table, partition_rows).value();
  db::exec::ParallelPlanner pplanner(pt);
  auto pplan = pplanner.Compile(q).value();
  serve::WorkerPool pool(4);
  if (pplan->Execute(nullptr, 1).value().rows != seed_res.value().rows ||
      pplan->Execute(&pool, 4).value().rows != seed_res.value().rows) {
    mismatch = true;
  }
  double part_serial_secs =
      time_exec([&] { return pplan->Execute(nullptr, 1); });
  double part_pooled_secs =
      time_exec([&] { return pplan->Execute(&pool, 4); });

  bench::PrintRule();
  const double per_iter = 1000.0 / static_cast<double>(iters * 4);
  std::printf("conjunction (make+color+price): seed %.3f ms, planned %.3f "
              "ms, speedup %.2fx, rows=%zu\n",
              seed_secs * per_iter, plan_secs * per_iter,
              seed_secs / plan_secs, seed_res.value().rows.size());
  std::printf("partitioned conjunction (%zu shards): serial %.3f ms, "
              "pooled(4) %.3f ms\n",
              pt->num_partitions(), part_serial_secs * per_iter,
              part_pooled_secs * per_iter);
  std::printf("dense conjunction (year+price+mileage): scalar %.3f ms, "
              "vectorized %.3f ms, speedup %.2fx (floor %.1fx), rows=%zu\n",
              dense_scalar_secs * per_iter, dense_vec_secs * per_iter,
              vector_speedup, kVectorSpeedupFloor, dense_vec.value().size());
  std::printf("plan:\n%s", plan->Explain().c_str());
  bench::PrintRule();

  json.Add("partition_count", pt->num_partitions());
  json.Add("conjunction_seed_ms", seed_secs * per_iter);
  json.Add("conjunction_planned_ms", plan_secs * per_iter);
  json.Add("conjunction_partitioned_serial_ms", part_serial_secs * per_iter);
  json.Add("conjunction_partitioned_pooled_ms", part_pooled_secs * per_iter);
  json.Add("dense_conjunction_scalar_ms", dense_scalar_secs * per_iter);
  json.Add("dense_conjunction_vector_ms", dense_vec_secs * per_iter);
  json.Add("vector_conjunction_speedup", vector_speedup);
  json.Add("mismatch", static_cast<std::size_t>(mismatch ? 1 : 0));
  json.Write();

  if (mismatch) {
    std::printf("FAIL: columnar path disagrees with the seed executor\n");
    return 1;
  }
  if (vector_speedup < kVectorSpeedupFloor) {
    std::printf("FAIL: vectorized dense conjunction only %.2fx over scalar "
                "(floor %.1fx)\n",
                vector_speedup, kVectorSpeedupFloor);
    return 1;
  }
  std::printf("all columnar answers identical to the seed executor\n");
  return 0;
}
