// Ablation A4 (§3's model choice): JBBSM vs plain multinomial Naive Bayes
// on the Figure 2 workload. The paper chose the Joint Beta-Binomial
// Sampling Model for its burstiness handling and unseen-word mass.
#include <chrono>

#include "bench_util.h"
#include "eval/experiments.h"
#include "eval/metrics.h"

int main() {
  using namespace cqads;
  using Clock = std::chrono::steady_clock;
  auto world = bench::BuildPaperWorld();
  auto questions = eval::GenerateSurveyQuestions(*world, 80, 82, 650);

  struct ModelRun {
    const char* name;
    classify::QuestionClassifier::Model model;
    double train_ms = 0.0;
    double classify_ms = 0.0;
    eval::ClassificationResult result;
  };
  ModelRun runs[] = {
      {"JBBSM", classify::QuestionClassifier::Model::kJBBSM, 0, 0, {}},
      {"multinomial", classify::QuestionClassifier::Model::kMultinomial, 0,
       0, {}},
  };

  for (auto& run : runs) {
    classify::QuestionClassifier::Options opts;
    opts.model = run.model;
    classify::QuestionClassifier clf(opts);
    auto t0 = Clock::now();
    if (!clf.Train(world->engine().MakeTrainingDocs()).ok()) return 1;
    auto t1 = Clock::now();
    run.train_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

    eval::MeanAccumulator overall;
    auto t2 = Clock::now();
    for (const auto& [domain, qs] : questions) {
      eval::MeanAccumulator acc;
      for (const auto& q : qs) {
        bool ok = clf.Classify(q.text) == domain;
        acc.Add(ok ? 1.0 : 0.0);
        overall.Add(ok ? 1.0 : 0.0);
      }
      run.result.per_domain_accuracy[domain] = acc.Mean();
      run.result.total_questions += qs.size();
    }
    auto t3 = Clock::now();
    run.classify_ms =
        std::chrono::duration<double, std::milli>(t3 - t2).count();
    run.result.average_accuracy = overall.Mean();
  }

  bench::PrintHeader("Ablation A4: JBBSM vs multinomial Naive Bayes");
  std::printf("%-14s %10s %10s %14s\n", "model", "accuracy", "train ms",
              "classify ms");
  bench::PrintRule();
  for (const auto& run : runs) {
    std::printf("%-14s %9.1f%% %10.1f %14.1f\n", run.name,
                run.result.average_accuracy * 100.0, run.train_ms,
                run.classify_ms);
  }
  bench::PrintRule();
  std::printf("%-16s %10s %12s\n", "domain", "JBBSM", "multinomial");
  bench::PrintRule();
  for (const auto& [domain, acc] : runs[0].result.per_domain_accuracy) {
    std::printf("%-16s %9.1f%% %11.1f%%\n", domain.c_str(), acc * 100.0,
                runs[1].result.per_domain_accuracy.at(domain) * 100.0);
  }
  bench::PrintRule();
  std::printf("(on short questions over clean ads text the two models tie "
              "in accuracy;\n JBBSM's advantage in the paper comes from "
              "burstier, longer documents)\n");
  return 0;
}
