// Parse/rank-side microbench for the interned-term substrate: per-stage
// timings (classify/tag/conditions/rank, ...) and cold-parse throughput of
// the full ask path with the substrate ON vs the legacy string paths, the
// §4.1.3 trie footprint comparison (flat node arrays vs pointer tree), and
// regression assertions pinning that WS/TI MostSimilar stays an O(degree)
// row scan instead of the seed's O(total pairs) full-map scan.
//
// Cold-parse means every question runs the whole parse pipeline — no
// prepared-query cache — which is exactly where per-call stemming and
// string-keyed similarity lookups used to burn time.
//
// Exits non-zero when the MostSimilar row-scan regression guard trips.
// Emits BENCH_parse_rank.json for the CI perf-artifact trajectory.
//
// Usage: parse_rank [--quick]
#include <chrono>
#include <cstring>
#include <map>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/ask_types.h"
#include "core/pipeline.h"
#include "core/rank_sim.h"
#include "eval/experiments.h"
#include "qlog/ti_matrix.h"
#include "text/term_dict.h"
#include "wordsim/ws_matrix.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The seed's MostSimilar data structure and algorithm, reconstructed: a
/// lexicographic string-pair map scanned IN FULL per call with a string
/// compare per entry. The regression gate times the CSR row scan against
/// this — if MostSimilar ever regresses to a full scan, the two converge.
using SeedPairMap = std::map<std::pair<std::string, std::string>, double>;

template <typename Matrix>
SeedPairMap BuildSeedMap(const Matrix& m, const cqads::text::TermDict& dict) {
  SeedPairMap out;
  for (std::size_t a = 0; a < dict.size(); ++a) {
    const auto probe = static_cast<cqads::text::TermId>(a);
    for (const auto& [term, sim] : m.MostSimilarById(probe, dict.size())) {
      if (dict.term(probe) < term) out[{dict.term(probe), term}] = sim;
    }
  }
  return out;
}

std::vector<std::pair<std::string, double>> SeedMostSimilar(
    const SeedPairMap& sims, const std::string& word, std::size_t limit) {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [key, sim] : sims) {
    if (key.first == word) {
      out.emplace_back(key.second, sim);
    } else if (key.second == word) {
      out.emplace_back(key.first, sim);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    if (x.second != y.second) return x.second > y.second;
    return x.first < y.first;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cqads;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  auto world = bench::BuildPaperWorld();
  auto questions = eval::GenerateSurveyQuestions(
      *world, quick ? 20 : 80, quick ? 20 : 82, 660);

  std::vector<std::pair<std::string, std::string>> stream;  // domain, text
  for (const auto& [domain, qs] : questions) {
    for (const auto& q : qs) stream.emplace_back(domain, q.text);
  }

  // ---- cold-parse throughput + per-stage timings, substrate on vs off ---
  std::map<std::string, double> stage_micros;  // substrate-on run only
  auto ask_all = [&](bool collect_stages) {
    auto start = Clock::now();
    for (const auto& [domain, text] : stream) {
      auto r = world->engine().AskInDomain(domain, text);
      if (collect_stages && r.ok()) {
        for (const auto& t : r.value().timings) {
          stage_micros[t.stage] += t.micros;
        }
      }
    }
    return Seconds(start);
  };

  // Warmup absorbs one-time costs (pipeline singletons, allocator).
  for (const auto& [domain, text] : stream) {
    (void)world->engine().AskInDomain(domain, text);
  }

  core::EngineOptions substrate_options;  // default: use_term_substrate on
  core::EngineOptions legacy_options;
  legacy_options.use_term_substrate = false;

  world->mutable_engine().SetOptions(legacy_options);
  const double legacy_secs = ask_all(false);

  world->mutable_engine().SetOptions(substrate_options);
  const double substrate_secs = ask_all(true);

  const double legacy_qps = stream.size() / legacy_secs;
  const double substrate_qps = stream.size() / substrate_secs;

  bench::PrintHeader("cold-parse ask throughput (no prepared cache)");
  std::printf("questions: %zu\n", stream.size());
  std::printf("legacy string paths     : %8.1f q/s\n", legacy_qps);
  std::printf("interned term substrate : %8.1f q/s   speedup %.2fx\n",
              substrate_qps, legacy_secs / substrate_secs);

  bench::PrintHeader("per-stage time (substrate run)");
  bench::PrintRule();
  for (const auto& [stage, micros] : stage_micros) {
    std::printf("%-12s %12.2f us/query  %10.1f ms total\n", stage.c_str(),
                micros / stream.size(), micros / 1000.0);
  }
  bench::PrintRule();

  // ---- batched Eq. 5 ranking: ScoreBlock vs per-row Score ---------------
  // Cold full-table rank sweeps (every N-1 drop over every row), the
  // RankStage workload when a question's exact answers run dry. Both sides
  // start a FRESH SimScorer per question so the comparison is cold-memo vs
  // cold-memo: the batched path wins by keying each unit's similarity on
  // the row's dictionary-code tuple instead of re-deriving it per row.
  double perrow_rank_secs = 0.0, batched_rank_secs = 0.0;
  std::size_t ranked_questions = 0, ranked_scores = 0;
  {
    const auto snapshot = world->engine().snapshot();
    double sink = 0.0;
    for (const auto& [domain, text] : stream) {
      auto parsed = world->engine().Parse(domain, text);
      if (!parsed.ok()) continue;
      const auto& units = parsed.value().assembled.units;
      if (units.empty()) continue;
      const auto* rt = snapshot->runtime(domain);
      const core::SimilarityContext sim = snapshot->MakeSimilarityContext(*rt);
      const std::size_t rows = rt->table->num_rows();
      std::vector<db::RowId> ids(rows);
      std::iota(ids.begin(), ids.end(), db::RowId{0});
      std::vector<double> rank(rows), unit(rows);
      ++ranked_questions;
      ranked_scores += rows * units.size();
      {
        core::SimScorer scorer(rt->table->schema(), units, sim);
        auto t = Clock::now();
        for (std::size_t dropped = 0; dropped < units.size(); ++dropped) {
          for (db::RowId row = 0; row < rows; ++row) {
            sink += scorer.Score(*rt->table, row, dropped).rank_sim;
          }
        }
        perrow_rank_secs += Seconds(t);
      }
      {
        core::SimScorer scorer(rt->table->schema(), units, sim);
        auto t = Clock::now();
        for (std::size_t dropped = 0; dropped < units.size(); ++dropped) {
          scorer.ScoreBlock(*rt->table, ids.data(), rows, dropped,
                            rank.data(), unit.data());
          sink += rank[0];
        }
        batched_rank_secs += Seconds(t);
      }
    }
    if (sink == -1.0) std::printf("!");
  }
  const double rank_perrow_qps = ranked_questions / perrow_rank_secs;
  const double rank_batched_qps = ranked_questions / batched_rank_secs;
  const double rank_batch_speedup = perrow_rank_secs / batched_rank_secs;
  bench::PrintHeader("cold full-table rank sweep (Eq. 5, all N-1 drops)");
  std::printf("questions: %zu, unit-row scores: %zu\n", ranked_questions,
              ranked_scores);
  std::printf("per-row Score           : %8.1f q/s\n", rank_perrow_qps);
  std::printf("batched ScoreBlock      : %8.1f q/s   speedup %.2fx\n",
              rank_batched_qps, rank_batch_speedup);

  // ---- trie footprint: flat node arrays vs pointer tree (§4.1.3) --------
  std::size_t flat_bytes = 0, pointer_bytes = 0, nodes = 0, keywords = 0;
  for (const auto& domain : world->domains()) {
    const auto* rt = world->engine().runtime(domain);
    flat_bytes += rt->lexicon->flat_trie().MemoryBytes();
    pointer_bytes += rt->lexicon->trie().ApproxMemoryBytes();
    nodes += rt->lexicon->flat_trie().node_count();
    keywords += rt->lexicon->flat_trie().size();
  }
  bench::PrintHeader("trie footprint (all 8 domains)");
  std::printf("keywords: %zu   nodes: %zu\n", keywords, nodes);
  std::printf("pointer tree (approx)   : %10.1f KiB\n", pointer_bytes / 1024.0);
  std::printf("flat node arrays        : %10.1f KiB   (%.1fx smaller)\n",
              flat_bytes / 1024.0,
              static_cast<double>(pointer_bytes) / flat_bytes);

  // ---- MostSimilar row-scan regression guard ----------------------------
  // The seed stored a lexicographic string-pair std::map and MostSimilar
  // scanned ALL of it with a string compare per entry. Rebuild exactly that
  // structure, run the seed algorithm on it, and require the CSR row scan
  // to beat it decisively. A regression back to a full scan converges the
  // two times and trips the gate.
  const wordsim::WsMatrix& ws = world->ws_matrix();
  const std::size_t vocab = ws.vocabulary_size();
  std::mt19937 rng(4242);
  std::vector<text::TermId> probes;
  for (int i = 0; i < 400; ++i) {
    probes.push_back(static_cast<text::TermId>(rng() % vocab));
  }

  const SeedPairMap ws_seed_map = BuildSeedMap(ws, ws.term_dict());
  auto t0 = Clock::now();
  std::size_t csr_items = 0;
  for (text::TermId p : probes) csr_items += ws.MostSimilarById(p, 10).size();
  const double csr_secs = Seconds(t0);

  t0 = Clock::now();
  std::size_t seed_items = 0;
  for (text::TermId p : probes) {
    seed_items +=
        SeedMostSimilar(ws_seed_map, ws.term_dict().term(p), 10).size();
  }
  const double seed_scan_secs = Seconds(t0);

  bench::PrintHeader("WS MostSimilar: CSR row scan vs seed full-map scan");
  std::printf("vocab: %zu stems, %zu pairs, max row degree %zu\n", vocab,
              ws.pair_count(), ws.MaxRowDegree());
  std::printf("CSR rows      : %10.2f us/call (%zu results)\n",
              1e6 * csr_secs / probes.size(), csr_items);
  std::printf("seed map scan : %10.2f us/call (%zu results)\n",
              1e6 * seed_scan_secs / probes.size(), seed_items);

  // TI: same guard on the largest domain matrix.
  double ti_csr_secs = 0.0, ti_seed_secs = 0.0;
  {
    const qlog::TiMatrix* ti = nullptr;
    for (const auto& domain : world->domains()) {
      const auto* rt = world->engine().runtime(domain);
      if (ti == nullptr || rt->ti_matrix->value_count() > ti->value_count()) {
        ti = rt->ti_matrix.get();
      }
    }
    const std::size_t values = ti->value_count();
    const SeedPairMap ti_seed_map = BuildSeedMap(*ti, ti->term_dict());
    std::vector<text::TermId> ti_probes;
    for (int i = 0; i < 400; ++i) {
      ti_probes.push_back(static_cast<text::TermId>(rng() % values));
    }
    t0 = Clock::now();
    std::size_t items = 0;
    for (text::TermId p : ti_probes) items += ti->MostSimilarById(p, 10).size();
    ti_csr_secs = Seconds(t0);
    t0 = Clock::now();
    std::size_t seed_ti_items = 0;
    for (text::TermId p : ti_probes) {
      seed_ti_items +=
          SeedMostSimilar(ti_seed_map, ti->term_dict().term(p), 10).size();
    }
    ti_seed_secs = Seconds(t0);
    bench::PrintHeader("TI MostSimilar: CSR row scan vs seed full-map scan");
    std::printf("values: %zu, pairs: %zu\n", values, ti->pair_count());
    std::printf("CSR rows      : %10.2f us/call (%zu results)\n",
                1e6 * ti_csr_secs / ti_probes.size(), items);
    std::printf("seed map scan : %10.2f us/call (%zu results)\n",
                1e6 * ti_seed_secs / ti_probes.size(), seed_ti_items);
  }

  bench::BenchJson json("parse_rank");
  json.Add("questions", stream.size());
  json.Add("legacy_qps", legacy_qps);
  json.Add("substrate_qps", substrate_qps);
  json.Add("substrate_speedup", legacy_secs / substrate_secs);
  for (const auto& [stage, micros] : stage_micros) {
    json.Add("stage_us_" + stage, micros / stream.size());
  }
  json.Add("rank_perrow_qps", rank_perrow_qps);
  json.Add("rank_batched_qps", rank_batched_qps);
  json.Add("rank_batch_speedup", rank_batch_speedup);
  json.Add("trie_flat_bytes", flat_bytes);
  json.Add("trie_pointer_bytes", pointer_bytes);
  json.Add("trie_nodes", nodes);
  json.Add("trie_keywords", keywords);
  json.Add("ws_mostsimilar_csr_us", 1e6 * csr_secs / probes.size());
  json.Add("ws_mostsimilar_seed_scan_us", 1e6 * seed_scan_secs / probes.size());
  json.Add("ti_mostsimilar_csr_us", 1e6 * ti_csr_secs / 400);
  json.Add("ti_mostsimilar_seed_scan_us", 1e6 * ti_seed_secs / 400);
  json.Write();

  // Regression gates. The margin is deliberately coarse (2x) against timer
  // noise: the seed scan touches every stored pair per call while the CSR
  // path touches one row, so a genuine regression collapses the gap to ~1x.
  bool failed = false;
  // Cold-parse floor: the substrate's measured speedup is ~1.3-1.5x on the
  // survey stream; a drop below 1.1x means the id paths stopped paying for
  // themselves (e.g. per-candidate stemming crept back into SimScorer).
  // The floor sits well under the recorded speedup so CI timer noise on a
  // loaded runner cannot trip it, while a genuine regression to ~1.0x does.
  if (legacy_secs / substrate_secs < 1.1) {
    std::printf(
        "FAIL: term-substrate cold-parse speedup %.2fx below the 1.1x "
        "regression floor (legacy %.0f q/s, substrate %.0f q/s)\n",
        legacy_secs / substrate_secs, legacy_qps, substrate_qps);
    failed = true;
  }
  // Cold-rank floor: ScoreBlock's code-tuple memo collapses a 500-row sweep
  // to one similarity computation per distinct code tuple, so the measured
  // speedup sits far above this; 1.2x only trips when batching stops
  // paying (e.g. the memo key went per-row again).
  if (rank_batch_speedup < 1.2) {
    std::printf(
        "FAIL: batched ScoreBlock rank sweep only %.2fx over per-row Score "
        "(floor 1.2x; per-row %.0f q/s, batched %.0f q/s)\n",
        rank_batch_speedup, rank_perrow_qps, rank_batched_qps);
    failed = true;
  }
  if (csr_secs * 2.0 >= seed_scan_secs) {
    std::printf(
        "FAIL: WS MostSimilar no faster than the seed full-map scan "
        "(csr=%.1fus scan=%.1fus) — the O(total pairs) scan is back\n",
        1e6 * csr_secs / probes.size(),
        1e6 * seed_scan_secs / probes.size());
    failed = true;
  }
  if (ti_csr_secs * 2.0 >= ti_seed_secs) {
    std::printf(
        "FAIL: TI MostSimilar no faster than the seed full-map scan "
        "(csr=%.1fus scan=%.1fus)\n",
        1e6 * ti_csr_secs / 400, 1e6 * ti_seed_secs / 400);
    failed = true;
  }
  return failed ? 1 : 0;
}
